//! In-storage key-value scan: "emitting key-value pairs from [a]
//! flash-based key-value store" (§I).
//!
//! A hash-bucketed KV table lives on the Morpheus-SSD; the host asks for
//! all pairs in a key range. Conventionally the whole region streams to
//! the host for filtering; with a StorageApp the drive filters and only
//! matches cross PCIe.
//!
//! ```sh
//! cargo run --release --example kv_offload
//! ```

use morpheus::{System, SystemParams};
use morpheus_kvstore::{scan_conventional, scan_morpheus, synth_pairs, KvConfig, KvStore};

fn main() {
    let mut sys = System::new(SystemParams::paper_testbed());
    let cfg = KvConfig {
        buckets: 2048,
        ..KvConfig::default()
    };
    let kv = KvStore::format(&mut sys.mssd.dev, 0, cfg).expect("format");
    for (k, v) in synth_pairs(30_000, 1_000_000, 5) {
        kv.put(&mut sys.mssd.dev, k, &v).expect("populate");
    }
    println!(
        "KV table: {} buckets, {:.2} MB region, 30000 pairs",
        kv.config().buckets,
        kv.region_bytes() as f64 / 1e6
    );

    // Fetch the ~5% of keys below 50_000.
    let (lo, hi) = (0u64, 50_000u64);
    let (conv, conv_rep) = scan_conventional(&mut sys, &kv, lo, hi).expect("host scan");
    let (morp, morp_rep) = scan_morpheus(&mut sys, &kv, lo, hi).expect("ssd scan");
    assert_eq!(conv, morp, "both paths must return the same pairs");

    println!("\nrange scan [{lo}, {hi}]: {} matches\n", conv_rep.matches);
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "path", "elapsed", "pcie bytes", "result bytes", "host cpu"
    );
    for (name, r) in [("host filter", &conv_rep), ("ssd filter", &morp_rep)] {
        println!(
            "{:<14} {:>8.2}ms {:>10.2}MB {:>10.1}KB {:>10.3}ms",
            name,
            r.elapsed_s * 1e3,
            r.pcie_bytes as f64 / 1e6,
            r.result_bytes as f64 / 1e3,
            r.host_cpu_busy_s * 1e3,
        );
    }
    println!(
        "\nthe drive shipped {:.1}% of the bytes and used {:.1}% of the host CPU",
        100.0 * morp_rep.pcie_bytes as f64 / conv_rep.pcie_bytes as f64,
        100.0 * morp_rep.host_cpu_busy_s / conv_rep.host_cpu_busy_s,
    );
}
