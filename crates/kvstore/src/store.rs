//! The on-flash hash-bucket table.

use morpheus_nvme::LBA_BYTES;
use morpheus_ssd::{Ssd, SsdError};
use std::error::Error;
use std::fmt;

/// Shape of a KV region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Number of hash buckets.
    pub buckets: u32,
    /// Bytes per bucket (must be a multiple of the 512-byte LBA).
    pub bucket_bytes: u32,
    /// Buckets examined by open-addressing linear probing.
    pub probe_limit: u32,
}

impl KvConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized table or a bucket size that is not a whole
    /// number of LBAs.
    pub fn validate(&self) {
        assert!(self.buckets > 0, "need at least one bucket");
        assert!(
            (self.bucket_bytes as u64).is_multiple_of(LBA_BYTES) && self.bucket_bytes > 0,
            "bucket size must be a positive LBA multiple"
        );
        assert!(self.probe_limit >= 1, "need at least one probe");
    }
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            buckets: 64,
            bucket_bytes: 4096,
            probe_limit: 4,
        }
    }
}

/// KV-store errors.
#[derive(Debug)]
pub enum KvError {
    /// Every probe bucket is full.
    TableFull(u64),
    /// Value too large to ever fit a bucket.
    ValueTooLarge(usize),
    /// The drive failed.
    Ssd(SsdError),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::TableFull(k) => write!(f, "no probe bucket has room for key {k}"),
            KvError::ValueTooLarge(n) => write!(f, "value of {n} bytes exceeds bucket capacity"),
            KvError::Ssd(e) => write!(f, "drive error: {e}"),
        }
    }
}

impl Error for KvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KvError::Ssd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SsdError> for KvError {
    fn from(e: SsdError) -> Self {
        KvError::Ssd(e)
    }
}

/// Per-record overhead: key (8) + value length (2).
const RECORD_HEADER: usize = 10;
/// Per-bucket overhead: record count (2).
const BUCKET_HEADER: usize = 2;

/// Decodes a bucket's pairs.
pub(crate) fn decode_bucket(raw: &[u8]) -> Vec<(u64, Vec<u8>)> {
    let n = u16::from_le_bytes(raw[..2].try_into().expect("bucket header")) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = BUCKET_HEADER;
    for _ in 0..n {
        let key = u64::from_le_bytes(raw[pos..pos + 8].try_into().expect("key"));
        let vlen = u16::from_le_bytes(raw[pos + 8..pos + 10].try_into().expect("vlen")) as usize;
        pos += RECORD_HEADER;
        out.push((key, raw[pos..pos + vlen].to_vec()));
        pos += vlen;
    }
    out
}

fn encode_bucket(pairs: &[(u64, Vec<u8>)], bucket_bytes: usize) -> Vec<u8> {
    let mut raw = Vec::with_capacity(bucket_bytes);
    raw.extend_from_slice(&(pairs.len() as u16).to_le_bytes());
    for (k, v) in pairs {
        raw.extend_from_slice(&k.to_le_bytes());
        raw.extend_from_slice(&(v.len() as u16).to_le_bytes());
        raw.extend_from_slice(v);
    }
    assert!(raw.len() <= bucket_bytes, "caller checked capacity");
    raw.resize(bucket_bytes, 0);
    raw
}

fn used_bytes(pairs: &[(u64, Vec<u8>)]) -> usize {
    BUCKET_HEADER
        + pairs
            .iter()
            .map(|(_, v)| RECORD_HEADER + v.len())
            .sum::<usize>()
}

/// A hash-bucketed KV table over a contiguous LBA region.
///
/// Mutations are functional/staging-level (like file staging, they run
/// before a measured window); the interesting *timed* operation is the
/// range scan, offloadable via [`KvScanApp`](crate::KvScanApp).
#[derive(Debug, Clone, Copy)]
pub struct KvStore {
    base_lba: u64,
    cfg: KvConfig,
}

impl KvStore {
    /// Formats a fresh table at `base_lba` (writes empty buckets).
    ///
    /// # Errors
    ///
    /// Propagates drive errors (e.g. region beyond capacity).
    pub fn format(ssd: &mut Ssd, base_lba: u64, cfg: KvConfig) -> Result<KvStore, KvError> {
        cfg.validate();
        let empty = encode_bucket(&[], cfg.bucket_bytes as usize);
        for b in 0..cfg.buckets {
            ssd.load_at(
                base_lba + b as u64 * cfg.bucket_bytes as u64 / LBA_BYTES,
                &empty,
            )?;
        }
        Ok(KvStore { base_lba, cfg })
    }

    /// The table's configuration.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// The LBA range holding the table: `(slba, blocks)`.
    pub fn region(&self) -> (u64, u64) {
        (
            self.base_lba,
            self.cfg.buckets as u64 * self.cfg.bucket_bytes as u64 / LBA_BYTES,
        )
    }

    /// Total bytes in the region.
    pub fn region_bytes(&self) -> u64 {
        self.cfg.buckets as u64 * self.cfg.bucket_bytes as u64
    }

    fn bucket_lba(&self, bucket: u32) -> u64 {
        self.base_lba + bucket as u64 * self.cfg.bucket_bytes as u64 / LBA_BYTES
    }

    fn home_bucket(&self, key: u64) -> u32 {
        // SplitMix-style scramble so sequential keys spread.
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % self.cfg.buckets as u64) as u32
    }

    fn read_bucket(&self, ssd: &mut Ssd, bucket: u32) -> Result<Vec<(u64, Vec<u8>)>, KvError> {
        let raw = ssd.read_range_untimed(
            self.bucket_lba(bucket),
            self.cfg.bucket_bytes as u64 / LBA_BYTES,
        )?;
        Ok(decode_bucket(&raw))
    }

    fn write_bucket(
        &self,
        ssd: &mut Ssd,
        bucket: u32,
        pairs: &[(u64, Vec<u8>)],
    ) -> Result<(), KvError> {
        let raw = encode_bucket(pairs, self.cfg.bucket_bytes as usize);
        ssd.load_at(self.bucket_lba(bucket), &raw)?;
        Ok(())
    }

    fn probe_sequence(&self, key: u64) -> impl Iterator<Item = u32> + '_ {
        let home = self.home_bucket(key);
        (0..self.cfg.probe_limit.min(self.cfg.buckets)).map(move |p| (home + p) % self.cfg.buckets)
    }

    /// Inserts or replaces a pair.
    ///
    /// # Errors
    ///
    /// Fails when the value cannot fit any bucket or all probe buckets are
    /// full.
    pub fn put(&self, ssd: &mut Ssd, key: u64, value: &[u8]) -> Result<(), KvError> {
        if RECORD_HEADER + value.len() > self.cfg.bucket_bytes as usize - BUCKET_HEADER
            || value.len() > u16::MAX as usize
        {
            return Err(KvError::ValueTooLarge(value.len()));
        }
        // Replace in place if the key exists anywhere in the probe window.
        for b in self.probe_sequence(key).collect::<Vec<_>>() {
            let mut pairs = self.read_bucket(ssd, b)?;
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) {
                let old_len = slot.1.len();
                slot.1 = value.to_vec();
                if used_bytes(&pairs) <= self.cfg.bucket_bytes as usize {
                    return self.write_bucket(ssd, b, &pairs);
                }
                // Larger replacement no longer fits here: drop and fall
                // through to a fresh insert.
                pairs.retain(|(k, _)| *k != key);
                self.write_bucket(ssd, b, &pairs)?;
                let _ = old_len;
                break;
            }
        }
        // Insert into the first probe bucket with room.
        for b in self.probe_sequence(key).collect::<Vec<_>>() {
            let mut pairs = self.read_bucket(ssd, b)?;
            if used_bytes(&pairs) + RECORD_HEADER + value.len() <= self.cfg.bucket_bytes as usize {
                pairs.push((key, value.to_vec()));
                return self.write_bucket(ssd, b, &pairs);
            }
        }
        Err(KvError::TableFull(key))
    }

    /// Looks a key up.
    ///
    /// # Errors
    ///
    /// Propagates drive errors.
    pub fn get(&self, ssd: &mut Ssd, key: u64) -> Result<Option<Vec<u8>>, KvError> {
        for b in self.probe_sequence(key).collect::<Vec<_>>() {
            let pairs = self.read_bucket(ssd, b)?;
            if let Some((_, v)) = pairs.into_iter().find(|(k, _)| *k == key) {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Removes a key; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Propagates drive errors.
    pub fn delete(&self, ssd: &mut Ssd, key: u64) -> Result<bool, KvError> {
        for b in self.probe_sequence(key).collect::<Vec<_>>() {
            let mut pairs = self.read_bucket(ssd, b)?;
            let before = pairs.len();
            pairs.retain(|(k, _)| *k != key);
            if pairs.len() != before {
                self.write_bucket(ssd, b, &pairs)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Host-side reference scan: every pair with `lo <= key <= hi`, in
    /// region order (the same order the in-SSD [`KvScanApp`] emits).
    ///
    /// [`KvScanApp`]: crate::KvScanApp
    ///
    /// # Errors
    ///
    /// Propagates drive errors.
    pub fn scan_range_host(
        &self,
        ssd: &mut Ssd,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, KvError> {
        let mut out = Vec::new();
        for b in 0..self.cfg.buckets {
            for (k, v) in self.read_bucket(ssd, b)? {
                if (lo..=hi).contains(&k) {
                    out.push((k, v));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_flash::{FlashGeometry, FlashTiming};
    use morpheus_ssd::SsdConfig;

    fn setup() -> (Ssd, KvStore) {
        let mut ssd = Ssd::new(
            SsdConfig::default(),
            FlashGeometry::small(),
            FlashTiming::default(),
        );
        let kv = KvStore::format(&mut ssd, 0, KvConfig::default()).unwrap();
        (ssd, kv)
    }

    #[test]
    fn put_get_round_trip() {
        let (mut ssd, kv) = setup();
        kv.put(&mut ssd, 1, b"one").unwrap();
        kv.put(&mut ssd, 2, b"two").unwrap();
        assert_eq!(kv.get(&mut ssd, 1).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(kv.get(&mut ssd, 2).unwrap().as_deref(), Some(&b"two"[..]));
        assert_eq!(kv.get(&mut ssd, 3).unwrap(), None);
    }

    #[test]
    fn put_replaces_existing_value() {
        let (mut ssd, kv) = setup();
        kv.put(&mut ssd, 9, b"old").unwrap();
        kv.put(&mut ssd, 9, b"newer-value").unwrap();
        assert_eq!(
            kv.get(&mut ssd, 9).unwrap().as_deref(),
            Some(&b"newer-value"[..])
        );
        // Replacing must not duplicate the key in the scan.
        let hits = kv.scan_range_host(&mut ssd, 9, 9).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn delete_removes_key() {
        let (mut ssd, kv) = setup();
        kv.put(&mut ssd, 5, b"x").unwrap();
        assert!(kv.delete(&mut ssd, 5).unwrap());
        assert!(!kv.delete(&mut ssd, 5).unwrap());
        assert_eq!(kv.get(&mut ssd, 5).unwrap(), None);
    }

    #[test]
    fn range_scan_filters_keys() {
        let (mut ssd, kv) = setup();
        for k in 0..100u64 {
            kv.put(&mut ssd, k, format!("v{k}").as_bytes()).unwrap();
        }
        let hits = kv.scan_range_host(&mut ssd, 10, 19).unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|(k, _)| (10..=19).contains(k)));
    }

    #[test]
    fn oversized_value_rejected() {
        let (mut ssd, kv) = setup();
        let huge = vec![0u8; 5000];
        assert!(matches!(
            kv.put(&mut ssd, 1, &huge).unwrap_err(),
            KvError::ValueTooLarge(_)
        ));
    }

    #[test]
    fn table_fills_up_gracefully() {
        let mut ssd = Ssd::new(
            SsdConfig::default(),
            FlashGeometry::small(),
            FlashTiming::default(),
        );
        let kv = KvStore::format(
            &mut ssd,
            0,
            KvConfig {
                buckets: 2,
                bucket_bytes: 512,
                probe_limit: 2,
            },
        )
        .unwrap();
        let value = vec![7u8; 100];
        let mut stored = 0;
        let mut full = false;
        for k in 0..64u64 {
            match kv.put(&mut ssd, k, &value) {
                Ok(()) => stored += 1,
                Err(KvError::TableFull(_)) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(full, "tiny table must eventually fill");
        // Everything stored is still retrievable.
        for k in 0..stored {
            assert!(kv.get(&mut ssd, k).unwrap().is_some());
        }
    }

    #[test]
    fn bucket_codec_round_trips() {
        let pairs = vec![(1u64, b"a".to_vec()), (u64::MAX, Vec::new())];
        let raw = encode_bucket(&pairs, 512);
        assert_eq!(raw.len(), 512);
        assert_eq!(decode_bucket(&raw), pairs);
    }
}
