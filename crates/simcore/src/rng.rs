//! Deterministic pseudo-random number generation.
//!
//! Lower-level crates (flash error injection, FTL victim selection) need a
//! little randomness but must stay deterministic and dependency-light, so we
//! ship SplitMix64 here instead of pulling `rand` into every crate.

/// The SplitMix64 generator (Steele, Lea & Flood, 2014).
///
/// Fast, tiny state, passes BigCrush when used as intended; more than enough
/// for simulation noise. Identical seeds always produce identical streams.
///
/// # Example
///
/// ```
/// use morpheus_simcore::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free multiply-shift; bias is negligible for
        // simulation purposes (bounds are tiny relative to 2^64).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut r = SplitMix64::new(4);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(6);
        let mut hits = [0u32; 4];
        for _ in 0..4000 {
            hits[r.next_below(4) as usize] += 1;
        }
        for h in hits {
            assert!((800..1200).contains(&h), "bucket count {h} out of range");
        }
    }
}
