//! Property tests for the simulation kernel: resource timelines never
//! double-book, pipelines respect data dependencies, and makespans are
//! bounded by work-conservation arguments.

use morpheus_simcore::{pipeline, SimDuration, SimTime, StageDemand, Timeline};
use proptest::prelude::*;

proptest! {
    /// For any request sequence on a recording timeline, granted intervals
    /// on the same unit never overlap, starts respect ready times, and
    /// total busy equals the sum of services.
    #[test]
    fn timeline_never_double_books(
        reqs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..100),
        units in 1usize..5,
    ) {
        let mut t = Timeline::new("t", units).with_recording();
        let mut total = 0u64;
        for (ready, service) in &reqs {
            let iv = t.acquire(SimTime::from_nanos(*ready), SimDuration::from_nanos(*service));
            prop_assert!(iv.start >= SimTime::from_nanos(*ready));
            prop_assert_eq!(iv.end.duration_since(iv.start).as_nanos(), *service);
            total += service;
        }
        prop_assert_eq!(t.busy().as_nanos(), total);
        // No overlap within any unit.
        for u in 0..units {
            let mut ivs: Vec<_> = t.intervals().iter().filter(|i| i.unit == u).collect();
            ivs.sort_by_key(|i| i.start);
            for w in ivs.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "unit {u} double-booked");
            }
        }
    }

    /// FIFO fairness: with a single unit and all requests ready at zero,
    /// completion order equals submission order.
    #[test]
    fn single_unit_is_fifo(services in proptest::collection::vec(1u64..100, 2..50)) {
        let mut t = Timeline::new("t", 1);
        let mut last_end = SimTime::ZERO;
        for s in &services {
            let iv = t.acquire(SimTime::ZERO, SimDuration::from_nanos(*s));
            prop_assert_eq!(iv.start, last_end);
            last_end = iv.end;
        }
    }

    /// Pipeline makespan bounds: at least the critical path of any single
    /// item, at most the sum of every stage of every item (full serial).
    #[test]
    fn pipeline_makespan_bounds(
        // Nonzero demands: zero-service items skip stages without queueing,
        // which legitimately breaks completion-order monotonicity.
        items in proptest::collection::vec(
            proptest::collection::vec(1u64..200, 3),
            1..30,
        ),
    ) {
        let mut a = Timeline::new("a", 1);
        let mut b = Timeline::new("b", 1);
        let mut c = Timeline::new("c", 1);
        let mut stages = [&mut a, &mut b, &mut c];
        let r = pipeline(&mut stages, SimTime::ZERO, items.len(), |i, s| {
            StageDemand::service(SimDuration::from_nanos(items[i][s]))
        });
        let serial: u64 = items.iter().flatten().sum();
        let critical: u64 = items.iter().map(|it| it.iter().sum::<u64>()).max().unwrap();
        let per_stage_max: u64 = (0..3).map(|s| items.iter().map(|it| it[s]).sum::<u64>()).max().unwrap();
        let makespan = r.makespan().as_nanos();
        prop_assert!(makespan <= serial, "{makespan} > serial {serial}");
        prop_assert!(makespan >= critical, "{makespan} < critical {critical}");
        prop_assert!(makespan >= per_stage_max, "{makespan} < bottleneck {per_stage_max}");
        // Completions are monotone in item order for single-unit stages.
        for w in r.item_done.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Item completion times never precede the sum of their own demands.
    #[test]
    fn pipeline_items_respect_their_own_work(
        items in proptest::collection::vec((1u64..100, 1u64..100), 1..40),
    ) {
        let mut a = Timeline::new("a", 2);
        let mut b = Timeline::new("b", 2);
        let mut stages = [&mut a, &mut b];
        let r = pipeline(&mut stages, SimTime::ZERO, items.len(), |i, s| {
            StageDemand::service(SimDuration::from_nanos(if s == 0 { items[i].0 } else { items[i].1 }))
        });
        for (i, done) in r.item_done.iter().enumerate() {
            prop_assert!(done.as_nanos() >= items[i].0 + items[i].1);
        }
    }
}
