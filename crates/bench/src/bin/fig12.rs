//! Figure 12 (§VII-C): Morpheus-SSD on a slower server.
//!
//! Paper claim: on a slower host (1.2 GHz), the conventional path's
//! CPU-bound deserialization gets even worse while the in-SSD path is
//! unchanged, so Morpheus-SSD's end-to-end gain grows to **~1.66×**.

use morpheus::Mode;
use morpheus::StorageKind;
use morpheus_bench::{mean, print_table, Harness};
use morpheus_workloads::{run_benchmark, suite};

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 12: end-to-end speedup on fast vs slow hosts (scale 1/{})\n",
        h.scale
    );
    let benches = suite();
    let results: Vec<(f64, f64)> = h.run_suite_parallel(&benches, |bench| {
        let speedup_at = |freq: f64| {
            let mut sys = h.app_system_with(bench, StorageKind::NvmeSsd, Some(freq));
            let conv = run_benchmark(&mut sys, bench, Mode::Conventional).expect("conventional");
            let morp = run_benchmark(&mut sys, bench, Mode::Morpheus).expect("morpheus");
            assert_eq!(conv.kernel, morp.kernel, "{}", bench.name);
            morp.report.total_speedup_over(&conv.report)
        };
        (speedup_at(2.5e9), speedup_at(1.2e9))
    });
    let mut rows = Vec::new();
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    for (bench, (f, s)) in benches.iter().zip(&results) {
        fast.push(*f);
        slow.push(*s);
        rows.push(vec![
            bench.name.to_string(),
            format!("{f:.2}x"),
            format!("{s:.2}x"),
        ]);
    }
    print_table(&["app", "2.5GHz host", "1.2GHz host"], &rows);
    println!();
    println!("average at 2.5GHz: {:.2}x (paper: ~1.32x)", mean(&fast));
    println!("average at 1.2GHz: {:.2}x (paper: ~1.66x)", mean(&slow));
}
