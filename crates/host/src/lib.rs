//! Host system model: CPU, OS overheads, memory bus, mini filesystem, power.
//!
//! Section II of the paper pins object deserialization's cost on the *host*,
//! not the storage device: the work is CPU-bound (Fig. 3), achieves IPC ≈
//! 1.2, spends most of its cycles in file-system/locking/POSIX overhead
//! rather than actual string conversion, storms the context-switch rate, and
//! burns CPU-memory-bus bandwidth on raw text it immediately discards. This
//! crate models each of those mechanisms:
//!
//! * [`Cpu`] — core count, DVFS frequency range, and per-[`CodeClass`] IPC,
//!   converting instruction counts into time.
//! * [`OsModel`] — the conventional `read()` path: syscall and VFS/locking
//!   costs per read window, page-cache copies, context switches and page
//!   faults, with full accounting.
//! * [`MemBus`] / [`HostDram`] — DDR bandwidth as a contended resource plus
//!   a bump allocator handing out DMA-able host buffer addresses.
//! * [`SimFs`] — an extent-based mini filesystem mapping file names to LBA
//!   extents (what `ms_stream_create` consults so that permission checks and
//!   layout stay on the host, §V-A2).
//! * [`HostPowerParams`] — the wall-power parameters of the testbed.
//!
//! # Example
//!
//! ```
//! use morpheus_host::{CodeClass, Cpu, CpuSpec};
//!
//! let mut cpu = Cpu::new(CpuSpec::xeon_quad());
//! let fast = cpu.duration(2.5e9, CodeClass::Deserialize);
//! cpu.set_frequency(1.2e9);
//! let slow = cpu.duration(2.5e9, CodeClass::Deserialize);
//! assert!(slow > fast);
//! ```

#![warn(missing_docs)]

mod cpu;
mod fs;
mod memory;
mod os;
mod power;

pub use cpu::{CodeClass, Cpu, CpuSpec};
pub use fs::{Extent, FileMeta, FsError, SimFs};
pub use memory::{HostDram, MemBus};
pub use os::{OsAccounting, OsCost, OsModel, OsParams};
pub use power::HostPowerParams;
