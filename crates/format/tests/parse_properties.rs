//! Property tests: print→parse identity and streaming ≡ whole-buffer.

use morpheus_format::{parse_buffer, parse_chunked, FieldKind, Schema, TextScanner, TextWriter};
use proptest::prelude::*;

proptest! {
    /// Any i64 printed by TextWriter parses back exactly.
    #[test]
    fn i64_print_parse_identity(v in any::<i64>()) {
        let mut w = TextWriter::new();
        w.write_i64(v);
        w.newline();
        let mut s = TextScanner::new(w.as_bytes());
        prop_assert_eq!(s.parse_i64().unwrap(), v);
    }

    /// Any u64 printed by TextWriter parses back exactly.
    #[test]
    fn u64_print_parse_identity(v in any::<u64>()) {
        let mut w = TextWriter::new();
        w.write_u64(v);
        w.sep();
        let mut s = TextScanner::new(w.as_bytes());
        prop_assert_eq!(s.parse_u64().unwrap(), v);
    }

    /// Floats printed with 6 decimals parse back within printing precision.
    #[test]
    fn f64_print_parse_close(v in -1e12f64..1e12) {
        let mut w = TextWriter::new();
        w.write_f64(v, 6);
        w.newline();
        let mut s = TextScanner::new(w.as_bytes());
        let got = s.parse_f64().unwrap();
        let tol = 1e-6 + v.abs() * 1e-12;
        prop_assert!((got - v).abs() <= tol, "{v} -> {got}");
    }

    /// For any generated record table and any chunk size, the streaming
    /// parse equals the whole-buffer parse (objects and checksum).
    #[test]
    fn streaming_equals_whole_buffer(
        rows in proptest::collection::vec((any::<i32>(), any::<u32>(), -1e6f64..1e6), 0..60),
        chunk in 1usize..64,
    ) {
        let schema = Schema::new(vec![FieldKind::I32, FieldKind::U32, FieldKind::F64]);
        let mut w = TextWriter::new();
        for (a, b, c) in &rows {
            w.write_i64(*a as i64);
            w.sep();
            w.write_u64(*b as u64);
            w.sep();
            w.write_f64(*c, 6);
            w.newline();
        }
        let data = w.into_bytes();
        let (whole, whole_work) = parse_buffer(&data, &schema).unwrap();
        let (streamed, stream_work) = parse_chunked(&data, &schema, chunk).unwrap();
        prop_assert_eq!(&streamed, &whole);
        prop_assert_eq!(streamed.records as usize, rows.len());
        prop_assert_eq!(stream_work.int_tokens, whole_work.int_tokens);
        prop_assert_eq!(stream_work.float_tokens, whole_work.float_tokens);
        prop_assert_eq!(stream_work.bytes_scanned, whole_work.bytes_scanned);
    }

    /// Work accounting never exceeds the input length for bytes scanned,
    /// and token counts match the schema arithmetic.
    #[test]
    fn work_is_consistent(
        rows in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..100),
    ) {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        let mut w = TextWriter::new();
        for (a, b) in &rows {
            w.write_u64(*a as u64);
            w.sep();
            w.write_u64(*b as u64);
            w.newline();
        }
        let data = w.into_bytes();
        let (parsed, work) = parse_buffer(&data, &schema).unwrap();
        prop_assert_eq!(work.bytes_scanned as usize, data.len());
        prop_assert_eq!(work.int_tokens, 2 * rows.len() as u64);
        prop_assert_eq!(parsed.records as usize, rows.len());
        prop_assert!(work.int_digits >= work.int_tokens);
    }
}
