//! Structured, span-level event tracing across every simulated layer.
//!
//! The run reports ([`Metrics`](crate::Metrics), the figure binaries'
//! tables) answer *how long* a run took; this module answers *where the
//! time went*. A [`Tracer`] handle is threaded through the run context and
//! every hardware model records typed [`TraceEvent`]s in **sim-time**:
//! host syscall/context-switch activity (`host`), NVMe command lifecycles
//! (`nvme`), FTL map/GC operations (`ftl`), flash channel occupancy
//! (`flash`), StorageApp firmware phases (`ssd`), and PCIe DMA transfers
//! (`pcie`).
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** A disabled tracer is a `None`; every
//!    record call is a single branch, and no formatting or allocation
//!    happens. Components hold a [`Tracer`] by value (it is a cheap
//!    clone) and never check an environment variable or a global.
//! 2. **Deterministic.** Events are recorded in simulation order, which
//!    is deterministic, and the exporters produce canonical output —
//!    byte-identical across runs, worker counts, and platforms.
//! 3. **Standard output format.** [`TraceLog::to_chrome_json`] emits
//!    Chrome trace-event JSON loadable in Perfetto or `chrome://tracing`,
//!    one process per layer and one track per simulated resource.
//!
//! # Example
//!
//! ```
//! use morpheus_simcore::{SimTime, TraceLayer, Tracer};
//!
//! let tracer = Tracer::enabled();
//! tracer.span(
//!     TraceLayer::Flash,
//!     "ch0-cell",
//!     "read",
//!     SimTime::ZERO,
//!     SimTime::from_nanos(50_000),
//! );
//! let log = tracer.take();
//! assert_eq!(log.len(), 1);
//! let json = log.to_chrome_json();
//! assert!(json.contains("\"cat\":\"flash\""));
//! // The exporter round-trips through the bundled parser (the diff tool).
//! let back = morpheus_simcore::TraceLog::from_chrome_json(&json).unwrap();
//! assert_eq!(back.len(), 1);
//! ```

use crate::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The simulated layer an event belongs to (one Chrome-trace "process").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLayer {
    /// Host CPU: syscalls, parse loops, completion interrupts.
    Host,
    /// NVMe command lifecycle on the I/O queue (submit → complete).
    Nvme,
    /// Flash translation layer: map lookups/updates, garbage collection.
    Ftl,
    /// Flash array: per-channel cell access and bus transfers.
    Flash,
    /// StorageApp firmware on the embedded cores: dispatch, parse, pack.
    Ssd,
    /// PCIe fabric DMA transfers (host-bound and peer-to-peer).
    Pcie,
}

impl TraceLayer {
    /// All layers, in canonical (pid) order.
    pub const ALL: [TraceLayer; 6] = [
        TraceLayer::Host,
        TraceLayer::Nvme,
        TraceLayer::Ftl,
        TraceLayer::Flash,
        TraceLayer::Ssd,
        TraceLayer::Pcie,
    ];

    /// Stable lowercase name (the Chrome-trace `cat` field).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLayer::Host => "host",
            TraceLayer::Nvme => "nvme",
            TraceLayer::Ftl => "ftl",
            TraceLayer::Flash => "flash",
            TraceLayer::Ssd => "ssd",
            TraceLayer::Pcie => "pcie",
        }
    }

    /// Parses the name produced by [`as_str`](TraceLayer::as_str).
    pub fn parse(s: &str) -> Option<TraceLayer> {
        TraceLayer::ALL.into_iter().find(|l| l.as_str() == s)
    }

    /// The Chrome-trace process id for this layer (1-based, stable).
    fn pid(self) -> usize {
        1 + TraceLayer::ALL.iter().position(|l| *l == self).unwrap()
    }
}

impl std::fmt::Display for TraceLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether an event covers a window of sim-time or marks an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A duration event (Chrome-trace `ph:"X"`).
    Span,
    /// A point event (Chrome-trace `ph:"i"`).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The layer (Chrome-trace process) the event belongs to.
    pub layer: TraceLayer,
    /// The resource row within the layer (e.g. `ch0-cell`, `ssd-core1`).
    pub track: String,
    /// What happened (e.g. `read`, `MREAD`, `parse`, `dma-p2p`).
    pub name: String,
    /// Start of the event in sim-time nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Span or instant.
    pub kind: TraceEventKind,
    /// Optional payload size (DMA bytes, parsed bytes, relocated bytes).
    pub bytes: Option<u64>,
}

impl TraceEvent {
    /// End of the event in sim-time nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// FNV-1a, as a [`std::hash::Hasher`], for the intern table: track/name
/// strings are a few bytes, where SipHash's setup cost dominates.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;

/// A recorded event in interned form: `track`/`name` are string-table ids,
/// so recording allocates nothing in steady state. 40 bytes per event vs
/// two heap strings; resolved to [`TraceEvent`]s only at export time.
#[derive(Debug, Clone, Copy)]
struct CompactEvent {
    layer: TraceLayer,
    kind: TraceEventKind,
    track: u32,
    name: u32,
    start_ns: u64,
    dur_ns: u64,
    bytes: Option<u64>,
}

/// The shared trace buffer: interned events plus the per-tracer string
/// table. The table only grows (ids stay valid across [`Tracer::take`]),
/// and it stays small — tracks and names are drawn from a fixed set of
/// layer resources and verbs.
#[derive(Debug, Default)]
struct TraceBuf {
    events: Vec<CompactEvent>,
    strings: Vec<Arc<str>>,
    ids: std::collections::HashMap<Arc<str>, u32, FnvBuild>,
}

impl TraceBuf {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("string table overflow");
        let owned: Arc<str> = s.into();
        self.strings.push(owned.clone());
        self.ids.insert(owned, id);
        id
    }

    fn materialize(&self, ev: &CompactEvent) -> TraceEvent {
        TraceEvent {
            layer: ev.layer,
            track: self.strings[ev.track as usize].as_ref().to_string(),
            name: self.strings[ev.name as usize].as_ref().to_string(),
            start_ns: ev.start_ns,
            dur_ns: ev.dur_ns,
            kind: ev.kind,
            bytes: ev.bytes,
        }
    }
}

/// A shared handle for recording trace events.
///
/// Cloning is cheap (an `Arc` bump); all clones append to one log. A
/// disabled tracer ([`Tracer::disabled`], also [`Default`]) makes every
/// record call a no-op branch — components can hold one unconditionally.
///
/// Internally events are slab-stored in interned form (see
/// [`CompactEvent`]): the record path performs two string-table lookups
/// and a 40-byte push, no allocation. The owned-`String`
/// [`TraceEvent`]s the public API exposes are materialized lazily by
/// [`take`](Tracer::take)/[`snapshot`](Tracer::snapshot).
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceBuf>>>,
}

impl Tracer {
    /// A tracer that records nothing at (almost) zero cost.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer that records into a fresh shared log.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::default()),
        }
    }

    /// True if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        layer: TraceLayer,
        track: &str,
        name: &str,
        start_ns: u64,
        dur_ns: u64,
        kind: TraceEventKind,
        bytes: Option<u64>,
    ) {
        if let Some(log) = &self.inner {
            let mut buf = log.lock().expect("tracer lock poisoned");
            let track = buf.intern(track);
            let name = buf.intern(name);
            buf.events.push(CompactEvent {
                layer,
                kind,
                track,
                name,
                start_ns,
                dur_ns,
                bytes,
            });
        }
    }

    /// Records a span covering `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end` is before `start` (simulated time never runs
    /// backwards; that indicates a scheduling bug).
    #[inline]
    pub fn span(&self, layer: TraceLayer, track: &str, name: &str, start: SimTime, end: SimTime) {
        if self.inner.is_none() {
            return;
        }
        self.record(
            layer,
            track,
            name,
            start.as_nanos(),
            end.duration_since(start).as_nanos(),
            TraceEventKind::Span,
            None,
        );
    }

    /// Records a span carrying a payload size.
    #[inline]
    pub fn span_bytes(
        &self,
        layer: TraceLayer,
        track: &str,
        name: &str,
        start: SimTime,
        end: SimTime,
        bytes: u64,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.record(
            layer,
            track,
            name,
            start.as_nanos(),
            end.duration_since(start).as_nanos(),
            TraceEventKind::Span,
            Some(bytes),
        );
    }

    /// Records an instant event.
    #[inline]
    pub fn instant(&self, layer: TraceLayer, track: &str, name: &str, at: SimTime) {
        if self.inner.is_none() {
            return;
        }
        self.record(
            layer,
            track,
            name,
            at.as_nanos(),
            0,
            TraceEventKind::Instant,
            None,
        );
    }

    /// Records an instant event carrying a payload size.
    #[inline]
    pub fn instant_bytes(
        &self,
        layer: TraceLayer,
        track: &str,
        name: &str,
        at: SimTime,
        bytes: u64,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.record(
            layer,
            track,
            name,
            at.as_nanos(),
            0,
            TraceEventKind::Instant,
            Some(bytes),
        );
    }

    /// Drains all recorded events into a [`TraceLog`] (empty if disabled).
    /// The string table survives the drain, so later events keep their
    /// interned ids.
    pub fn take(&self) -> TraceLog {
        let events = match &self.inner {
            Some(log) => {
                let mut buf = log.lock().expect("tracer lock poisoned");
                let compact = std::mem::take(&mut buf.events);
                compact.iter().map(|e| buf.materialize(e)).collect()
            }
            None => Vec::new(),
        };
        TraceLog { events }
    }

    /// Number of events currently recorded (zero when disabled). Cheap —
    /// no clone — so callers can bookmark a position in the log.
    pub fn recorded(&self) -> usize {
        match &self.inner {
            Some(log) => log.lock().expect("tracer lock poisoned").events.len(),
            None => 0,
        }
    }

    /// Copies the recorded events into a [`TraceLog`] without draining
    /// them (empty if disabled). Used by telemetry reconstruction, which
    /// must not steal the trace from the exporter.
    pub fn snapshot(&self) -> TraceLog {
        let events = match &self.inner {
            Some(log) => {
                let buf = log.lock().expect("tracer lock poisoned");
                buf.events.iter().map(|e| buf.materialize(e)).collect()
            }
            None => Vec::new(),
        };
        TraceLog { events }
    }
}

/// A completed run's events, ready for export or analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// The events, in recording order.
    pub events: Vec<TraceEvent>,
}

/// Aggregate of one `(layer, name)` event class (used by the diff tool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceAggregate {
    /// Events of this class.
    pub count: u64,
    /// Summed span duration, nanoseconds.
    pub total_ns: u64,
}

impl TraceLog {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The layers that recorded at least one event, in canonical order.
    pub fn layers_present(&self) -> Vec<TraceLayer> {
        TraceLayer::ALL
            .into_iter()
            .filter(|l| self.events.iter().any(|e| e.layer == *l))
            .collect()
    }

    /// The latest event end, nanoseconds (the trace horizon).
    pub fn end_ns(&self) -> u64 {
        self.events
            .iter()
            .map(TraceEvent::end_ns)
            .max()
            .unwrap_or(0)
    }

    /// Aggregates events per `(layer, name)` class.
    pub fn aggregate(&self) -> BTreeMap<(TraceLayer, String), TraceAggregate> {
        let mut out: BTreeMap<(TraceLayer, String), TraceAggregate> = BTreeMap::new();
        for e in &self.events {
            let a = out.entry((e.layer, e.name.clone())).or_default();
            a.count += 1;
            a.total_ns += e.dur_ns;
        }
        out
    }

    /// Aggregates events per `(layer, track, name)` class, so per-track
    /// structure (the `serve`, `cache`, and `telemetry` tracks, per-core
    /// firmware rows, flash channels) survives into the diff table.
    pub fn aggregate_tracks(&self) -> BTreeMap<(TraceLayer, String, String), TraceAggregate> {
        let mut out: BTreeMap<(TraceLayer, String, String), TraceAggregate> = BTreeMap::new();
        for e in &self.events {
            let a = out
                .entry((e.layer, e.track.clone(), e.name.clone()))
                .or_default();
            a.count += 1;
            a.total_ns += e.dur_ns;
        }
        out
    }

    /// Canonical event order for export: by start time, then recording
    /// order (the sort is stable). Determinism of the export follows from
    /// determinism of the simulation.
    fn sorted_events(&self) -> Vec<&TraceEvent> {
        let mut evs: Vec<&TraceEvent> = self.events.iter().collect();
        evs.sort_by_key(|e| e.start_ns);
        evs
    }

    /// Track ids per layer: tracks sorted by name, tid 1-based.
    fn track_ids(&self) -> BTreeMap<(TraceLayer, &str), usize> {
        let mut per_layer: BTreeMap<TraceLayer, Vec<&str>> = BTreeMap::new();
        for e in &self.events {
            let tracks = per_layer.entry(e.layer).or_default();
            if !tracks.contains(&e.track.as_str()) {
                tracks.push(&e.track);
            }
        }
        let mut ids = BTreeMap::new();
        for (layer, mut tracks) in per_layer {
            tracks.sort_unstable();
            for (i, t) in tracks.into_iter().enumerate() {
                ids.insert((layer, t), i + 1);
            }
        }
        ids
    }

    /// Exports Chrome trace-event JSON: one process per layer, one thread
    /// per resource track, `X` events for spans and `i` for instants.
    /// Timestamps are microseconds (the format's unit); the output is
    /// canonical and byte-deterministic for a given event sequence.
    ///
    /// Load the file in [Perfetto](https://ui.perfetto.dev) or
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let ids = self.track_ids();
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n ");
        };
        // Metadata: process names (layers), then thread names (tracks).
        for layer in TraceLayer::ALL {
            if !self.events.iter().any(|e| e.layer == layer) {
                continue;
            }
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                layer.pid(),
                layer.as_str()
            );
        }
        let mut named: Vec<(&TraceLayer, &(TraceLayer, &str), &usize)> = Vec::new();
        for (key, tid) in &ids {
            named.push((&key.0, key, tid));
        }
        for (layer, (_, track), tid) in named {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                layer.pid(),
                tid,
                escape_json(track)
            );
        }
        for e in self.sorted_events() {
            let tid = ids[&(e.layer, e.track.as_str())];
            sep(&mut out);
            let ts = e.start_ns as f64 / 1e3;
            match e.kind {
                TraceEventKind::Span => {
                    let dur = e.dur_ns as f64 / 1e3;
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"{}\"",
                        e.layer.pid(),
                        tid,
                        ts,
                        dur,
                        e.layer.as_str(),
                        escape_json(&e.name)
                    );
                }
                TraceEventKind::Instant => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"cat\":\"{}\",\"name\":\"{}\"",
                        e.layer.pid(),
                        tid,
                        ts,
                        e.layer.as_str(),
                        escape_json(&e.name)
                    );
                }
            }
            // args carry the track (for lossless re-import) and payload.
            let _ = write!(out, ",\"args\":{{\"track\":\"{}\"", escape_json(&e.track));
            if let Some(b) = e.bytes {
                let _ = write!(out, ",\"bytes\":{b}");
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses a trace exported by [`to_chrome_json`](TraceLog::to_chrome_json)
    /// (tolerant of any spec-conforming trace that keeps `cat` a layer
    /// name). Powers the `trace --diff` tool without an external JSON
    /// dependency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn from_chrome_json(text: &str) -> Result<TraceLog, String> {
        let root = json::parse(text)?;
        let events_json = match &root {
            json::Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == "traceEvents")
                .map(|(_, v)| v)
                .ok_or("missing traceEvents array")?,
            json::Value::Array(_) => &root,
            _ => return Err("trace root must be an object or array".into()),
        };
        let json::Value::Array(items) = events_json else {
            return Err("traceEvents must be an array".into());
        };
        let mut events = Vec::new();
        for item in items {
            let json::Value::Object(fields) = item else {
                return Err("trace event must be an object".into());
            };
            let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let ph = match get("ph") {
                Some(json::Value::String(s)) => s.as_str(),
                _ => continue,
            };
            let kind = match ph {
                "X" => TraceEventKind::Span,
                "i" | "I" => TraceEventKind::Instant,
                _ => continue, // metadata and other phases
            };
            let layer = match get("cat") {
                Some(json::Value::String(s)) => {
                    TraceLayer::parse(s).ok_or_else(|| format!("unknown trace layer {s:?}"))?
                }
                _ => return Err("event missing cat".into()),
            };
            let name = match get("name") {
                Some(json::Value::String(s)) => s.clone(),
                _ => return Err("event missing name".into()),
            };
            let ts = match get("ts") {
                Some(json::Value::Number(n)) => *n,
                _ => return Err("event missing ts".into()),
            };
            let dur = match (kind, get("dur")) {
                (TraceEventKind::Span, Some(json::Value::Number(n))) => *n,
                (TraceEventKind::Span, _) => return Err("span missing dur".into()),
                (TraceEventKind::Instant, _) => 0.0,
            };
            let (track, bytes) = match get("args") {
                Some(json::Value::Object(args)) => {
                    let track =
                        args.iter()
                            .find(|(k, _)| k == "track")
                            .and_then(|(_, v)| match v {
                                json::Value::String(s) => Some(s.clone()),
                                _ => None,
                            });
                    let bytes =
                        args.iter()
                            .find(|(k, _)| k == "bytes")
                            .and_then(|(_, v)| match v {
                                json::Value::Number(n) => Some(*n as u64),
                                _ => None,
                            });
                    (track, bytes)
                }
                _ => (None, None),
            };
            events.push(TraceEvent {
                layer,
                track: track.unwrap_or_else(|| "?".into()),
                name,
                start_ns: (ts * 1e3).round() as u64,
                dur_ns: (dur * 1e3).round() as u64,
                kind,
                bytes,
            });
        }
        Ok(TraceLog { events })
    }

    /// Renders the compact per-resource summary: one row per track with
    /// event count, busy time, utilization over the trace horizon, and an
    /// occupancy strip (`█` busy, `▒` partial, `·` idle) — the structured
    /// successor of [`render_gantt`](crate::render_gantt).
    pub fn summary(&self, width: usize) -> String {
        assert!(width > 0, "summary width must be positive");
        let end = self.end_ns().max(1);
        // (layer, track) -> (count, busy, cover)
        let mut rows: BTreeMap<(TraceLayer, &str), (u64, u64, Vec<f64>)> = BTreeMap::new();
        for e in &self.events {
            let row = rows
                .entry((e.layer, &e.track))
                .or_insert_with(|| (0, 0, vec![0.0; width]));
            row.0 += 1;
            row.1 += e.dur_ns;
            let s = e.start_ns as f64 / end as f64 * width as f64;
            let t = e.end_ns() as f64 / end as f64 * width as f64;
            if e.start_ns == e.end_ns() {
                let c = (s.floor() as usize).min(width - 1);
                row.2[c] = row.2[c].max(0.25);
                continue;
            }
            let lo = s.floor() as usize;
            let hi = (t.ceil() as usize).min(width);
            for (c, slot) in row.2.iter_mut().enumerate().take(hi).skip(lo) {
                let overlap = (t.min(c as f64 + 1.0) - s.max(c as f64)).max(0.0);
                *slot += overlap;
            }
        }
        let label_w = rows
            .keys()
            .map(|(l, t)| l.as_str().len() + 1 + t.len())
            .max()
            .unwrap_or(10)
            .max(10);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} events over {}, {} layers",
            self.len(),
            fmt_ns(end),
            self.layers_present().len()
        );
        let _ = writeln!(
            out,
            "{:label_w$}  {:>7}  {:>10}  {:>6}  occupancy",
            "layer/track", "events", "busy", "util%"
        );
        for ((layer, track), (count, busy, cover)) in &rows {
            let strip: String = cover
                .iter()
                .map(|c| {
                    if *c >= 0.75 {
                        '█'
                    } else if *c >= 0.25 {
                        '▒'
                    } else {
                        '·'
                    }
                })
                .collect();
            let label = format!("{}/{}", layer.as_str(), track);
            let _ = writeln!(
                out,
                "{:label_w$}  {:>7}  {:>10}  {:>6.1}  {}",
                label,
                count,
                fmt_ns(*busy),
                *busy as f64 / end as f64 * 100.0,
                strip
            );
        }
        out
    }
}

/// Renders a per-layer/per-track/per-event-class delta table between two
/// traces (the `trace --diff a.json b.json` output). Every track either
/// trace recorded gets its own rows, so a regression confined to one
/// resource (a single flash channel, the `cache` track, the `telemetry`
/// instants) is visible instead of averaged away.
pub fn render_trace_diff(a: &TraceLog, b: &TraceLog) -> String {
    let agg_a = a.aggregate_tracks();
    let agg_b = b.aggregate_tracks();
    let mut keys: Vec<&(TraceLayer, String, String)> = agg_a.keys().chain(agg_b.keys()).collect();
    keys.sort();
    keys.dedup();
    let track_w = keys.iter().map(|k| k.1.len()).max().unwrap_or(5).max(5);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<track_w$} {:<16} {:>9} {:>9} {:>11} {:>11} {:>12} {:>8}",
        "layer", "track", "event", "count a", "count b", "time a", "time b", "delta", "delta%"
    );
    let (mut tot_a, mut tot_b) = (0u64, 0u64);
    for key in keys {
        let a = agg_a.get(key).copied().unwrap_or_default();
        let b = agg_b.get(key).copied().unwrap_or_default();
        tot_a += a.total_ns;
        tot_b += b.total_ns;
        let _ = writeln!(
            out,
            "{:<6} {:<track_w$} {:<16} {:>9} {:>9} {:>11} {:>11} {:>12} {:>8}",
            key.0.as_str(),
            key.1,
            key.2,
            a.count,
            b.count,
            fmt_ns(a.total_ns),
            fmt_ns(b.total_ns),
            fmt_delta_ns(a.total_ns, b.total_ns),
            fmt_delta_pct(a.total_ns, b.total_ns),
        );
    }
    let _ = writeln!(
        out,
        "{:<6} {:<track_w$} {:<16} {:>9} {:>9} {:>11} {:>11} {:>12} {:>8}",
        "TOTAL",
        "",
        "",
        a.len(),
        b.len(),
        fmt_ns(tot_a),
        fmt_ns(tot_b),
        fmt_delta_ns(tot_a, tot_b),
        fmt_delta_pct(tot_a, tot_b),
    );
    out
}

/// Formats nanoseconds with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

fn fmt_delta_ns(a: u64, b: u64) -> String {
    if b >= a {
        format!("+{}", fmt_ns(b - a))
    } else {
        format!("-{}", fmt_ns(a - b))
    }
}

fn fmt_delta_pct(a: u64, b: u64) -> String {
    if a == 0 {
        return if b == 0 { "0.0%".into() } else { "new".into() };
    }
    format!("{:+.1}%", (b as f64 - a as f64) / a as f64 * 100.0)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal JSON parser — just enough to re-read exported traces (and
/// any spec-conforming trace-event file) without a serde dependency,
/// which the offline build environment does not have.
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let s = &b[*pos..];
                    let ch_len = match s[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&s[..ch_len]).expect("valid utf-8"));
                    *pos += ch_len;
                }
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            fields.push((key, parse_value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.span(TraceLayer::Host, "cpu", "parse", at(0), at(10));
        t.instant(TraceLayer::Ftl, "map", "gc", at(5));
        assert!(t.take().is_empty());
    }

    #[test]
    fn clones_share_one_log() {
        let t = Tracer::enabled();
        let u = t.clone();
        t.span(TraceLayer::Host, "cpu", "a", at(0), at(1));
        u.span(TraceLayer::Pcie, "link", "b", at(1), at(2));
        let log = t.take();
        assert_eq!(log.len(), 2);
        assert!(u.take().is_empty(), "take drains the shared log");
    }

    #[test]
    fn layers_present_in_canonical_order() {
        let t = Tracer::enabled();
        t.span(TraceLayer::Pcie, "link", "dma", at(0), at(1));
        t.span(TraceLayer::Host, "cpu", "parse", at(0), at(1));
        let log = t.take();
        assert_eq!(
            log.layers_present(),
            vec![TraceLayer::Host, TraceLayer::Pcie]
        );
        assert_eq!(log.end_ns(), 1);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn backwards_span_panics() {
        let t = Tracer::enabled();
        t.span(TraceLayer::Host, "cpu", "bad", at(10), at(5));
    }

    #[test]
    fn chrome_json_round_trips() {
        let t = Tracer::enabled();
        t.span_bytes(
            TraceLayer::Flash,
            "ch0-cell",
            "read",
            at(100),
            at(600),
            8192,
        );
        t.instant(TraceLayer::Ftl, "map", "gc", at(250));
        t.span(TraceLayer::Ssd, "ssd-core1", "parse", at(600), at(900));
        let log = t.take();
        let json = log.to_chrome_json();
        let back = TraceLog::from_chrome_json(&json).expect("round trip");
        // Round trip preserves the multiset of events (order is canonical).
        assert_eq!(back.len(), log.len());
        assert_eq!(back.aggregate(), log.aggregate());
        let read = &back.events.iter().find(|e| e.name == "read").unwrap();
        assert_eq!(read.bytes, Some(8192));
        assert_eq!(read.start_ns, 100);
        assert_eq!(read.dur_ns, 500);
        assert_eq!(read.track, "ch0-cell");
    }

    #[test]
    fn chrome_json_is_deterministic_and_has_metadata() {
        let build = || {
            let t = Tracer::enabled();
            t.span(TraceLayer::Nvme, "ioq1", "MREAD", at(0), at(50));
            t.span(TraceLayer::Nvme, "ioq1", "MREAD", at(50), at(80));
            t.take().to_chrome_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("\"thread_name\""));
        assert!(a.contains("\"ph\":\"X\""));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(TraceLog::from_chrome_json("not json").is_err());
        assert!(TraceLog::from_chrome_json("{\"traceEvents\":3}").is_err());
        assert!(TraceLog::from_chrome_json("{}").is_err());
        // Trailing garbage is flagged rather than ignored.
        assert!(TraceLog::from_chrome_json("{\"traceEvents\":[]} x").is_err());
    }

    #[test]
    fn parser_accepts_empty_trace() {
        let log = TraceLog::from_chrome_json("{\"traceEvents\":[]}").unwrap();
        assert!(log.is_empty());
        // Bare-array form is also valid per the spec.
        assert!(TraceLog::from_chrome_json("[]").unwrap().is_empty());
    }

    #[test]
    fn aggregate_sums_per_class() {
        let t = Tracer::enabled();
        t.span(TraceLayer::Flash, "ch0-cell", "read", at(0), at(10));
        t.span(TraceLayer::Flash, "ch1-cell", "read", at(0), at(30));
        t.span(TraceLayer::Pcie, "ssd-tx", "dma-host", at(0), at(5));
        let agg = t.take().aggregate();
        let read = agg[&(TraceLayer::Flash, "read".to_string())];
        assert_eq!(read.count, 2);
        assert_eq!(read.total_ns, 40);
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn summary_shows_tracks_and_utilization() {
        let t = Tracer::enabled();
        t.span(TraceLayer::Flash, "ch0-cell", "read", at(0), at(50));
        t.instant(TraceLayer::Ftl, "map", "gc", at(99));
        let s = t.take().summary(20);
        assert!(s.contains("flash/ch0-cell"), "{s}");
        assert!(s.contains("ftl/map"), "{s}");
        assert!(s.contains('█'), "{s}");
        assert!(s.contains('▒'), "instants mark their cell: {s}");
    }

    #[test]
    fn diff_reports_deltas() {
        let t = Tracer::enabled();
        t.span(TraceLayer::Flash, "ch0-cell", "read", at(0), at(100));
        let a = t.take();
        let t = Tracer::enabled();
        t.span(TraceLayer::Flash, "ch0-cell", "read", at(0), at(150));
        t.span(TraceLayer::Pcie, "ssd-tx", "dma-p2p", at(0), at(10));
        let b = t.take();
        let d = render_trace_diff(&a, &b);
        assert!(d.contains("+50.0%"), "{d}");
        assert!(d.contains("dma-p2p"), "{d}");
        assert!(d.contains("new"), "{d}");
        assert!(d.contains("TOTAL"), "{d}");
    }

    #[test]
    fn snapshot_copies_without_draining() {
        let t = Tracer::enabled();
        t.span(TraceLayer::Host, "cpu", "parse", at(0), at(10));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(t.take().len(), 1, "snapshot must not drain the log");
        assert!(Tracer::disabled().snapshot().is_empty());
    }

    #[test]
    fn diff_covers_every_registered_track() {
        // One event per track across the layers serve-time traces use,
        // including the cache track and the telemetry window instants:
        // each must get its own row in the delta table and the summary.
        let tracks = [
            (TraceLayer::Host, "serve", "request"),
            (TraceLayer::Host, "telemetry", "window"),
            (TraceLayer::Ssd, "cache", "hit-dram"),
            (TraceLayer::Ssd, "ssd-core1", "parse"),
            (TraceLayer::Flash, "ch0-cell", "read"),
            (TraceLayer::Nvme, "ioq2", "MREAD"),
        ];
        let t = Tracer::enabled();
        for (layer, track, name) in tracks {
            t.span(layer, track, name, at(0), at(10));
        }
        let log = t.take();
        let diff = render_trace_diff(&log, &log);
        let summary = log.summary(20);
        for (layer, track, _) in tracks {
            assert!(
                diff.contains(track),
                "track {track:?} missing from diff:\n{diff}"
            );
            let row = format!("{}/{}", layer.as_str(), track);
            assert!(
                summary.contains(&row),
                "row {row:?} missing from summary:\n{summary}"
            );
        }
        assert!(diff.contains("track"), "diff must carry a track column");
        // Same-track same-name events on different tracks stay separate.
        let agg = log.aggregate_tracks();
        assert_eq!(agg.len(), tracks.len());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(50_000), "50.00us");
        assert_eq!(fmt_ns(50_000_000), "50.00ms");
        assert_eq!(fmt_ns(50_000_000_000), "50.000s");
    }

    #[test]
    fn escaped_names_round_trip() {
        let t = Tracer::enabled();
        t.span(TraceLayer::Host, "cpu\"0\"", "a\\b", at(0), at(1));
        let json = t.take().to_chrome_json();
        let back = TraceLog::from_chrome_json(&json).unwrap();
        assert_eq!(back.events[0].track, "cpu\"0\"");
        assert_eq!(back.events[0].name, "a\\b");
    }
}
