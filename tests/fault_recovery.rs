//! Fault injection end to end: whatever the plan throws at the system,
//! every run either produces objects bit-identical to a fault-free run or
//! fails cleanly with a typed error — and the same plan always injects the
//! same faults at the same simulated times.

use morpheus::{AppSpec, Mode, RunError, System, SystemParams};
use morpheus_format::{FieldKind, Schema, TextWriter};
use morpheus_simcore::{FaultPlan, TraceEventKind, TraceLayer, Tracer};
use proptest::prelude::*;

fn edge_schema() -> Schema {
    Schema::new(vec![FieldKind::U32, FieldKind::U32])
}

fn edge_text(edges: u32) -> Vec<u8> {
    let mut w = TextWriter::new();
    for i in 0..edges {
        w.write_u64(u64::from(i) * 7 % 997);
        w.sep();
        w.write_u64(u64::from(i) * 13 % 997);
        w.newline();
    }
    w.into_bytes()
}

fn staged_system(edges: u32) -> (System, AppSpec) {
    let mut sys = System::new(SystemParams::paper_testbed());
    sys.create_input_file("edges.txt", &edge_text(edges))
        .unwrap();
    let spec = AppSpec::cpu_app("faulty", "edges.txt", edge_schema(), 2, 50.0);
    (sys, spec)
}

/// A guaranteed MINIT-phase core crash degrades gracefully: the run falls
/// back to host deserialization, produces objects bit-identical to a
/// fault-free conventional run, and both the fault and the fallback are
/// visible in the counters and the trace.
#[test]
fn core_crash_falls_back_to_bit_identical_objects() {
    let (mut clean, spec) = staged_system(400);
    let reference = clean.run(&spec, Mode::Conventional).unwrap();

    let (mut sys, spec) = staged_system(400);
    sys.set_tracer(Tracer::enabled());
    sys.set_fault_plan(FaultPlan::parse("seed=7,crash=1").unwrap());
    let out = sys.run(&spec, Mode::Morpheus).unwrap();

    assert_eq!(out.objects, reference.objects);
    assert_eq!(out.report.checksum, reference.report.checksum);
    assert_eq!(out.report.faults.host_fallbacks, 1);
    assert!(out.report.faults.core_crashes >= 1);
    assert_eq!(
        sys.last_fallback_cause(),
        Some("embedded core crashed during MINIT")
    );

    let log = sys.tracer().take();
    let instant = |name: &str| {
        log.events
            .iter()
            .any(|e| e.kind == TraceEventKind::Instant && e.name == name)
    };
    assert!(instant("core-crash"), "crash must be traced");
    assert!(instant("host-fallback"), "fallback must be traced");
}

/// Guaranteed command loss exhausts the reissue budget on the conventional
/// path (which has nothing to fall back to) as a clean typed failure, with
/// every timeout detection pinned at its closed-form simulated time:
/// `detect_k = (k+1)·W + (2^k - 1)·B` for window `W` and base backoff `B`.
#[test]
fn timeout_exhaustion_is_clean_and_backoff_times_are_exact() {
    let (mut sys, spec) = staged_system(120);
    sys.set_tracer(Tracer::enabled());
    let plan = FaultPlan::parse("timeout=1").unwrap();
    sys.set_fault_plan(plan);

    match sys.run(&spec, Mode::Conventional) {
        Err(RunError::CommandTimeout { attempts }) => {
            assert_eq!(attempts, plan.nvme_max_retries + 1);
        }
        other => panic!("expected CommandTimeout, got {other:?}"),
    }
    assert_eq!(
        sys.fault_counters().nvme_timeouts,
        u64::from(plan.nvme_max_retries) + 1
    );
    assert_eq!(
        sys.fault_counters().nvme_retries,
        u64::from(plan.nvme_max_retries)
    );

    let log = sys.tracer().take();
    let observed: Vec<u64> = log
        .events
        .iter()
        .filter(|e| e.layer == TraceLayer::Nvme && e.name == "nvme-timeout")
        .map(|e| e.start_ns)
        .collect();
    let (w, b) = (plan.nvme_timeout_ns, plan.nvme_backoff_ns);
    let expected: Vec<u64> = (0..=plan.nvme_max_retries)
        .map(|k| u64::from(k + 1) * w + ((1u64 << k) - 1) * b)
        .collect();
    assert_eq!(observed, expected);
}

/// The determinism contract: the same plan on the same input produces the
/// same faults, the same recovery, and field-for-field identical reports,
/// run after run.
#[test]
fn same_plan_is_reproducible_run_to_run() {
    let (mut sys, spec) = staged_system(600);
    sys.set_fault_plan(
        FaultPlan::parse("seed=11,flash-corr=0.2,flash-uncorr=0.01,timeout=0.1,stall=0.2,pcie=0.3")
            .unwrap(),
    );
    let a = sys.run(&spec, Mode::Morpheus).unwrap();
    let b = sys.run(&spec, Mode::Morpheus).unwrap();
    // RunReport has no PartialEq; its Debug form prints every field, so
    // equal strings mean field-for-field equality (faults included).
    assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
    assert_eq!(a.objects, b.objects);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the plan, a run either yields objects bit-identical to the
    /// fault-free run or fails with a clean typed error — never silently
    /// wrong data.
    #[test]
    fn any_fault_plan_preserves_object_integrity(
        seed in any::<u64>(),
        flash_corr in 0.0f64..1.0,
        flash_uncorr in 0.0f64..0.3,
        timeout in 0.0f64..0.4,
        stall in 0.0f64..1.0,
        crash in 0.0f64..1.0,
        pcie in 0.0f64..1.0,
        mode_morpheus in any::<bool>(),
    ) {
        let (mut clean, spec) = staged_system(250);
        let reference = clean.run(&spec, Mode::Conventional).unwrap();

        let mut plan = FaultPlan::none();
        plan.seed = seed;
        plan.flash_correctable = flash_corr;
        plan.flash_uncorrectable = flash_uncorr;
        plan.nvme_timeout = timeout;
        plan.core_stall = stall;
        plan.core_crash = crash;
        plan.pcie_degrade = pcie;

        let (mut sys, spec) = staged_system(250);
        sys.set_fault_plan(plan);
        let mode = if mode_morpheus { Mode::Morpheus } else { Mode::Conventional };
        match sys.run(&spec, mode) {
            Ok(out) => {
                prop_assert_eq!(&out.objects, &reference.objects);
                prop_assert_eq!(out.report.checksum, reference.report.checksum);
            }
            // Clean failure (reissue budget spent, media failure with no
            // fallback left) is acceptable; corruption is not.
            Err(e) => {
                let _ = morpheus_simcore::render_error_chain(&e);
            }
        }
    }
}
