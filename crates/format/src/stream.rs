//! Streaming parsing with chunk-boundary carry.
//!
//! StorageApps never see a whole file: MREAD delivers it in chunks sized by
//! the NVMe transfer limit and the embedded core's D-SRAM (§V). A token can
//! be split across two chunks, so the device-library parse loop keeps the
//! unterminated tail of each chunk and prepends it to the next. This module
//! implements that loop; its output is bit-identical to
//! [`parse_buffer`](crate::schema::parse_buffer) over the concatenated
//! input, which the property tests verify for arbitrary chunkings.

use crate::schema::incomplete_record_error;
use crate::{Column, ParseError, ParseWork, ParsedColumns, Schema, TextScanner};

/// Incremental parser fed one chunk at a time.
///
/// See the [crate example](crate) for usage.
#[derive(Debug, Clone)]
pub struct StreamingParser {
    schema: Schema,
    out: ParsedColumns,
    work: ParseWork,
    carry: Vec<u8>,
    /// Index of the next field within the current (possibly partial) record.
    field_idx: usize,
    /// Total bytes fed so far (for global error offsets).
    total_fed: usize,
    /// Stream offset of `carry[0]`.
    carry_start: usize,
}

impl StreamingParser {
    /// Creates a parser for a schema.
    pub fn new(schema: Schema) -> Self {
        StreamingParser {
            out: ParsedColumns::empty(schema.clone()),
            schema,
            work: ParseWork::default(),
            carry: Vec::new(),
            field_idx: 0,
            total_fed: 0,
            carry_start: 0,
        }
    }

    /// Bytes held over from previous chunks awaiting completion.
    pub fn carry_len(&self) -> usize {
        self.carry.len()
    }

    /// Work performed so far.
    pub fn work(&self) -> ParseWork {
        self.work
    }

    /// Records completed so far.
    pub fn records(&self) -> u64 {
        self.out.records
    }

    /// The columns accumulated so far (only complete records; used by
    /// StorageApps to emit binary objects incrementally).
    pub fn peek(&self) -> &ParsedColumns {
        &self.out
    }

    /// Feeds the next chunk.
    ///
    /// # Errors
    ///
    /// Fails on malformed tokens; offsets are global stream offsets.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), ParseError> {
        let chunk_start = self.total_fed;
        self.total_fed += chunk.len();

        let mut rest = chunk;
        let mut rest_start = chunk_start;
        if !self.carry.is_empty() {
            // Complete the carried token: pull bytes up to and including
            // the first separator into the carry, then parse it whole.
            match chunk.iter().position(|b| crate::scanner::is_separator(*b)) {
                None => {
                    self.carry.extend_from_slice(chunk);
                    return Ok(());
                }
                Some(p) => {
                    self.carry.extend_from_slice(&chunk[..=p]);
                    let carried = std::mem::take(&mut self.carry);
                    self.parse_region(&carried, self.carry_start)?;
                    rest = &chunk[p + 1..];
                    rest_start = chunk_start + p + 1;
                }
            }
        }

        // Parse up to the last separator; the unterminated tail becomes the
        // new carry.
        match rest.iter().rposition(|b| crate::scanner::is_separator(*b)) {
            None => {
                self.carry_start = rest_start;
                self.carry.extend_from_slice(rest);
            }
            Some(q) => {
                self.parse_region(&rest[..=q], rest_start)?;
                self.carry_start = rest_start + q + 1;
                self.carry.extend_from_slice(&rest[q + 1..]);
            }
        }
        Ok(())
    }

    /// Finishes the stream, returning the parsed columns.
    ///
    /// # Errors
    ///
    /// Fails if the stream ended in the middle of a record or the final
    /// token is malformed.
    pub fn finish(mut self) -> Result<ParsedColumns, ParseError> {
        if !self.carry.is_empty() {
            let carried = std::mem::take(&mut self.carry);
            self.parse_region(&carried, self.carry_start)?;
        }
        if self.field_idx != 0 {
            return Err(incomplete_record_error(self.total_fed));
        }
        Ok(self.out)
    }

    /// Finishes and also returns the accumulated work.
    ///
    /// # Errors
    ///
    /// Same as [`finish`](StreamingParser::finish).
    pub fn finish_with_work(self) -> Result<(ParsedColumns, ParseWork), ParseError> {
        let work = self.work;
        let out = self.finish()?;
        Ok((out, work))
    }

    /// Parses a region guaranteed to contain only complete tokens.
    fn parse_region(&mut self, data: &[u8], base: usize) -> Result<(), ParseError> {
        let mut sc = TextScanner::with_base_offset(data, base);
        loop {
            if sc.at_end() {
                break;
            }
            let kind = self.schema.fields()[self.field_idx];
            match (kind.is_float(), &mut self.out.columns[self.field_idx]) {
                (false, Column::Ints(v)) => v.push(sc.parse_i64()?),
                (true, Column::Floats(v)) => v.push(sc.parse_f64()?),
                _ => unreachable!("columns built from the same schema"),
            }
            self.field_idx += 1;
            if self.field_idx == self.schema.fields().len() {
                self.field_idx = 0;
                self.out.records += 1;
            }
        }
        self.work.merge(&sc.work());
        Ok(())
    }
}

/// Convenience: parse a full buffer through the streaming machinery (used
/// by tests comparing against [`parse_buffer`](crate::parse_buffer)).
///
/// # Errors
///
/// Same as [`StreamingParser::feed`] / [`StreamingParser::finish`].
pub fn parse_chunked(
    data: &[u8],
    schema: &Schema,
    chunk_size: usize,
) -> Result<(ParsedColumns, ParseWork), ParseError> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut p = StreamingParser::new(schema.clone());
    for chunk in data.chunks(chunk_size) {
        p.feed(chunk)?;
    }
    p.finish_with_work()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_buffer, FieldKind};

    fn edge_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::U32])
    }

    #[test]
    fn chunked_equals_whole_buffer_for_every_split() {
        let data = b"10 20\n30 40\n500 600\n7 8\n";
        let (whole, whole_work) = parse_buffer(data, &edge_schema()).unwrap();
        for chunk in 1..data.len() {
            let (streamed, work) = parse_chunked(data, &edge_schema(), chunk).unwrap();
            assert_eq!(streamed, whole, "chunk size {chunk}");
            assert_eq!(work.int_tokens, whole_work.int_tokens);
            assert_eq!(streamed.checksum(), whole.checksum());
        }
    }

    #[test]
    fn token_split_across_three_chunks() {
        let mut p = StreamingParser::new(edge_schema());
        p.feed(b"123").unwrap();
        p.feed(b"45").unwrap();
        p.feed(b"6 7\n").unwrap();
        let out = p.finish().unwrap();
        assert_eq!(out.columns[0].as_ints().unwrap(), &[123456]);
        assert_eq!(out.columns[1].as_ints().unwrap(), &[7]);
    }

    #[test]
    fn unterminated_final_token_is_parsed_at_finish() {
        let mut p = StreamingParser::new(edge_schema());
        p.feed(b"1 2\n3 4").unwrap();
        assert_eq!(p.carry_len(), 1);
        let out = p.finish().unwrap();
        assert_eq!(out.records, 2);
        assert_eq!(out.columns[1].as_ints().unwrap(), &[2, 4]);
    }

    #[test]
    fn mid_record_eof_errors() {
        let mut p = StreamingParser::new(edge_schema());
        p.feed(b"1 2\n3").unwrap();
        assert!(p.finish().is_err());
    }

    #[test]
    fn malformed_token_reports_global_offset() {
        let mut p = StreamingParser::new(edge_schema());
        p.feed(b"1 2\n").unwrap();
        let err = p.feed(b"3 x\n").unwrap_err();
        assert_eq!(err.offset, 6);
    }

    #[test]
    fn float_schema_streams() {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::F64]);
        let data = b"1 0.5\n2 1.5\n3 -2.25\n";
        let (whole, _) = parse_buffer(data, &schema).unwrap();
        for chunk in 1..8 {
            let (streamed, _) = parse_chunked(data, &schema, chunk).unwrap();
            assert_eq!(streamed.checksum(), whole.checksum());
        }
    }

    #[test]
    fn empty_feeds_are_harmless() {
        let mut p = StreamingParser::new(edge_schema());
        p.feed(b"").unwrap();
        p.feed(b"1 2\n").unwrap();
        p.feed(b"").unwrap();
        assert_eq!(p.finish().unwrap().records, 1);
    }
}
