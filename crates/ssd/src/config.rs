//! SSD controller configuration.

use morpheus_ftl::FtlConfig;

/// Parameters of the SSD controller.
///
/// Defaults follow the paper's prototype: a Microsemi-class controller with
/// multiple general-purpose embedded cores (no FPU), 2 GB of DDR3 DRAM for
/// StorageApp data and FTL mappings, and a PCIe 3.0 x4 front end.
#[derive(Debug, Clone, Copy)]
pub struct SsdConfig {
    /// Number of general-purpose embedded cores available to firmware /
    /// StorageApps.
    pub embedded_cores: u32,
    /// Embedded core clock, Hz.
    pub core_clock_hz: f64,
    /// Instruction SRAM per core (caps StorageApp code size).
    pub isram_bytes: u32,
    /// Data SRAM per core (caps a StorageApp's working set; larger sets
    /// must spill through `ms_memcpy`, §V-A1).
    pub dsram_bytes: u32,
    /// Controller DRAM capacity.
    pub dram_bytes: u64,
    /// Firmware instructions to dispatch one NVMe command.
    pub command_dispatch_instructions: f64,
    /// FTL configuration.
    pub ftl: FtlConfig,
}

impl SsdConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(self.embedded_cores > 0, "need at least one embedded core");
        assert!(self.core_clock_hz > 0.0, "core clock must be positive");
        assert!(self.dsram_bytes > 0, "d-sram must be non-empty");
        self.ftl.validate();
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            embedded_cores: 4,
            core_clock_hz: 800e6,
            isram_bytes: 128 * 1024,
            dsram_bytes: 256 * 1024,
            dram_bytes: 2 << 30,
            command_dispatch_instructions: 3_000.0,
            ftl: FtlConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SsdConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "embedded core")]
    fn zero_cores_rejected() {
        SsdConfig {
            embedded_cores: 0,
            ..SsdConfig::default()
        }
        .validate();
    }
}
