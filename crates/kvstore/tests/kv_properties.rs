//! Property tests: the flash-backed KV table must behave exactly like a
//! `HashMap<u64, Vec<u8>>` under arbitrary put/overwrite/delete/get mixes,
//! and the in-storage scan must always match the host reference scan.

use morpheus::DeviceCtx;
use morpheus::StorageApp;
use morpheus_flash::{FlashGeometry, FlashTiming};
use morpheus_kvstore::{decode_pairs, KvConfig, KvError, KvScanApp, KvStore};
use morpheus_ssd::{Ssd, SsdConfig};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
    Get(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..500, proptest::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(k, v)| Op::Put(k, v)),
        1 => (0u64..500).prop_map(Op::Delete),
        2 => (0u64..500).prop_map(Op::Get),
    ]
}

fn fresh() -> (Ssd, KvStore) {
    let mut ssd = Ssd::new(
        SsdConfig::default(),
        FlashGeometry::small(),
        FlashTiming::default(),
    );
    let kv = KvStore::format(&mut ssd, 0, KvConfig::default()).unwrap();
    (ssd, kv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kv_matches_hashmap(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let (mut ssd, kv) = fresh();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => match kv.put(&mut ssd, k, &v) {
                    Ok(()) => {
                        model.insert(k, v);
                    }
                    Err(KvError::TableFull(_)) => {
                        // A full table must still serve what it holds.
                    }
                    Err(e) => panic!("unexpected error {e}"),
                },
                Op::Delete(k) => {
                    let existed = kv.delete(&mut ssd, k).unwrap();
                    let model_existed = model.remove(&k).is_some();
                    prop_assert_eq!(existed, model_existed);
                }
                Op::Get(k) => {
                    prop_assert_eq!(kv.get(&mut ssd, k).unwrap(), model.get(&k).cloned());
                }
            }
        }
        for (k, v) in &model {
            let got = kv.get(&mut ssd, *k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }

    #[test]
    fn device_scan_equals_host_scan(
        keys in proptest::collection::hash_set(0u64..2_000, 1..120),
        range in (0u64..2_000, 0u64..2_000),
        chunk in 100usize..5_000,
    ) {
        let (mut ssd, kv) = fresh();
        for k in &keys {
            kv.put(&mut ssd, *k, &k.to_be_bytes()).unwrap();
        }
        let (lo, hi) = (range.0.min(range.1), range.0.max(range.1));
        let want = kv.scan_range_host(&mut ssd, lo, hi).unwrap();

        let (slba, blocks) = kv.region();
        let raw = ssd.read_range_untimed(slba, blocks).unwrap();
        let mut app = KvScanApp::new(kv.config().bucket_bytes, lo, hi);
        let mut ctx = DeviceCtx::new(256 * 1024);
        for c in raw.chunks(chunk) {
            app.on_chunk(&mut ctx, c).unwrap();
        }
        let matched = app.on_finish(&mut ctx).unwrap() as usize;
        let got = decode_pairs(&ctx.take_output());
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(matched, want.len());
    }
}
