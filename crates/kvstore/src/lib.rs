//! Flash-backed key-value store with in-storage scan offload.
//!
//! Section I of the paper lists "emitting key-value pairs from \[a\]
//! flash-based key-value store" among the interactions the Morpheus model
//! generalizes to. This crate provides that substrate and the offload:
//!
//! * [`KvStore`] — a hash-bucketed KV table laid out over the SSD's
//!   logical block space (open addressing with bucket-granular linear
//!   probing), with `put`/`get`/`delete` and a host-side reference scan.
//! * [`KvScanApp`] — a [`StorageApp`](morpheus::StorageApp) that scans the
//!   bucket region *inside the drive* and emits only the pairs whose key
//!   falls in a requested range, so cold buckets never cross the
//!   interconnect.
//!
//! # Example
//!
//! ```
//! use morpheus_flash::{FlashGeometry, FlashTiming};
//! use morpheus_kvstore::{KvConfig, KvStore};
//! use morpheus_ssd::{Ssd, SsdConfig};
//!
//! let mut ssd = Ssd::new(SsdConfig::default(), FlashGeometry::small(), FlashTiming::default());
//! let kv = KvStore::format(&mut ssd, 0, KvConfig::default()).unwrap();
//! kv.put(&mut ssd, 42, b"morpheus").unwrap();
//! assert_eq!(kv.get(&mut ssd, 42).unwrap().as_deref(), Some(&b"morpheus"[..]));
//! ```

#![warn(missing_docs)]

mod offload;
mod scan_app;
mod store;

pub use offload::{scan_conventional, scan_morpheus, ScanOutcome, ScanReport};
pub use scan_app::{synth_pairs, KvScanApp};
pub use store::{KvConfig, KvError, KvStore};

/// Encodes one emitted match: little-endian key, value length, value.
pub(crate) fn encode_pair(out: &mut Vec<u8>, key: u64, value: &[u8]) {
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(value.len() as u16).to_le_bytes());
    out.extend_from_slice(value);
}

/// Decodes a stream of emitted matches (the host-side inverse).
///
/// # Panics
///
/// Panics on a truncated stream; emitters always produce whole pairs.
pub fn decode_pairs(mut bytes: &[u8]) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        assert!(bytes.len() >= 10, "truncated pair header");
        let key = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let vlen = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes")) as usize;
        assert!(bytes.len() >= 10 + vlen, "truncated pair value");
        out.push((key, bytes[10..10 + vlen].to_vec()));
        bytes = &bytes[10 + vlen..];
    }
    out
}
