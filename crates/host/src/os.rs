//! Operating-system overhead model for the conventional read path.
//!
//! Profiling in §II shows the conventional deserialization path spends most
//! of its CPU time *around* the actual string conversion: `read()` syscalls,
//! file locking, POSIX guarantees, page-cache copies — plus a context-switch
//! storm because every blocking read and page fault enters the kernel. The
//! Morpheus path skips all of it ("StorageApp is not affected by the system
//! overheads of running applications on the host CPU", §III).
//!
//! [`OsModel`] prices that machinery: given a number of bytes pulled through
//! buffered reads it reports kernel instructions, syscall count, context
//! switches, and page faults, and accumulates totals for the context-switch
//! figures (Fig. 10).

use crate::{CodeClass, Cpu};
use morpheus_simcore::SimDuration;

/// Cost parameters of the conventional I/O path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsParams {
    /// Bytes returned per `read()` call (page-cache readahead window).
    pub read_window_bytes: u64,
    /// Kernel instructions per `read()` call: syscall entry/exit, VFS
    /// dispatch, file locking, POSIX bookkeeping.
    pub read_syscall_instructions: f64,
    /// Kernel instructions per byte copied from page cache to the user
    /// buffer.
    pub copy_per_byte_instructions: f64,
    /// Direct + indirect (cache/TLB pollution) instructions per context
    /// switch.
    pub context_switch_instructions: f64,
    /// Context switches per blocking `read()` (1.0 = every read blocks).
    pub switches_per_read: f64,
    /// Page faults per megabyte of newly touched buffer memory.
    pub faults_per_mb: f64,
    /// Kernel instructions per page fault.
    pub fault_instructions: f64,
}

impl Default for OsParams {
    fn default() -> Self {
        OsParams {
            read_window_bytes: 64 * 1024,
            read_syscall_instructions: 18_000.0,
            copy_per_byte_instructions: 0.35,
            context_switch_instructions: 24_000.0,
            switches_per_read: 1.0,
            faults_per_mb: 16.0,
            fault_instructions: 9_000.0,
        }
    }
}

/// Cost of a batch of OS work, before conversion to time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OsCost {
    /// Kernel-mode instructions to execute (at [`CodeClass::OsKernel`] IPC).
    pub instructions: f64,
    /// `read()` calls issued.
    pub syscalls: u64,
    /// Context switches incurred.
    pub context_switches: u64,
    /// Page faults incurred.
    pub page_faults: u64,
}

/// Running totals of OS activity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OsAccounting {
    /// Total syscalls.
    pub syscalls: u64,
    /// Total context switches.
    pub context_switches: u64,
    /// Total page faults.
    pub page_faults: u64,
}

/// The OS overhead model with accumulated accounting.
#[derive(Debug, Clone)]
pub struct OsModel {
    params: OsParams,
    acct: OsAccounting,
}

impl OsModel {
    /// Creates a model with the given parameters.
    pub fn new(params: OsParams) -> Self {
        OsModel {
            params,
            acct: OsAccounting::default(),
        }
    }

    /// The model's parameters.
    pub fn params(&self) -> &OsParams {
        &self.params
    }

    /// Prices pulling `bytes` through buffered `read()` calls into a fresh
    /// user buffer, and accumulates the accounting.
    pub fn buffered_read(&mut self, bytes: u64) -> OsCost {
        if bytes == 0 {
            return OsCost::default();
        }
        let p = &self.params;
        let syscalls = bytes.div_ceil(p.read_window_bytes);
        let switches = (syscalls as f64 * p.switches_per_read).round() as u64;
        let faults = ((bytes as f64 / (1 << 20) as f64) * p.faults_per_mb).round() as u64;
        let instructions = syscalls as f64 * p.read_syscall_instructions
            + bytes as f64 * p.copy_per_byte_instructions
            + switches as f64 * p.context_switch_instructions
            + faults as f64 * p.fault_instructions;
        self.acct.syscalls += syscalls;
        self.acct.context_switches += switches;
        self.acct.page_faults += faults;
        OsCost {
            instructions,
            syscalls,
            context_switches: switches,
            page_faults: faults,
        }
    }

    /// Prices a single interrupt-driven command completion (the Morpheus
    /// path: one wakeup per MREAD chunk instead of one per 64 KiB read).
    pub fn command_completion(&mut self) -> OsCost {
        let p = &self.params;
        self.acct.syscalls += 1;
        self.acct.context_switches += 1;
        OsCost {
            instructions: p.read_syscall_instructions + p.context_switch_instructions,
            syscalls: 1,
            context_switches: 1,
            page_faults: 0,
        }
    }

    /// Converts a cost to CPU time on the given CPU.
    pub fn time_for(&self, cost: &OsCost, cpu: &Cpu) -> SimDuration {
        cpu.duration(cost.instructions, CodeClass::OsKernel)
    }

    /// Accumulated totals.
    pub fn accounting(&self) -> OsAccounting {
        self.acct
    }

    /// Clears the accounting.
    pub fn reset(&mut self) {
        self.acct = OsAccounting::default();
    }
}

impl Default for OsModel {
    fn default() -> Self {
        Self::new(OsParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuSpec;

    #[test]
    fn read_costs_scale_with_bytes() {
        let mut os = OsModel::default();
        let small = os.buffered_read(64 * 1024);
        let large = os.buffered_read(64 * 1024 * 100);
        assert_eq!(small.syscalls, 1);
        assert_eq!(large.syscalls, 100);
        assert!(large.instructions > small.instructions * 50.0);
    }

    #[test]
    fn zero_read_is_free() {
        let mut os = OsModel::default();
        let c = os.buffered_read(0);
        assert_eq!(c, OsCost::default());
    }

    #[test]
    fn partial_window_rounds_up() {
        let mut os = OsModel::default();
        assert_eq!(os.buffered_read(1).syscalls, 1);
        assert_eq!(os.buffered_read(64 * 1024 + 1).syscalls, 2);
    }

    #[test]
    fn morpheus_completion_is_far_cheaper_than_reads() {
        let mut os = OsModel::default();
        // 32 MiB chunk: conventional needs 512 reads, Morpheus one wakeup.
        let conventional = os.buffered_read(32 << 20);
        let morpheus = os.command_completion();
        assert!(conventional.context_switches > 100 * morpheus.context_switches);
        assert!(conventional.instructions > 100.0 * morpheus.instructions);
    }

    #[test]
    fn accounting_accumulates_and_resets() {
        let mut os = OsModel::default();
        os.buffered_read(1 << 20);
        os.command_completion();
        let a = os.accounting();
        assert_eq!(a.syscalls, 16 + 1);
        assert!(a.context_switches >= 17);
        os.reset();
        assert_eq!(os.accounting(), OsAccounting::default());
    }

    #[test]
    fn time_conversion_uses_os_ipc() {
        let os = OsModel::default();
        let cpu = Cpu::new(CpuSpec::xeon_quad());
        let cost = OsCost {
            instructions: 2.5e9,
            ..OsCost::default()
        };
        // 2.5e9 instructions at IPC 1.0 and 2.5 GHz = 1 second.
        assert_eq!(os.time_for(&cost, &cpu).as_secs_f64(), 1.0);
    }

    #[test]
    fn page_faults_grow_with_buffer_size() {
        let mut os = OsModel::default();
        let c = os.buffered_read(10 << 20);
        assert_eq!(c.page_faults, 160);
    }
}
