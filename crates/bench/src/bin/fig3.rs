//! Figure 3: effective bandwidth of conventional deserialization across
//! storage devices and CPU frequencies.
//!
//! Paper claims: object deserialization is **CPU-bound** — a RAM drive is
//! essentially no better than the NVMe SSD; the HDD trails; underclocking
//! the CPU from 2.5 GHz to 1.2 GHz degrades all devices about equally, so
//! the device differences stay marginal.

use morpheus::Mode;
use morpheus::StorageKind;
use morpheus_bench::{mean, print_table, Harness};
use morpheus_workloads::{run_benchmark, suite};

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 3: effective deserialization bandwidth (MB/s of objects per I/O thread, scale 1/{})\n",
        h.scale
    );
    let configs = [
        ("nvme@2.5GHz", StorageKind::NvmeSsd, 2.5e9),
        ("ram@2.5GHz", StorageKind::RamDrive, 2.5e9),
        ("hdd@2.5GHz", StorageKind::Hdd, 2.5e9),
        ("nvme@1.2GHz", StorageKind::NvmeSsd, 1.2e9),
        ("ram@1.2GHz", StorageKind::RamDrive, 1.2e9),
        ("hdd@1.2GHz", StorageKind::Hdd, 1.2e9),
    ];
    let benches = suite();
    // One suite-parallel pass; each benchmark runs its six device/clock
    // configs on a private fresh system, so fan-out changes nothing.
    let bandwidths: Vec<Vec<f64>> = h.run_suite_parallel(&benches, |bench| {
        configs
            .iter()
            .map(|(_, storage, freq)| {
                let mut sys = h.app_system_with(bench, *storage, Some(*freq));
                let out = run_benchmark(&mut sys, bench, Mode::Conventional).expect("run");
                out.report.effective_bandwidth_mbs
            })
            .collect()
    });
    let mut rows = Vec::new();
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for (bench, bws) in benches.iter().zip(&bandwidths) {
        let mut row = vec![bench.name.to_string()];
        for (i, bw) in bws.iter().enumerate() {
            row.push(format!("{bw:.1}"));
            per_config[i].push(*bw);
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("app")
        .chain(configs.iter().map(|(n, _, _)| *n))
        .collect();
    print_table(&headers, &rows);
    println!();
    let mut avgs: Vec<(String, f64)> = Vec::new();
    for (i, (name, _, _)) in configs.iter().enumerate() {
        avgs.push((name.to_string(), mean(&per_config[i])));
    }
    for (name, avg) in &avgs {
        println!("average {name}: {avg:.1} MB/s");
    }
    let nvme_fast = avgs[0].1;
    let ram_fast = avgs[1].1;
    let hdd_fast = avgs[2].1;
    let nvme_slow = avgs[3].1;
    println!();
    println!(
        "ram/nvme at 2.5GHz: {:.2} (paper: ~1.0, RAM no better than NVMe)",
        ram_fast / nvme_fast
    );
    println!(
        "nvme/hdd at 2.5GHz: {:.2} (paper: NVMe ahead of HDD)",
        nvme_fast / hdd_fast
    );
    println!(
        "nvme 2.5GHz vs 1.2GHz: {:.2} (paper: large degradation when underclocked => CPU-bound)",
        nvme_fast / nvme_slow
    );
}
