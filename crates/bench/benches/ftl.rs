//! Criterion: FTL operation throughput (writes, overwrites under GC,
//! reads) — the substrate the Morpheus-SSD stands on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use morpheus_flash::{FlashArray, FlashGeometry, FlashTiming};
use morpheus_ftl::{Ftl, FtlConfig, Lpn};
use std::hint::black_box;

fn fresh_ftl() -> Ftl {
    Ftl::new(
        FlashArray::new(FlashGeometry::small(), FlashTiming::default()),
        FtlConfig::default(),
    )
}

fn bench_ftl(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftl");

    g.bench_function("sequential_fill", |b| {
        b.iter_batched(
            fresh_ftl,
            |mut ftl| {
                let cap = ftl.capacity_pages();
                for l in 0..cap {
                    ftl.write(Lpn(l), &[l as u8; 64]).unwrap();
                }
                black_box(ftl.stats())
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("overwrite_storm_with_gc", |b| {
        b.iter_batched(
            fresh_ftl,
            |mut ftl| {
                let cap = ftl.capacity_pages();
                for round in 0u8..4 {
                    for l in 0..cap {
                        ftl.write(Lpn(l), &[round; 64]).unwrap();
                    }
                }
                assert!(ftl.stats().gc_runs > 0);
                black_box(ftl.stats().write_amplification())
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("random_reads", |b| {
        let mut ftl = fresh_ftl();
        let cap = ftl.capacity_pages();
        for l in 0..cap {
            ftl.write(Lpn(l), &[l as u8; 64]).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 1103515245 + 12345) % cap;
            black_box(ftl.read(Lpn(i)).unwrap().data)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_ftl);
criterion_main!(benches);
