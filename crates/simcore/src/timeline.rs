//! FIFO resource timelines and bandwidth helpers.

use crate::{SimDuration, SimTime};

/// A data rate used to convert byte counts into service time.
///
/// # Example
///
/// ```
/// use morpheus_simcore::Bandwidth;
///
/// let bw = Bandwidth::from_gb_per_s(1.0);
/// assert_eq!(bw.duration_for(1_000_000_000).as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn from_bytes_per_s(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        Bandwidth { bytes_per_sec }
    }

    /// Creates a bandwidth from megabytes (1e6 bytes) per second.
    pub fn from_mb_per_s(mb: f64) -> Self {
        Self::from_bytes_per_s(mb * 1e6)
    }

    /// Creates a bandwidth from gigabytes (1e9 bytes) per second.
    pub fn from_gb_per_s(gb: f64) -> Self {
        Self::from_bytes_per_s(gb * 1e9)
    }

    /// The rate in bytes per second.
    pub fn bytes_per_s(self) -> f64 {
        self.bytes_per_sec
    }

    /// The rate in megabytes per second.
    pub fn mb_per_s(self) -> f64 {
        self.bytes_per_sec / 1e6
    }

    /// Time needed to move `bytes` at this rate.
    pub fn duration_for(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Scales the bandwidth by a factor (e.g. protocol efficiency).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(self, factor: f64) -> Bandwidth {
        Self::from_bytes_per_s(self.bytes_per_sec * factor)
    }
}

/// A granted occupation of one unit of a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// When service began.
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
    /// Which unit of the resource served the request.
    pub unit: usize,
}

impl Interval {
    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// A hardware resource that serves requests in FIFO order.
///
/// A timeline has one or more interchangeable *units* (e.g. four embedded
/// cores, eight flash channels treated as a pool). Each [`acquire`] request
/// is assigned to the unit that frees up earliest; the request starts no
/// earlier than its `ready` time and no earlier than the unit is free.
///
/// The timeline records total busy time per unit, the number of grants, and
/// (optionally) every interval for trace dumps.
///
/// [`acquire`]: Timeline::acquire
#[derive(Debug, Clone)]
pub struct Timeline {
    name: String,
    next_free: Vec<SimTime>,
    /// Earliest-free-unit index: one `(free_at, unit)` entry per unit,
    /// kept in lock-step with `next_free` (each grant pops the minimum and
    /// pushes the unit back with its new free time). Ordered by
    /// `(free_at, unit)`, so ties go to the lowest unit index — the same
    /// grant order the linear minimum scan produced. Empty (unused) for
    /// single-unit timelines, which short-circuit to unit 0.
    free_heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>,
    busy: SimDuration,
    grants: u64,
    record: bool,
    intervals: Vec<Interval>,
}

impl Timeline {
    /// Creates a resource with `units` interchangeable service units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn new(name: impl Into<String>, units: usize) -> Self {
        assert!(units > 0, "a timeline needs at least one unit");
        Timeline {
            name: name.into(),
            next_free: vec![SimTime::ZERO; units],
            free_heap: Self::fresh_heap(units),
            busy: SimDuration::ZERO,
            grants: 0,
            record: false,
            intervals: Vec::new(),
        }
    }

    fn fresh_heap(
        units: usize,
    ) -> std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>> {
        if units == 1 {
            return std::collections::BinaryHeap::new();
        }
        (0..units)
            .map(|i| std::cmp::Reverse((SimTime::ZERO, i)))
            .collect()
    }

    /// Enables interval recording for trace dumps (off by default).
    pub fn with_recording(mut self) -> Self {
        self.record = true;
        self
    }

    /// The resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of service units.
    pub fn units(&self) -> usize {
        self.next_free.len()
    }

    /// True if interval recording is enabled.
    pub fn is_recording(&self) -> bool {
        self.record
    }

    /// Requests `service` time on the earliest-free unit, starting no
    /// earlier than `ready`. Zero-length requests are granted instantly at
    /// `ready` without occupying a unit (they count neither as busy time
    /// nor as a grant, but are still recorded for trace dumps).
    pub fn acquire(&mut self, ready: SimTime, service: SimDuration) -> Interval {
        if service.is_zero() {
            let iv = Interval {
                start: ready,
                end: ready,
                unit: 0,
            };
            if self.record {
                self.intervals.push(iv);
            }
            return iv;
        }
        let unit = if self.next_free.len() == 1 {
            0
        } else {
            let std::cmp::Reverse((free_at, unit)) = self
                .free_heap
                .pop()
                .expect("timeline has at least one unit");
            debug_assert_eq!(free_at, self.next_free[unit], "free-heap out of sync");
            unit
        };
        let start = ready.max(self.next_free[unit]);
        let end = start + service;
        self.next_free[unit] = end;
        if self.next_free.len() > 1 {
            self.free_heap.push(std::cmp::Reverse((end, unit)));
        }
        self.busy += service;
        self.grants += 1;
        let iv = Interval { start, end, unit };
        if self.record {
            self.intervals.push(iv);
        }
        iv
    }

    /// Requests a transfer of `bytes` at rate `bw`.
    pub fn acquire_bytes(&mut self, ready: SimTime, bytes: u64, bw: Bandwidth) -> Interval {
        self.acquire(ready, bw.duration_for(bytes))
    }

    /// Total busy time summed over all units.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Number of grants served.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// The latest time at which any unit frees up.
    pub fn horizon(&self) -> SimTime {
        self.next_free
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Utilization of the resource over `[0, end]` (1.0 = all units busy).
    ///
    /// Returns 0.0 for an empty window.
    pub fn utilization(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / (end.as_secs_f64() * self.units() as f64)
    }

    /// Recorded intervals (empty unless [`with_recording`] was used).
    ///
    /// [`with_recording`]: Timeline::with_recording
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Clears all state back to time zero, keeping configuration.
    pub fn reset(&mut self) {
        self.next_free.fill(SimTime::ZERO);
        self.free_heap = Self::fresh_heap(self.next_free.len());
        self.busy = SimDuration::ZERO;
        self.grants = 0;
        self.intervals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn single_unit_serializes_requests() {
        let mut t = Timeline::new("r", 1);
        let a = t.acquire(at(0), ns(10));
        let b = t.acquire(at(0), ns(5));
        assert_eq!(a.start, at(0));
        assert_eq!(a.end, at(10));
        assert_eq!(b.start, at(10));
        assert_eq!(b.end, at(15));
        assert_eq!(t.busy(), ns(15));
        assert_eq!(t.grants(), 2);
    }

    #[test]
    fn multi_unit_runs_in_parallel() {
        let mut t = Timeline::new("r", 2);
        let a = t.acquire(at(0), ns(10));
        let b = t.acquire(at(0), ns(10));
        let c = t.acquire(at(0), ns(10));
        assert_eq!(a.start, at(0));
        assert_eq!(b.start, at(0));
        assert_ne!(a.unit, b.unit);
        assert_eq!(c.start, at(10));
        assert_eq!(t.horizon(), at(20));
    }

    #[test]
    fn tied_units_grant_in_index_order() {
        // The heap must reproduce the linear scan's tie-break: among units
        // freeing at the same time, the lowest index wins.
        let mut t = Timeline::new("r", 4);
        for round in 0..3 {
            for want in 0..4 {
                let iv = t.acquire(at(0), ns(10));
                assert_eq!(iv.unit, want, "round {round}");
                assert_eq!(iv.start, at(round * 10));
            }
        }
    }

    #[test]
    fn ready_time_is_respected() {
        let mut t = Timeline::new("r", 1);
        let a = t.acquire(at(100), ns(10));
        assert_eq!(a.start, at(100));
        let b = t.acquire(at(0), ns(10));
        assert_eq!(b.start, at(110)); // FIFO: queued behind a
    }

    #[test]
    fn zero_service_is_instant_and_free() {
        let mut t = Timeline::new("r", 1);
        t.acquire(at(0), ns(10));
        let z = t.acquire(at(3), SimDuration::ZERO);
        assert_eq!(z.start, at(3));
        assert_eq!(z.end, at(3));
        assert_eq!(t.grants(), 1);
        assert_eq!(t.busy(), ns(10));
    }

    #[test]
    fn zero_service_is_recorded_when_recording() {
        let mut t = Timeline::new("r", 1).with_recording();
        assert!(t.is_recording());
        t.acquire(at(5), SimDuration::ZERO);
        assert_eq!(
            t.intervals(),
            [Interval {
                start: at(5),
                end: at(5),
                unit: 0
            }]
        );
        assert_eq!(t.grants(), 0, "instant grants stay free");
    }

    #[test]
    fn bandwidth_converts_bytes() {
        let bw = Bandwidth::from_mb_per_s(100.0);
        assert_eq!(bw.duration_for(100_000_000).as_secs_f64(), 1.0);
        assert!((bw.scaled(2.0).mb_per_s() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_counts_all_units() {
        let mut t = Timeline::new("r", 2);
        t.acquire(at(0), ns(10));
        assert!((t.utilization(at(10)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn recording_captures_intervals() {
        let mut t = Timeline::new("r", 1).with_recording();
        t.acquire(at(0), ns(4));
        t.acquire(at(0), ns(6));
        assert_eq!(t.intervals().len(), 2);
        assert_eq!(t.intervals()[1].start, at(4));
    }

    #[test]
    fn reset_restores_time_zero() {
        let mut t = Timeline::new("r", 1);
        t.acquire(at(0), ns(10));
        t.reset();
        assert_eq!(t.busy(), SimDuration::ZERO);
        assert_eq!(t.acquire(at(0), ns(1)).start, at(0));
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_rejected() {
        let _ = Timeline::new("r", 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite")]
    fn non_positive_bandwidth_rejected() {
        let _ = Bandwidth::from_bytes_per_s(0.0);
    }
}
