//! Physics-sanity checks on the platform model: knobs must move the
//! measurements in the direction the real hardware would.

use morpheus::{AppSpec, Mode, StorageKind, System, SystemParams};
use morpheus_format::{FieldKind, Schema, TextWriter};

fn edge_schema() -> Schema {
    Schema::new(vec![FieldKind::U32, FieldKind::U32])
}

fn input(n: u64) -> Vec<u8> {
    let mut w = TextWriter::new();
    for i in 0..n {
        w.write_u64(i * 11 % 90_000);
        w.sep();
        w.write_u64(i * 17 % 90_000);
        w.newline();
    }
    w.into_bytes()
}

fn sys_with(params: SystemParams, data: &[u8]) -> (System, AppSpec) {
    let mut sys = System::new(params);
    sys.create_input_file("in.txt", data).unwrap();
    (
        sys,
        AppSpec::cpu_app("sanity", "in.txt", edge_schema(), 4, 200.0),
    )
}

#[test]
fn higher_cpu_frequency_speeds_conventional_deserialization() {
    let data = input(100_000);
    let (mut sys, spec) = sys_with(SystemParams::paper_testbed(), &data);
    let fast = sys.run(&spec, Mode::Conventional).unwrap().report;
    sys.cpu.set_frequency(1.2e9);
    let slow = sys.run(&spec, Mode::Conventional).unwrap().report;
    assert!(slow.phases.deserialization_s > fast.phases.deserialization_s * 1.8);
    // Faster clock draws more power while it runs.
    assert!(fast.deser_power_watts > slow.deser_power_watts);
    // The in-SSD path must not care about the host clock (beyond wakeups).
    sys.cpu.set_frequency(2.5e9);
    let m_fast = sys.run(&spec, Mode::Morpheus).unwrap().report;
    sys.cpu.set_frequency(1.2e9);
    let m_slow = sys.run(&spec, Mode::Morpheus).unwrap().report;
    let drift = m_slow.phases.deserialization_s / m_fast.phases.deserialization_s;
    assert!(
        drift < 1.1,
        "morpheus deser drifted {drift}x with host clock"
    );
}

#[test]
fn smaller_mread_chunks_mean_more_interrupts() {
    let data = input(400_000);
    let mut small = SystemParams::paper_testbed();
    small.mread_chunk_bytes = 1 << 20;
    let (mut sys_small, spec) = sys_with(small, &data);
    let (mut sys_big, _) = sys_with(SystemParams::paper_testbed(), &data);
    let a = sys_small.run(&spec, Mode::Morpheus).unwrap().report;
    let b = sys_big.run(&spec, Mode::Morpheus).unwrap().report;
    assert!(a.context_switches > b.context_switches);
    assert_eq!(a.checksum, b.checksum);
}

#[test]
fn storage_devices_order_sensibly() {
    let data = input(200_000);
    let mut bw = Vec::new();
    for storage in [
        StorageKind::RamDrive,
        StorageKind::NvmeSsd,
        StorageKind::Hdd,
    ] {
        let mut p = SystemParams::paper_testbed();
        p.storage = storage;
        let (mut sys, spec) = sys_with(p, &data);
        bw.push(
            sys.run(&spec, Mode::Conventional)
                .unwrap()
                .report
                .effective_bandwidth_mbs,
        );
    }
    let (ram, nvme, hdd) = (bw[0], bw[1], bw[2]);
    assert!(ram >= nvme * 0.98, "ram {ram} vs nvme {nvme}");
    assert!(nvme >= hdd, "nvme {nvme} vs hdd {hdd}");
    // And the whole point: the spread is small because the CPU is the
    // bottleneck.
    assert!(
        ram / hdd < 1.5,
        "device spread should be modest: {ram} vs {hdd}"
    );
}

#[test]
fn slower_flash_slows_the_morpheus_path_only_when_it_binds() {
    let data = input(200_000);
    // Default: flash far outruns a single parsing core; slowing it 2x
    // should barely move the needle.
    let (mut sys, spec) = sys_with(SystemParams::paper_testbed(), &data);
    let base = sys.run(&spec, Mode::Morpheus).unwrap().report;
    let mut crawl = SystemParams::paper_testbed();
    crawl.flash_timing.read_latency = morpheus_simcore::SimDuration::from_micros(140);
    let (mut sys2, _) = sys_with(crawl, &data);
    let slowed = sys2.run(&spec, Mode::Morpheus).unwrap().report;
    let ratio = slowed.phases.deserialization_s / base.phases.deserialization_s;
    assert!(ratio < 1.25, "2x flash latency blew up deser by {ratio}x");
    // Extreme flash latency must eventually dominate.
    let mut glacial = SystemParams::paper_testbed();
    glacial.flash_timing.read_latency = morpheus_simcore::SimDuration::from_millis(5);
    let (mut sys3, _) = sys_with(glacial, &data);
    let bound = sys3.run(&spec, Mode::Morpheus).unwrap().report;
    assert!(bound.phases.deserialization_s > base.phases.deserialization_s * 3.0);
}

#[test]
fn energy_scales_with_time_at_fixed_power() {
    let small = input(50_000);
    let large = input(200_000);
    let (mut sys_a, spec) = sys_with(SystemParams::paper_testbed(), &small);
    let (mut sys_b, _) = sys_with(SystemParams::paper_testbed(), &large);
    let a = sys_a.run(&spec, Mode::Conventional).unwrap().report;
    let b = sys_b.run(&spec, Mode::Conventional).unwrap().report;
    // Same platform, same mode: mean power is nearly identical, so energy
    // tracks duration.
    assert!((a.deser_power_watts - b.deser_power_watts).abs() < 1.0);
    let t_ratio = b.phases.deserialization_s / a.phases.deserialization_s;
    let e_ratio = b.deser_energy_j / a.deser_energy_j;
    assert!((t_ratio - e_ratio).abs() / t_ratio < 0.05);
}
