//! Parse errors.

use std::error::Error;
use std::fmt;

/// Why a parse failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A byte that cannot start or continue the expected token.
    UnexpectedChar(u8),
    /// Integer literal overflowed its type.
    Overflow,
    /// Input ended in the middle of an expected token.
    UnexpectedEof,
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// Offset of the failure within the scanned buffer/stream.
    pub offset: usize,
    /// Failure category.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Creates an error.
    pub fn new(offset: usize, kind: ParseErrorKind) -> Self {
        ParseError { offset, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::UnexpectedChar(b) => write!(
                f,
                "unexpected byte {:?} at offset {}",
                b as char, self.offset
            ),
            ParseErrorKind::Overflow => write!(f, "numeric overflow at offset {}", self.offset),
            ParseErrorKind::UnexpectedEof => {
                write!(f, "unexpected end of input at offset {}", self.offset)
            }
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offset() {
        let e = ParseError::new(42, ParseErrorKind::Overflow);
        assert!(e.to_string().contains("42"));
        let e = ParseError::new(7, ParseErrorKind::UnexpectedChar(b'x'));
        assert!(e.to_string().contains('x'));
        assert!(ParseError::new(0, ParseErrorKind::UnexpectedEof)
            .to_string()
            .contains("end of input"));
    }
}
