//! Zero-copy page payload handles.
//!
//! Page contents live in the array as reference-counted immutable buffers
//! ([`Arc<[u8]>`]); a read hands out a [`PageData`] handle that shares the
//! stored allocation instead of cloning it. The FTL's garbage collector
//! relocates pages by moving the handle, and the SSD controller copies at
//! most once — a sub-slice into the caller's destination buffer. Flash
//! payloads in the simulated testbed are 4 KiB–16 KiB and every figure
//! reads tens of thousands of them, so the former clone-per-hop (flash →
//! FTL → controller → firmware) dominated allocator time.

use std::ops::Deref;
use std::sync::Arc;

/// Audit of full-payload materializations on the read path.
///
/// The hot read path is required to share the stored buffer; the only
/// sanctioned full copy is an explicit [`PageData::to_boxed`] /
/// [`PageData::to_vec`], and both tick this counter. Regression tests
/// snapshot [`count`](copy_audit::count) around bulk reads and assert it
/// stays flat — reintroducing a per-read payload clone fails them.
pub mod copy_audit {
    use std::sync::atomic::{AtomicU64, Ordering};

    static COPIES: AtomicU64 = AtomicU64::new(0);

    /// Records one full-payload copy.
    pub fn record() {
        COPIES.fetch_add(1, Ordering::Relaxed);
    }

    /// Total full-payload copies since process start.
    pub fn count() -> u64 {
        COPIES.load(Ordering::Relaxed)
    }
}

/// A shared, immutable page payload.
///
/// Cheap to clone (reference count); dereferences to the stored bytes.
/// May be shorter than the flash page when the original program wrote a
/// short payload — readers zero-extend to page size where that matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageData(Arc<[u8]>);

impl PageData {
    /// Wraps a payload, copying it into a shared allocation.
    pub fn copy_from(data: &[u8]) -> Self {
        PageData(Arc::from(data))
    }

    /// True if both handles share one stored allocation (i.e. no payload
    /// copy happened between them).
    pub fn ptr_eq(a: &PageData, b: &PageData) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// The shared allocation itself.
    pub fn into_arc(self) -> Arc<[u8]> {
        self.0
    }

    /// An owned boxed copy of the payload. This is a full-payload copy and
    /// is counted by [`copy_audit`]; keep it off hot paths.
    pub fn to_boxed(&self) -> Box<[u8]> {
        copy_audit::record();
        self.0[..].into()
    }

    /// An owned `Vec` copy of the payload. Counted by [`copy_audit`].
    pub fn to_vec(&self) -> Vec<u8> {
        copy_audit::record();
        self.0.to_vec()
    }
}

impl Deref for PageData {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Arc<[u8]>> for PageData {
    fn from(a: Arc<[u8]>) -> Self {
        PageData(a)
    }
}

impl From<&[u8]> for PageData {
    fn from(d: &[u8]) -> Self {
        PageData::copy_from(d)
    }
}

impl AsRef<[u8]> for PageData {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let p = PageData::copy_from(b"payload");
        let q = p.clone();
        assert!(PageData::ptr_eq(&p, &q));
        assert_eq!(&q[..], b"payload");
    }

    #[test]
    fn explicit_copies_are_counted() {
        let p = PageData::copy_from(b"counted");
        let before = copy_audit::count();
        let b = p.to_boxed();
        let v = p.to_vec();
        assert_eq!(&b[..], &v[..]);
        assert_eq!(copy_audit::count(), before + 2);
    }

    #[test]
    fn deref_and_as_ref_expose_bytes() {
        let p = PageData::copy_from(&[1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.as_ref(), &[1, 2, 3]);
    }
}
