//! Deterministic simulation kernel for the Morpheus reproduction.
//!
//! This crate provides the timing substrate shared by every hardware model in
//! the workspace:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//! * [`Timeline`] — a FIFO-queued, possibly multi-unit hardware resource
//!   (a CPU core pool, a flash channel, a PCIe link, a DMA engine, ...).
//! * [`Bandwidth`] — converts byte counts into service durations.
//! * [`pipeline`] — runs a sequence of work items through a chain of
//!   timelines, modelling the chunk-level pipelining that dominates the
//!   Morpheus data path (flash read ∥ parse ∥ DMA).
//! * [`PowerModel`] / [`EnergyReport`] — integrates component busy time into
//!   whole-system power and energy, mirroring the paper's wall-meter
//!   methodology (idle floor plus per-component deltas).
//! * [`Metrics`] — a small ordered metric bag used by reports.
//! * [`SplitMix64`] — a tiny deterministic PRNG so lower-level crates do not
//!   need the `rand` dependency.
//! * [`ArrivalProcess`] / [`Zipfian`] — a seeded Poisson stream of request
//!   timestamps and a seeded Zipfian popularity distribution for open-loop
//!   serving experiments.
//! * [`FaultPlan`] / [`FaultDice`] / [`FaultCounters`] — the seeded,
//!   deterministic fault-injection plane (see `docs/FAULT_MODEL.md`).
//! * [`TelemetrySampler`] / [`TelemetryReport`] / [`SloSpec`] — windowed
//!   sim-time telemetry and the SLO / error-budget engine (see
//!   `docs/TELEMETRY.md`).
//!
//! Everything here is deterministic: the same inputs produce the same
//! timings, which the integration suite relies on.
//!
//! # Example
//!
//! ```
//! use morpheus_simcore::{Bandwidth, SimTime, Timeline};
//!
//! // A single-unit 400 MB/s flash channel bus.
//! let mut bus = Timeline::new("flash-bus", 1);
//! let bw = Bandwidth::from_mb_per_s(400.0);
//! let a = bus.acquire(SimTime::ZERO, bw.duration_for(16 * 1024));
//! let b = bus.acquire(SimTime::ZERO, bw.duration_for(16 * 1024));
//! assert_eq!(b.start, a.end); // FIFO queueing
//! ```

#![deny(missing_docs)]

mod arrivals;
mod energy;
mod faults;
mod gantt;
mod metrics;
mod pipeline;
mod rng;
mod telemetry;
mod time;
mod timeline;
mod trace;

pub use arrivals::{ArrivalProcess, ArrivalRateError, Zipfian};
pub use energy::{EnergyReport, PowerModel, Rail, RailId};
pub use faults::{render_error_chain, FaultCounters, FaultDice, FaultPlan};
pub use gantt::render_gantt;
pub use metrics::{Histogram, Metrics};
pub use pipeline::{pipeline, PipelineResult, StageDemand};
pub use rng::SplitMix64;
pub use telemetry::{
    fmt_num, parse_duration, sparkline, BudgetPoint, SloKind, SloObjective, SloOutcome, SloSpec,
    TelemetryConfig, TelemetryReport, TelemetrySampler, TelemetryWindow, FAST_BURN_ALERT,
    SLOW_BURN_ALERT, SLOW_BURN_WINDOWS,
};
pub use time::{SimDuration, SimTime};
pub use timeline::{Bandwidth, Interval, Timeline};
pub use trace::{
    fmt_ns, render_trace_diff, TraceAggregate, TraceEvent, TraceEventKind, TraceLayer, TraceLog,
    Tracer,
};
