//! Criterion: full-system simulation throughput per execution mode.
//!
//! Measures how fast the *simulator itself* executes a complete
//! staged-input → deserialize → kernel benchmark run (useful for sizing
//! figure-regeneration sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus::{Mode, System, SystemParams};
use morpheus_workloads::{run_benchmark, stage_input, suite};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let benches = suite();
    let pagerank = benches.iter().find(|b| b.name == "pagerank").unwrap();
    let mut sys = System::new(SystemParams::paper_testbed());
    stage_input(&mut sys, pagerank, 2 << 20, 42).unwrap();

    for mode in [Mode::Conventional, Mode::Morpheus] {
        g.bench_function(format!("pagerank_2MiB_{mode}"), |b| {
            b.iter(|| black_box(run_benchmark(&mut sys, pagerank, mode).unwrap()))
        });
    }

    let spmv = benches.iter().find(|b| b.name == "spmv").unwrap();
    stage_input(&mut sys, spmv, 2 << 20, 42).unwrap();
    g.bench_function("spmv_2MiB_morpheus", |b| {
        b.iter(|| black_box(run_benchmark(&mut sys, spmv, Mode::Morpheus).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
