//! Figure 10: context-switch frequency during object deserialization.
//!
//! Paper claims: Morpheus-SSD lowers context-switch *frequency* by **~98 %**
//! and the *total count* by **~97 %** — the conventional path re-enters the
//! kernel on every 64 KiB `read()` window, while the Morpheus path wakes
//! once per multi-megabyte MREAD.

use morpheus_bench::{mean, print_table, run_pair, Harness};
use morpheus_workloads::suite;

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 10: context switches during deserialization (scale 1/{})\n",
        h.scale
    );
    let benches = suite();
    let pairs = h.run_suite_parallel(&benches, |bench| run_pair(&h, bench));
    let mut rows = Vec::new();
    let mut freq_reduction = Vec::new();
    let mut count_reduction = Vec::new();
    for (bench, (conv, morp)) in benches.iter().zip(&pairs) {
        freq_reduction.push(1.0 - morp.report.cs_per_second / conv.report.cs_per_second);
        count_reduction
            .push(1.0 - morp.report.context_switches as f64 / conv.report.context_switches as f64);
        rows.push(vec![
            bench.name.to_string(),
            format!("{:.0}/s", conv.report.cs_per_second),
            format!("{:.0}/s", morp.report.cs_per_second),
            format!("{}", conv.report.context_switches),
            format!("{}", morp.report.context_switches),
        ]);
    }
    print_table(
        &[
            "app",
            "base_rate",
            "morph_rate",
            "base_total",
            "morph_total",
        ],
        &rows,
    );
    println!();
    println!(
        "average frequency reduction: {:.1}% (paper: ~98%)",
        100.0 * mean(&freq_reduction)
    );
    println!(
        "average total-count reduction: {:.1}% (paper: ~97%)",
        100.0 * mean(&count_reduction)
    );
}
