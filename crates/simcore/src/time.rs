//! Simulated time types.
//!
//! Time is tracked in integer nanoseconds. Nanosecond resolution is fine
//! enough for every latency in the modelled system (the shortest modelled
//! event is a handful of CPU cycles) while `u64` nanoseconds still cover
//! ~584 years of simulated time, far beyond any run in this workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since the start of the run.
///
/// # Example
///
/// ```
/// use morpheus_simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use morpheus_simcore::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the origin.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so that indicates a scheduling bug.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier:?} is after {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The duration since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer count.
    pub fn mul_u64(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "duration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).duration_since(t).as_nanos(), 40);
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a).as_nanos(), 4);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards_time() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn sum_and_scalar_ops() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
        assert_eq!((SimDuration::from_nanos(10) * 3).as_nanos(), 30);
        assert_eq!((SimDuration::from_nanos(10) / 4).as_nanos(), 2);
    }
}
