//! Tiered deserialized-object cache (ROADMAP: "In-SSD deserialized-object
//! cache with tiering").
//!
//! Morpheus pays flash I/O plus an embedded-core parse for every request.
//! Under skewed serve traffic most requests re-deserialize the *same*
//! files, so the controller's 2 GB DRAM — already modelled by the
//! [`alloc_dram`](morpheus_ssd::Ssd::alloc_dram) /
//! [`free_dram`](morpheus_ssd::Ssd::free_dram) accounting the firmware
//! uses for instance state — can memoize finished objects. This module is
//! the policy engine: a map from (app, file, format-digest) to parsed
//! objects across two tiers,
//!
//! * a **controller-DRAM tier** whose byte budget the system reserves
//!   through the firmware's DRAM accounting
//!   ([`MorpheusSsd::reserve_object_cache`](crate::MorpheusSsd::reserve_object_cache)),
//!   and
//! * a **host-memory spill tier** that holds DRAM-tier victims (budget
//!   reserved from host DRAM), cheaper to hit than flash but off-device.
//!
//! Admission is **TinyLFU-style**: a seeded 4-row count-min sketch of
//! 8-bit counters estimates each key's access frequency (halved
//! periodically so the window decays); a first-touch object is *not*
//! admitted — the second miss admits it, and under memory pressure the
//! incoming key must beat the eviction victim's estimated frequency. The
//! alternative [`CachePolicy::Lru`] admits everything unconditionally.
//! Eviction is **segmented LRU**: new admissions enter a probation
//! segment; a probation hit promotes to a protected segment capped at 4/5
//! of the tier, demoting the protected LRU back to probation when it
//! overflows. DRAM victims spill to the host tier; host-tier victims are
//! dropped. Invalidation is by file: any mutation of a staged file
//! ([`System::overwrite_input_file`](crate::System::overwrite_input_file),
//! [`System::create_input_file`](crate::System::create_input_file), or the
//! MWRITE serialization path) drops every entry parsed from it, so a hit
//! can never return stale objects.
//!
//! Everything is deterministic: entries live in a `BTreeMap`, recency is a
//! logical tick, the sketch's hash salts derive from the configured seed,
//! and no wall-clock or address-dependent state is consulted. Cache
//! bookkeeping costs zero *simulated* time — only the delivery of a hit is
//! timed, by the serving layer (`serve.rs`).

use morpheus_format::ParsedColumns;
use morpheus_simcore::SplitMix64;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Admission policy of the DRAM tier (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// TinyLFU-style frequency gate over segmented-LRU eviction (default).
    TinyLfu,
    /// Admit-everything over segmented-LRU eviction.
    Lru,
}

impl CachePolicy {
    /// Parses the CLI spelling (`tinylfu` / `lru`).
    pub fn parse(s: &str) -> Option<CachePolicy> {
        match s {
            "tinylfu" => Some(CachePolicy::TinyLfu),
            "lru" => Some(CachePolicy::Lru),
            _ => None,
        }
    }
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CachePolicy::TinyLfu => "tinylfu",
            CachePolicy::Lru => "lru",
        })
    }
}

/// Configuration of the object cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Controller-DRAM tier capacity, bytes. Reserved up front through the
    /// firmware's `alloc_dram` accounting, like MINIT instance state.
    pub dram_bytes: u64,
    /// Host-memory spill tier capacity, bytes (0 disables spilling).
    pub host_bytes: u64,
    /// Admission policy.
    pub policy: CachePolicy,
    /// Seed for the frequency sketch's hash salts.
    pub seed: u64,
}

impl CacheConfig {
    /// A TinyLFU cache with a DRAM tier of `dram_bytes` and no spill tier,
    /// seeded like the rest of the workspace.
    pub fn new(dram_bytes: u64) -> Self {
        CacheConfig {
            dram_bytes,
            host_bytes: 0,
            policy: CachePolicy::TinyLfu,
            seed: 42,
        }
    }

    /// True when at least one tier has capacity. A config with both
    /// capacities zero is inert: installing it is exactly a cache-off run
    /// (the determinism contract requires byte-identical reports).
    pub fn is_enabled(&self) -> bool {
        self.dram_bytes > 0 || self.host_bytes > 0
    }
}

/// Which tier served (or holds) an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Controller DRAM: delivery is one NVMe read + PCIe DMA (no flash,
    /// no parse, no embedded core).
    Dram,
    /// Host memory: delivery is a host-side copy (or host→GPU DMA).
    Host,
}

/// Counters and occupancy of the cache. Counters accumulate over the
/// cache's lifetime; per-run reports subtract a snapshot taken at run
/// start (see [`CacheStats::since`]). `dram_bytes` / `host_bytes` are
/// live occupancy, and `invalidations` is reported as a lifetime value so
/// mutations *between* runs surface in the next report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the object (either tier).
    pub hits: u64,
    /// Hits served from controller DRAM.
    pub dram_hits: u64,
    /// Hits served from the host spill tier.
    pub host_hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Objects admitted after a miss.
    pub admitted: u64,
    /// Objects the admission gate refused (frequency too low, or larger
    /// than every tier).
    pub rejected: u64,
    /// Entries dropped from the cache entirely.
    pub evictions: u64,
    /// DRAM-tier victims demoted to the host tier.
    pub spills: u64,
    /// Host-tier entries promoted back to DRAM on a hit.
    pub promotions: u64,
    /// Entries dropped by file invalidation.
    pub invalidations: u64,
    /// Current DRAM-tier occupancy, bytes.
    pub dram_bytes: u64,
    /// Current host-tier occupancy, bytes.
    pub host_bytes: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when the cache saw none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The per-run view: event counters relative to `base` (a snapshot
    /// taken at run start), occupancy and invalidations as-is (see type
    /// docs for why invalidations stay cumulative).
    pub fn since(&self, base: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - base.hits,
            dram_hits: self.dram_hits - base.dram_hits,
            host_hits: self.host_hits - base.host_hits,
            misses: self.misses - base.misses,
            admitted: self.admitted - base.admitted,
            rejected: self.rejected - base.rejected,
            evictions: self.evictions - base.evictions,
            spills: self.spills - base.spills,
            promotions: self.promotions - base.promotions,
            invalidations: self.invalidations,
            dram_bytes: self.dram_bytes,
            host_bytes: self.host_bytes,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} (dram={} host={}) misses={} hit_rate={:.4} admitted={} rejected={} \
             evictions={} spills={} promotions={} invalidations={} dram_kb={} host_kb={}",
            self.hits,
            self.dram_hits,
            self.host_hits,
            self.misses,
            self.hit_rate(),
            self.admitted,
            self.rejected,
            self.evictions,
            self.spills,
            self.promotions,
            self.invalidations,
            self.dram_bytes / 1024,
            self.host_bytes / 1024
        )
    }
}

/// A state change the cache performed, drained by the serving layer into
/// the `cache` trace track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheEvent {
    /// A new object entered `tier`.
    Admitted {
        /// Tier the object entered.
        tier: CacheTier,
        /// Object size, bytes.
        bytes: u64,
    },
    /// The admission gate refused an object.
    Rejected {
        /// Object size, bytes.
        bytes: u64,
    },
    /// A DRAM victim was demoted to the host tier.
    Spilled {
        /// Object size, bytes.
        bytes: u64,
    },
    /// An entry was dropped from `tier`.
    Evicted {
        /// Tier the entry left.
        tier: CacheTier,
        /// Object size, bytes.
        bytes: u64,
    },
    /// A host-tier entry moved back to DRAM on a hit.
    Promoted {
        /// Object size, bytes.
        bytes: u64,
    },
    /// File invalidation dropped `entries` entries.
    Invalidated {
        /// Entries dropped.
        entries: u64,
        /// Bytes dropped.
        bytes: u64,
    },
}

/// A successful lookup: which tier held the object and the object itself
/// (shared, so delivery never copies column data).
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// Tier that served the hit (decides the delivery cost model).
    pub tier: CacheTier,
    /// The cached objects, bit-identical to a fresh deserialization.
    pub objects: Arc<ParsedColumns>,
    /// Binary object size, bytes (the delivery payload).
    pub bytes: u64,
}

/// Cache key: (app name, input file, format digest).
type Key = (String, String, u64);

#[derive(Debug, Clone)]
struct Entry {
    objects: Arc<ParsedColumns>,
    bytes: u64,
    tier: CacheTier,
    /// Segmented LRU: true once a DRAM entry was re-referenced.
    protected: bool,
    /// Logical recency tick.
    last_used: u64,
}

/// Protected-segment share of the DRAM tier (segmented LRU).
const PROTECTED_NUM: u64 = 4;
const PROTECTED_DEN: u64 = 5;
/// Count-min sketch geometry: 4 rows of `SKETCH_WIDTH` 8-bit counters.
const SKETCH_ROWS: usize = 4;
const SKETCH_WIDTH: usize = 1024;
/// Sketch increments between halvings (the decay window).
const SKETCH_WINDOW: u64 = (SKETCH_WIDTH as u64) * 8;

/// Seeded count-min frequency sketch with periodic halving (the TinyLFU
/// "reset" that keeps estimates recent).
#[derive(Debug, Clone)]
struct FreqSketch {
    salts: [u64; SKETCH_ROWS],
    counters: Vec<u8>,
    ops: u64,
}

impl FreqSketch {
    fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut salts = [0u64; SKETCH_ROWS];
        for s in &mut salts {
            *s = rng.next_u64() | 1; // odd multipliers mix every bit
        }
        FreqSketch {
            salts,
            counters: vec![0; SKETCH_ROWS * SKETCH_WIDTH],
            ops: 0,
        }
    }

    fn slot(&self, row: usize, h: u64) -> usize {
        let mixed = h.wrapping_mul(self.salts[row]);
        row * SKETCH_WIDTH + ((mixed >> 32) as usize & (SKETCH_WIDTH - 1))
    }

    fn bump(&mut self, h: u64) {
        for row in 0..SKETCH_ROWS {
            let i = self.slot(row, h);
            self.counters[i] = self.counters[i].saturating_add(1);
        }
        self.ops += 1;
        if self.ops >= SKETCH_WINDOW {
            for c in &mut self.counters {
                *c >>= 1;
            }
            self.ops = 0;
        }
    }

    fn estimate(&self, h: u64) -> u8 {
        (0..SKETCH_ROWS)
            .map(|row| self.counters[self.slot(row, h)])
            .min()
            .unwrap_or(0)
    }
}

/// FNV-1a over the key's parts (stable, dependency-free).
fn hash_key(key: &Key) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(key.0.as_bytes());
    eat(&[0]);
    eat(key.1.as_bytes());
    eat(&[0]);
    eat(&key.2.to_le_bytes());
    h
}

/// The tiered deserialized-object cache (see module docs for policy).
#[derive(Debug, Clone)]
pub struct ObjectCache {
    cfg: CacheConfig,
    entries: BTreeMap<Key, Entry>,
    sketch: FreqSketch,
    tick: u64,
    stats: CacheStats,
    /// Bytes in the DRAM tier's protected segment.
    protected_bytes: u64,
    /// State changes since the last [`take_events`](Self::take_events).
    events: Vec<CacheEvent>,
}

impl ObjectCache {
    /// Creates an empty cache. The caller (the [`System`](crate::System))
    /// is responsible for reserving the tier budgets against the
    /// controller-DRAM and host-DRAM accounting.
    pub fn new(cfg: CacheConfig) -> Self {
        ObjectCache {
            sketch: FreqSketch::new(cfg.seed),
            cfg,
            entries: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            protected_bytes: 0,
            events: Vec::new(),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cached entries across both tiers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the state-change log (the serving layer turns these into
    /// `cache`-track trace instants).
    pub fn take_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.events)
    }

    /// Looks up (app, file, digest). A hit refreshes recency, promotes
    /// probation entries to the protected segment, and may promote a
    /// host-tier entry back to DRAM (spilling victims); a miss only feeds
    /// the frequency sketch. Returns `None` on a miss.
    pub fn lookup(&mut self, app: &str, file: &str, digest: u64) -> Option<CacheHit> {
        self.tick += 1;
        let key: Key = (app.to_string(), file.to_string(), digest);
        let h = hash_key(&key);
        self.sketch.bump(h);
        if !self.entries.contains_key(&key) {
            self.stats.misses += 1;
            return None;
        }
        let tick = self.tick;
        let e = self.entries.get_mut(&key).expect("checked above");
        e.last_used = tick;
        self.stats.hits += 1;
        let hit = CacheHit {
            tier: e.tier,
            objects: Arc::clone(&e.objects),
            bytes: e.bytes,
        };
        match e.tier {
            CacheTier::Dram => {
                self.stats.dram_hits += 1;
                if !e.protected {
                    e.protected = true;
                    self.protected_bytes += e.bytes;
                    self.trim_protected();
                }
            }
            CacheTier::Host => {
                self.stats.host_hits += 1;
                self.try_promote(&key, h);
            }
        }
        Some(hit)
    }

    /// Offers a freshly deserialized object for admission (called by the
    /// serving layer after a miss completes). The frequency gate, tier
    /// placement, spilling, and eviction all happen here; the decision is
    /// recorded in the event log.
    pub fn admit(&mut self, app: &str, file: &str, digest: u64, objects: Arc<ParsedColumns>) {
        self.tick += 1;
        let key: Key = (app.to_string(), file.to_string(), digest);
        let bytes = objects.binary_bytes();
        let h = hash_key(&key);
        if self.entries.contains_key(&key) {
            return; // a batch can miss the same key twice before admission
        }
        // Doorkeeper: a first-touch key has estimate 1 (its own miss) and
        // is refused; the second miss admits it. LRU admits everything.
        if self.cfg.policy == CachePolicy::TinyLfu && self.sketch.estimate(h) < 2 {
            self.stats.rejected += 1;
            self.events.push(CacheEvent::Rejected { bytes });
            return;
        }
        let tier = if bytes <= self.cfg.dram_bytes {
            CacheTier::Dram
        } else if bytes <= self.cfg.host_bytes {
            CacheTier::Host
        } else {
            self.stats.rejected += 1;
            self.events.push(CacheEvent::Rejected { bytes });
            return;
        };
        if tier == CacheTier::Dram && !self.make_dram_room(bytes, Some(h)) {
            self.stats.rejected += 1;
            self.events.push(CacheEvent::Rejected { bytes });
            return;
        }
        if tier == CacheTier::Host {
            self.make_host_room(bytes);
        }
        match tier {
            CacheTier::Dram => self.stats.dram_bytes += bytes,
            CacheTier::Host => self.stats.host_bytes += bytes,
        }
        self.entries.insert(
            key,
            Entry {
                objects,
                bytes,
                tier,
                protected: false,
                last_used: self.tick,
            },
        );
        self.stats.admitted += 1;
        self.events.push(CacheEvent::Admitted { tier, bytes });
    }

    /// Drops every entry deserialized from `file` (any app, any digest).
    /// Returns how many entries were dropped.
    pub fn invalidate_file(&mut self, file: &str) -> u64 {
        let victims: Vec<Key> = self
            .entries
            .keys()
            .filter(|k| k.1 == file)
            .cloned()
            .collect();
        let mut bytes = 0;
        for k in &victims {
            bytes += self.drop_entry(k);
        }
        let n = victims.len() as u64;
        if n > 0 {
            self.stats.invalidations += n;
            self.events
                .push(CacheEvent::Invalidated { entries: n, bytes });
        }
        n
    }

    /// Removes an entry, returning its size and fixing occupancy.
    fn drop_entry(&mut self, key: &Key) -> u64 {
        let e = self.entries.remove(key).expect("victim exists");
        match e.tier {
            CacheTier::Dram => {
                self.stats.dram_bytes -= e.bytes;
                if e.protected {
                    self.protected_bytes -= e.bytes;
                }
            }
            CacheTier::Host => self.stats.host_bytes -= e.bytes,
        }
        e.bytes
    }

    /// The LRU key of a DRAM segment (probation when `protected` is
    /// false). Ties break on key order, so victim choice is deterministic
    /// regardless of map internals.
    fn dram_lru(&self, protected: bool) -> Option<Key> {
        self.entries
            .iter()
            .filter(|(_, e)| e.tier == CacheTier::Dram && e.protected == protected)
            .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
            .map(|(k, _)| k.clone())
    }

    /// The LRU key of the host tier.
    fn host_lru(&self) -> Option<Key> {
        self.entries
            .iter()
            .filter(|(_, e)| e.tier == CacheTier::Host)
            .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
            .map(|(k, _)| k.clone())
    }

    /// Keeps the protected segment at its 4/5 share by demoting its LRU
    /// back to probation (bookkeeping only; no bytes move).
    fn trim_protected(&mut self) {
        let cap = self.cfg.dram_bytes / PROTECTED_DEN * PROTECTED_NUM;
        while self.protected_bytes > cap {
            let Some(k) = self.dram_lru(true) else { break };
            let e = self.entries.get_mut(&k).expect("lru exists");
            e.protected = false;
            self.protected_bytes -= e.bytes;
        }
    }

    /// Frees DRAM space for `need` incoming bytes by spilling victims
    /// (probation LRU first, then protected LRU) to the host tier. With
    /// the TinyLFU gate (`incoming` is the new key's hash), stops and
    /// reports failure if a victim's estimated frequency exceeds the
    /// incoming key's — the newcomer has not earned the slot.
    fn make_dram_room(&mut self, need: u64, incoming: Option<u64>) -> bool {
        if need > self.cfg.dram_bytes {
            return false;
        }
        while self.stats.dram_bytes + need > self.cfg.dram_bytes {
            let Some(victim) = self.dram_lru(false).or_else(|| self.dram_lru(true)) else {
                return false;
            };
            if self.cfg.policy == CachePolicy::TinyLfu {
                if let Some(h) = incoming {
                    if self.sketch.estimate(hash_key(&victim)) > self.sketch.estimate(h) {
                        return false;
                    }
                }
            }
            self.spill_to_host(&victim);
        }
        true
    }

    /// Frees host-tier space for `need` bytes by dropping host LRUs.
    fn make_host_room(&mut self, need: u64) {
        while self.stats.host_bytes + need > self.cfg.host_bytes {
            let Some(victim) = self.host_lru() else {
                return;
            };
            let bytes = self.drop_entry(&victim);
            self.stats.evictions += 1;
            self.events.push(CacheEvent::Evicted {
                tier: CacheTier::Host,
                bytes,
            });
        }
    }

    /// Demotes a DRAM entry to the host tier (or drops it when the host
    /// tier cannot hold it).
    fn spill_to_host(&mut self, key: &Key) {
        let e = self.entries.get(key).expect("victim exists");
        let bytes = e.bytes;
        if bytes > self.cfg.host_bytes {
            let bytes = self.drop_entry(key);
            self.stats.evictions += 1;
            self.events.push(CacheEvent::Evicted {
                tier: CacheTier::Dram,
                bytes,
            });
            return;
        }
        self.make_host_room(bytes);
        let e = self.entries.get_mut(key).expect("victim exists");
        if e.protected {
            e.protected = false;
            self.protected_bytes -= e.bytes;
        }
        e.tier = CacheTier::Host;
        self.stats.dram_bytes -= bytes;
        self.stats.host_bytes += bytes;
        self.stats.spills += 1;
        self.events.push(CacheEvent::Spilled { bytes });
    }

    /// On a host-tier hit, tries to move the entry back to DRAM (same
    /// gate as admission: LRU always, TinyLFU only when the entry beats
    /// the would-be victim).
    fn try_promote(&mut self, key: &Key, h: u64) {
        let bytes = self.entries.get(key).expect("hit entry").bytes;
        if bytes > self.cfg.dram_bytes || !self.make_dram_room(bytes, Some(h)) {
            return;
        }
        // Making DRAM room can spill a victim onto the host tier, whose
        // own eviction may pick this very entry. The hit was already
        // served (the caller holds the Arc); there is nothing to promote.
        let Some(e) = self.entries.get_mut(key) else {
            return;
        };
        e.tier = CacheTier::Dram;
        e.protected = false;
        self.stats.host_bytes -= bytes;
        self.stats.dram_bytes += bytes;
        self.stats.promotions += 1;
        self.events.push(CacheEvent::Promoted { bytes });
    }
}

/// Digest of an app's record schema and input encoding. Part of the cache
/// key so two apps reading one file with different schemas (or a schema
/// change for the same app name) can never alias.
pub fn format_digest(spec: &crate::AppSpec) -> u64 {
    // `Debug` of a data-only enum/struct tree is stable for a fixed
    // compiler — and cache keys never cross process boundaries.
    let rendered = format!("{:?}|{:?}", spec.schema, spec.input_format);
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in rendered.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{Column, FieldKind, Schema};

    /// An object of roughly `n * 16` binary bytes.
    fn obj(n: usize, salt: i64) -> Arc<ParsedColumns> {
        let schema = Schema::new(vec![FieldKind::I64, FieldKind::I64]);
        Arc::new(ParsedColumns {
            schema,
            columns: vec![
                Column::Ints((0..n as i64).map(|i| i * 3 + salt).collect()),
                Column::Ints((0..n as i64).map(|i| i * 7 - salt).collect()),
            ],
            records: n as u64,
        })
    }

    fn cache(dram: u64, host: u64, policy: CachePolicy) -> ObjectCache {
        ObjectCache::new(CacheConfig {
            dram_bytes: dram,
            host_bytes: host,
            policy,
            seed: 42,
        })
    }

    #[test]
    fn tinylfu_admits_on_second_miss() {
        let mut c = cache(1 << 20, 0, CachePolicy::TinyLfu);
        assert!(c.lookup("a", "f", 1).is_none());
        c.admit("a", "f", 1, obj(10, 0));
        assert!(
            c.lookup("a", "f", 1).is_none(),
            "doorkeeper refuses first touch"
        );
        c.admit("a", "f", 1, obj(10, 0));
        assert!(c.lookup("a", "f", 1).is_some(), "second miss admits");
        let s = c.stats();
        assert_eq!((s.rejected, s.admitted, s.hits, s.misses), (1, 1, 1, 2));
    }

    #[test]
    fn lru_admits_immediately() {
        let mut c = cache(1 << 20, 0, CachePolicy::Lru);
        assert!(c.lookup("a", "f", 1).is_none());
        c.admit("a", "f", 1, obj(10, 0));
        assert!(c.lookup("a", "f", 1).is_some());
    }

    #[test]
    fn dram_victims_spill_to_host_then_drop() {
        // DRAM fits one object, host fits one more.
        let bytes = obj(64, 0).binary_bytes();
        let mut c = cache(bytes + 8, bytes + 8, CachePolicy::Lru);
        c.admit("a", "f0", 0, obj(64, 0));
        c.admit("a", "f1", 1, obj(64, 1));
        assert_eq!(c.stats().spills, 1, "f0 spilled to host");
        assert!(matches!(
            c.lookup("a", "f0", 0).expect("still cached").tier,
            CacheTier::Host
        ));
        c.admit("a", "f2", 2, obj(64, 2));
        // f1 spills; the host tier can only hold one, so its LRU drops.
        let s = c.stats();
        assert_eq!(s.spills, 2);
        assert_eq!(s.evictions, 1);
        assert!(c.len() <= 2);
    }

    #[test]
    fn frequency_gate_protects_hot_victims() {
        let bytes = obj(64, 0).binary_bytes();
        let mut c = cache(bytes + 8, 0, CachePolicy::TinyLfu);
        // Make f0 hot: admitted, then hit repeatedly.
        assert!(c.lookup("a", "f0", 0).is_none());
        c.admit("a", "f0", 0, obj(64, 0));
        assert!(c.lookup("a", "f0", 0).is_none());
        c.admit("a", "f0", 0, obj(64, 0));
        for _ in 0..10 {
            assert!(c.lookup("a", "f0", 0).is_some());
        }
        // A cold newcomer that needs f0's space is refused.
        assert!(c.lookup("a", "f1", 1).is_none());
        assert!(c.lookup("a", "f1", 1).is_none());
        c.admit("a", "f1", 1, obj(64, 1));
        assert!(c.lookup("a", "f0", 0).is_some(), "hot entry survives");
        assert!(c.lookup("a", "f1", 1).is_none(), "cold newcomer refused");
    }

    #[test]
    fn invalidation_drops_every_entry_of_the_file() {
        let mut c = cache(1 << 20, 1 << 20, CachePolicy::Lru);
        c.admit("a", "shared.txt", 1, obj(10, 0));
        c.admit("b", "shared.txt", 2, obj(10, 1));
        c.admit("c", "other.txt", 3, obj(10, 2));
        assert_eq!(c.invalidate_file("shared.txt"), 2);
        assert!(c.lookup("a", "shared.txt", 1).is_none());
        assert!(c.lookup("b", "shared.txt", 2).is_none());
        assert!(c.lookup("c", "other.txt", 3).is_some());
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn occupancy_never_exceeds_budgets() {
        let mut c = cache(4096, 2048, CachePolicy::Lru);
        for i in 0..200u64 {
            let file = format!("f{}", i % 23);
            let _ = c.lookup("a", &file, i % 23);
            c.admit("a", &file, i % 23, obj(8 + (i % 13) as usize, i as i64));
            let s = c.stats();
            assert!(s.dram_bytes <= 4096, "dram over budget: {}", s.dram_bytes);
            assert!(s.host_bytes <= 2048, "host over budget: {}", s.host_bytes);
        }
    }

    #[test]
    fn identical_op_streams_give_identical_stats() {
        let run = || {
            let mut c = cache(2048, 1024, CachePolicy::TinyLfu);
            for i in 0..500u64 {
                let file = format!("f{}", i * i % 17);
                if c.lookup("a", &file, 0).is_none() {
                    c.admit("a", &file, 0, obj(16, i as i64 % 17));
                }
            }
            (c.stats(), c.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hit_rate_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_is_defined_for_a_zero_lookup_window() {
        // A per-run window in which the cache saw no lookups (e.g. a
        // serve window that shed everything) divides by zero unless
        // guarded: the defined answer is 0.0, finite, never NaN.
        let s = CacheStats {
            hits: 7,
            misses: 3,
            ..Default::default()
        };
        let window = s.since(&s.clone());
        assert_eq!(window.hits + window.misses, 0, "empty window");
        assert_eq!(window.hit_rate(), 0.0);
        assert!(window.hit_rate().is_finite());
    }

    #[test]
    fn events_report_state_changes() {
        let mut c = cache(1 << 20, 0, CachePolicy::Lru);
        c.admit("a", "f", 1, obj(10, 0));
        let ev = c.take_events();
        assert!(matches!(
            ev.as_slice(),
            [CacheEvent::Admitted {
                tier: CacheTier::Dram,
                ..
            }]
        ));
        assert!(c.take_events().is_empty(), "drained");
    }
}
