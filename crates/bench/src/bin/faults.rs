//! Degradation curve: suite speedup as the injected fault rate rises.
//!
//! Sweeps a ladder of fault rates; at each rung every suite application
//! runs conventionally and under Morpheus on the *same* faulty system, so
//! the table shows how gracefully the in-storage path degrades — retried
//! commands, ECC penalties, and the occasional host fallback — while the
//! objects stay bit-identical. Regenerates the EXPERIMENTS.md
//! "fault-rate degradation" table.
//!
//! Flags: the shared harness grammar (`--scale`, `--seed`, `--jobs`);
//! the sweep sets the per-rung fault plans itself, so `--faults` here
//! only overrides the *seed* ladder via its `seed=` key. With
//! `--devices N` (and optional `--placement rr|hash|capacity`,
//! `--kill-device DEV@SECS`, `--rolling-update SECS`, `--heal`) the
//! sweep appends a fleet serving-resilience table: the same fault ladder
//! applied fleet-wide to an N-device serve cell, showing how aggregate
//! completion and redispatch counts degrade — with the kill schedule and
//! control plane in force.

use morpheus::{
    AppSpec, DeviceKill, Fleet, FleetConfig, HealPolicy, Mode, PlacementPolicy, RollingUpdate,
    ServeConfig, SystemParams,
};
use morpheus_bench::{geomean, print_table, Harness};
use morpheus_format::{FieldKind, Schema, TextWriter};
use morpheus_simcore::{render_error_chain, FaultCounters, FaultPlan, SplitMix64};
use morpheus_workloads::{run_benchmark, suite};

/// The swept fault rates. Per rung `r`, probabilities scale as:
/// correctable flash errors `10r`, uncorrectable `r/10`, NVMe command
/// loss `r`, core stalls `r`, core crashes `r/20`, PCIe degradation `r`.
const RATES: [f64; 6] = [0.0, 1e-4, 5e-4, 2e-3, 1e-2, 5e-2];

fn plan_for(rate: f64, seed: u64) -> Option<FaultPlan> {
    if rate == 0.0 {
        return None;
    }
    let mut p = FaultPlan::none();
    p.seed = seed;
    p.flash_correctable = (10.0 * rate).min(1.0);
    p.flash_uncorrectable = rate / 10.0;
    p.nvme_timeout = rate;
    p.core_stall = rate;
    p.core_crash = rate / 20.0;
    p.pcie_degrade = rate;
    Some(p)
}

fn main() {
    // Suite × rates × two modes: default to a small input scale so the
    // whole sweep stays quick; an explicit --scale still wins because the
    // parser applies flags left to right.
    let mut args: Vec<String> = vec!["--scale".into(), "4096".into()];
    args.extend(std::env::args().skip(1));
    let usage = "usage: [--scale N] [--seed N] [--jobs N] [--faults SPEC] [--devices N] \
                 [--placement P] [--kill-device DEV@SECS] [--rolling-update SECS] [--heal]";
    // Fleet flags are parsed here and registered with the shared grammar
    // as pass-through extras.
    let mut devices = 1usize;
    let mut placement = PlacementPolicy::HashByFile;
    let mut kills: Vec<DeviceKill> = Vec::new();
    let mut rolling_update: Option<f64> = None;
    let mut heal = false;
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!("{usage}");
        std::process::exit(2);
    };
    {
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--devices" => {
                    devices = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|d: &usize| *d >= 1)
                        .unwrap_or_else(|| fail("--devices expects a positive integer"));
                }
                "--placement" => {
                    placement = it
                        .next()
                        .and_then(|v| PlacementPolicy::parse(v))
                        .unwrap_or_else(|| fail("--placement expects rr|hash|capacity"));
                }
                "--kill-device" => match it.next() {
                    Some(v) => match DeviceKill::parse(v) {
                        Ok(k) => kills.push(k),
                        Err(e) => fail(&format!("--kill-device: {e}")),
                    },
                    None => fail("--kill-device requires a value"),
                },
                "--rolling-update" => {
                    rolling_update = Some(
                        it.next()
                            .and_then(|v| v.parse::<f64>().ok())
                            .filter(|s| s.is_finite() && *s >= 0.0)
                            .unwrap_or_else(|| {
                                fail("--rolling-update expects seconds (finite, >= 0)")
                            }),
                    );
                }
                "--heal" => heal = true,
                _ => {}
            }
        }
    }
    // Kill indices are validated against the fleet shape at parse time,
    // like the serve/telemetry binaries: a kill that can never match a
    // device is a config bug, not a silent no-op.
    for k in &kills {
        if k.device >= devices {
            fail(&format!(
                "--kill-device names device {} but --devices is {devices}",
                k.device
            ));
        }
    }
    // `--heal` is valueless, so it is stripped before the shared grammar
    // re-parse (extras there always consume one value).
    let hargs: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--heal")
        .cloned()
        .collect();
    let h = match Harness::parse(
        &hargs,
        &[
            "--devices",
            "--placement",
            "--kill-device",
            "--rolling-update",
        ],
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let fault_seed = h.faults.map(|p| p.seed).unwrap_or(1);
    println!(
        "Fault-rate degradation: suite deser speedup, morpheus vs baseline (scale 1/{}, fault seed {})\n",
        h.scale, fault_seed
    );
    let benches = suite();
    let mut rows = Vec::new();
    for rate in RATES {
        let hr = Harness {
            faults: plan_for(rate, fault_seed),
            ..h
        };
        let outcomes = hr.run_suite_parallel(&benches, |bench| {
            let mut sys = hr.app_system(bench);
            let conv = run_benchmark(&mut sys, bench, Mode::Conventional);
            let morp = run_benchmark(&mut sys, bench, Mode::Morpheus);
            match (conv, morp) {
                (Ok(c), Ok(m)) => {
                    assert_eq!(
                        c.report.checksum, m.report.checksum,
                        "{}: objects must stay bit-identical under faults",
                        bench.name
                    );
                    Some((m.report.deser_speedup_over(&c.report), m.report.faults))
                }
                // A run may fail cleanly (reissue budget spent); it is
                // reported, not counted into the geomean.
                _ => None,
            }
        });
        let speedups: Vec<f64> = outcomes.iter().flatten().map(|(s, _)| *s).collect();
        let failed = outcomes.len() - speedups.len();
        let mut agg = FaultCounters::default();
        for (_, c) in outcomes.iter().flatten() {
            agg.ecc_corrected += c.ecc_corrected;
            agg.media_retries += c.media_retries;
            agg.media_failures += c.media_failures;
            agg.nvme_timeouts += c.nvme_timeouts;
            agg.nvme_retries += c.nvme_retries;
            agg.core_stalls += c.core_stalls;
            agg.core_crashes += c.core_crashes;
            agg.pcie_degraded += c.pcie_degraded;
            agg.host_fallbacks += c.host_fallbacks;
        }
        rows.push(vec![
            format!("{rate:.0e}"),
            if speedups.is_empty() {
                "-".into()
            } else {
                format!("{:.2}x", geomean(&speedups))
            },
            failed.to_string(),
            agg.ecc_corrected.to_string(),
            agg.nvme_retries.to_string(),
            (agg.core_stalls + agg.core_crashes).to_string(),
            agg.pcie_degraded.to_string(),
            agg.host_fallbacks.to_string(),
        ]);
    }
    print_table(
        &[
            "fault rate",
            "deser speedup",
            "failed",
            "ecc",
            "nvme-retries",
            "core-faults",
            "pcie-degraded",
            "fallbacks",
        ],
        &rows,
    );
    println!();
    println!("speedup is the geomean over suite apps that completed; objects are checked");
    println!("bit-identical between modes at every rate (fallback keeps Morpheus correct).");

    let control_on = rolling_update.is_some() || heal;
    if devices > 1 || !kills.is_empty() || control_on {
        // The same fault ladder applied fleet-wide to an N-device serving
        // cell: every device degrades identically, so the table isolates
        // how the *serving plane* (admission, redispatch, fallback)
        // absorbs faults at fleet scale — under the kill schedule and
        // control plane when given.
        println!();
        let mut header = format!(
            "Fleet serving resilience: {devices} devices, placement {placement}, \
             morpheus @ 4000 rps x 0.02s, 3 apps"
        );
        for k in &kills {
            header.push_str(&format!(
                ", kill dev{}@{:.3}s",
                k.device,
                k.at.as_secs_f64()
            ));
        }
        if let Some(s) = rolling_update {
            header.push_str(&format!(", rolling-update @{s:.3}s"));
        }
        if heal {
            header.push_str(", heal");
        }
        println!("{header}");
        let mut frows = Vec::new();
        let mut last_control = None;
        for rate in RATES {
            let mut fc = FleetConfig::new(devices);
            fc.placement = placement;
            fc.seed = h.seed;
            fc.kills = kills.clone();
            fc.control.rolling = rolling_update.map(RollingUpdate::starting_at);
            if heal {
                fc.control.heal = Some(HealPolicy::default());
            }
            let mut fleet = Fleet::new(SystemParams::paper_testbed(), fc);
            let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
            let mut specs = Vec::new();
            for i in 0..3u64 {
                let name = format!("svc{i}");
                let file = format!("{name}.txt");
                let mut rng = SplitMix64::new(h.seed ^ i.wrapping_mul(0x9E37_79B9));
                let mut w = TextWriter::new();
                for _ in 0..(64 * 1024 / 12) {
                    w.write_u64(rng.next_below(100_000));
                    w.sep();
                    w.write_u64(rng.next_below(100_000));
                    w.newline();
                }
                fleet
                    .create_input_file(&file, &w.into_bytes())
                    .expect("staging tenant input");
                specs.push(AppSpec::cpu_app(&name, &file, schema.clone(), 1, 50.0));
            }
            if let Some(plan) = plan_for(rate, fault_seed) {
                fleet.set_fault_plan(plan);
            }
            let mut cfg = ServeConfig::new(4000.0, 0.02);
            cfg.mode = Mode::Morpheus;
            cfg.seed = h.seed;
            let rep = fleet.serve(&specs, &cfg).unwrap_or_else(|e| {
                eprintln!("error: fleet serve failed: {}", render_error_chain(&e));
                std::process::exit(1);
            });
            let a = &rep.aggregate;
            if rep.control.is_some() {
                last_control = rep.control.clone();
            }
            frows.push(vec![
                format!("{rate:.0e}"),
                a.offered.to_string(),
                a.completed.to_string(),
                a.shed.to_string(),
                a.fault_redispatches.to_string(),
                a.failed.to_string(),
                format!("{:.1}", a.sustained_rps),
            ]);
        }
        print_table(
            &[
                "fault rate",
                "offered",
                "done",
                "shed",
                "redisp",
                "fail",
                "sust_rps",
            ],
            &frows,
        );
        if let Some(c) = &last_control {
            // The plan is rate-independent (it depends only on the fleet
            // shape and schedule), so one summary covers the whole sweep.
            println!();
            print!("{c}");
        }
    }
}
