//! Fleet determinism: the sharded serving plane must be byte-identical
//! across reruns and `--jobs` fan-outs, a one-device fleet must reproduce
//! the single-SSD reports bit for bit, and a fully-dead fleet must fail
//! with a typed error, not a panic.

use morpheus::{
    AppSpec, DeviceKill, Fleet, FleetConfig, Mode, PlacementPolicy, RunError, ServeConfig, System,
    SystemParams,
};
use morpheus_bench::run_parallel;
use morpheus_format::{FieldKind, Schema, TextWriter};
use morpheus_simcore::{render_error_chain, SplitMix64};
use proptest::prelude::*;

fn edge_text(records: u32, salt: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(salt);
    let mut w = TextWriter::new();
    for _ in 0..records {
        w.write_u64(rng.next_below(100_000));
        w.sep();
        w.write_u64(rng.next_below(100_000));
        w.newline();
    }
    w.into_bytes()
}

/// Stages `napps` tenants on a fresh fleet of the given shape.
fn build_fleet(cfg: FleetConfig, napps: usize, records: u32) -> (Fleet, Vec<AppSpec>) {
    let mut fleet = Fleet::new(SystemParams::paper_testbed(), cfg);
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let mut specs = Vec::new();
    for i in 0..napps {
        let file = format!("svc{i}.txt");
        fleet
            .create_input_file(&file, &edge_text(records, i as u64))
            .unwrap();
        specs.push(AppSpec::cpu_app(
            &format!("svc{i}"),
            &file,
            schema.clone(),
            1,
            50.0,
        ));
    }
    (fleet, specs)
}

fn serve_cfg(rps: f64, seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(rps, 0.015);
    cfg.mode = Mode::Morpheus;
    cfg.seed = seed;
    cfg
}

/// Renders everything an operator would diff: the full fleet report
/// (placement, per-device rows, aggregate) — the integration-level
/// equivalent of the CLI byte-diff CI runs.
fn render(cfg: FleetConfig, napps: usize, rps: f64, seed: u64) -> String {
    let (mut fleet, specs) = build_fleet(cfg, napps, 300);
    let rep = fleet.serve(&specs, &serve_cfg(rps, seed)).unwrap();
    format!("placement={:?}\n{rep}", rep.placement)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Rerunning an arbitrary fleet shape reproduces every byte, and a
    /// 4-way jobs fan-out of an rps ladder matches the serial order.
    #[test]
    fn fleet_runs_are_byte_identical_across_reruns_and_jobs(
        devices in 1usize..5,
        napps in 1usize..7,
        policy_idx in 0usize..3,
        seed in 1u64..1_000,
    ) {
        let policy = [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::HashByFile,
            PlacementPolicy::CapacityAware,
        ][policy_idx];
        let shape = || {
            let mut c = FleetConfig::new(devices);
            c.placement = policy;
            c.seed = seed;
            c
        };
        // Rerun identity.
        prop_assert_eq!(
            render(shape(), napps, 3000.0, seed),
            render(shape(), napps, 3000.0, seed)
        );
        // Jobs-fan-out identity over an rps ladder: each cell builds its
        // own fleet (the bench binaries' recipe), so worker count must
        // not leak into any byte.
        let ladder = [1000.0, 2000.0, 4000.0];
        let serial = run_parallel(1, &ladder, |r| render(shape(), napps, *r, seed));
        let fanned = run_parallel(4, &ladder, |r| render(shape(), napps, *r, seed));
        prop_assert_eq!(serial, fanned);
    }

    /// A one-device fleet is the single-SSD simulator, bit for bit: same
    /// report rendering, same checksums, same admission counts.
    #[test]
    fn single_device_fleet_reproduces_solo_reports(
        napps in 1usize..6,
        seed in 1u64..1_000,
        rps in 1500.0f64..6000.0,
    ) {
        let (mut fleet, specs) = build_fleet(FleetConfig::new(1), napps, 300);
        let fleet_rep = fleet.serve(&specs, &serve_cfg(rps, seed)).unwrap();

        let mut solo = System::new(SystemParams::paper_testbed());
        for i in 0..napps {
            solo.create_input_file(&format!("svc{i}.txt"), &edge_text(300, i as u64))
                .unwrap();
        }
        let solo_rep = solo.serve(&specs, &serve_cfg(rps, seed)).unwrap();
        prop_assert_eq!(format!("{}", fleet_rep.aggregate), format!("{solo_rep}"));
        prop_assert_eq!(fleet_rep.aggregate.checksum, solo_rep.checksum);
        prop_assert_eq!(fleet_rep.aggregate.offered, solo_rep.offered);
        prop_assert_eq!(fleet_rep.per_device.len(), 1);
    }
}

#[test]
fn kill_rebalance_is_deterministic_and_complete() {
    let shape = || {
        let mut c = FleetConfig::new(3);
        c.placement = PlacementPolicy::RoundRobin;
        c.kills = vec![DeviceKill::parse("0@0.005").unwrap()];
        c
    };
    let a = render(shape(), 6, 4000.0, 7);
    let b = render(shape(), 6, 4000.0, 7);
    assert_eq!(a, b, "a kill schedule must not break byte-determinism");

    let (mut fleet, specs) = build_fleet(shape(), 6, 300);
    let rep = fleet.serve(&specs, &serve_cfg(4000.0, 7)).unwrap();
    assert!(rep.rebalanced > 0, "post-kill arrivals must migrate");
    assert_eq!(
        rep.aggregate.completed + rep.aggregate.shed + rep.aggregate.failed,
        rep.aggregate.offered,
        "every offered request is still accounted for after the drain"
    );
}

#[test]
fn placement_targeting_a_dead_fleet_is_a_typed_error() {
    let mut cfg = FleetConfig::new(2);
    cfg.kills = vec![
        DeviceKill::parse("0@0").unwrap(),
        DeviceKill::parse("1@0").unwrap(),
    ];
    let (mut fleet, specs) = build_fleet(cfg, 2, 100);
    let err = fleet.serve(&specs, &serve_cfg(3000.0, 42)).unwrap_err();
    assert!(
        matches!(err, RunError::DeviceDown(_)),
        "expected RunError::DeviceDown, got {err:?}"
    );
    let chain = render_error_chain(&err);
    assert!(chain.contains("no healthy device"), "chain: {chain}");
    assert!(chain.contains("killed at"), "chain: {chain}");
}
