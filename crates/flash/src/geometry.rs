//! Physical geometry of the flash array and physical addressing.

/// Physical page address: a flat index into the array, convertible to and
/// from (channel, die, plane, block, page) coordinates via [`FlashGeometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppa(pub u64);

/// Global block identifier (flat index over all planes of all dies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// Shape of the flash array.
///
/// The default mirrors the Morpheus-SSD prototype scale (512 GB over 8
/// channels); [`FlashGeometry::small`] is a tiny array for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Independent channels (each with its own bus to the controller).
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Erase blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Bytes per page.
    pub page_bytes: u32,
}

impl FlashGeometry {
    /// A tiny geometry for tests: 2 channels × 1 die × 1 plane × 8 blocks ×
    /// 16 pages × 4 KiB (1 MiB total).
    pub fn small() -> Self {
        FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_bytes: 4096,
        }
    }

    /// A medium geometry suitable for workload runs without excessive
    /// memory: 8 channels × 1 die × 1 plane × 256 blocks × 64 pages ×
    /// 16 KiB (2 GiB of flash).
    pub fn workload() -> Self {
        FlashGeometry {
            channels: 8,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 256,
            pages_per_block: 64,
            page_bytes: 16384,
        }
    }

    /// Pages per die.
    pub fn pages_per_die(&self) -> u64 {
        self.planes_per_die as u64 * self.blocks_per_plane as u64 * self.pages_per_block as u64
    }

    /// Total pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.channels as u64 * self.dies_per_channel as u64 * self.pages_per_die()
    }

    /// Total erase blocks in the array.
    pub fn total_blocks(&self) -> u64 {
        self.total_pages() / self.pages_per_block as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Builds a physical page address from coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn ppa(&self, channel: u32, die: u32, plane: u32, block: u32, page: u32) -> Ppa {
        assert!(channel < self.channels, "channel {channel} out of range");
        assert!(die < self.dies_per_channel, "die {die} out of range");
        assert!(plane < self.planes_per_die, "plane {plane} out of range");
        assert!(block < self.blocks_per_plane, "block {block} out of range");
        assert!(page < self.pages_per_block, "page {page} out of range");
        let idx = ((((channel as u64 * self.dies_per_channel as u64 + die as u64)
            * self.planes_per_die as u64
            + plane as u64)
            * self.blocks_per_plane as u64
            + block as u64)
            * self.pages_per_block as u64)
            + page as u64;
        Ppa(idx)
    }

    /// The channel a physical page lives on.
    pub fn channel_of(&self, ppa: Ppa) -> u32 {
        (ppa.0 / (self.dies_per_channel as u64 * self.pages_per_die())) as u32
    }

    /// The global block containing a physical page.
    pub fn block_of(&self, ppa: Ppa) -> BlockId {
        BlockId(ppa.0 / self.pages_per_block as u64)
    }

    /// Page offset within its block.
    pub fn page_in_block(&self, ppa: Ppa) -> u32 {
        (ppa.0 % self.pages_per_block as u64) as u32
    }

    /// First physical page of a block.
    pub fn first_page_of(&self, block: BlockId) -> Ppa {
        Ppa(block.0 * self.pages_per_block as u64)
    }

    /// The channel a block lives on.
    pub fn channel_of_block(&self, block: BlockId) -> u32 {
        self.channel_of(self.first_page_of(block))
    }

    /// True if the address names a page in the array.
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.0 < self.total_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply_out() {
        let g = FlashGeometry::small();
        assert_eq!(g.total_pages(), 2 * 8 * 16);
        assert_eq!(g.total_blocks(), 2 * 8);
        assert_eq!(g.capacity_bytes(), 2 * 8 * 16 * 4096);
    }

    #[test]
    fn coordinates_round_trip() {
        let g = FlashGeometry::workload();
        let ppa = g.ppa(5, 0, 0, 100, 37);
        assert_eq!(g.channel_of(ppa), 5);
        assert_eq!(g.page_in_block(ppa), 37);
        let b = g.block_of(ppa);
        assert_eq!(g.channel_of_block(b), 5);
        assert_eq!(g.first_page_of(b).0 + 37, ppa.0);
    }

    #[test]
    fn all_ppas_unique_and_in_range() {
        let g = FlashGeometry::small();
        let mut seen = std::collections::HashSet::new();
        for c in 0..g.channels {
            for b in 0..g.blocks_per_plane {
                for p in 0..g.pages_per_block {
                    let ppa = g.ppa(c, 0, 0, b, p);
                    assert!(g.contains(ppa));
                    assert!(seen.insert(ppa));
                }
            }
        }
        assert_eq!(seen.len() as u64, g.total_pages());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coordinates_panic() {
        let g = FlashGeometry::small();
        let _ = g.ppa(2, 0, 0, 0, 0);
    }
}
