//! Fleet control plane: a deterministic per-device lifecycle driven in
//! sim-time alongside [`Fleet::serve`](crate::Fleet::serve).
//!
//! The paper's Morpheus-SSD is a single device; a production fleet also
//! needs the *management* half — provision, firmware update, drain,
//! reboot, return-to-service — to be as principled as the datapath. This
//! module models that half without giving up byte-determinism: the
//! operator's intent (a [`RollingUpdate`] schedule, a [`HealPolicy`] for
//! fault-plane kills) is **compiled ahead of serving** into a
//! [`ControlPlan`] — one per-device timeline of lifecycle
//! [`Transition`]s, each validated through the [`Lifecycle`] state
//! machine. Routing then consults the plan: only an
//! [`InService`](DeviceState::InService) device admits new arrivals, so a
//! [`Draining`](DeviceState::Draining) device stops receiving traffic
//! while its already-routed requests run to completion (the fleet serves
//! each device's slice in full), updates, reboots, and returns.
//!
//! After the run, [`ControlReport::build`] closes the loop: it consumes
//! each device's [`SloOutcome`](morpheus_simcore::SloOutcome) verdicts
//! and burn-rate alerts from the telemetry plane and classifies every
//! device's [`Health`], next to the transition history the plan executed.
//! Because the plan is a pure function of (control config, kill schedule,
//! fleet size, horizon) and the observations are a pure function of the
//! run, every byte of the report replays identically across reruns and
//! `--jobs` fan-outs. See `docs/CONTROL_PLANE.md`.

use crate::fleet::DeviceKill;
use crate::serve::ServeReport;
use morpheus_simcore::{SimDuration, SimTime};
use std::error::Error;
use std::fmt;

/// Where a device sits in its operational lifecycle.
///
/// The legal transitions (enforced by [`Lifecycle::transition`]):
///
/// ```text
/// Provisioning → InService
/// InService    → Draining
/// Draining     → Updating
/// Updating     → Rebooting
/// Rebooting    → InService
/// any (except Failed) → Failed
/// Failed       → Rebooting          (the heal path)
/// ```
///
/// Only `InService` admits new arrivals; every other state steers
/// routing onto healthy peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceState {
    /// Being built/imaged; not yet serving.
    Provisioning,
    /// Healthy and admitting new arrivals.
    InService,
    /// No longer admitting; in-flight work runs to completion.
    Draining,
    /// Firmware update in progress (drained first).
    Updating,
    /// Coming back up after an update or a heal.
    Rebooting,
    /// Dead (fault-plane kill); admits nothing until healed.
    Failed,
}

impl DeviceState {
    /// All six states, in lifecycle order (useful for exhaustive tests).
    pub const ALL: [DeviceState; 6] = [
        DeviceState::Provisioning,
        DeviceState::InService,
        DeviceState::Draining,
        DeviceState::Updating,
        DeviceState::Rebooting,
        DeviceState::Failed,
    ];
}

impl fmt::Display for DeviceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeviceState::Provisioning => "provisioning",
            DeviceState::InService => "in-service",
            DeviceState::Draining => "draining",
            DeviceState::Updating => "updating",
            DeviceState::Rebooting => "rebooting",
            DeviceState::Failed => "failed",
        })
    }
}

/// The typed rejection for a lifecycle edge that is not in the state
/// machine (e.g. `InService → Updating` without draining first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The device whose machine rejected the edge.
    pub device: usize,
    /// The state the device was in.
    pub from: DeviceState,
    /// The state the edge asked for.
    pub to: DeviceState,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {}: illegal lifecycle transition {} -> {}",
            self.device, self.from, self.to
        )
    }
}

impl Error for IllegalTransition {}

/// One device's lifecycle state machine.
#[derive(Debug, Clone)]
pub struct Lifecycle {
    device: usize,
    state: DeviceState,
}

impl Lifecycle {
    /// A fresh machine for `device`, starting in
    /// [`Provisioning`](DeviceState::Provisioning).
    pub fn new(device: usize) -> Self {
        Lifecycle {
            device,
            state: DeviceState::Provisioning,
        }
    }

    /// The current state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// Whether the edge `from → to` is in the state machine (see
    /// [`DeviceState`] for the full table).
    pub fn legal(from: DeviceState, to: DeviceState) -> bool {
        use DeviceState::*;
        matches!(
            (from, to),
            (Provisioning, InService)
                | (InService, Draining)
                | (Draining, Updating)
                | (Updating, Rebooting)
                | (Rebooting, InService)
                | (Provisioning, Failed)
                | (InService, Failed)
                | (Draining, Failed)
                | (Updating, Failed)
                | (Rebooting, Failed)
                | (Failed, Rebooting)
        )
    }

    /// Advances the machine to `to`.
    ///
    /// # Errors
    ///
    /// [`IllegalTransition`] when the edge is not legal; the state is
    /// left unchanged.
    pub fn transition(&mut self, to: DeviceState) -> Result<(), IllegalTransition> {
        if !Self::legal(self.state, to) {
            return Err(IllegalTransition {
                device: self.device,
                from: self.state,
                to,
            });
        }
        self.state = to;
        Ok(())
    }
}

/// A one-at-a-time rolling firmware update across the fleet: device 0
/// drains at `start`, and each device's full drain→update→reboot window
/// finishes before the next device begins, so at most one device is out
/// of service for maintenance at any instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollingUpdate {
    /// When device 0 begins draining.
    pub start: SimTime,
    /// Grace window with admission off before the update begins
    /// (in-flight work completes during it).
    pub drain: SimDuration,
    /// Firmware write window.
    pub update: SimDuration,
    /// Reboot window before the device re-admits.
    pub reboot: SimDuration,
}

/// Default drain grace window (2 ms sim-time).
pub const DEFAULT_DRAIN: SimDuration = SimDuration::from_millis(2);
/// Default firmware-write window (2 ms sim-time).
pub const DEFAULT_UPDATE: SimDuration = SimDuration::from_millis(2);
/// Default post-update reboot window (1 ms sim-time).
pub const DEFAULT_REBOOT: SimDuration = SimDuration::from_millis(1);

impl RollingUpdate {
    /// A rolling update starting `start_s` seconds into the run with the
    /// default per-phase windows (the `--rolling-update SECS` spelling).
    pub fn starting_at(start_s: f64) -> Self {
        RollingUpdate {
            start: SimTime::ZERO + SimDuration::from_secs_f64(start_s),
            drain: DEFAULT_DRAIN,
            update: DEFAULT_UPDATE,
            reboot: DEFAULT_REBOOT,
        }
    }

    /// One device's full maintenance window (drain + update + reboot).
    pub fn cycle(&self) -> SimDuration {
        self.drain + self.update + self.reboot
    }
}

/// How the healing loop turns a fault-plane kill into a temporary
/// outage: `detect` after the kill the device is pulled for repair
/// ([`Failed`](DeviceState::Failed) →
/// [`Rebooting`](DeviceState::Rebooting)), and `reboot` later it
/// re-admits. Without a heal policy a killed device stays `Failed` for
/// the rest of the run — exactly the pre-control-plane semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealPolicy {
    /// Time from the kill to the repair beginning.
    pub detect: SimDuration,
    /// Repair/reboot window before the device re-admits.
    pub reboot: SimDuration,
}

impl Default for HealPolicy {
    /// 2 ms to detect and pull, 3 ms to repair and reboot.
    fn default() -> Self {
        HealPolicy {
            detect: SimDuration::from_millis(2),
            reboot: SimDuration::from_millis(3),
        }
    }
}

/// The operator's intent for one fleet run. Inactive by default, so a
/// control-free [`FleetConfig`](crate::FleetConfig) serves byte-for-byte
/// like the pre-control-plane build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControlConfig {
    /// Rolling firmware update schedule (none = no updates).
    pub rolling: Option<RollingUpdate>,
    /// Heal fault-plane kills back into service (none = kills are
    /// permanent, the legacy semantics).
    pub heal: Option<HealPolicy>,
}

impl ControlConfig {
    /// True when any control behavior is requested.
    pub fn is_active(&self) -> bool {
        self.rolling.is_some() || self.heal.is_some()
    }
}

/// One executed lifecycle edge on a device's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// When the device entered `to`.
    pub at: SimTime,
    /// The state entered.
    pub to: DeviceState,
}

/// How many lifecycle edges entered each state, fleet-wide — the
/// transition counters surfaced in
/// [`FleetReport`](crate::FleetReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionCounts {
    /// Entries into `InService` (provisioning at t=0 included).
    pub in_service: u64,
    /// Entries into `Draining`.
    pub draining: u64,
    /// Entries into `Updating`.
    pub updating: u64,
    /// Entries into `Rebooting`.
    pub rebooting: u64,
    /// Entries into `Failed`.
    pub failed: u64,
}

impl fmt::Display for TransitionCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in_service={} draining={} updating={} rebooting={} failed={}",
            self.in_service, self.draining, self.updating, self.rebooting, self.failed
        )
    }
}

/// A planned lifecycle event before validation. Scheduled events (the
/// rolling-update phases, heal recoveries) carry the state they expect
/// the device to be in and are skipped when a kill overtook the plan —
/// e.g. a device that died mid-drain must not ride the leftover
/// `Rebooting` phase back into service, even though `Failed → Rebooting`
/// is a legal (heal) edge. Mandatory events (kills) always land.
#[derive(Debug, Clone, Copy)]
struct PlannedEvent {
    at: SimTime,
    /// The state this event expects to find (`None` = mandatory, lands
    /// from any state).
    from: Option<DeviceState>,
    to: DeviceState,
}

impl PlannedEvent {
    fn mandatory(&self) -> bool {
        self.from.is_none()
    }
}

/// The compiled control plan: one validated lifecycle timeline per
/// device. Pure function of (config, fleet size, kill schedule,
/// horizon), so routing decisions taken against it are
/// byte-deterministic.
#[derive(Debug, Clone)]
pub struct ControlPlan {
    timelines: Vec<Vec<Transition>>,
}

impl ControlPlan {
    /// Compiles the operator's intent plus the kill schedule into
    /// per-device timelines.
    ///
    /// Every device provisions into service at t=0. A rolling update
    /// schedules device `i`'s drain at `start + i * cycle`; scheduled
    /// phases past `horizon` (the serve duration) are dropped — they
    /// would not be observed by the run. Kills land as mandatory
    /// `Failed` edges; with a heal policy each kill is followed by a
    /// pull-and-reboot recovery. Planned edges that find the machine in
    /// the wrong state (the device died mid-drain, say) are skipped
    /// deterministically rather than rejected.
    pub fn compile(
        cfg: &ControlConfig,
        devices: usize,
        kills: &[DeviceKill],
        horizon: SimTime,
    ) -> ControlPlan {
        let mut timelines = Vec::with_capacity(devices);
        for dev in 0..devices {
            let mut events = vec![PlannedEvent {
                at: SimTime::ZERO,
                from: None,
                to: DeviceState::InService,
            }];
            if let Some(r) = &cfg.rolling {
                let base = r.start + r.cycle() * dev as u64;
                for (offset, from, to) in [
                    (
                        SimDuration::ZERO,
                        DeviceState::InService,
                        DeviceState::Draining,
                    ),
                    (r.drain, DeviceState::Draining, DeviceState::Updating),
                    (
                        r.drain + r.update,
                        DeviceState::Updating,
                        DeviceState::Rebooting,
                    ),
                    (r.cycle(), DeviceState::Rebooting, DeviceState::InService),
                ] {
                    let at = base + offset;
                    if at < horizon {
                        events.push(PlannedEvent {
                            at,
                            from: Some(from),
                            to,
                        });
                    }
                }
            }
            let mut dev_kills: Vec<SimTime> = kills
                .iter()
                .filter(|k| k.device == dev)
                .map(|k| k.at)
                .collect();
            dev_kills.sort();
            for t in dev_kills {
                events.push(PlannedEvent {
                    at: t,
                    from: None,
                    to: DeviceState::Failed,
                });
                if let Some(h) = &cfg.heal {
                    events.push(PlannedEvent {
                        at: t + h.detect,
                        from: Some(DeviceState::Failed),
                        to: DeviceState::Rebooting,
                    });
                    events.push(PlannedEvent {
                        at: t + h.detect + h.reboot,
                        from: Some(DeviceState::Rebooting),
                        to: DeviceState::InService,
                    });
                }
            }
            // Mandatory edges win ties (a kill at the exact drain start
            // kills); otherwise schedule order is already insertion
            // order, and the sort is stable.
            events.sort_by_key(|e| (e.at, !e.mandatory()));
            let mut machine = Lifecycle::new(dev);
            let mut timeline = Vec::new();
            for ev in events {
                if let Some(from) = ev.from {
                    if machine.state() != from {
                        continue; // a kill overtook this scheduled phase
                    }
                }
                if ev.to == machine.state() {
                    continue; // double-kill of a dead device, etc.
                }
                machine
                    .transition(ev.to)
                    .expect("compiled edges respect the state machine");
                timeline.push(Transition {
                    at: ev.at,
                    to: ev.to,
                });
            }
            timelines.push(timeline);
        }
        ControlPlan { timelines }
    }

    /// Number of devices the plan covers.
    pub fn devices(&self) -> usize {
        self.timelines.len()
    }

    /// One device's executed timeline, in time order.
    pub fn timeline(&self, device: usize) -> &[Transition] {
        &self.timelines[device]
    }

    /// The device's state at `at` (the last transition at or before it;
    /// [`Provisioning`](DeviceState::Provisioning) before any).
    pub fn state_at(&self, device: usize, at: SimTime) -> DeviceState {
        self.timelines[device]
            .iter()
            .take_while(|t| t.at <= at)
            .last()
            .map_or(DeviceState::Provisioning, |t| t.to)
    }

    /// True when the device admits new arrivals at `at` (only
    /// [`InService`](DeviceState::InService) does).
    pub fn admits(&self, device: usize, at: SimTime) -> bool {
        self.state_at(device, at) == DeviceState::InService
    }

    /// When the device most recently left service as of `at` (`None`
    /// while it is in service) — the timestamp carried by the
    /// routing-failure error.
    pub fn down_since(&self, device: usize, at: SimTime) -> Option<SimTime> {
        if self.admits(device, at) {
            return None;
        }
        self.timelines[device]
            .iter()
            .take_while(|t| t.at <= at)
            .last()
            .map(|t| t.at)
            .or(Some(SimTime::ZERO))
    }

    /// Fleet-wide transition counters over every executed edge.
    pub fn counts(&self) -> TransitionCounts {
        let mut c = TransitionCounts::default();
        for tl in &self.timelines {
            for t in tl {
                match t.to {
                    DeviceState::InService => c.in_service += 1,
                    DeviceState::Draining => c.draining += 1,
                    DeviceState::Updating => c.updating += 1,
                    DeviceState::Rebooting => c.rebooting += 1,
                    DeviceState::Failed => c.failed += 1,
                    DeviceState::Provisioning => {}
                }
            }
        }
        c
    }
}

/// A device's post-run health classification, derived from its SLO
/// verdicts and burn-rate alerts (see [`ControlReport::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Every objective met, no burn-rate alerts.
    Healthy,
    /// Objectives met but the burn rate alerted at least once.
    AtRisk,
    /// At least one objective violated.
    Violating,
    /// No telemetry sampler was armed; no signal to judge by.
    Unknown,
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Health::Healthy => "healthy",
            Health::AtRisk => "at-risk",
            Health::Violating => "violating",
            Health::Unknown => "no-slo",
        })
    }
}

/// One device's row in the control report.
#[derive(Debug, Clone)]
pub struct DeviceControl {
    /// The executed lifecycle timeline.
    pub transitions: Vec<Transition>,
    /// The state at end of run.
    pub final_state: DeviceState,
    /// Post-run SLO/burn-rate classification.
    pub health: Health,
    /// Burn-rate alerts observed on this device across all objectives.
    pub burn_alerts: u64,
}

/// What the control plane did and observed in one fleet run: the
/// transition counters, and per device the executed timeline plus the
/// health verdict distilled from its telemetry `SloOutcome`s.
#[derive(Debug, Clone)]
pub struct ControlReport {
    /// Fleet-wide lifecycle edge counters.
    pub counts: TransitionCounts,
    /// Per-device timeline + health, in device order.
    pub devices: Vec<DeviceControl>,
}

impl ControlReport {
    /// Closes the control loop after serving: pairs each device's
    /// executed timeline with the health verdict from its telemetry
    /// report — `Violating` when any objective failed, `AtRisk` when the
    /// burn rate alerted, `Healthy` otherwise, `Unknown` without a
    /// sampler.
    pub fn build(plan: &ControlPlan, per_device: &[ServeReport]) -> ControlReport {
        let devices = (0..plan.devices())
            .map(|i| {
                let transitions = plan.timeline(i).to_vec();
                let final_state = transitions
                    .last()
                    .map_or(DeviceState::Provisioning, |t| t.to);
                let (health, burn_alerts) = match per_device.get(i).and_then(|r| {
                    r.telemetry
                        .as_ref()
                        .filter(|t| !t.slo.is_empty())
                        .map(|t| &t.slo)
                }) {
                    None => (Health::Unknown, 0),
                    Some(slo) => {
                        let alerts: u64 = slo.iter().map(|o| o.alerts).sum();
                        let health = if slo.iter().any(|o| !o.met) {
                            Health::Violating
                        } else if alerts > 0 {
                            Health::AtRisk
                        } else {
                            Health::Healthy
                        };
                        (health, alerts)
                    }
                };
                DeviceControl {
                    transitions,
                    final_state,
                    health,
                    burn_alerts,
                }
            })
            .collect();
        ControlReport {
            counts: plan.counts(),
            devices,
        }
    }

    /// True when every device ended the run admitting traffic.
    pub fn all_in_service(&self) -> bool {
        self.devices
            .iter()
            .all(|d| d.final_state == DeviceState::InService)
    }
}

impl fmt::Display for ControlReport {
    /// One `control:` header line plus one `ctl devN:` line per device
    /// — final state, health, and the full timeline.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "control: transitions {}", self.counts)?;
        for (i, d) in self.devices.iter().enumerate() {
            write!(
                f,
                "ctl dev{i}: {} health={} alerts={} |",
                d.final_state, d.health, d.burn_alerts
            )?;
            for t in &d.transitions {
                write!(f, " {}@{:.3}s", t.to, t.at.as_secs_f64())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kill(device: usize, at_ms: u64) -> DeviceKill {
        DeviceKill {
            device,
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
        }
    }

    fn horizon_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn lifecycle_happy_path_is_the_update_cycle() {
        let mut m = Lifecycle::new(0);
        assert_eq!(m.state(), DeviceState::Provisioning);
        for s in [
            DeviceState::InService,
            DeviceState::Draining,
            DeviceState::Updating,
            DeviceState::Rebooting,
            DeviceState::InService,
        ] {
            m.transition(s).unwrap();
            assert_eq!(m.state(), s);
        }
    }

    #[test]
    fn lifecycle_heal_path_recovers_a_failure() {
        let mut m = Lifecycle::new(3);
        m.transition(DeviceState::InService).unwrap();
        m.transition(DeviceState::Failed).unwrap();
        m.transition(DeviceState::Rebooting).unwrap();
        m.transition(DeviceState::InService).unwrap();
    }

    #[test]
    fn lifecycle_rejects_shortcuts_and_leaves_state_unchanged() {
        let mut m = Lifecycle::new(7);
        m.transition(DeviceState::InService).unwrap();
        let err = m.transition(DeviceState::Updating).unwrap_err();
        assert_eq!(
            err,
            IllegalTransition {
                device: 7,
                from: DeviceState::InService,
                to: DeviceState::Updating,
            }
        );
        assert_eq!(m.state(), DeviceState::InService, "rejection is a no-op");
        let text = format!("{err}");
        assert!(text.contains("illegal lifecycle transition"), "{text}");
        assert!(text.contains("in-service -> updating"), "{text}");
    }

    #[test]
    fn legality_table_is_exactly_the_documented_edges() {
        use DeviceState::*;
        let legal = [
            (Provisioning, InService),
            (InService, Draining),
            (Draining, Updating),
            (Updating, Rebooting),
            (Rebooting, InService),
            (Provisioning, Failed),
            (InService, Failed),
            (Draining, Failed),
            (Updating, Failed),
            (Rebooting, Failed),
            (Failed, Rebooting),
        ];
        for from in DeviceState::ALL {
            for to in DeviceState::ALL {
                assert_eq!(
                    Lifecycle::legal(from, to),
                    legal.contains(&(from, to)),
                    "{from} -> {to}"
                );
            }
        }
    }

    #[test]
    fn plan_without_control_matches_kill_semantics() {
        let cfg = ControlConfig::default();
        assert!(!cfg.is_active());
        let plan = ControlPlan::compile(&cfg, 2, &[kill(1, 5)], horizon_ms(50));
        let t4 = horizon_ms(4);
        let t5 = horizon_ms(5);
        assert!(plan.admits(0, t5));
        assert!(plan.admits(1, t4));
        assert!(!plan.admits(1, t5), "dead from the kill instant onward");
        assert_eq!(plan.state_at(1, t5), DeviceState::Failed);
        assert_eq!(plan.down_since(1, t5), Some(t5));
        assert_eq!(plan.down_since(0, t5), None);
    }

    #[test]
    fn rolling_update_staggers_one_device_at_a_time() {
        let cfg = ControlConfig {
            rolling: Some(RollingUpdate::starting_at(0.002)),
            ..Default::default()
        };
        let plan = ControlPlan::compile(&cfg, 4, &[], horizon_ms(50));
        let cycle = DEFAULT_DRAIN + DEFAULT_UPDATE + DEFAULT_REBOOT;
        // Every device walks the full cycle and returns.
        for d in 0..4 {
            let states: Vec<DeviceState> = plan.timeline(d).iter().map(|t| t.to).collect();
            assert_eq!(
                states,
                vec![
                    DeviceState::InService,
                    DeviceState::Draining,
                    DeviceState::Updating,
                    DeviceState::Rebooting,
                    DeviceState::InService,
                ],
                "device {d}"
            );
        }
        // At most one device is out of service at any sampled instant.
        let horizon = horizon_ms(50);
        let mut at = SimTime::ZERO;
        while at < horizon {
            let out = (0..4).filter(|&d| !plan.admits(d, at)).count();
            assert!(out <= 1, "{out} devices out at {:.4}s", at.as_secs_f64());
            at += SimDuration::from_micros(250);
        }
        // Device 1 starts exactly one cycle after device 0.
        assert_eq!(
            plan.timeline(1)[1].at,
            plan.timeline(0)[1].at + cycle,
            "stagger is one full cycle"
        );
        let c = plan.counts();
        assert_eq!((c.draining, c.updating, c.rebooting), (4, 4, 4));
        assert_eq!(c.in_service, 8, "4 provisions + 4 returns");
        assert_eq!(c.failed, 0);
    }

    #[test]
    fn rolling_phases_past_the_horizon_are_dropped() {
        let cfg = ControlConfig {
            rolling: Some(RollingUpdate::starting_at(0.001)),
            ..Default::default()
        };
        // Horizon cuts device 0 off mid-drain: it drains but never
        // updates, and device 1 never starts.
        let plan = ControlPlan::compile(&cfg, 2, &[], horizon_ms(2));
        let states: Vec<DeviceState> = plan.timeline(0).iter().map(|t| t.to).collect();
        assert_eq!(states, vec![DeviceState::InService, DeviceState::Draining]);
        let states: Vec<DeviceState> = plan.timeline(1).iter().map(|t| t.to).collect();
        assert_eq!(states, vec![DeviceState::InService]);
    }

    #[test]
    fn heal_turns_a_kill_into_a_temporary_outage() {
        let cfg = ControlConfig {
            heal: Some(HealPolicy::default()),
            ..Default::default()
        };
        let plan = ControlPlan::compile(&cfg, 2, &[kill(0, 10)], horizon_ms(50));
        let states: Vec<DeviceState> = plan.timeline(0).iter().map(|t| t.to).collect();
        assert_eq!(
            states,
            vec![
                DeviceState::InService,
                DeviceState::Failed,
                DeviceState::Rebooting,
                DeviceState::InService,
            ]
        );
        assert!(!plan.admits(0, horizon_ms(12)));
        assert!(
            plan.admits(0, horizon_ms(15)),
            "detect (2ms) + reboot (3ms) after the kill the device re-admits"
        );
        assert_eq!(plan.state_at(0, horizon_ms(49)), DeviceState::InService);
    }

    #[test]
    fn kill_mid_drain_wins_and_the_overtaken_plan_is_skipped() {
        let cfg = ControlConfig {
            rolling: Some(RollingUpdate::starting_at(0.002)),
            ..Default::default()
        };
        // Kill device 0 while it is draining (drain covers [2ms, 4ms)).
        let plan = ControlPlan::compile(&cfg, 1, &[kill(0, 3)], horizon_ms(50));
        let states: Vec<DeviceState> = plan.timeline(0).iter().map(|t| t.to).collect();
        assert_eq!(
            states,
            vec![
                DeviceState::InService,
                DeviceState::Draining,
                DeviceState::Failed,
            ],
            "no heal: the update plan dies with the device"
        );
        assert_eq!(plan.state_at(0, horizon_ms(49)), DeviceState::Failed);
    }

    #[test]
    fn double_kill_of_a_dead_device_is_a_no_op() {
        let cfg = ControlConfig::default();
        let plan = ControlPlan::compile(&cfg, 1, &[kill(0, 5), kill(0, 7)], horizon_ms(50));
        assert_eq!(plan.timeline(0).len(), 2, "in-service + one failed edge");
        assert_eq!(plan.counts().failed, 1);
    }

    #[test]
    fn compile_is_deterministic() {
        let cfg = ControlConfig {
            rolling: Some(RollingUpdate::starting_at(0.001)),
            heal: Some(HealPolicy::default()),
        };
        let kills = [kill(2, 4), kill(0, 9)];
        let a = ControlPlan::compile(&cfg, 4, &kills, horizon_ms(50));
        let b = ControlPlan::compile(&cfg, 4, &kills, horizon_ms(50));
        for d in 0..4 {
            assert_eq!(a.timeline(d), b.timeline(d));
        }
    }
}
