//! The Morpheus firmware extension: StorageApp execution behind the
//! MINIT/MREAD/MWRITE/MDEINIT commands.
//!
//! Wraps the baseline SSD controller (§IV-B): the NVMe front end recognizes
//! the four new opcodes and routes all packets of one instance ID to the
//! same embedded core; the firmware stages StorageApp output in controller
//! DRAM for DMA; the FTL and conventional command handling are untouched.

use crate::deser_memo::{self, CmdRecord, DeviceReplay, MemoKey};
use crate::{AppError, DeviceCtx, StorageApp};
use morpheus_format::CostModel;
use morpheus_nvme::{
    AdminController, CompletionEntry, IdentifyController, MorpheusCaps, MorpheusCommand,
    NvmeCommand, QueuePair, StatusCode, LBA_BYTES,
};
use morpheus_simcore::{SimDuration, SimTime, TraceLayer, Tracer};
use morpheus_ssd::{Ssd, SsdError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from the Morpheus firmware, each mapping onto an NVMe status.
#[derive(Debug)]
pub enum MorpheusError {
    /// Command named an instance that does not exist.
    NoSuchInstance(u32),
    /// Instance ID already in use.
    InstanceBusy(u32),
    /// StorageApp image exceeds I-SRAM.
    CodeTooLarge {
        /// Image size.
        code_bytes: u32,
        /// I-SRAM capacity.
        isram: u32,
    },
    /// The StorageApp itself failed.
    App(AppError),
    /// The underlying drive failed.
    Ssd(SsdError),
}

impl MorpheusError {
    /// The NVMe status code posted for this error.
    pub fn status(&self) -> StatusCode {
        match self {
            MorpheusError::NoSuchInstance(_) => StatusCode::NoSuchInstance,
            MorpheusError::InstanceBusy(_) => StatusCode::InstanceBusy,
            MorpheusError::CodeTooLarge { .. } => StatusCode::CodeTooLarge,
            MorpheusError::App(AppError::SramOverflow { .. }) => StatusCode::SramOverflow,
            MorpheusError::App(_) => StatusCode::AppFault,
            MorpheusError::Ssd(e) => {
                // Walk the source chain: an exhausted-retry media failure
                // posts the NVMe unrecovered-read-error status (the host
                // falls back rather than reissuing); anything else in the
                // drive is an internal error.
                let mut cause: Option<&(dyn Error + 'static)> = Some(e);
                while let Some(c) = cause {
                    if matches!(
                        c.downcast_ref::<morpheus_ftl::FtlError>(),
                        Some(morpheus_ftl::FtlError::MediaFailure(..))
                    ) {
                        return StatusCode::MediaUncorrectable;
                    }
                    cause = c.source();
                }
                StatusCode::InternalError
            }
        }
    }
}

impl fmt::Display for MorpheusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorpheusError::NoSuchInstance(id) => write!(f, "no storageapp instance {id}"),
            MorpheusError::InstanceBusy(id) => write!(f, "instance id {id} already in use"),
            MorpheusError::CodeTooLarge { code_bytes, isram } => {
                write!(f, "code of {code_bytes} bytes exceeds {isram}-byte i-sram")
            }
            MorpheusError::App(_) => write!(f, "storageapp fault"),
            MorpheusError::Ssd(_) => write!(f, "drive request failed"),
        }
    }
}

impl Error for MorpheusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MorpheusError::App(e) => Some(e),
            MorpheusError::Ssd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AppError> for MorpheusError {
    fn from(e: AppError) -> Self {
        MorpheusError::App(e)
    }
}

impl From<SsdError> for MorpheusError {
    fn from(e: SsdError) -> Self {
        MorpheusError::Ssd(e)
    }
}

/// Result of an MDEINIT.
#[derive(Debug)]
pub struct DeinitOutcome {
    /// The StorageApp's return value (travels in the completion entry).
    pub retval: i32,
    /// Output still bound for the host (the deserialization direction's
    /// final records).
    pub host_output: Vec<u8>,
    /// Completion time.
    pub done: SimTime,
    /// Total bytes this instance streamed to flash through MWRITE.
    pub flushed_to_flash: u64,
}

/// Result of one MWRITE executed through a StorageApp.
#[derive(Debug, Clone, Copy)]
pub struct MwriteOutcome {
    /// When the app's output is durable on flash.
    pub durable: SimTime,
    /// Embedded-core time consumed.
    pub core_busy: SimDuration,
    /// Bytes the app produced and wrote at the command's LBA.
    pub bytes_written: u64,
}

/// Result of one MREAD executed through a StorageApp.
#[derive(Debug)]
pub struct MreadOutcome {
    /// Binary object bytes produced by the app for this chunk (bound for
    /// the command's DMA address).
    pub output: Vec<u8>,
    /// When the last parsed byte's output is staged and DMA can begin.
    pub done: SimTime,
    /// Embedded-core time consumed parsing this chunk.
    pub core_busy: SimDuration,
}

/// Record/replay state of one instance's deserialization (see
/// `deser_memo`). `Off` for unkeyed instances and anything that MWRITEs.
#[derive(Debug)]
enum InstanceMemo {
    Off,
    /// Fault-free keyed run with no prior recording: capture every MREAD's
    /// per-page instruction counts and outputs, publish at MDEINIT.
    Record {
        key: MemoKey,
        cmds: Vec<CmdRecord>,
    },
    /// Keyed run with a prior recording: skip the StorageApp entirely and
    /// replay the recorded functional results against live timelines.
    Play {
        rec: std::sync::Arc<DeviceReplay>,
        next: usize,
    },
}

#[derive(Debug)]
struct Instance {
    app: Box<dyn StorageApp>,
    ctx: DeviceCtx,
    /// Serialization point: packets of one instance run on one core in
    /// order (§IV-B routes same-instance packets to the same core).
    last_done: SimTime,
    dram_reserved: u64,
    /// The embedded core this instance is pinned to (§IV-B: "delivers all
    /// packets with the same instance ID to the same core").
    core: usize,
    /// MWRITE output stream: base LBA of the first MWRITE, bytes already
    /// durable, and the sub-block tail awaiting more data.
    out_base_slba: Option<u64>,
    out_flushed: u64,
    out_pending: Vec<u8>,
    memo: InstanceMemo,
}

/// The host-visible I/O queue pair id created at bring-up.
const IO_QUEUE_ID: u16 = 1;

/// The Morpheus-SSD: the baseline controller plus the StorageApp firmware.
///
/// # Example
///
/// The full command lifecycle of §IV-A — install, stream, tear down:
///
/// ```
/// use morpheus::{DeserializeApp, MorpheusSsd};
/// use morpheus_flash::{FlashGeometry, FlashTiming};
/// use morpheus_format::{CostModel, FieldKind, ParsedColumns, Schema};
/// use morpheus_simcore::SimTime;
/// use morpheus_ssd::{Ssd, SsdConfig};
///
/// # fn main() -> Result<(), morpheus::MorpheusError> {
/// let mut mssd = MorpheusSsd::new(
///     Ssd::new(SsdConfig::default(), FlashGeometry::small(), FlashTiming::default()),
///     CostModel::embedded_core(),
/// );
/// mssd.dev.load_at(0, b"5 6\n7 8\n").map_err(morpheus::MorpheusError::Ssd)?;
/// let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
/// let ready = mssd.minit(1, Box::new(DeserializeApp::new("edges", schema.clone())), SimTime::ZERO)?;
/// let out = mssd.mread(1, 0, 1, 8, ready)?;                 // MREAD through the app
/// let done = mssd.mdeinit(1, out.done)?;                    // collect the tail + retval
/// let mut bytes = out.output;
/// bytes.extend_from_slice(&done.host_output);
/// let objects = ParsedColumns::decode(schema, &bytes).unwrap();
/// assert_eq!(objects.columns[0].as_ints().unwrap(), &[5, 7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MorpheusSsd {
    /// The underlying (unmodified) drive.
    pub dev: Ssd,
    /// The admin controller: Identify and I/O queue management.
    pub admin: AdminController,
    device_cost: CostModel,
    instances: HashMap<u32, Instance>,
    parse_core_busy: SimDuration,
    tracer: Tracer,
}

impl MorpheusSsd {
    /// Wraps a baseline SSD with the Morpheus firmware and performs the
    /// driver bring-up an NVMe host does: build the controller identity
    /// and create the I/O queue pair through the admin command set.
    pub fn new(dev: Ssd, device_cost: CostModel) -> Self {
        let identity = Self::build_identity(dev.config());
        let mut admin = AdminController::new(identity, 8);
        let status = admin.create_io_queue(IO_QUEUE_ID, 64);
        assert!(
            status.is_success(),
            "io queue creation cannot fail at bring-up"
        );
        MorpheusSsd {
            dev,
            admin,
            device_cost,
            instances: HashMap::new(),
            parse_core_busy: SimDuration::ZERO,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a trace handle on the firmware and the underlying drive;
    /// StorageApp phases, flash activity, and FTL events record through it
    /// (disabled by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.dev.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The I/O queue pair the host runtime drives.
    pub fn io_queue(&mut self) -> &mut QueuePair {
        self.admin
            .io_queue(IO_QUEUE_ID)
            .expect("created at bring-up")
    }

    /// The embedded-core cost table in use.
    pub fn device_cost(&self) -> &CostModel {
        &self.device_cost
    }

    /// Total embedded-core time spent executing StorageApps (powers the
    /// SSD rail of Fig. 9).
    pub fn parse_core_busy(&self) -> SimDuration {
        self.parse_core_busy
    }

    /// Live instance count.
    pub fn live_instances(&self) -> usize {
        self.instances.len()
    }

    /// Reserves `bytes` of controller DRAM for the deserialized-object
    /// cache, through the same `alloc_dram` accounting MINIT uses for
    /// instance state — the cache tier and StorageApp instances compete
    /// for the one real 2 GB part. Returns false (reserving nothing) when
    /// the budget does not fit alongside existing reservations. The
    /// reservation survives [`reset_timing`](MorpheusSsd::reset_timing),
    /// like a firmware-static DRAM partition.
    pub fn reserve_object_cache(&mut self, bytes: u64) -> bool {
        self.dev.alloc_dram(bytes).is_some()
    }

    /// Returns an object-cache reservation made with
    /// [`reserve_object_cache`](MorpheusSsd::reserve_object_cache).
    pub fn release_object_cache(&mut self, bytes: u64) {
        self.dev.free_dram(bytes);
    }

    /// Serves Identify Controller: the standard fields plus the
    /// vendor-specific Morpheus capability block the host runtime uses to
    /// discover StorageApp support.
    pub fn identify(&self) -> IdentifyController {
        Self::build_identity(self.dev.config())
    }

    fn build_identity(cfg: &morpheus_ssd::SsdConfig) -> IdentifyController {
        IdentifyController {
            vendor_id: 0x1b4b,
            serial: "MORPH-0001".into(),
            model: "Morpheus-SSD 512GB".into(),
            mdts: 5,
            namespaces: 1,
            morpheus: Some(MorpheusCaps {
                embedded_cores: cfg.embedded_cores,
                core_clock_mhz: (cfg.core_clock_hz / 1e6) as u32,
                isram_bytes: cfg.isram_bytes,
                dsram_bytes: cfg.dsram_bytes,
            }),
        }
    }

    /// Rewinds all timing state (drive timelines plus the firmware's
    /// StorageApp busy accounting) without touching stored data.
    pub fn reset_timing(&mut self) {
        self.dev.reset_timing();
        self.parse_core_busy = SimDuration::ZERO;
    }

    /// Tears an instance down without running its `on_finish` — the crash
    /// and host-fallback path. Frees the instance's controller-DRAM
    /// reservation and drops any buffered output. Unknown instances are
    /// ignored (the fault may have hit before MINIT completed).
    pub fn abort_instance(&mut self, instance_id: u32) {
        if let Some(inst) = self.instances.remove(&instance_id) {
            self.dev.free_dram(inst.dram_reserved);
        }
    }

    /// MINIT: installs a StorageApp and creates an instance.
    ///
    /// Returns the time the instance is ready for MREADs.
    ///
    /// # Errors
    ///
    /// Fails if the instance ID is in use or the code image exceeds I-SRAM.
    pub fn minit(
        &mut self,
        instance_id: u32,
        app: Box<dyn StorageApp>,
        ready: SimTime,
    ) -> Result<SimTime, MorpheusError> {
        self.minit_keyed(instance_id, app, ready, None)
    }

    /// MINIT with an optional deserialization-memo key (see `deser_memo`).
    /// A key arms record/replay of the instance's functional work; `None`
    /// behaves exactly like [`minit`](MorpheusSsd::minit). Install timing
    /// (DRAM reservation, dispatch, the I-SRAM copy) always runs live.
    pub(crate) fn minit_keyed(
        &mut self,
        instance_id: u32,
        app: Box<dyn StorageApp>,
        ready: SimTime,
        memo_key: Option<MemoKey>,
    ) -> Result<SimTime, MorpheusError> {
        if self.instances.contains_key(&instance_id) {
            return Err(MorpheusError::InstanceBusy(instance_id));
        }
        let isram = self.dev.config().isram_bytes;
        if app.code_bytes() > isram {
            return Err(MorpheusError::CodeTooLarge {
                code_bytes: app.code_bytes(),
                isram,
            });
        }
        let dsram = self.dev.config().dsram_bytes;
        // Reserve a staging area in controller DRAM for the instance.
        let dram_reserved = dsram as u64 * 4;
        self.dev.alloc_dram(dram_reserved);
        // Install cost: command dispatch plus copying the image to I-SRAM.
        let instr =
            self.dev.config().command_dispatch_instructions + app.code_bytes() as f64 * 0.25;
        let core = instance_id as usize % self.dev.cores().cores();
        let iv = self.dev.cores_mut().exec_on(core, ready, instr);
        self.tracer.span(
            TraceLayer::Ssd,
            self.dev.cores().core_name(core),
            "minit",
            iv.start,
            iv.end,
        );
        let memo = match memo_key {
            Some(key) => match deser_memo::device_get(key) {
                Some(rec) => InstanceMemo::Play { rec, next: 0 },
                None => InstanceMemo::Record {
                    key,
                    cmds: Vec::new(),
                },
            },
            None => InstanceMemo::Off,
        };
        self.instances.insert(
            instance_id,
            Instance {
                app,
                ctx: DeviceCtx::new(dsram),
                last_done: iv.end,
                dram_reserved,
                core,
                out_base_slba: None,
                out_flushed: 0,
                out_pending: Vec::new(),
                memo,
            },
        );
        Ok(iv.end)
    }

    /// MREAD: reads `blocks` LBAs from `slba` *through* the instance's
    /// StorageApp. Only the first `valid_bytes` of the range are real file
    /// content (the tail of the final block is ignored, as the host runtime
    /// communicates the file length at MINIT time).
    ///
    /// Flash page reads pipeline with parsing: the app's core starts on a
    /// page as soon as that page is in controller DRAM.
    ///
    /// # Errors
    ///
    /// Fails on unknown instances, app faults, and media errors.
    pub fn mread(
        &mut self,
        instance_id: u32,
        slba: u64,
        blocks: u64,
        valid_bytes: u64,
        ready: SimTime,
    ) -> Result<MreadOutcome, MorpheusError> {
        let Some(core) = self.instances.get(&instance_id).map(|i| i.core) else {
            return Err(MorpheusError::NoSuchInstance(instance_id));
        };
        let dispatch_instr = self.dev.config().command_dispatch_instructions;
        let dispatch = self.dev.cores_mut().exec_on(core, ready, dispatch_instr);
        self.tracer.span(
            TraceLayer::Ssd,
            self.dev.cores().core_name(core),
            "dispatch",
            dispatch.start,
            dispatch.end,
        );

        let page_bytes = self.dev.page_bytes();
        let byte_start = slba * LBA_BYTES;
        let byte_len = (blocks * LBA_BYTES).min(valid_bytes);
        let mut outcome = MreadOutcome {
            output: Vec::new(),
            done: dispatch.end,
            core_busy: SimDuration::ZERO,
        };
        // A replaying instance consumes its recorded commands in issue
        // order; a recording one collects per-page costs as it parses.
        let play = {
            let inst = self
                .instances
                .get_mut(&instance_id)
                .expect("existence checked above");
            match &mut inst.memo {
                InstanceMemo::Play { rec, next } => {
                    let k = *next;
                    *next += 1;
                    Some((rec.clone(), k))
                }
                _ => None,
            }
        };
        if let Some((rec, k)) = play {
            return self.mread_replay(
                &rec,
                k,
                instance_id,
                core,
                slba,
                blocks,
                valid_bytes,
                outcome,
            );
        }
        let recording = matches!(
            self.instances[&instance_id].memo,
            InstanceMemo::Record { .. }
        );
        if byte_len == 0 {
            if recording {
                // Keep the recorded command sequence aligned with replay.
                self.record_mread(instance_id, slba, blocks, valid_bytes, Vec::new(), &[]);
            }
            return Ok(outcome);
        }
        let first_page = byte_start / page_bytes;
        let last_page = (byte_start + byte_len - 1) / page_bytes;

        let mut page_instr: Vec<f64> = Vec::new();
        for lpn in first_page..=last_page {
            let page_base = lpn * page_bytes;
            let lo = byte_start.max(page_base) - page_base;
            let hi = (byte_start + byte_len).min(page_base + page_bytes) - page_base;
            let (page, avail) = self
                .dev
                .read_page_timed(morpheus_ftl::Lpn(lpn), dispatch.end)?;
            let inst = self
                .instances
                .get_mut(&instance_id)
                .expect("existence checked above");
            // Borrows straight from the flash array's stored allocation
            // when the range is page-backed (the hot case).
            let chunk = page.slice(lo as usize, hi as usize);
            inst.app
                .on_chunk(&mut inst.ctx, &chunk)
                .map_err(MorpheusError::App)?;
            let work = inst.ctx.take_work();
            let extra = inst.ctx.take_extra_instructions();
            let instr = self.device_cost.total_instructions(&work) + extra;
            if recording {
                page_instr.push(instr);
            }
            let start = avail.max(inst.last_done);
            let iv = self.dev.cores_mut().exec_on(core, start, instr);
            self.tracer.span_bytes(
                TraceLayer::Ssd,
                self.dev.cores().core_name(core),
                "parse",
                iv.start,
                iv.end,
                hi - lo,
            );
            let inst = self
                .instances
                .get_mut(&instance_id)
                .expect("existence checked above");
            inst.last_done = iv.end;
            outcome.core_busy += iv.duration();
            outcome.done = outcome.done.max(iv.end);
        }
        let inst = self
            .instances
            .get_mut(&instance_id)
            .expect("existence checked above");
        outcome.output = inst.ctx.take_output();
        if recording {
            self.record_mread(
                instance_id,
                slba,
                blocks,
                valid_bytes,
                page_instr,
                &outcome.output,
            );
        }
        self.parse_core_busy += outcome.core_busy;
        Ok(outcome)
    }

    /// Appends one MREAD's functional results to a recording instance.
    fn record_mread(
        &mut self,
        instance_id: u32,
        slba: u64,
        blocks: u64,
        valid_bytes: u64,
        page_instr: Vec<f64>,
        output: &[u8],
    ) {
        let inst = self
            .instances
            .get_mut(&instance_id)
            .expect("existence checked above");
        if let InstanceMemo::Record { cmds, .. } = &mut inst.memo {
            cmds.push(CmdRecord {
                slba,
                blocks,
                valid_bytes,
                page_instr,
                output: output.to_vec().into(),
            });
        }
    }

    /// Replays one recorded MREAD: flash page timing, embedded-core grants,
    /// and trace spans all run live, but the per-page instruction counts
    /// and the staged output come from the recording instead of the
    /// StorageApp. Geometry is asserted against the record — a mismatch
    /// means a memo-key collision, which must never pass silently.
    #[allow(clippy::too_many_arguments)]
    fn mread_replay(
        &mut self,
        rec: &DeviceReplay,
        k: usize,
        instance_id: u32,
        core: usize,
        slba: u64,
        blocks: u64,
        valid_bytes: u64,
        mut outcome: MreadOutcome,
    ) -> Result<MreadOutcome, MorpheusError> {
        let cmd = rec
            .cmds
            .get(k)
            .expect("deser-memo replay ran out of recorded MREADs (key collision?)");
        assert!(
            cmd.slba == slba && cmd.blocks == blocks && cmd.valid_bytes == valid_bytes,
            "deser-memo replay geometry mismatch (key collision?)"
        );
        let dispatch_end = outcome.done;
        let page_bytes = self.dev.page_bytes();
        let byte_start = slba * LBA_BYTES;
        let byte_len = (blocks * LBA_BYTES).min(valid_bytes);
        if byte_len == 0 {
            return Ok(outcome);
        }
        let first_page = byte_start / page_bytes;
        let last_page = (byte_start + byte_len - 1) / page_bytes;
        assert_eq!(
            cmd.page_instr.len(),
            (last_page - first_page + 1) as usize,
            "deser-memo replay page-count mismatch (key collision?)"
        );
        for (pi, lpn) in (first_page..=last_page).enumerate() {
            let page_base = lpn * page_bytes;
            let lo = byte_start.max(page_base) - page_base;
            let hi = (byte_start + byte_len).min(page_base + page_bytes) - page_base;
            let (_page, avail) = self
                .dev
                .read_page_timed(morpheus_ftl::Lpn(lpn), dispatch_end)?;
            let last_done = self.instances[&instance_id].last_done;
            let start = avail.max(last_done);
            let iv = self
                .dev
                .cores_mut()
                .exec_on(core, start, cmd.page_instr[pi]);
            self.tracer.span_bytes(
                TraceLayer::Ssd,
                self.dev.cores().core_name(core),
                "parse",
                iv.start,
                iv.end,
                hi - lo,
            );
            let inst = self
                .instances
                .get_mut(&instance_id)
                .expect("existence checked above");
            inst.last_done = iv.end;
            outcome.core_busy += iv.duration();
            outcome.done = outcome.done.max(iv.end);
        }
        outcome.output = cmd.output.to_vec();
        self.parse_core_busy += outcome.core_busy;
        Ok(outcome)
    }

    /// MWRITE: pushes host-supplied `data` *through* the StorageApp; the
    /// app's output forms a contiguous byte stream on flash starting at
    /// the first MWRITE's `slba` (the firmware buffers sub-block tails in
    /// controller DRAM and flushes whole blocks — the serialization
    /// direction of §I).
    ///
    /// # Errors
    ///
    /// Fails on unknown instances, app faults, and drive errors.
    pub fn mwrite(
        &mut self,
        instance_id: u32,
        slba: u64,
        data: &[u8],
        ready: SimTime,
    ) -> Result<MwriteOutcome, MorpheusError> {
        let Some(core) = self.instances.get(&instance_id).map(|i| i.core) else {
            return Err(MorpheusError::NoSuchInstance(instance_id));
        };
        let dispatch_instr = self.dev.config().command_dispatch_instructions;
        let dispatch = self.dev.cores_mut().exec_on(core, ready, dispatch_instr);
        let inst = self
            .instances
            .get_mut(&instance_id)
            .expect("existence checked above");
        // The deser memo covers read-side lifecycles only: a replaying
        // instance never fed its app, so it cannot absorb writes, and a
        // recording one stops recording (serialization output depends on
        // host-supplied data the key does not cover).
        assert!(
            !matches!(inst.memo, InstanceMemo::Play { .. }),
            "memoized deserialization instance received MWRITE"
        );
        inst.memo = InstanceMemo::Off;
        inst.app
            .on_chunk(&mut inst.ctx, data)
            .map_err(MorpheusError::App)?;
        let work = inst.ctx.take_work();
        let extra = inst.ctx.take_extra_instructions();
        let instr = self.device_cost.total_instructions(&work) + extra;
        let start = dispatch.end.max(inst.last_done);
        let iv = self.dev.cores_mut().exec_on(core, start, instr);
        self.tracer.span_bytes(
            TraceLayer::Ssd,
            self.dev.cores().core_name(core),
            "pack",
            iv.start,
            iv.end,
            data.len() as u64,
        );
        let inst = self
            .instances
            .get_mut(&instance_id)
            .expect("existence checked above");
        inst.last_done = iv.end;
        inst.out_base_slba.get_or_insert(slba);
        let produced = inst.ctx.take_output();
        inst.out_pending.extend_from_slice(&produced);
        self.parse_core_busy += iv.duration();
        let durable = self.flush_instance_output(instance_id, iv.end, false)?;
        Ok(MwriteOutcome {
            durable,
            core_busy: iv.duration(),
            bytes_written: produced.len() as u64,
        })
    }

    /// Flushes an instance's pending MWRITE output to flash; whole blocks
    /// only unless `all` (used at MDEINIT for the final partial block).
    fn flush_instance_output(
        &mut self,
        instance_id: u32,
        ready: SimTime,
        all: bool,
    ) -> Result<SimTime, MorpheusError> {
        let inst = self
            .instances
            .get_mut(&instance_id)
            .expect("caller verified instance");
        let Some(base) = inst.out_base_slba else {
            return Ok(ready);
        };
        let lba = LBA_BYTES;
        let flush_len = if all {
            inst.out_pending.len()
        } else {
            inst.out_pending.len() - inst.out_pending.len() % lba as usize
        };
        if flush_len == 0 {
            return Ok(ready);
        }
        debug_assert_eq!(inst.out_flushed % lba, 0, "flush boundary is block aligned");
        let slba_now = base + inst.out_flushed / lba;
        let chunk: Vec<u8> = inst.out_pending.drain(..flush_len).collect();
        inst.out_flushed += flush_len as u64;
        let durable = self.dev.write_range(slba_now, &chunk, ready)?;
        Ok(durable)
    }

    /// MDEINIT: finishes the instance, returning its return value, any
    /// leftover host-bound output, and the completion time. If the
    /// instance streamed MWRITE output, the final partial block is made
    /// durable first.
    ///
    /// # Errors
    ///
    /// Fails on unknown instances or if the app faults while finishing.
    pub fn mdeinit(
        &mut self,
        instance_id: u32,
        ready: SimTime,
    ) -> Result<DeinitOutcome, MorpheusError> {
        if !self.instances.contains_key(&instance_id) {
            return Err(MorpheusError::NoSuchInstance(instance_id));
        }
        let core = self.instances[&instance_id].core;
        let play = match &self.instances[&instance_id].memo {
            InstanceMemo::Play { rec, next } => {
                assert_eq!(
                    *next,
                    rec.cmds.len(),
                    "deser-memo replay finished with unconsumed MREADs (key collision?)"
                );
                Some(rec.clone())
            }
            _ => None,
        };
        if let Some(rec) = play {
            // Replay: the recorded finish cost (dispatch included) runs on
            // the live core timeline; on_finish itself is skipped. Recorded
            // lifecycles never wrote to flash, so there is nothing to flush.
            let start = ready.max(self.instances[&instance_id].last_done);
            let iv = self.dev.cores_mut().exec_on(core, start, rec.finish_instr);
            self.tracer.span(
                TraceLayer::Ssd,
                self.dev.cores().core_name(core),
                "finish",
                iv.start,
                iv.end,
            );
            self.parse_core_busy += iv.duration();
            let inst = self.instances.remove(&instance_id).expect("still present");
            self.dev.free_dram(inst.dram_reserved);
            return Ok(DeinitOutcome {
                retval: rec.retval,
                host_output: rec.host_output.to_vec(),
                done: iv.end,
                flushed_to_flash: 0,
            });
        }
        let (retval, instr, start, writes_to_flash) = {
            let inst = self
                .instances
                .get_mut(&instance_id)
                .expect("existence checked above");
            let result = inst.app.on_finish(&mut inst.ctx);
            let retval = match result {
                Ok(v) => v,
                Err(e) => {
                    let inst = self.instances.remove(&instance_id).expect("still present");
                    self.dev.free_dram(inst.dram_reserved);
                    return Err(MorpheusError::App(e));
                }
            };
            let work = inst.ctx.take_work();
            let extra = inst.ctx.take_extra_instructions();
            let instr = self.device_cost.total_instructions(&work)
                + extra
                + self.dev.config().command_dispatch_instructions;
            (
                retval,
                instr,
                ready.max(inst.last_done),
                inst.out_base_slba.is_some(),
            )
        };
        let iv = self.dev.cores_mut().exec_on(core, start, instr);
        self.tracer.span(
            TraceLayer::Ssd,
            self.dev.cores().core_name(core),
            "finish",
            iv.start,
            iv.end,
        );
        self.parse_core_busy += iv.duration();
        let mut done = iv.end;
        let mut host_output = Vec::new();
        if writes_to_flash {
            // Final records join the flash stream, not the host.
            let inst = self.instances.get_mut(&instance_id).expect("still present");
            let tail = inst.ctx.take_output();
            inst.out_pending.extend_from_slice(&tail);
            done = done.max(self.flush_instance_output(instance_id, iv.end, true)?);
        } else {
            let inst = self.instances.get_mut(&instance_id).expect("still present");
            host_output = inst.ctx.take_output();
        }
        let inst = self.instances.remove(&instance_id).expect("still present");
        self.dev.free_dram(inst.dram_reserved);
        if let InstanceMemo::Record { key, cmds } = inst.memo {
            if !writes_to_flash {
                deser_memo::device_put(
                    key,
                    std::sync::Arc::new(DeviceReplay {
                        cmds,
                        finish_instr: instr,
                        retval,
                        host_output: host_output.clone().into(),
                    }),
                );
            }
        }
        Ok(DeinitOutcome {
            retval,
            host_output,
            done,
            flushed_to_flash: inst.out_flushed,
        })
    }

    /// Wire-level protocol round trip: encodes `cmd`, submits it through
    /// the real submission queue, pops it on the device side, re-decodes,
    /// and posts `status`/`result` through the completion queue, returning
    /// the reaped entry. Keeps every timed run exercising the actual NVMe
    /// packet path.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (the runtime serializes commands) or
    /// the packet fails to round-trip (a protocol bug).
    pub fn protocol_round_trip(
        &mut self,
        cmd: NvmeCommand,
        status: StatusCode,
        result: u32,
    ) -> CompletionEntry {
        let qp = self.io_queue();
        qp.sq.submit(cmd).expect("runtime serializes commands");
        let wire = qp.sq.pop().expect("just submitted");
        let bytes = wire.encode();
        let decoded = NvmeCommand::decode(&bytes).expect("codec round-trips");
        assert_eq!(decoded, cmd, "protocol corruption");
        if decoded.opcode.is_morpheus() {
            // Firmware sanity: the typed view must parse.
            MorpheusCommand::parse(&decoded).expect("morpheus command parses");
        }
        let qp = self.io_queue();
        qp.cq
            .post(decoded.cid, status, result)
            .expect("runtime reaps completions promptly");
        qp.cq.reap().expect("completion just posted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeserializeApp;
    use morpheus_flash::{FlashGeometry, FlashTiming};
    use morpheus_format::{FieldKind, ParsedColumns, Schema};
    use morpheus_ssd::SsdConfig;

    fn edge_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::U32])
    }

    fn mssd() -> MorpheusSsd {
        let dev = Ssd::new(
            SsdConfig::default(),
            FlashGeometry::small(),
            FlashTiming::default(),
        );
        MorpheusSsd::new(dev, CostModel::embedded_core())
    }

    #[test]
    fn full_storageapp_lifecycle() {
        let mut m = mssd();
        let text = b"1 2\n3 4\n5 6\n7 8\n";
        m.dev.load_at(0, text).unwrap();
        let t0 = m
            .minit(
                1,
                Box::new(DeserializeApp::new("edges", edge_schema())),
                SimTime::ZERO,
            )
            .unwrap();
        let out = m.mread(1, 0, 1, text.len() as u64, t0).unwrap();
        assert!(out.done > t0);
        assert!(!out.core_busy.is_zero());
        let dein = m.mdeinit(1, out.done).unwrap();
        assert_eq!(dein.retval, 4);
        assert!(dein.done >= out.done);
        assert_eq!(dein.flushed_to_flash, 0);
        let mut bytes = out.output;
        bytes.extend_from_slice(&dein.host_output);
        let cols = ParsedColumns::decode(edge_schema(), &bytes).unwrap();
        assert_eq!(cols.records, 4);
        assert_eq!(cols.columns[0].as_ints().unwrap(), &[1, 3, 5, 7]);
        assert_eq!(m.live_instances(), 0);
    }

    #[test]
    fn duplicate_instance_rejected() {
        let mut m = mssd();
        m.minit(
            7,
            Box::new(DeserializeApp::new("a", edge_schema())),
            SimTime::ZERO,
        )
        .unwrap();
        let err = m
            .minit(
                7,
                Box::new(DeserializeApp::new("b", edge_schema())),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err.status(), StatusCode::InstanceBusy);
    }

    #[test]
    fn unknown_instance_rejected() {
        let mut m = mssd();
        let err = m.mread(9, 0, 1, 10, SimTime::ZERO).unwrap_err();
        assert_eq!(err.status(), StatusCode::NoSuchInstance);
        assert!(m.mdeinit(9, SimTime::ZERO).is_err());
    }

    #[test]
    fn oversized_code_rejected() {
        #[derive(Debug)]
        struct Huge;
        impl StorageApp for Huge {
            fn name(&self) -> &str {
                "huge"
            }
            fn code_bytes(&self) -> u32 {
                10 << 20
            }
            fn on_chunk(&mut self, _: &mut DeviceCtx, _: &[u8]) -> Result<(), AppError> {
                Ok(())
            }
            fn on_finish(&mut self, _: &mut DeviceCtx) -> Result<i32, AppError> {
                Ok(0)
            }
        }
        let mut m = mssd();
        let err = m.minit(1, Box::new(Huge), SimTime::ZERO).unwrap_err();
        assert_eq!(err.status(), StatusCode::CodeTooLarge);
    }

    #[test]
    fn app_fault_surfaces_with_status() {
        let mut m = mssd();
        m.dev.load_at(0, b"not numbers at all\n").unwrap();
        m.minit(
            1,
            Box::new(DeserializeApp::new("edges", edge_schema())),
            SimTime::ZERO,
        )
        .unwrap();
        let err = m.mread(1, 0, 1, 18, SimTime::ZERO).unwrap_err();
        assert_eq!(err.status(), StatusCode::AppFault);
    }

    #[test]
    fn mread_across_multiple_commands_carries_state() {
        let mut m = mssd();
        // One record split across two MREAD commands (two LBAs).
        let mut text = vec![b' '; 1024];
        text[510] = b'1';
        text[511] = b'2'; // "12" ends exactly at the LBA boundary
        text[512] = b'3'; // continues "123" in the next LBA!
        text[513] = b' ';
        text[514] = b'7';
        text[515] = b'\n';
        m.dev.load_at(0, &text).unwrap();
        m.minit(
            1,
            Box::new(DeserializeApp::new("edges", edge_schema())),
            SimTime::ZERO,
        )
        .unwrap();
        let a = m.mread(1, 0, 1, 512, SimTime::ZERO).unwrap();
        let b = m.mread(1, 1, 1, 1024 - 512, a.done).unwrap();
        let dein = m.mdeinit(1, b.done).unwrap();
        let mut bytes = a.output;
        bytes.extend_from_slice(&b.output);
        bytes.extend_from_slice(&dein.host_output);
        let cols = ParsedColumns::decode(edge_schema(), &bytes).unwrap();
        assert_eq!(cols.records, 1);
        assert_eq!(cols.columns[0].as_ints().unwrap(), &[123]);
        assert_eq!(cols.columns[1].as_ints().unwrap(), &[7]);
    }

    #[test]
    fn mwrite_serializes_through_app() {
        let mut m = mssd();
        m.minit(
            1,
            Box::new(DeserializeApp::new("edges", edge_schema())),
            SimTime::ZERO,
        )
        .unwrap();
        let out = m.mwrite(1, 64, b"9 8\n7 6\n", SimTime::ZERO).unwrap();
        assert!(!out.core_busy.is_zero());
        assert_eq!(out.bytes_written, 16);
        // Sub-block output stays buffered until MDEINIT flushes it.
        let dein = m.mdeinit(1, out.durable).unwrap();
        assert_eq!(dein.flushed_to_flash, 16);
        assert!(dein.host_output.is_empty());
        // The binary objects landed on flash at slba 64.
        let (data, _) = m.dev.read_range(64, 1, dein.done).unwrap();
        let cols = ParsedColumns::decode(edge_schema(), &data[..16]).unwrap();
        assert_eq!(cols.columns[0].as_ints().unwrap(), &[9, 7]);
    }

    #[test]
    fn protocol_round_trip_returns_completion() {
        let mut m = mssd();
        let cmd = MorpheusCommand::Deinit { instance_id: 3 }.into_command(11, 1);
        let e = m.protocol_round_trip(cmd, StatusCode::Success, 42);
        assert_eq!(e.cid, 11);
        assert_eq!(e.result, 42);
        assert!(e.status.is_success());
    }

    #[test]
    fn parse_core_busy_accumulates() {
        let mut m = mssd();
        m.dev.load_at(0, b"1 2\n").unwrap();
        m.minit(
            1,
            Box::new(DeserializeApp::new("edges", edge_schema())),
            SimTime::ZERO,
        )
        .unwrap();
        m.mread(1, 0, 1, 4, SimTime::ZERO).unwrap();
        assert!(!m.parse_core_busy().is_zero());
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use crate::DeserializeApp;
    use morpheus_flash::{FlashGeometry, FlashTiming};
    use morpheus_format::{FieldKind, Schema, TextWriter};
    use morpheus_ssd::SsdConfig;

    fn edge_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::U32])
    }

    /// Two tenants' StorageApps run concurrently on different embedded
    /// cores: their combined makespan is far less than the serial sum
    /// (the paper's multiprogrammed-offload argument, §III).
    #[test]
    fn two_instances_share_the_core_pool() {
        let mut m = MorpheusSsd::new(
            Ssd::new(
                SsdConfig::default(),
                FlashGeometry::workload(),
                FlashTiming::default(),
            ),
            CostModel::embedded_core(),
        );
        let mut w = TextWriter::new();
        for i in 0..40_000u64 {
            w.write_u64(i % 1000);
            w.sep();
            w.write_u64(i % 997);
            w.newline();
        }
        let text = w.into_bytes();
        let blocks = (text.len() as u64).div_ceil(LBA_BYTES);
        // Two copies of the file in different LBA regions.
        m.dev.load_at(0, &text).unwrap();
        m.dev.load_at(1 << 16, &text).unwrap();

        let t1 = m
            .minit(
                1,
                Box::new(DeserializeApp::new("a", edge_schema())),
                SimTime::ZERO,
            )
            .unwrap();
        let t2 = m
            .minit(
                2,
                Box::new(DeserializeApp::new("b", edge_schema())),
                SimTime::ZERO,
            )
            .unwrap();
        let a = m.mread(1, 0, blocks, text.len() as u64, t1).unwrap();
        let b = m.mread(2, 1 << 16, blocks, text.len() as u64, t2).unwrap();
        let d1 = m.mdeinit(1, a.done).unwrap();
        let d2 = m.mdeinit(2, b.done).unwrap();
        assert_eq!(d1.retval, d2.retval);

        let makespan = d1.done.max(d2.done).as_secs_f64();
        let serial = (a.core_busy + b.core_busy).as_secs_f64();
        assert!(
            makespan < serial * 0.75,
            "two instances should overlap: makespan {makespan}, serial core time {serial}"
        );
        // And their outputs are the identical object stream.
        let mut bytes_a = a.output;
        bytes_a.extend_from_slice(&d1.host_output);
        let mut bytes_b = b.output;
        bytes_b.extend_from_slice(&d2.host_output);
        assert_eq!(bytes_a, bytes_b);
    }

    /// Instance isolation: a fault in one tenant's app never disturbs the
    /// other's stream.
    #[test]
    fn instance_faults_are_isolated() {
        let mut m = MorpheusSsd::new(
            Ssd::new(
                SsdConfig::default(),
                FlashGeometry::small(),
                FlashTiming::default(),
            ),
            CostModel::embedded_core(),
        );
        m.dev.load_at(0, b"1 2\n3 4\n").unwrap();
        m.dev.load_at(64, b"this is not numeric\n").unwrap();
        m.minit(
            1,
            Box::new(DeserializeApp::new("good", edge_schema())),
            SimTime::ZERO,
        )
        .unwrap();
        m.minit(
            2,
            Box::new(DeserializeApp::new("bad", edge_schema())),
            SimTime::ZERO,
        )
        .unwrap();
        let good = m.mread(1, 0, 1, 8, SimTime::ZERO).unwrap();
        let err = m.mread(2, 64, 1, 20, SimTime::ZERO).unwrap_err();
        assert_eq!(err.status(), StatusCode::AppFault);
        // Tenant 1 proceeds unharmed.
        let dein = m.mdeinit(1, good.done).unwrap();
        assert_eq!(dein.retval, 2);
    }
}
