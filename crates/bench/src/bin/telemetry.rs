//! Windowed serving telemetry + SLO / error-budget evaluation.
//!
//! Runs one open-loop serving cell with the sim-time sampler armed and
//! renders the windowed time-series three ways:
//!
//! * `--format text` (default) — ASCII sparklines of the key series
//!   (RPS, p99, queue depth, cache hit rate), one SLO verdict line per
//!   objective with its burn-rate alert timeline, and the totals row;
//! * `--format csv` — one row per window, canonical number formatting;
//! * `--format prom` — Prometheus text exposition (counters, gauges,
//!   log2 histograms with cumulative buckets, SLO burn/budget series).
//!
//! Deterministic by construction: the cell builds its own seeded system
//! and the sampler folds events into windows keyed by integer sim-time
//! division, so every byte of output is identical across repeats.
//! `docs/TELEMETRY.md` documents the sampling model and SLO semantics.

use morpheus::{
    AppSpec, CacheConfig, CachePolicy, DeviceKill, Fleet, FleetConfig, HealPolicy, Mode,
    PlacementPolicy, RollingUpdate, ServeConfig, ServePolicy, SloSpec, System, SystemParams,
    TelemetryConfig,
};
use morpheus_bench::Harness;
use morpheus_format::{FieldKind, Schema, TextWriter};
use morpheus_simcore::{parse_duration, render_error_chain, SimDuration, SplitMix64};

const USAGE: &str =
    "usage: telemetry [--rps R] [--duration S] [--mode conventional|morpheus|morpheus+p2p]
                 [--apps N] [--bytes N] [--depth N] [--batch N] [--sq-depth N]
                 [--policy shed|fallback] [--skew F]
                 [--cache-mb N] [--cache-host-mb N] [--cache-policy tinylfu|lru]
                 [--window DUR] [--slo SPEC] [--format text|csv|prom] [--out <path>]
                 [--devices N] [--placement rr|hash|capacity] [--kill-device DEV@SECS]
                 [--rolling-update SECS] [--heal]
                 [--seed N] [--faults SPEC]";

/// Output rendering selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Prom,
}

/// One parsed invocation (a single serving cell).
#[derive(Debug)]
struct Cli {
    rps: f64,
    duration_s: f64,
    mode: Mode,
    apps: usize,
    bytes: u64,
    depth: usize,
    batch: usize,
    sq_depth: usize,
    policy: ServePolicy,
    skew: f64,
    cache_mb: u64,
    cache_host_mb: u64,
    cache_policy: CachePolicy,
    window: SimDuration,
    slo: SloSpec,
    format: Format,
    out: Option<String>,
    devices: usize,
    placement: PlacementPolicy,
    kills: Vec<DeviceKill>,
    rolling_update: Option<f64>,
    heal: bool,
    harness: Harness,
}

impl Cli {
    /// True when the invocation engages the fleet path (see the `serve`
    /// binary: more than one device, a kill schedule, or control-plane
    /// intent).
    fn fleet_mode(&self) -> bool {
        self.devices > 1 || !self.kills.is_empty() || self.rolling_update.is_some() || self.heal
    }
}

/// The flag grammar, separated from process state so tests can drive it.
fn parse(args: &[String]) -> Result<Cli, String> {
    fn value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} requires a value"))
    }
    fn positive<T: std::str::FromStr + PartialOrd + From<u8>>(
        flag: &str,
        v: &str,
    ) -> Result<T, String> {
        let n: T = v
            .parse()
            .map_err(|_| format!("{flag} expects a positive number, got {v:?}"))?;
        if n < T::from(1u8) {
            return Err(format!("{flag} must be >= 1"));
        }
        Ok(n)
    }
    let mut cli = Cli {
        rps: 4000.0,
        duration_s: 0.05,
        mode: Mode::Morpheus,
        apps: 3,
        bytes: 64 * 1024,
        depth: 64,
        batch: 8,
        sq_depth: 64,
        policy: ServePolicy::Shed,
        skew: 0.0,
        cache_mb: 0,
        cache_host_mb: 0,
        cache_policy: CachePolicy::TinyLfu,
        window: SimDuration::from_millis(10),
        slo: SloSpec::none(),
        format: Format::Text,
        out: None,
        devices: 1,
        placement: PlacementPolicy::HashByFile,
        kills: Vec::new(),
        rolling_update: None,
        heal: false,
        harness: Harness::default(),
    };
    let mut harness_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rps" => {
                let v = value("--rps", &mut it)?;
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("--rps expects a number, got {v:?}"))?;
                if !r.is_finite() || r <= 0.0 {
                    return Err("--rps must be positive".into());
                }
                cli.rps = r;
            }
            "--duration" => {
                let v = value("--duration", &mut it)?;
                let d: f64 = v
                    .parse()
                    .map_err(|_| format!("--duration expects seconds, got {v:?}"))?;
                if !d.is_finite() || d <= 0.0 {
                    return Err("--duration must be positive".into());
                }
                cli.duration_s = d;
            }
            "--mode" => {
                let v = value("--mode", &mut it)?;
                cli.mode = match v.as_str() {
                    "conventional" => Mode::Conventional,
                    "morpheus" => Mode::Morpheus,
                    "morpheus+p2p" => Mode::MorpheusP2P,
                    other => {
                        return Err(format!(
                            "--mode expects conventional|morpheus|morpheus+p2p, got {other:?}"
                        ))
                    }
                };
            }
            "--apps" => cli.apps = positive::<usize>("--apps", value("--apps", &mut it)?)?,
            "--bytes" => cli.bytes = positive::<u64>("--bytes", value("--bytes", &mut it)?)?,
            "--depth" => cli.depth = positive::<usize>("--depth", value("--depth", &mut it)?)?,
            "--batch" => cli.batch = positive::<usize>("--batch", value("--batch", &mut it)?)?,
            "--sq-depth" => {
                cli.sq_depth = positive::<usize>("--sq-depth", value("--sq-depth", &mut it)?)?
            }
            "--policy" => {
                let v = value("--policy", &mut it)?;
                cli.policy = ServePolicy::parse(v)
                    .ok_or_else(|| format!("--policy expects shed|fallback, got {v:?}"))?;
            }
            "--skew" => {
                let v = value("--skew", &mut it)?;
                let s: f64 = v
                    .parse()
                    .map_err(|_| format!("--skew expects a number, got {v:?}"))?;
                if !s.is_finite() || s < 0.0 {
                    return Err("--skew must be finite and non-negative".into());
                }
                cli.skew = s;
            }
            "--cache-mb" => {
                let v = value("--cache-mb", &mut it)?;
                cli.cache_mb = v
                    .parse()
                    .map_err(|_| format!("--cache-mb expects a byte count in MB, got {v:?}"))?;
            }
            "--cache-host-mb" => {
                let v = value("--cache-host-mb", &mut it)?;
                cli.cache_host_mb = v.parse().map_err(|_| {
                    format!("--cache-host-mb expects a byte count in MB, got {v:?}")
                })?;
            }
            "--cache-policy" => {
                let v = value("--cache-policy", &mut it)?;
                cli.cache_policy = CachePolicy::parse(v)
                    .ok_or_else(|| format!("--cache-policy expects tinylfu|lru, got {v:?}"))?;
            }
            "--window" => {
                let v = value("--window", &mut it)?;
                cli.window = parse_duration(v).map_err(|e| format!("--window: {e}"))?;
            }
            "--slo" => {
                let v = value("--slo", &mut it)?;
                cli.slo = SloSpec::parse(v).map_err(|e| format!("--slo: {e}"))?;
            }
            "--format" => {
                let v = value("--format", &mut it)?;
                cli.format = match v.as_str() {
                    "text" => Format::Text,
                    "csv" => Format::Csv,
                    "prom" => Format::Prom,
                    other => return Err(format!("--format expects text|csv|prom, got {other:?}")),
                };
            }
            "--out" => cli.out = Some(value("--out", &mut it)?.clone()),
            "--devices" => {
                cli.devices = positive::<usize>("--devices", value("--devices", &mut it)?)?
            }
            "--placement" => {
                let v = value("--placement", &mut it)?;
                cli.placement = PlacementPolicy::parse(v)
                    .ok_or_else(|| format!("--placement expects rr|hash|capacity, got {v:?}"))?;
            }
            "--kill-device" => {
                let v = value("--kill-device", &mut it)?;
                cli.kills
                    .push(DeviceKill::parse(v).map_err(|e| format!("--kill-device: {e}"))?);
            }
            "--rolling-update" => {
                let v = value("--rolling-update", &mut it)?;
                let s: f64 = v
                    .parse()
                    .map_err(|_| format!("--rolling-update expects seconds, got {v:?}"))?;
                if !s.is_finite() || s < 0.0 {
                    return Err("--rolling-update must be finite and >= 0".into());
                }
                cli.rolling_update = Some(s);
            }
            "--heal" => cli.heal = true,
            // Harness flags: re-validated by the shared grammar so
            // `--faults bogus` fails exactly as in every figure binary.
            "--seed" | "--faults" => {
                let v = value(arg, &mut it)?;
                harness_args.push(arg.clone());
                harness_args.push(v.clone());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    cli.harness = Harness::parse(&harness_args, &[]).map_err(|e| e.0)?;
    for k in &cli.kills {
        if k.device >= cli.devices {
            return Err(format!(
                "--kill-device names device {} but --devices is {}",
                k.device, cli.devices
            ));
        }
    }
    if cli.format == Format::Prom && cli.devices > 1 {
        return Err(
            "--format prom requires --devices 1: a Prometheus exposition declares \
             each metric once (use --format csv for per-device windows)"
                .into(),
        );
    }
    Ok(cli)
}

/// Stages `apps` tenant inputs (~`bytes` each of two-column text edges)
/// into a fresh paper-testbed system, then arms any fault plan — the same
/// staging recipe the `serve` binary uses, so cells agree across tools.
fn build_system(cli: &Cli) -> (System, Vec<AppSpec>) {
    let mut sys = System::new(SystemParams::paper_testbed());
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let mut specs = Vec::new();
    for i in 0..cli.apps {
        let name = format!("svc{i}");
        let file = format!("{name}.txt");
        let mut rng = SplitMix64::new(cli.harness.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let mut w = TextWriter::new();
        for _ in 0..(cli.bytes / 12).max(1) {
            w.write_u64(rng.next_below(100_000));
            w.sep();
            w.write_u64(rng.next_below(100_000));
            w.newline();
        }
        sys.create_input_file(&file, &w.into_bytes())
            .expect("staging tenant input");
        specs.push(AppSpec::cpu_app(&name, &file, schema.clone(), 1, 50.0));
    }
    if let Some(plan) = cli.harness.faults {
        sys.set_fault_plan(plan);
    }
    (sys, specs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    let cache_cfg = CacheConfig {
        dram_bytes: cli.cache_mb << 20,
        host_bytes: cli.cache_host_mb << 20,
        policy: cli.cache_policy,
        seed: cli.harness.seed,
    };
    let mut tcfg = TelemetryConfig::new(cli.window);
    tcfg.slo = cli.slo.clone();
    let cfg = ServeConfig {
        rps: cli.rps,
        duration_s: cli.duration_s,
        depth: cli.depth,
        batch_max: cli.batch,
        sq_depth: cli.sq_depth,
        mode: cli.mode,
        policy: cli.policy,
        seed: cli.harness.seed,
        skew: cli.skew,
        telemetry: Some(tcfg),
        fast_forward: false,
    };
    let labels_owned = (cli.mode.to_string(), format!("{:.0}", cli.rps));

    if cli.fleet_mode() {
        // Fleet path: telemetry is sampled per device (the aggregate
        // report carries none), so every format renders one labelled
        // block per fleet member.
        let mut fc = FleetConfig::new(cli.devices);
        fc.placement = cli.placement;
        fc.seed = cli.harness.seed;
        fc.kills = cli.kills.clone();
        fc.control.rolling = cli.rolling_update.map(RollingUpdate::starting_at);
        if cli.heal {
            fc.control.heal = Some(HealPolicy::default());
        }
        let mut fleet = Fleet::new(SystemParams::paper_testbed(), fc);
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        let mut specs = Vec::new();
        for i in 0..cli.apps {
            let name = format!("svc{i}");
            let file = format!("{name}.txt");
            let mut rng = SplitMix64::new(cli.harness.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let mut w = TextWriter::new();
            for _ in 0..(cli.bytes / 12).max(1) {
                w.write_u64(rng.next_below(100_000));
                w.sep();
                w.write_u64(rng.next_below(100_000));
                w.newline();
            }
            fleet
                .create_input_file(&file, &w.into_bytes())
                .expect("staging tenant input");
            specs.push(AppSpec::cpu_app(&name, &file, schema.clone(), 1, 50.0));
        }
        if let Some(plan) = cli.harness.faults {
            fleet.set_fault_plan(plan);
        }
        fleet.set_object_cache(cache_cfg);
        let rep = fleet.serve(&specs, &cfg).unwrap_or_else(|e| {
            eprintln!("error: serve failed: {}", render_error_chain(&e));
            std::process::exit(1);
        });
        let rendered = match cli.format {
            Format::Text => {
                let mut s = format!(
                    "telemetry: {} @ {:.0} rps, duration {}s, window {}, policy {}, seed {}, \
                     devices {} placement {}\n",
                    cli.mode,
                    cli.rps,
                    cli.duration_s,
                    cli.window,
                    cli.policy,
                    cli.harness.seed,
                    cli.devices,
                    cli.placement
                );
                s.push_str(&format!(
                    "fleet: rebalanced {} | offered {} completed {} shed {} failed {}\n",
                    rep.rebalanced,
                    rep.aggregate.offered,
                    rep.aggregate.completed,
                    rep.aggregate.shed,
                    rep.aggregate.failed,
                ));
                if let Some(c) = &rep.control {
                    s.push_str(&format!("{c}"));
                }
                for (i, d) in rep.per_device.iter().enumerate() {
                    let t = d.telemetry.as_ref().expect("sampler installed");
                    s.push_str(&format!(
                        "device {i}: offered {} completed {} shed {} failed {} | \
                         p50 {:.1}us p99 {:.1}us\n",
                        d.offered,
                        d.completed,
                        d.shed,
                        d.failed,
                        d.e2e_ns.p50() as f64 / 1e3,
                        d.e2e_ns.p99() as f64 / 1e3,
                    ));
                    s.push_str(&format!("{t}"));
                    if !s.ends_with('\n') {
                        s.push('\n');
                    }
                }
                s
            }
            Format::Csv => {
                let mut s = String::new();
                for (i, d) in rep.per_device.iter().enumerate() {
                    let t = d.telemetry.as_ref().expect("sampler installed");
                    s.push_str(&t.to_csv(&[
                        ("mode", labels_owned.0.clone()),
                        ("target_rps", labels_owned.1.clone()),
                        ("device", i.to_string()),
                    ]));
                }
                s
            }
            // --devices 1 enforced at parse time: the lone device of a
            // kill-schedule run.
            Format::Prom => rep.per_device[0]
                .telemetry
                .as_ref()
                .expect("sampler installed")
                .to_prometheus(
                    "morpheus",
                    &[("mode", &labels_owned.0), ("rps", &labels_owned.1)],
                ),
        };
        emit(&cli, &rendered);
        return;
    }

    let (mut sys, specs) = build_system(&cli);
    sys.set_object_cache(cache_cfg);
    let rep = sys.serve(&specs, &cfg).unwrap_or_else(|e| {
        eprintln!("error: serve failed: {}", render_error_chain(&e));
        std::process::exit(1);
    });
    let t = rep.telemetry.as_ref().expect("sampler installed");

    let rendered = match cli.format {
        Format::Text => {
            let mut s = format!(
                "telemetry: {} @ {:.0} rps, duration {}s, window {}, policy {}, seed {}\n",
                cli.mode, cli.rps, cli.duration_s, cli.window, cli.policy, cli.harness.seed
            );
            s.push_str(&format!(
                "offered {} completed {} shed {} failed {} | p50 {:.1}us p99 {:.1}us\n",
                rep.offered,
                rep.completed,
                rep.shed,
                rep.failed,
                rep.e2e_ns.p50() as f64 / 1e3,
                rep.e2e_ns.p99() as f64 / 1e3,
            ));
            s.push_str(&format!("{t}"));
            s
        }
        // "target_rps": the offered rate, distinct from the derived
        // per-window "rps" (completed) column.
        Format::Csv => t.to_csv(&[
            ("mode", labels_owned.0.clone()),
            ("target_rps", labels_owned.1.clone()),
        ]),
        Format::Prom => t.to_prometheus(
            "morpheus",
            &[("mode", &labels_owned.0), ("rps", &labels_owned.1)],
        ),
    };
    emit(&cli, &rendered);
}

/// Writes the rendered telemetry to `--out` (or stdout when unset).
fn emit(cli: &Cli, rendered: &str) {
    match &cli.out {
        Some(path) => {
            std::fs::write(path, rendered).unwrap_or_else(|e| {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote telemetry ({:?}) to {path}", cli.format);
        }
        None => print!("{rendered}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let cli = parse(&argv(&[])).expect("valid");
        assert_eq!(cli.mode, Mode::Morpheus);
        assert_eq!(cli.window, SimDuration::from_millis(10));
        assert!(cli.slo.is_empty());
        assert_eq!(cli.format, Format::Text);
        assert!(cli.out.is_none());
    }

    #[test]
    fn parse_full_grammar() {
        let cli = parse(&argv(&[
            "--rps",
            "8000",
            "--duration",
            "0.1",
            "--mode",
            "morpheus+p2p",
            "--apps",
            "2",
            "--bytes",
            "4096",
            "--policy",
            "fallback",
            "--skew",
            "1.1",
            "--cache-mb",
            "256",
            "--window",
            "5ms",
            "--slo",
            "p99<500us,avail>99.9",
            "--format",
            "prom",
            "--out",
            "t.prom",
            "--seed",
            "7",
            "--faults",
            "seed=9,crash=0.1",
        ]))
        .expect("valid");
        assert_eq!(cli.rps, 8000.0);
        assert_eq!(cli.mode, Mode::MorpheusP2P);
        assert_eq!(cli.window, SimDuration::from_millis(5));
        assert_eq!(cli.slo.objectives.len(), 2);
        assert_eq!(cli.format, Format::Prom);
        assert_eq!(cli.out.as_deref(), Some("t.prom"));
        assert_eq!(cli.harness.seed, 7);
        assert!(cli.harness.faults.is_some());
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            vec!["--rps", "0"],                         // non-positive rate
            vec!["--rps", "nan"],                       // non-finite
            vec!["--duration", "-1"],                   // negative
            vec!["--mode", "all"],                      // sweep grammar not accepted here
            vec!["--window", "0ms"],                    // zero window
            vec!["--window", "later"],                  // malformed
            vec!["--window"],                           // missing value
            vec!["--slo", "p99<"],                      // malformed objective
            vec!["--slo", "avail>100"],                 // target out of range
            vec!["--format", "json"],                   // unknown format
            vec!["--jobs", "4"],                        // single cell: no fan-out flag
            vec!["--telemetry-window", "10ms"],         // serve's spelling
            vec!["--faults", "bogus"],                  // bad fault spec
            vec!["--devices", "0"],                     // zero devices
            vec!["--placement", "random"],              // unknown policy
            vec!["--kill-device", "1@0.01"],            // device outside fleet
            vec!["--devices", "2", "--format", "prom"], // prom is single-device
        ] {
            assert!(parse(&argv(&bad)).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_fleet_grammar() {
        let cli = parse(&argv(&[
            "--devices",
            "3",
            "--placement",
            "rr",
            "--kill-device",
            "1@0.02",
        ]))
        .expect("valid");
        assert_eq!(cli.devices, 3);
        assert_eq!(cli.placement, PlacementPolicy::RoundRobin);
        assert_eq!(cli.kills.len(), 1);
        assert!(cli.fleet_mode());
        assert!(!parse(&argv(&[])).unwrap().fleet_mode());
    }

    #[test]
    fn parse_control_grammar() {
        let cli = parse(&argv(&[
            "--devices",
            "4",
            "--rolling-update",
            "0.005",
            "--heal",
        ]))
        .expect("valid");
        assert_eq!(cli.rolling_update, Some(0.005));
        assert!(cli.heal);
        assert!(cli.fleet_mode());
        // Control intent alone engages the fleet path.
        assert!(parse(&argv(&["--heal"])).expect("valid").fleet_mode());
        for bad in [
            vec!["--rolling-update"],
            vec!["--rolling-update", "-0.1"],
            vec!["--rolling-update", "nan"],
        ] {
            assert!(parse(&argv(&bad)).is_err(), "should reject {bad:?}");
        }
    }
}
