//! Heterogeneous computing with NVMe-P2P: BFS on the GPU, with objects
//! streamed straight from the Morpheus-SSD into GPU memory over PCIe
//! peer-to-peer — the host CPU and DRAM never touch them.
//!
//! ```sh
//! cargo run --release --example gpu_p2p
//! ```

use morpheus::{Mode, System, SystemParams};
use morpheus_workloads::{run_benchmark, stage_input, suite};

fn main() {
    let bench = suite()
        .into_iter()
        .find(|b| b.name == "bfs")
        .expect("bfs is in the suite");

    let mut sys = System::new(SystemParams::paper_testbed());
    stage_input(&mut sys, &bench, 8 << 20, 11).unwrap();
    println!("BFS (Rodinia-style CUDA app) over an 8 MiB edge list\n");

    let conv = run_benchmark(&mut sys, &bench, Mode::Conventional).unwrap();
    let morp = run_benchmark(&mut sys, &bench, Mode::Morpheus).unwrap();
    let p2p = run_benchmark(&mut sys, &bench, Mode::MorpheusP2P).unwrap();
    assert_eq!(conv.kernel, morp.kernel);
    assert_eq!(conv.kernel, p2p.kernel);
    println!("kernel result: {}\n", conv.kernel.summary);

    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "mode", "total", "deser", "copy", "membus", "p2p bytes", "speedup"
    );
    for (name, r) in [
        ("conventional", &conv.report),
        ("morpheus", &morp.report),
        ("morpheus+p2p", &p2p.report),
    ] {
        println!(
            "{:<14} {:>8.3}s {:>8.3}s {:>8.4}s {:>9.1}MB {:>9.1}MB {:>8.2}x",
            name,
            r.phases.total_s(),
            r.phases.deserialization_s,
            r.phases.copy_s,
            r.membus_bytes as f64 / 1e6,
            r.metrics.get("pcie_p2p_bytes") / 1e6,
            r.total_speedup_over(&conv.report),
        );
    }
    println!(
        "\nwith P2P the host memory bus carries {:.0}% of the conventional traffic",
        100.0 * p2p.report.membus_bytes as f64 / conv.report.membus_bytes as f64
    );
    println!("and the GPU copy phase disappears entirely (objects are already on the device)");
}
