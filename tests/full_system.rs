//! Integration tests spanning the whole stack: host + Morpheus-SSD + GPU +
//! PCIe fabric running the real benchmark suite.

use morpheus::{Mode, System, SystemParams};
use morpheus_workloads::{run_benchmark, stage_input, suite};

const SMALL_INPUT: u64 = 96 * 1024;

fn staged_system() -> System {
    System::new(SystemParams::paper_testbed())
}

#[test]
fn all_benchmarks_agree_across_all_modes() {
    let mut sys = staged_system();
    for bench in suite() {
        stage_input(&mut sys, &bench, SMALL_INPUT, 5).unwrap();
        let conv = run_benchmark(&mut sys, &bench, Mode::Conventional).unwrap();
        let morp = run_benchmark(&mut sys, &bench, Mode::Morpheus).unwrap();
        assert_eq!(conv.kernel, morp.kernel, "{}", bench.name);
        assert_eq!(conv.report.checksum, morp.report.checksum, "{}", bench.name);
        assert_eq!(conv.report.records, morp.report.records, "{}", bench.name);
        assert_eq!(
            conv.report.object_bytes, morp.report.object_bytes,
            "{}",
            bench.name
        );
        if bench.parallel_label == "CUDA" {
            let p2p = run_benchmark(&mut sys, &bench, Mode::MorpheusP2P).unwrap();
            assert_eq!(conv.kernel, p2p.kernel, "{}", bench.name);
            assert_eq!(conv.report.checksum, p2p.report.checksum, "{}", bench.name);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let bench = &suite()[0];
    let mut sys = staged_system();
    stage_input(&mut sys, bench, SMALL_INPUT, 9).unwrap();
    let a = run_benchmark(&mut sys, bench, Mode::Morpheus).unwrap();
    let b = run_benchmark(&mut sys, bench, Mode::Morpheus).unwrap();
    assert_eq!(
        a.report.phases.deserialization_s,
        b.report.phases.deserialization_s
    );
    assert_eq!(a.report.membus_bytes, b.report.membus_bytes);
    assert_eq!(a.report.deser_energy_j, b.report.deser_energy_j);
    assert_eq!(a.kernel, b.kernel);
}

#[test]
fn report_invariants_hold() {
    let mut sys = staged_system();
    for bench in suite().into_iter().take(4) {
        stage_input(&mut sys, &bench, SMALL_INPUT, 5).unwrap();
        for mode in [Mode::Conventional, Mode::Morpheus] {
            let out = run_benchmark(&mut sys, &bench, mode).unwrap();
            let r = &out.report;
            // Phase arithmetic.
            let p = r.phases;
            assert!(p.total_s() >= p.deserialization_s);
            assert!((0.0..=1.0).contains(&p.deserialization_fraction()));
            // Energy = mean power × time, within float noise.
            let e = r.deser_power_watts * p.deserialization_s;
            assert!((e - r.deser_energy_j).abs() < 1e-6 * r.deser_energy_j.max(1.0));
            assert!(r.total_energy_j >= r.deser_energy_j);
            // Objects are smaller or comparable to text; both nonzero.
            assert!(r.object_bytes > 0 && r.text_bytes > 0);
            // Effective bandwidth consistent with its definition.
            let bw = r.object_bytes as f64 / p.deserialization_s / 1e6;
            assert!((bw - r.effective_bandwidth_mbs).abs() < 1e-6 * bw);
        }
    }
}

#[test]
fn morpheus_reduces_host_memory_pressure() {
    let bench = &suite()[0];
    let mut sys = staged_system();
    stage_input(&mut sys, bench, 4 << 20, 5).unwrap();
    let conv = run_benchmark(&mut sys, bench, Mode::Conventional).unwrap();
    let morp = run_benchmark(&mut sys, bench, Mode::Morpheus).unwrap();
    // The Morpheus path never allocates buffer X (raw-text landing buffer).
    assert!(
        morp.report.host_dram_peak < conv.report.host_dram_peak,
        "morpheus {} vs conventional {}",
        morp.report.host_dram_peak,
        conv.report.host_dram_peak
    );
    // And moves fewer bytes over the memory bus.
    assert!(morp.report.membus_bytes < conv.report.membus_bytes);
}

#[test]
fn p2p_bypasses_host_memory_entirely() {
    let bench = suite().into_iter().find(|b| b.name == "bfs").unwrap();
    let mut sys = staged_system();
    stage_input(&mut sys, &bench, 2 << 20, 5).unwrap();
    let p2p = run_benchmark(&mut sys, &bench, Mode::MorpheusP2P).unwrap();
    assert_eq!(
        p2p.report.membus_bytes, 0,
        "objects must not touch host DRAM"
    );
    assert!(p2p.report.metrics.get("pcie_p2p_bytes") as u64 >= p2p.report.object_bytes);
    assert_eq!(p2p.report.phases.copy_s, 0.0);
}

#[test]
fn nvme_protocol_path_is_exercised() {
    let bench = &suite()[0];
    let mut sys = staged_system();
    stage_input(&mut sys, bench, SMALL_INPUT, 5).unwrap();
    run_benchmark(&mut sys, bench, Mode::Morpheus).unwrap();
    // Every command travelled through the real submission queue (created
    // by the admin command set at bring-up).
    assert_eq!(sys.mssd.admin.io_queue_count(), 1);
    let qp = sys.mssd.io_queue();
    assert!(qp.sq.doorbell_writes() > 0);
    assert!(qp.sq.is_empty(), "no commands left in flight");
    assert_eq!(qp.cq.outstanding(), 0, "all completions reaped");
    assert_eq!(sys.mssd.live_instances(), 0, "instances torn down");
}

#[test]
fn fragmented_files_parse_identically() {
    let mut sys = staged_system();
    sys.fs.set_max_extent_blocks(64); // 32 KiB extents: heavy fragmentation
    let bench = &suite()[0];
    stage_input(&mut sys, bench, 1 << 20, 13).unwrap();
    let conv = run_benchmark(&mut sys, bench, Mode::Conventional).unwrap();
    let morp = run_benchmark(&mut sys, bench, Mode::Morpheus).unwrap();
    assert_eq!(conv.report.checksum, morp.report.checksum);
    assert_eq!(conv.kernel, morp.kernel);
}

#[test]
fn injected_media_errors_do_not_corrupt_results() {
    let mut params = SystemParams::paper_testbed();
    params.flash_ecc = morpheus_flash::EccModel {
        correctable_prob: 0.25,
        correction_retries: 2,
        uncorrectable_prob: 0.01,
        wear_limit: u64::MAX,
    };
    params.flash_seed = 77;
    let mut clean = System::new(SystemParams::paper_testbed());
    let mut flaky = System::new(params);
    let bench = &suite()[0];
    stage_input(&mut clean, bench, 1 << 20, 5).unwrap();
    stage_input(&mut flaky, bench, 1 << 20, 5).unwrap();
    let want = run_benchmark(&mut clean, bench, Mode::Morpheus).unwrap();
    let got = run_benchmark(&mut flaky, bench, Mode::Morpheus).unwrap();
    // Same objects despite error injection (retries recover)...
    assert_eq!(want.report.checksum, got.report.checksum);
    assert_eq!(want.kernel, got.kernel);
    // ...but the flaky run pays for the retries in time.
    assert!(
        got.report.phases.deserialization_s >= want.report.phases.deserialization_s,
        "retries should not make the drive faster"
    );
}

#[test]
fn deserialization_dominates_conventional_runs() {
    // The premise of the whole paper (Fig. 2).
    let mut sys = staged_system();
    let mut fractions = Vec::new();
    for bench in suite() {
        stage_input(&mut sys, &bench, 1 << 20, 5).unwrap();
        let conv = run_benchmark(&mut sys, &bench, Mode::Conventional).unwrap();
        fractions.push(conv.report.phases.deserialization_fraction());
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    assert!(
        (0.5..0.8).contains(&avg),
        "average deserialization fraction {avg} should be near the paper's 0.64"
    );
}

#[test]
fn headline_speedups_in_paper_range() {
    let mut sys = staged_system();
    let mut deser = Vec::new();
    let mut total = Vec::new();
    for bench in suite() {
        stage_input(&mut sys, &bench, 2 << 20, 5).unwrap();
        let conv = run_benchmark(&mut sys, &bench, Mode::Conventional).unwrap();
        let morp = run_benchmark(&mut sys, &bench, Mode::Morpheus).unwrap();
        deser.push(morp.report.deser_speedup_over(&conv.report));
        total.push(morp.report.total_speedup_over(&conv.report));
    }
    let avg_deser = deser.iter().sum::<f64>() / deser.len() as f64;
    let avg_total = total.iter().sum::<f64>() / total.len() as f64;
    assert!(
        (1.4..2.1).contains(&avg_deser),
        "average deser speedup {avg_deser} vs paper 1.66"
    );
    assert!(
        (1.15..1.6).contains(&avg_total),
        "average total speedup {avg_total} vs paper 1.32"
    );
    // SpMV is the float-bound outlier.
    let spmv_idx = suite().iter().position(|b| b.name == "spmv").unwrap();
    let min = deser.iter().cloned().fold(f64::INFINITY, f64::min);
    assert_eq!(
        deser[spmv_idx], min,
        "spmv should be the slowest to improve"
    );
}

#[test]
fn identify_advertises_morpheus_capabilities() {
    let sys = staged_system();
    let id = sys.mssd.identify();
    let page = id.encode();
    let back = morpheus_nvme::IdentifyController::decode(&page[..]).unwrap();
    let caps = back
        .morpheus
        .expect("morpheus-ssd advertises storageapp support");
    assert_eq!(caps.embedded_cores, sys.params.ssd.embedded_cores);
    assert_eq!(caps.dsram_bytes, sys.params.ssd.dsram_bytes);
    assert!(back.model.contains("Morpheus"));
}

#[test]
fn multiprogrammed_host_widens_the_deser_gap() {
    use morpheus::{CoRunner, SystemParams};
    let bench = &suite()[0];
    let mut idle = System::new(SystemParams::paper_testbed());
    let mut busy = System::new(SystemParams::multiprogrammed(CoRunner::heavy()));
    stage_input(&mut idle, bench, 2 << 20, 5).unwrap();
    stage_input(&mut busy, bench, 2 << 20, 5).unwrap();
    let speedup = |sys: &mut System| {
        let conv = run_benchmark(sys, bench, Mode::Conventional).unwrap();
        let morp = run_benchmark(sys, bench, Mode::Morpheus).unwrap();
        assert_eq!(conv.kernel, morp.kernel);
        (
            morp.report.deser_speedup_over(&conv.report),
            conv.report.context_switches,
        )
    };
    let (idle_speedup, idle_cs) = speedup(&mut idle);
    let (busy_speedup, busy_cs) = speedup(&mut busy);
    assert!(
        busy_speedup > idle_speedup,
        "{busy_speedup} vs {idle_speedup}"
    );
    assert!(busy_cs > idle_cs, "co-runner must add context switches");
}

#[test]
fn binary_input_runs_match_text_runs() {
    use morpheus::{AppSpec, InputFormat};
    use morpheus_format::{encode_binary, parse_buffer, Endianness, FieldKind, Schema};
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::F64]);
    let mut w = morpheus_format::TextWriter::new();
    for i in 0..5_000u64 {
        w.write_u64(i % 997);
        w.sep();
        w.write_f64(i as f64 * 0.5, 3);
        w.newline();
    }
    let text = w.into_bytes();
    let (mut objects, _) = parse_buffer(&text, &schema).unwrap();
    objects.canonicalize();
    let bin = encode_binary(&objects, Endianness::Big);

    let mut sys = staged_system();
    sys.create_input_file("data.txt", &text).unwrap();
    sys.create_input_file("data.bin", &bin).unwrap();
    let text_spec = AppSpec::cpu_app("t", "data.txt", schema.clone(), 2, 100.0);
    let bin_spec = AppSpec::cpu_app("b", "data.bin", schema.clone(), 2, 100.0)
        .with_input_format(InputFormat::Binary(Endianness::Big));
    for mode in [Mode::Conventional, Mode::Morpheus] {
        let from_text = sys.run(&text_spec, mode).unwrap();
        let from_bin = sys.run(&bin_spec, mode).unwrap();
        assert_eq!(from_text.objects, objects);
        assert_eq!(from_bin.objects, objects);
        assert_eq!(from_text.report.checksum, from_bin.report.checksum);
    }
}
