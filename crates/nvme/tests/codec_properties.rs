//! Property tests for the NVMe packet codec and queue rings.

use morpheus_nvme::{
    CompletionQueue, IoOpcode, MorpheusCommand, NvmeCommand, StatusCode, SubmissionQueue,
    MAX_IO_BLOCKS,
};
use proptest::prelude::*;

fn opcode_strategy() -> impl Strategy<Value = IoOpcode> {
    prop_oneof![
        Just(IoOpcode::Flush),
        Just(IoOpcode::Write),
        Just(IoOpcode::Read),
        Just(IoOpcode::DatasetMgmt),
        Just(IoOpcode::MInit),
        Just(IoOpcode::MWrite),
        Just(IoOpcode::MRead),
        Just(IoOpcode::MDeinit),
    ]
}

fn command_strategy() -> impl Strategy<Value = NvmeCommand> {
    (
        opcode_strategy(),
        any::<u8>(),
        any::<u16>(),
        any::<u32>(),
        any::<(u64, u64, u64)>(),
        any::<[u32; 6]>(),
    )
        .prop_map(
            |(opcode, flags, cid, nsid, (mptr, prp1, prp2), cdw)| NvmeCommand {
                opcode,
                flags,
                cid,
                nsid,
                mptr,
                prp1,
                prp2,
                cdw,
            },
        )
}

fn morpheus_strategy() -> impl Strategy<Value = MorpheusCommand> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), any::<u32>(), any::<u32>()).prop_map(
            |(instance_id, code_ptr, code_len, arg)| MorpheusCommand::Init {
                instance_id,
                code_ptr,
                code_len,
                arg,
            }
        ),
        (any::<u32>(), any::<u64>(), 1..=MAX_IO_BLOCKS, any::<u64>()).prop_map(
            |(instance_id, slba, blocks, dma_addr)| MorpheusCommand::Read {
                instance_id,
                slba,
                blocks,
                dma_addr,
            }
        ),
        (any::<u32>(), any::<u64>(), 1..=MAX_IO_BLOCKS, any::<u64>()).prop_map(
            |(instance_id, slba, blocks, dma_addr)| MorpheusCommand::Write {
                instance_id,
                slba,
                blocks,
                dma_addr,
            }
        ),
        any::<u32>().prop_map(|instance_id| MorpheusCommand::Deinit { instance_id }),
    ]
}

proptest! {
    #[test]
    fn packet_codec_round_trips(cmd in command_strategy()) {
        let bytes = cmd.encode();
        prop_assert_eq!(NvmeCommand::decode(&bytes), Some(cmd));
    }

    #[test]
    fn morpheus_view_round_trips(m in morpheus_strategy(), cid in any::<u16>()) {
        let wire = m.into_command(cid, 1);
        prop_assert_eq!(wire.cid, cid);
        let bytes = wire.encode();
        let decoded = NvmeCommand::decode(&bytes).unwrap();
        prop_assert_eq!(MorpheusCommand::parse(&decoded), Some(m));
    }

    /// Every submitted command eventually produces exactly one completion
    /// with a matching cid, in order, regardless of interleaving.
    #[test]
    fn one_completion_per_submission(
        schedule in proptest::collection::vec(0u8..3, 1..400),
        depth in 1usize..16,
    ) {
        let mut sq = SubmissionQueue::new(depth);
        let mut cq = CompletionQueue::new(depth);
        let mut submitted: u16 = 0;
        let mut completed: u16 = 0;
        let mut reaped: u16 = 0;
        for step in schedule {
            match step {
                0 => {
                    if sq.submit(NvmeCommand::new(IoOpcode::Flush, submitted, 1)).is_ok() {
                        submitted += 1;
                    }
                }
                1 => {
                    if cq.outstanding() < depth {
                        if let Some(c) = sq.pop() {
                            prop_assert_eq!(c.cid, completed);
                            cq.post(c.cid, StatusCode::Success, 0).unwrap();
                            completed += 1;
                        }
                    }
                }
                _ => {
                    if let Some(e) = cq.reap() {
                        prop_assert_eq!(e.cid, reaped);
                        reaped += 1;
                    }
                }
            }
        }
        // Drain everything still in flight.
        while let Some(c) = sq.pop() {
            while cq.outstanding() == depth {
                let e = cq.reap().unwrap();
                prop_assert_eq!(e.cid, reaped);
                reaped += 1;
            }
            cq.post(c.cid, StatusCode::Success, 0).unwrap();
            completed += 1;
        }
        while let Some(e) = cq.reap() {
            prop_assert_eq!(e.cid, reaped);
            reaped += 1;
        }
        prop_assert_eq!(submitted, completed);
        prop_assert_eq!(completed, reaped);
    }
}
