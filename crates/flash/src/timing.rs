//! Flash operation latencies.

use morpheus_simcore::{Bandwidth, SimDuration};

/// Latency parameters of the NAND chips and channel buses.
///
/// Defaults approximate the MLC-era parts in the Morpheus-SSD prototype:
/// 70 µs page read, 600 µs program, 3 ms erase, 400 MB/s per channel bus.
#[derive(Debug, Clone, Copy)]
pub struct FlashTiming {
    /// Array-to-register page read time (die busy).
    pub read_latency: SimDuration,
    /// Register-to-array page program time (die busy).
    pub program_latency: SimDuration,
    /// Block erase time (die busy).
    pub erase_latency: SimDuration,
    /// Channel bus rate for moving a page between die register and
    /// controller.
    pub bus_bandwidth: Bandwidth,
}

impl FlashTiming {
    /// Bus transfer time for `bytes`.
    pub fn bus_transfer(&self, bytes: u64) -> SimDuration {
        self.bus_bandwidth.duration_for(bytes)
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming {
            read_latency: SimDuration::from_micros(70),
            program_latency: SimDuration::from_micros(600),
            erase_latency: SimDuration::from_millis(3),
            bus_bandwidth: Bandwidth::from_mb_per_s(400.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values_are_sane() {
        let t = FlashTiming::default();
        assert!(t.read_latency < t.program_latency);
        assert!(t.program_latency < t.erase_latency);
    }

    #[test]
    fn bus_transfer_scales_with_bytes() {
        let t = FlashTiming::default();
        let one = t.bus_transfer(4096);
        let four = t.bus_transfer(4 * 4096);
        assert_eq!(four.as_nanos(), one.as_nanos() * 4);
    }
}
