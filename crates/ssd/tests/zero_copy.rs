//! Zero-copy contract of the controller read path, plus functional
//! equivalence of the reworked data path against a plain byte-array model.

use morpheus_flash::{copy_audit, FlashGeometry, FlashTiming, PageData};
use morpheus_ftl::Lpn;
use morpheus_nvme::LBA_BYTES;
use morpheus_simcore::SimTime;
use morpheus_ssd::{Ssd, SsdConfig};
use proptest::prelude::*;

fn small_ssd() -> Ssd {
    Ssd::new(
        SsdConfig::default(),
        FlashGeometry::small(),
        FlashTiming::default(),
    )
}

/// The regression tripwire for the read hot path: serving bulk reads must
/// not materialize any full-page payload copy (`PageData::to_boxed` /
/// `to_vec`), no matter how many pages are touched. The single sanctioned
/// copy is the sub-slice memcpy into the caller's output buffer.
#[test]
fn bulk_reads_never_copy_full_pages() {
    let mut ssd = small_ssd();
    let page = ssd.page_bytes() as usize;
    let data: Vec<u8> = (0..page * 8).map(|i| (i % 253) as u8).collect();
    ssd.load_at(0, &data).unwrap();

    let before = copy_audit::count();
    let blocks = data.len() as u64 / LBA_BYTES;
    let (timed, _) = ssd.read_range(0, blocks, SimTime::ZERO).unwrap();
    let untimed = ssd.read_range_untimed(0, blocks).unwrap();
    for lpn in 0..8 {
        let (handle, _) = ssd.read_page_timed(Lpn(lpn), SimTime::ZERO).unwrap();
        assert!(handle.data().is_some());
    }
    assert_eq!(
        copy_audit::count(),
        before,
        "the read hot path materialized a full-page copy"
    );

    assert_eq!(&timed[..], &data[..]);
    assert_eq!(&untimed[..], &data[..]);
    assert!(ssd.ftl().flash().stats().reads > 0);
}

/// Repeated page reads through the whole stack hand back the same
/// allocation the flash array stores.
#[test]
fn page_handles_share_storage_across_the_stack() {
    let mut ssd = small_ssd();
    ssd.load_at(0, &vec![0x5A; 4096]).unwrap();
    let (a, _) = ssd.read_page_timed(Lpn(0), SimTime::ZERO).unwrap();
    let (b, _) = ssd.read_page_timed(Lpn(0), SimTime::ZERO).unwrap();
    let (pa, pb) = (a.data().unwrap(), b.data().unwrap());
    assert!(PageData::ptr_eq(pa, pb), "controller reads must not copy");
}

/// Unmapped pages read as zeros without a backing allocation.
#[test]
fn unmapped_pages_have_no_backing_allocation() {
    let mut ssd = small_ssd();
    let (handle, _) = ssd.read_page_timed(Lpn(5), SimTime::ZERO).unwrap();
    assert!(handle.data().is_none());
    assert!(handle.slice(0, 16).iter().all(|b| *b == 0));
    let mut out = Vec::new();
    handle.copy_into(8, 40, &mut out);
    assert_eq!(out, vec![0u8; 32]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Oracle: an SSD driven by arbitrary interleaved writes and reads at
    /// arbitrary (mis)alignments behaves exactly like a flat byte array.
    /// This pins down the functional semantics of the zero-copy rework —
    /// partial-page RMW, zero-fill of unwritten ranges, page-boundary
    /// straddling reads.
    #[test]
    fn data_path_matches_byte_array_model(
        ops in proptest::collection::vec(
            (0u64..64, 1u64..24, 0u8..3), 1..24
        )
    ) {
        let mut ssd = small_ssd();
        let cap = ssd.capacity_lbas();
        let mut model = vec![0u8; (cap * LBA_BYTES) as usize];
        for (i, (slba, blocks, kind)) in ops.into_iter().enumerate() {
            let slba = slba.min(cap - 1);
            let blocks = blocks.min(cap - slba);
            let byte_start = (slba * LBA_BYTES) as usize;
            let byte_len = (blocks * LBA_BYTES) as usize;
            match kind {
                // Aligned whole-block write.
                0 => {
                    let payload: Vec<u8> =
                        (0..byte_len).map(|j| (i + j) as u8 | 1).collect();
                    ssd.write_range(slba, &payload, SimTime::ZERO).unwrap();
                    model[byte_start..byte_start + byte_len]
                        .copy_from_slice(&payload);
                }
                // Short (sub-block) write: exercises the RMW path.
                1 => {
                    let short = (byte_len / 2).max(1);
                    let payload: Vec<u8> =
                        (0..short).map(|j| (3 * i + j) as u8 | 1).collect();
                    ssd.write_range(slba, &payload, SimTime::ZERO).unwrap();
                    model[byte_start..byte_start + short]
                        .copy_from_slice(&payload);
                }
                // Read and compare against the model.
                _ => {
                    let (got, _) =
                        ssd.read_range(slba, blocks, SimTime::ZERO).unwrap();
                    prop_assert_eq!(
                        &got[..],
                        &model[byte_start..byte_start + byte_len],
                        "read {}..{} diverged from model", slba, slba + blocks
                    );
                }
            }
        }
        // Final sweep: every block agrees with the model.
        let all = ssd.read_range_untimed(0, cap).unwrap();
        prop_assert_eq!(&all[..], &model[..]);
    }
}
