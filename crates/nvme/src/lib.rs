//! NVMe protocol model with the Morpheus command extensions.
//!
//! Reproduces the protocol layer of §IV-A: NVMe encodes commands into
//! 64-byte packets with a one-byte opcode; the Morpheus-SSD claims four
//! opcodes in the vendor-specific space:
//!
//! * **MINIT** — install and start a StorageApp instance,
//! * **MREAD** — read file data *through* a StorageApp instance,
//! * **MWRITE** — write data through a StorageApp instance,
//! * **MDEINIT** — tear an instance down and collect its return value.
//!
//! The crate provides byte-exact packet encode/decode ([`NvmeCommand`]),
//! typed views of the Morpheus payloads ([`MorpheusCommand`]), standard and
//! Morpheus [`status`](StatusCode) codes, and functional submission /
//! completion queue rings with phase-bit semantics ([`SubmissionQueue`],
//! [`CompletionQueue`]) exactly as a doorbell-model NVMe device uses them.
//!
//! # Example
//!
//! ```
//! use morpheus_nvme::{MorpheusCommand, NvmeCommand};
//!
//! let cmd = MorpheusCommand::Init {
//!     instance_id: 7,
//!     code_ptr: 0x1000,
//!     code_len: 512,
//!     arg: 3,
//! }
//! .into_command(42, 1);
//! let bytes = cmd.encode();
//! assert_eq!(bytes.len(), 64);
//! let back = NvmeCommand::decode(&bytes).unwrap();
//! assert_eq!(MorpheusCommand::parse(&back).unwrap(), MorpheusCommand::Init {
//!     instance_id: 7,
//!     code_ptr: 0x1000,
//!     code_len: 512,
//!     arg: 3,
//! });
//! ```

#![deny(missing_docs)]

mod admin;
mod command;
mod queue;
mod status;
mod wire;

pub use admin::{AdminController, AdminOpcode, IdentifyController, MorpheusCaps, IDENTIFY_BYTES};
pub use command::{
    IoOpcode, MorpheusCommand, NvmeCommand, Opcode, CMD_BYTES, LBA_BYTES, MAX_IO_BLOCKS,
};
pub use queue::{CompletionEntry, CompletionQueue, QueueError, QueuePair, SubmissionQueue};
pub use status::StatusCode;
