//! Criterion: real wall-clock throughput of the text parsers.
//!
//! This measures our actual parsing code (the functional layer both
//! execution paths share), not the simulated platform.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use morpheus_format::{parse_buffer, parse_chunked, FieldKind, Schema, TextScanner};
use morpheus_workloads::{edge_list_text, int_list_text, sparse_coo_text};
use std::hint::black_box;

fn bench_parsers(c: &mut Criterion) {
    let mut g = c.benchmark_group("parser");
    let edge_schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let coo_schema = Schema::new(vec![FieldKind::U32, FieldKind::U32, FieldKind::F64]);

    let edges = edge_list_text(1 << 20, 1);
    g.throughput(Throughput::Bytes(edges.len() as u64));
    g.bench_function("edge_list_whole_buffer", |b| {
        b.iter(|| parse_buffer(black_box(&edges), &edge_schema).unwrap())
    });
    g.bench_function("edge_list_streaming_16k_chunks", |b| {
        b.iter(|| parse_chunked(black_box(&edges), &edge_schema, 16 * 1024).unwrap())
    });

    let coo = sparse_coo_text(1 << 20, 2);
    g.throughput(Throughput::Bytes(coo.len() as u64));
    g.bench_function("coo_with_floats", |b| {
        b.iter(|| parse_buffer(black_box(&coo), &coo_schema).unwrap())
    });

    let ints = int_list_text(1 << 20, 3, 1_000_000_000);
    g.throughput(Throughput::Bytes(ints.len() as u64));
    g.bench_function("raw_u64_scan", |b| {
        b.iter(|| {
            let mut s = TextScanner::new(black_box(&ints));
            let mut acc = 0u64;
            while !s.at_end() {
                acc = acc.wrapping_add(s.parse_u64().unwrap());
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parsers);
criterion_main!(benches);
