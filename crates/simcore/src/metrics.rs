//! A small ordered metric bag used by reports throughout the workspace.

use std::collections::BTreeMap;
use std::fmt;

/// Named floating-point metrics with deterministic (sorted) iteration order.
///
/// # Example
///
/// ```
/// use morpheus_simcore::Metrics;
///
/// let mut m = Metrics::new();
/// m.add("bytes", 4096.0);
/// m.add("bytes", 4096.0);
/// assert_eq!(m.get("bytes"), 8192.0);
/// assert_eq!(m.get("missing"), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    values: BTreeMap<String, f64>,
}

impl Metrics {
    /// Creates an empty metric bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the named metric (creating it at zero first).
    pub fn add(&mut self, name: &str, v: f64) {
        *self.values.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Sets the named metric, replacing any previous value.
    pub fn set(&mut self, name: &str, v: f64) {
        self.values.insert(name.to_string(), v);
    }

    /// Increments the named metric by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1.0);
    }

    /// Reads a metric; missing metrics read as zero.
    pub fn get(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or(0.0)
    }

    /// True if the metric has been written.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Iterates metrics in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another bag into this one, summing shared names.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of distinct metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no metric has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Metrics {
    type Item = (&'a String, &'a f64);
    type IntoIter = std::collections::btree_map::Iter<'a, String, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

/// A fixed log-2-bucket latency histogram.
///
/// Values land in bucket `ceil(log2(v))` (64 buckets plus one for zero), so
/// recording is branch-light and allocation-free; percentile queries return
/// the bucket's upper bound clamped to the observed maximum, giving at most
/// 2× relative error — plenty for spotting distribution shifts between runs.
///
/// # Example
///
/// ```
/// use morpheus_simcore::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 40, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1000);
/// assert!(h.p50() >= 20 && h.p50() <= 64);
/// assert_eq!(h.p99(), 1000);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    /// counts[0] holds zeros; counts[b] holds [2^(b-1), 2^b).
    counts: [u64; 65],
    count: u64,
    max: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; 65],
            count: 0,
            max: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded value (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded values (saturating; zero when empty). Together
    /// with [`count`](Histogram::count) this is what a Prometheus
    /// histogram's `_sum`/`_count` series expose.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The raw bucket counts: `counts[0]` holds zeros and `counts[b]`
    /// holds values in `[2^(b-1), 2^b)`. Exposed for exposition-format
    /// exporters that need the full distribution.
    pub fn bucket_counts(&self) -> &[u64; 65] {
        &self.counts
    }

    /// The largest value bucket `b` can hold (the inclusive `le` upper
    /// bound of that bucket in exposition formats).
    pub const fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// The value at quantile `q` in `[0, 1]` (bucket upper bound, clamped
    /// to the observed maximum). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket b holds [2^(b-1), 2^b); report its largest value.
                let upper = if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Histogram::quantile) for precision).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Writes `p50/p95/p99/max/count` under `prefix` into a metric bag
    /// (no-op when empty, so untouched histograms leave reports unchanged).
    pub fn export(&self, prefix: &str, metrics: &mut Metrics) {
        if self.is_empty() {
            return;
        }
        metrics.set(&format!("{prefix}_p50"), self.p50() as f64);
        metrics.set(&format!("{prefix}_p95"), self.p95() as f64);
        metrics.set(&format!("{prefix}_p99"), self.p99() as f64);
        metrics.set(&format!("{prefix}_max"), self.max as f64);
        metrics.set(&format!("{prefix}_count"), self.count as f64);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut m = Metrics::new();
        m.add("x", 1.5);
        m.add("x", 2.5);
        assert_eq!(m.get("x"), 4.0);
    }

    #[test]
    fn set_replaces() {
        let mut m = Metrics::new();
        m.add("x", 1.0);
        m.set("x", 9.0);
        assert_eq!(m.get("x"), 9.0);
    }

    #[test]
    fn merge_sums_shared_names() {
        let mut a = Metrics::new();
        a.add("x", 1.0);
        let mut b = Metrics::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Metrics::new();
        m.inc("zeta");
        m.inc("alpha");
        let names: Vec<_> = m.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn iteration_order_is_sorted_and_insertion_independent() {
        // Telemetry CSV column order is derived from this iteration, so it
        // must be lexicographic and stable regardless of write order.
        let forward = ["a", "b/c", "b_d", "cache_hits", "rps", "zz"];
        let mut reversed = forward;
        reversed.reverse();
        let fill = |names: &[&str]| {
            let mut m = Metrics::new();
            for (i, n) in names.iter().enumerate() {
                m.set(n, i as f64);
            }
            m.iter().map(|(k, _)| k.to_string()).collect::<Vec<_>>()
        };
        let a = fill(&forward);
        let b = fill(&reversed);
        assert_eq!(a, b, "iteration order must not depend on insertion order");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted, "iteration must be lexicographically sorted");
        // Overwrites and merges keep the order stable too.
        let mut m = Metrics::new();
        for n in reversed {
            m.set(n, 1.0);
        }
        let mut other = Metrics::new();
        other.set("b/c", 2.0);
        m.merge(&other);
        m.set("a", 9.0);
        let after: Vec<_> = m.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(after, sorted);
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = Metrics::new();
        m.set("a", 1.0);
        assert_eq!(m.to_string(), "a: 1\n");
    }

    #[test]
    fn histogram_empty_reads_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        let mut m = Metrics::new();
        h.export("lat", &mut m);
        assert!(m.is_empty(), "empty histograms export nothing");
    }

    #[test]
    fn histogram_buckets_zero_and_powers() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), 0);
        // Median of {0, 1, 2} lands in the bucket holding 1.
        assert_eq!(h.p50(), 1);
        assert_eq!(h.max(), 2);
    }

    #[test]
    fn histogram_percentiles_bound_by_max() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        // p50/p95 stay in the common bucket ([64,128) → upper bound 127).
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p95(), 127);
        assert_eq!(h.p99(), 127);
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.sum(), 1010);
    }

    #[test]
    fn histogram_sum_and_buckets_expose_distribution() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(3);
        assert_eq!(h.sum(), 4);
        let c = h.bucket_counts();
        assert_eq!(c[0], 1, "zeros land in bucket 0");
        assert_eq!(c[1], 1, "1 lands in [1,2)");
        assert_eq!(c[2], 1, "3 lands in [2,4)");
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
        // Saturating sum never wraps.
        let mut s = Histogram::new();
        s.record(u64::MAX);
        s.record(u64::MAX);
        assert_eq!(s.sum(), u64::MAX);
    }

    #[test]
    fn histogram_exports_prefixed_metrics() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        let mut m = Metrics::new();
        h.export("nvme_lat_ns", &mut m);
        assert_eq!(m.get("nvme_lat_ns_count"), 3.0);
        assert_eq!(m.get("nvme_lat_ns_max"), 30.0);
        assert!(m.contains("nvme_lat_ns_p50"));
        assert!(m.contains("nvme_lat_ns_p95"));
        assert!(m.contains("nvme_lat_ns_p99"));
    }
}
