//! Whole-system power and energy accounting.
//!
//! The paper measures wall power with a Watts Up meter: an idle floor
//! (105 W on their testbed) plus whatever each active component adds. We
//! reproduce exactly that methodology: a [`PowerModel`] holds the idle floor
//! and one [`Rail`] per component with the *delta* watts it draws while busy;
//! busy time comes from the resource timelines. Energy is the integral
//! `idle * makespan + Σ rail_delta * rail_busy`.

use crate::{SimDuration, SimTime};

/// Identifies a rail within a [`PowerModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RailId(usize);

/// One component's contribution to system power while active.
#[derive(Debug, Clone)]
pub struct Rail {
    /// Component name (e.g. `"cpu"`, `"ssd-cores"`).
    pub name: String,
    /// Watts drawn *above idle* while the component is busy.
    pub active_delta_watts: f64,
    /// Accumulated busy time.
    busy: SimDuration,
}

/// System power model: idle floor plus per-component active deltas.
///
/// # Example
///
/// ```
/// use morpheus_simcore::{PowerModel, SimDuration, SimTime};
///
/// let mut pm = PowerModel::new(105.0);
/// let cpu = pm.add_rail("cpu", 10.4);
/// pm.add_busy(cpu, SimDuration::from_secs(1));
/// let rep = pm.report(SimTime::ZERO + SimDuration::from_secs(2));
/// assert!((rep.energy_joules - (105.0 * 2.0 + 10.4)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Watts drawn by the whole platform when idle.
    pub idle_watts: f64,
    rails: Vec<Rail>,
}

/// Power/energy summary over a run.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// Wall-clock length of the run.
    pub makespan_s: f64,
    /// Total energy, joules.
    pub energy_joules: f64,
    /// Mean power, watts (`energy / makespan`).
    pub avg_power_watts: f64,
    /// Per-rail energy above idle, joules, in rail order.
    pub rail_joules: Vec<(String, f64)>,
}

impl PowerModel {
    /// Creates a model with the given idle floor in watts.
    ///
    /// # Panics
    ///
    /// Panics if `idle_watts` is negative or not finite.
    pub fn new(idle_watts: f64) -> Self {
        assert!(
            idle_watts.is_finite() && idle_watts >= 0.0,
            "idle power must be finite and non-negative"
        );
        PowerModel {
            idle_watts,
            rails: Vec::new(),
        }
    }

    /// Registers a component rail and returns its id.
    pub fn add_rail(&mut self, name: impl Into<String>, active_delta_watts: f64) -> RailId {
        assert!(
            active_delta_watts.is_finite() && active_delta_watts >= 0.0,
            "rail delta must be finite and non-negative"
        );
        self.rails.push(Rail {
            name: name.into(),
            active_delta_watts,
            busy: SimDuration::ZERO,
        });
        RailId(self.rails.len() - 1)
    }

    /// Adds busy time to a rail.
    pub fn add_busy(&mut self, rail: RailId, busy: SimDuration) {
        self.rails[rail.0].busy += busy;
    }

    /// Overrides a rail's active delta (used for DVFS-dependent CPU power).
    pub fn set_delta(&mut self, rail: RailId, active_delta_watts: f64) {
        assert!(
            active_delta_watts.is_finite() && active_delta_watts >= 0.0,
            "rail delta must be finite and non-negative"
        );
        self.rails[rail.0].active_delta_watts = active_delta_watts;
    }

    /// Accumulated busy time of a rail.
    pub fn busy(&self, rail: RailId) -> SimDuration {
        self.rails[rail.0].busy
    }

    /// Produces the energy report for a run that ended at `end`.
    pub fn report(&self, end: SimTime) -> EnergyReport {
        let makespan_s = end.as_secs_f64();
        let mut energy = self.idle_watts * makespan_s;
        let mut rail_joules = Vec::with_capacity(self.rails.len());
        for r in &self.rails {
            let j = r.active_delta_watts * r.busy.as_secs_f64();
            energy += j;
            rail_joules.push((r.name.clone(), j));
        }
        EnergyReport {
            makespan_s,
            energy_joules: energy,
            avg_power_watts: if makespan_s > 0.0 {
                energy / makespan_s
            } else {
                self.idle_watts
            },
            rail_joules,
        }
    }

    /// Clears accumulated busy time on all rails.
    pub fn reset(&mut self) {
        for r in &mut self.rails {
            r.busy = SimDuration::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_only_run() {
        let pm = PowerModel::new(100.0);
        let rep = pm.report(SimTime::from_nanos(2_000_000_000));
        assert!((rep.energy_joules - 200.0).abs() < 1e-9);
        assert!((rep.avg_power_watts - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rails_add_delta_energy() {
        let mut pm = PowerModel::new(100.0);
        let cpu = pm.add_rail("cpu", 10.0);
        let ssd = pm.add_rail("ssd", 2.0);
        pm.add_busy(cpu, SimDuration::from_secs(1));
        pm.add_busy(ssd, SimDuration::from_secs(4));
        let rep = pm.report(SimTime::ZERO + SimDuration::from_secs(4));
        assert!((rep.energy_joules - (400.0 + 10.0 + 8.0)).abs() < 1e-9);
        assert_eq!(rep.rail_joules[0], ("cpu".to_string(), 10.0));
    }

    #[test]
    fn set_delta_affects_future_report() {
        let mut pm = PowerModel::new(0.0);
        let cpu = pm.add_rail("cpu", 10.0);
        pm.set_delta(cpu, 5.0);
        pm.add_busy(cpu, SimDuration::from_secs(2));
        let rep = pm.report(SimTime::ZERO + SimDuration::from_secs(2));
        assert!((rep.energy_joules - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_makespan_reports_idle_power() {
        let pm = PowerModel::new(42.0);
        let rep = pm.report(SimTime::ZERO);
        assert_eq!(rep.avg_power_watts, 42.0);
        assert_eq!(rep.energy_joules, 0.0);
    }

    #[test]
    fn reset_clears_busy() {
        let mut pm = PowerModel::new(0.0);
        let r = pm.add_rail("x", 1.0);
        pm.add_busy(r, SimDuration::from_secs(3));
        pm.reset();
        assert_eq!(pm.busy(r), SimDuration::ZERO);
    }
}
