//! Criterion: object-cache hot-path cost (lookup and admission).
//!
//! These are the operations every served request pays once a cache is
//! installed — a hit is one `lookup`, a miss is one `lookup` plus one
//! `admit`. They run in host wall-clock (zero *simulated* time), so this
//! bench is the guard that keeps the policy engine's real cost negligible
//! next to the simulation work it saves.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use morpheus::{CacheConfig, CachePolicy, ObjectCache};
use morpheus_format::{Column, FieldKind, ParsedColumns, Schema};
use std::hint::black_box;
use std::sync::Arc;

/// A parsed object of `n` records (two i64 columns, `16 * n` bytes).
fn obj(n: usize, salt: i64) -> Arc<ParsedColumns> {
    let schema = Schema::new(vec![FieldKind::I64, FieldKind::I64]);
    Arc::new(ParsedColumns {
        schema,
        columns: vec![
            Column::Ints((0..n as i64).map(|i| i * 3 + salt).collect()),
            Column::Ints((0..n as i64).map(|i| i * 7 - salt).collect()),
        ],
        records: n as u64,
    })
}

fn warmed_cache(policy: CachePolicy, files: usize) -> ObjectCache {
    let mut cache = ObjectCache::new(CacheConfig {
        dram_bytes: 256 << 20,
        host_bytes: 0,
        policy,
        seed: 42,
    });
    for i in 0..files {
        let file = format!("f{i}.txt");
        // Two misses so the TinyLFU doorkeeper admits on the second.
        let _ = cache.lookup("app", &file, 7);
        cache.admit("app", &file, 7, obj(512, i as i64));
        let _ = cache.lookup("app", &file, 7);
        cache.admit("app", &file, 7, obj(512, i as i64));
    }
    cache
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");

    for policy in [CachePolicy::TinyLfu, CachePolicy::Lru] {
        let mut cache = warmed_cache(policy, 64);
        g.throughput(Throughput::Elements(64));
        g.bench_function(format!("lookup_hit_{policy}"), |b| {
            b.iter(|| {
                let mut served = 0u64;
                for i in 0..64 {
                    let file = format!("f{i}.txt");
                    if cache.lookup(black_box("app"), &file, 7).is_some() {
                        served += 1;
                    }
                }
                served
            })
        });
    }

    let mut cold = warmed_cache(CachePolicy::TinyLfu, 64);
    g.throughput(Throughput::Elements(64));
    g.bench_function("lookup_miss", |b| {
        b.iter(|| {
            let mut missed = 0u64;
            for i in 0..64 {
                let file = format!("absent{i}.txt");
                if cold.lookup(black_box("app"), &file, 7).is_none() {
                    missed += 1;
                }
            }
            missed
        })
    });

    // Admission churn against a full DRAM tier: every admit runs the
    // frequency gate, victim selection, and eviction bookkeeping.
    let payload = obj(512, 99);
    g.throughput(Throughput::Bytes(payload.binary_bytes()));
    g.bench_function("admit_under_pressure", |b| {
        let mut cache = ObjectCache::new(CacheConfig {
            dram_bytes: 64 << 10, // a handful of 8 KB objects
            host_bytes: 64 << 10,
            policy: CachePolicy::Lru,
            seed: 42,
        });
        let mut i = 0u64;
        b.iter(|| {
            let file = format!("churn{}.txt", i % 257);
            i += 1;
            let _ = cache.lookup("app", &file, 7);
            cache.admit(black_box("app"), &file, 7, Arc::clone(&payload));
            cache.take_events().len() as u64
        })
    });

    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
