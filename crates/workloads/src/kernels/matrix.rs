//! Dense matrix kernels: Gaussian elimination and LU decomposition.
//!
//! The input is a square integer matrix flattened into one column. To keep
//! functional verification tractable at large input scales, kernels operate
//! on the leading `MAX_DIM × MAX_DIM` block (the timing model still charges
//! the full O(n³) work via the `AppSpec` constants); at benchmark scales
//! below the cap this is the whole matrix.

use crate::kernels::KernelResult;
use crate::Digest;
use morpheus_format::ParsedColumns;

/// Largest block functionally factorized.
pub const MAX_DIM: usize = 384;

fn load_matrix(objects: &ParsedColumns) -> (usize, Vec<f64>) {
    let vals = objects.columns[0]
        .as_ints()
        .expect("matrix column is integer");
    let n_full = (vals.len() as f64).sqrt() as usize;
    let n = n_full.min(MAX_DIM);
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = vals[i * n_full + j] as f64;
        }
    }
    (n, a)
}

/// Gaussian elimination with partial pivoting; digests the resulting upper
/// triangle's diagonal and the pivot order.
pub fn gaussian(objects: &ParsedColumns) -> KernelResult {
    let (n, mut a) = load_matrix(objects);
    let mut d = Digest::new();
    let mut swaps = 0u64;
    for k in 0..n {
        // Partial pivot.
        let mut p = k;
        for i in (k + 1)..n {
            if a[i * n + k].abs() > a[p * n + k].abs() {
                p = i;
            }
        }
        if p != k {
            for j in 0..n {
                a.swap(k * n + j, p * n + j);
            }
            swaps += 1;
        }
        d.mix(p as u64);
        let pivot = a[k * n + k];
        if pivot == 0.0 {
            continue;
        }
        for i in (k + 1)..n {
            let f = a[i * n + k] / pivot;
            a[i * n + k] = 0.0;
            for j in (k + 1)..n {
                a[i * n + j] -= f * a[k * n + j];
            }
        }
    }
    let mut logdet = 0.0f64;
    for k in 0..n {
        let v = a[k * n + k];
        d.mix_f64(v);
        if v != 0.0 {
            logdet += v.abs().ln();
        }
    }
    KernelResult {
        digest: d.value(),
        summary: format!("gaussian: n={n}, {swaps} pivots, log|det|={logdet:.3}"),
    }
}

/// Doolittle LU decomposition (no pivoting — inputs are diagonally
/// dominant); digests both factors' diagonals.
pub fn lud(objects: &ParsedColumns) -> KernelResult {
    let (n, a) = load_matrix(objects);
    let mut lu = a.clone();
    for k in 0..n {
        let pivot = lu[k * n + k];
        assert!(
            pivot.abs() > 1e-12,
            "diagonally dominant input should not need pivoting"
        );
        for i in (k + 1)..n {
            let f = lu[i * n + k] / pivot;
            lu[i * n + k] = f;
            for j in (k + 1)..n {
                lu[i * n + j] -= f * lu[k * n + j];
            }
        }
    }
    let mut d = Digest::new();
    let mut logdet = 0.0f64;
    for k in 0..n {
        d.mix_f64(lu[k * n + k]);
        logdet += lu[k * n + k].abs().ln();
    }
    // Verify a sample: (L·U) row 0 must reproduce A row 0 exactly.
    for j in 0..n.min(8) {
        let reconstructed = lu[j]; // U's first row is A's first row
        assert!((reconstructed - a[j]).abs() < 1e-9);
    }
    KernelResult {
        digest: d.value(),
        summary: format!("lud: n={n}, log|det|={logdet:.3}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    fn mat(text: &[u8]) -> ParsedColumns {
        let schema = Schema::new(vec![FieldKind::I32]);
        parse_buffer(text, &schema).unwrap().0
    }

    #[test]
    fn gaussian_identity_has_zero_logdet() {
        let p = mat(b"1 0 0\n0 1 0\n0 0 1\n");
        let r = gaussian(&p);
        assert!(r.summary.contains("log|det|=0.000"), "{}", r.summary);
    }

    #[test]
    fn gaussian_detects_known_determinant() {
        // det([[2,0],[0,3]]) = 6 -> log 1.792
        let p = mat(b"2 0\n0 3\n");
        let r = gaussian(&p);
        assert!(r.summary.contains("1.792"), "{}", r.summary);
    }

    #[test]
    fn lud_matches_gaussian_logdet_for_dominant_matrix() {
        let p = mat(b"10 1 2\n3 12 1\n2 1 9\n");
        let g = gaussian(&p);
        let l = lud(&p);
        let gl = g.summary.split("log|det|=").nth(1).unwrap();
        let ll = l.summary.split("log|det|=").nth(1).unwrap();
        assert_eq!(gl, ll);
    }

    #[test]
    fn kernels_are_deterministic() {
        let p = mat(b"10 1\n2 12\n");
        assert_eq!(gaussian(&p).digest, gaussian(&p).digest);
        assert_eq!(lud(&p).digest, lud(&p).digest);
    }

    #[test]
    fn large_matrices_capped() {
        let text = crate::matrix_text(4 * (MAX_DIM as u64 + 50).pow(2), 3);
        let p = mat(&text);
        let r = lud(&p);
        assert!(r.summary.contains(&format!("n={MAX_DIM}")), "{}", r.summary);
    }
}
