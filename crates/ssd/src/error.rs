//! SSD controller errors.

use morpheus_ftl::FtlError;
use std::error::Error;
use std::fmt;

/// Errors from the SSD controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdError {
    /// LBA range exceeds the namespace capacity.
    LbaOutOfRange {
        /// First offending LBA.
        slba: u64,
        /// Blocks requested.
        blocks: u64,
    },
    /// Read of logical blocks that were never written.
    Unwritten(u64),
    /// The FTL reported a failure.
    Ftl(FtlError),
}

impl fmt::Display for SsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsdError::LbaOutOfRange { slba, blocks } => {
                write!(f, "lba range {slba}+{blocks} out of range")
            }
            SsdError::Unwritten(lba) => write!(f, "lba {lba} has never been written"),
            SsdError::Ftl(_) => write!(f, "ftl request failed"),
        }
    }
}

impl Error for SsdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SsdError::Ftl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FtlError> for SsdError {
    fn from(e: FtlError) -> Self {
        SsdError::Ftl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        for e in [
            SsdError::LbaOutOfRange { slba: 1, blocks: 2 },
            SsdError::Unwritten(7),
            SsdError::Ftl(FtlError::NoFreeBlocks),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn display_does_not_embed_source() {
        // Causes are reachable only through `source()`, so a chain renderer
        // like `morpheus_simcore::render_error_chain` prints each layer once.
        let e = SsdError::Ftl(FtlError::NoFreeBlocks);
        let root = Error::source(&e).unwrap().to_string();
        assert!(!e.to_string().contains(&root));
    }
}
