//! The Morpheus programming model beyond plain deserialization: a custom
//! StorageApp that parses *and filters* inside the drive, plus on-device
//! format conversion through MWRITE.
//!
//! The paper's model is general-purpose: "the storage device... can
//! transform the same file into different kinds of data structures
//! according to the demand of applications" (§I). Here the host asks the
//! drive for only the forward edges (src < dst) of a graph — the rejected
//! records never cross the interconnect at all.
//!
//! ```sh
//! cargo run --release --example custom_storage_app
//! ```

use morpheus::{AppError, DeserializeApp, DeviceCtx, MorpheusSsd, StorageApp};
use morpheus_format::{CostModel, FieldKind, ParsedColumns, Schema, StreamingParser, TextWriter};
use morpheus_simcore::SimTime;
use morpheus_ssd::{Ssd, SsdConfig};

/// Deserializes `src dst` records and emits only those with `src < dst`.
#[derive(Debug)]
struct ForwardEdgeFilter {
    parser: Option<StreamingParser>,
    emitted: u64,
    kept: u32,
}

impl ForwardEdgeFilter {
    fn new() -> Self {
        ForwardEdgeFilter {
            parser: Some(StreamingParser::new(edge_schema())),
            emitted: 0,
            kept: 0,
        }
    }

    fn drain(&mut self, ctx: &mut DeviceCtx) {
        let parser = self.parser.as_ref().expect("still live");
        let cols = parser.peek();
        let src = cols.columns[0].as_ints().expect("src ints");
        let dst = cols.columns[1].as_ints().expect("dst ints");
        for r in self.emitted..parser.records() {
            let (s, d) = (src[r as usize], dst[r as usize]);
            // The filter itself is a couple of instructions per record.
            ctx.charge_instructions(4.0);
            if s < d {
                ctx.ms_memcpy(&(s as u32).to_le_bytes());
                ctx.ms_memcpy(&(d as u32).to_le_bytes());
                self.kept += 1;
            }
        }
        self.emitted = parser.records();
    }
}

impl StorageApp for ForwardEdgeFilter {
    fn name(&self) -> &str {
        "forward-edge-filter"
    }

    fn on_chunk(&mut self, ctx: &mut DeviceCtx, data: &[u8]) -> Result<(), AppError> {
        self.parser.as_mut().expect("still live").feed(data)?;
        self.drain(ctx);
        Ok(())
    }

    fn on_finish(&mut self, ctx: &mut DeviceCtx) -> Result<i32, AppError> {
        self.drain(ctx);
        self.parser.take().expect("finished once").finish()?;
        Ok(self.kept as i32)
    }
}

fn edge_schema() -> Schema {
    Schema::new(vec![FieldKind::U32, FieldKind::U32])
}

fn main() {
    let mut mssd = MorpheusSsd::new(
        Ssd::new(
            SsdConfig::default(),
            morpheus_flash::FlashGeometry::workload(),
            morpheus_flash::FlashTiming::default(),
        ),
        CostModel::embedded_core(),
    );

    // Stage an edge list with a mix of forward and backward edges.
    let mut w = TextWriter::new();
    let mut forward = 0u32;
    for i in 0..50_000u64 {
        let (s, d) = (i * 7 % 1000, i * 13 % 1000);
        if s < d {
            forward += 1;
        }
        w.write_u64(s);
        w.sep();
        w.write_u64(d);
        w.newline();
    }
    let text = w.into_bytes();
    mssd.dev.load_at(0, &text).unwrap();
    println!(
        "staged {} edges ({} forward) as {:.1} MB of text",
        50_000,
        forward,
        text.len() as f64 / 1e6
    );

    // --- MREAD through the filtering StorageApp ---
    let t0 = mssd
        .minit(1, Box::new(ForwardEdgeFilter::new()), SimTime::ZERO)
        .unwrap();
    let blocks = (text.len() as u64).div_ceil(512);
    let out = mssd.mread(1, 0, blocks, text.len() as u64, t0).unwrap();
    let dein = mssd.mdeinit(1, out.done).unwrap();
    let kept = dein.retval;
    let mut bytes = out.output;
    bytes.extend_from_slice(&dein.host_output);
    let filtered = ParsedColumns::decode(edge_schema(), &bytes).unwrap();
    assert_eq!(kept as u64, filtered.records);
    assert_eq!(filtered.records, forward as u64);
    println!(
        "the drive returned {} forward edges ({:.1}% of the input bytes crossed the bus)",
        filtered.records,
        100.0 * bytes.len() as f64 / text.len() as f64
    );

    // --- MWRITE: on-device format conversion (text in, binary stored) ---
    let t1 = mssd
        .minit(
            2,
            Box::new(DeserializeApp::new("to-binary", edge_schema())),
            SimTime::ZERO,
        )
        .unwrap();
    let sample = b"11 22\n33 44\n";
    let wrote = mssd.mwrite(2, 1 << 20, sample, t1).unwrap();
    mssd.mdeinit(2, wrote.durable).unwrap();
    let (stored, _) = mssd.dev.read_range(1 << 20, 1, wrote.durable).unwrap();
    let stored = ParsedColumns::decode(edge_schema(), &stored[..16]).unwrap();
    assert_eq!(stored.columns[0].as_ints().unwrap(), &[11, 33]);
    println!(
        "MWRITE converted {} bytes of text into {} bytes of binary objects on flash",
        sample.len(),
        16
    );
}
