//! NVMe completion status codes, including Morpheus-specific statuses.

use std::fmt;

/// Completion status of an NVMe command.
///
/// Standard codes use their NVMe 1.2 generic-status values; the Morpheus
/// extension statuses live in the vendor-specific range (`0xC0`+).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum StatusCode {
    /// Command completed successfully.
    Success = 0x00,
    /// Opcode not supported.
    InvalidOpcode = 0x01,
    /// A field in the command is invalid.
    InvalidField = 0x02,
    /// LBA beyond the namespace capacity.
    LbaOutOfRange = 0x80,
    /// A read failed even after ECC correction and the drive's retry
    /// budget (NVMe's "unrecovered read error" media status). The host
    /// treats this as recoverable by falling back to another data path,
    /// not by reissuing the same command.
    MediaUncorrectable = 0x81,
    /// Device-internal error not attributable to the medium.
    InternalError = 0x06,
    /// Morpheus: command referenced an instance ID with no live instance.
    NoSuchInstance = 0xC0,
    /// Morpheus: StorageApp image does not fit the embedded core's I-SRAM.
    CodeTooLarge = 0xC1,
    /// Morpheus: StorageApp working set exceeded the embedded core's D-SRAM.
    SramOverflow = 0xC2,
    /// Morpheus: instance ID already in use by another MINIT.
    InstanceBusy = 0xC3,
    /// Morpheus: the StorageApp itself failed (parse error, bad input).
    AppFault = 0xC4,
    /// Morpheus: the host declared the command lost and reaped it with a
    /// synthetic timeout completion (posted by the driver's abort path,
    /// not the device). Reissue with backoff, or fall back when the retry
    /// budget is spent.
    CommandTimeout = 0xC5,
    /// Morpheus: the embedded core running the instance crashed; the
    /// instance is gone and its stream must restart elsewhere (the host
    /// falls back to host-side deserialization).
    CoreFault = 0xC6,
}

impl StatusCode {
    /// True if the command succeeded.
    pub fn is_success(self) -> bool {
        self == StatusCode::Success
    }

    /// Decodes a status value.
    pub fn from_u16(v: u16) -> Option<StatusCode> {
        Some(match v {
            0x00 => StatusCode::Success,
            0x01 => StatusCode::InvalidOpcode,
            0x02 => StatusCode::InvalidField,
            0x80 => StatusCode::LbaOutOfRange,
            0x81 => StatusCode::MediaUncorrectable,
            0x06 => StatusCode::InternalError,
            0xC0 => StatusCode::NoSuchInstance,
            0xC1 => StatusCode::CodeTooLarge,
            0xC2 => StatusCode::SramOverflow,
            0xC3 => StatusCode::InstanceBusy,
            0xC4 => StatusCode::AppFault,
            0xC5 => StatusCode::CommandTimeout,
            0xC6 => StatusCode::CoreFault,
            _ => return None,
        })
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatusCode::Success => "success",
            StatusCode::InvalidOpcode => "invalid opcode",
            StatusCode::InvalidField => "invalid field",
            StatusCode::LbaOutOfRange => "lba out of range",
            StatusCode::MediaUncorrectable => "uncorrectable media error",
            StatusCode::InternalError => "internal device error",
            StatusCode::NoSuchInstance => "no such storageapp instance",
            StatusCode::CodeTooLarge => "storageapp code exceeds i-sram",
            StatusCode::SramOverflow => "storageapp working set exceeds d-sram",
            StatusCode::InstanceBusy => "instance id already in use",
            StatusCode::AppFault => "storageapp fault",
            StatusCode::CommandTimeout => "command timed out",
            StatusCode::CoreFault => "embedded core fault",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_codes() {
        for c in [
            StatusCode::Success,
            StatusCode::InvalidOpcode,
            StatusCode::InvalidField,
            StatusCode::LbaOutOfRange,
            StatusCode::MediaUncorrectable,
            StatusCode::InternalError,
            StatusCode::NoSuchInstance,
            StatusCode::CodeTooLarge,
            StatusCode::SramOverflow,
            StatusCode::InstanceBusy,
            StatusCode::AppFault,
            StatusCode::CommandTimeout,
            StatusCode::CoreFault,
        ] {
            assert_eq!(StatusCode::from_u16(c as u16), Some(c));
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn unknown_code_rejected() {
        assert_eq!(StatusCode::from_u16(0x7F), None);
    }

    #[test]
    fn only_success_is_success() {
        assert!(StatusCode::Success.is_success());
        assert!(!StatusCode::AppFault.is_success());
    }
}
