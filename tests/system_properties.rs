//! Property-based tests over the full system: for arbitrary record tables
//! and arbitrary runtime chunkings, every execution mode deserializes the
//! same objects the reference parser does.

use morpheus::{AppSpec, Mode, System, SystemParams};
use morpheus_format::{parse_buffer, FieldKind, Schema, TextWriter};
use proptest::prelude::*;

fn edge_schema() -> Schema {
    Schema::new(vec![FieldKind::I32, FieldKind::U32, FieldKind::F64])
}

fn render(rows: &[(i32, u32, f64)]) -> Vec<u8> {
    let mut w = TextWriter::new();
    for (a, b, c) in rows {
        w.write_i64(*a as i64);
        w.sep();
        w.write_u64(*b as u64);
        w.sep();
        w.write_f64(*c, 4);
        w.newline();
    }
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conventional and Morpheus produce exactly the canonicalized
    /// reference parse for random tables.
    #[test]
    fn modes_match_reference_parser(
        rows in proptest::collection::vec((any::<i32>(), any::<u32>(), -1e9f64..1e9), 1..300),
        seed_chunk in 9u64..64,
    ) {
        let text = render(&rows);
        let (mut reference, _) = parse_buffer(&text, &edge_schema()).unwrap();
        reference.canonicalize();

        let mut params = SystemParams::paper_testbed();
        // Exercise odd MREAD chunkings too.
        params.mread_chunk_bytes = seed_chunk * 512;
        let mut sys = System::new(params);
        sys.create_input_file("t.txt", &text).unwrap();
        let spec = AppSpec::cpu_app("prop", "t.txt", edge_schema(), 2, 50.0);

        let conv = sys.run(&spec, Mode::Conventional).unwrap();
        let morp = sys.run(&spec, Mode::Morpheus).unwrap();
        prop_assert_eq!(&conv.objects, &reference);
        prop_assert_eq!(&morp.objects, &reference);
        prop_assert_eq!(conv.report.checksum, morp.report.checksum);
    }

    /// Conventional read granularity must not change results either.
    #[test]
    fn conventional_chunking_is_transparent(
        rows in proptest::collection::vec((any::<i32>(), any::<u32>(), -1e3f64..1e3), 1..200),
        chunk in 600u64..8192,
    ) {
        let text = render(&rows);
        let mut params = SystemParams::paper_testbed();
        params.conventional_chunk_bytes = chunk;
        let mut sys = System::new(params);
        sys.create_input_file("t.txt", &text).unwrap();
        let spec = AppSpec::cpu_app("prop", "t.txt", edge_schema(), 2, 50.0);
        let conv = sys.run(&spec, Mode::Conventional).unwrap();
        let (mut reference, _) = parse_buffer(&text, &edge_schema()).unwrap();
        reference.canonicalize();
        prop_assert_eq!(&conv.objects, &reference);
    }

    /// Fabric traffic accounting stays conserved across arbitrary runs.
    #[test]
    fn traffic_accounting_conserved(
        rows in proptest::collection::vec((any::<i32>(), any::<u32>(), -1e3f64..1e3), 1..150),
        morpheus_first in any::<bool>(),
    ) {
        let text = render(&rows);
        let mut sys = System::new(SystemParams::paper_testbed());
        sys.create_input_file("t.txt", &text).unwrap();
        let spec = AppSpec::cpu_app("prop", "t.txt", edge_schema(), 2, 50.0);
        let modes = if morpheus_first {
            [Mode::Morpheus, Mode::Conventional]
        } else {
            [Mode::Conventional, Mode::Morpheus]
        };
        for mode in modes {
            let out = sys.run(&spec, mode).unwrap();
            let t = sys.fabric.traffic();
            prop_assert_eq!(t.total_bytes, t.root_bytes + t.p2p_bytes);
            prop_assert!(out.report.pcie_bytes >= out.report.object_bytes.min(out.report.text_bytes));
        }
    }
}
