//! Sparse matrix–vector multiplication over a COO input.

use crate::kernels::KernelResult;
use crate::Digest;
use morpheus_format::ParsedColumns;

/// Computes `y = A·x` with `x_j = 1 + (j mod 7)/7` over the COO triples
/// and digests the dense result vector.
pub fn spmv(objects: &ParsedColumns) -> KernelResult {
    let rows = objects.columns[0].as_ints().expect("row column");
    let cols = objects.columns[1].as_ints().expect("col column");
    let vals = objects.columns[2].as_floats().expect("value column");
    let n = rows
        .iter()
        .chain(cols.iter())
        .map(|v| *v as usize)
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let mut y = vec![0.0f64; n];
    for i in 0..objects.records as usize {
        let x = 1.0 + (cols[i] % 7) as f64 / 7.0;
        y[rows[i] as usize] += vals[i] * x;
    }
    let mut d = Digest::new();
    let mut norm = 0.0f64;
    for v in &y {
        d.mix_f64(*v);
        norm += v * v;
    }
    KernelResult {
        digest: d.value(),
        summary: format!(
            "spmv: {} nonzeros over {n} rows, |y| = {:.3}",
            objects.records,
            norm.sqrt()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    fn coo(text: &[u8]) -> ParsedColumns {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32, FieldKind::F64]);
        parse_buffer(text, &schema).unwrap().0
    }

    #[test]
    fn computes_known_product() {
        // A = [[2, 0], [0, 3]]; x = [1 + 0/7, 1 + 1/7].
        let p = coo(b"0 0 2.0\n1 1 3.0\n");
        let r = spmv(&p);
        let expect = ((2.0f64).powi(2) + (3.0f64 * (1.0 + 1.0 / 7.0)).powi(2)).sqrt();
        assert!(r.summary.contains(&format!("{expect:.3}")), "{}", r.summary);
    }

    #[test]
    fn duplicate_entries_accumulate() {
        let p = coo(b"0 0 1.0\n0 0 1.0\n");
        let r = spmv(&p);
        assert!(r.summary.contains("|y| = 2.000"), "{}", r.summary);
    }

    #[test]
    fn empty_matrix_handled() {
        let p = coo(b"");
        assert!(spmv(&p).summary.contains("0 nonzeros"));
    }

    #[test]
    fn deterministic() {
        let p = coo(b"0 1 0.5\n1 0 -0.25\n");
        assert_eq!(spmv(&p).digest, spmv(&p).digest);
    }
}
