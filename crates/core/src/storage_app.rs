//! The Morpheus programming model: StorageApps and the device library.
//!
//! A **StorageApp** is the user-defined function the host application
//! installs into the Morpheus-SSD with MINIT and feeds with MREAD (§V-A).
//! In the paper it is C code cross-compiled for the embedded cores; here it
//! is a Rust trait object executed by the modelled firmware. The device
//! library surface mirrors the paper's: the app consumes a byte stream
//! (`ms_stream`), parses with `ms_scanf`-style primitives (our
//! [`TextScanner`](morpheus_format::TextScanner)/
//! [`StreamingParser`](morpheus_format::StreamingParser)), and pushes
//! results to the host with `ms_memcpy` ([`DeviceCtx::ms_memcpy`]).
//!
//! The [`DeviceCtx`] enforces the platform restrictions of §V-A1: the
//! working set must fit the embedded core's D-SRAM (larger sets must spill
//! by flushing output early), and all host communication goes through the
//! staged output buffer — a StorageApp cannot touch host memory directly.

use morpheus_format::{ParseError, ParseWork, Schema, StreamingParser};
use std::error::Error;
use std::fmt;

/// Errors a StorageApp can raise (surface as the `AppFault` NVMe status).
#[derive(Debug, Clone, PartialEq)]
pub enum AppError {
    /// Input did not parse.
    Parse(ParseError),
    /// Working set exceeded the embedded core's D-SRAM.
    SramOverflow {
        /// Bytes the app needed resident.
        needed: u64,
        /// D-SRAM capacity.
        dsram: u32,
    },
    /// Application-specific failure.
    App(String),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Parse(e) => write!(f, "parse failure: {e}"),
            AppError::SramOverflow { needed, dsram } => {
                write!(
                    f,
                    "working set of {needed} bytes exceeds {dsram}-byte d-sram"
                )
            }
            AppError::App(msg) => write!(f, "storageapp failure: {msg}"),
        }
    }
}

impl Error for AppError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AppError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for AppError {
    fn from(e: ParseError) -> Self {
        AppError::Parse(e)
    }
}

/// The device-library context handed to a StorageApp invocation.
///
/// Collects the app's output (bound for the host via DMA), its parse work
/// (priced by the firmware at the embedded core's cost table), and any
/// extra app-specific instructions, while enforcing the D-SRAM limit.
#[derive(Debug)]
pub struct DeviceCtx {
    dsram_bytes: u32,
    /// Output staged in D-SRAM; auto-flushed to controller DRAM when half
    /// the D-SRAM fills (the paper's "transfer part of the results and
    /// reuse the memory buffer" pattern).
    staged: Vec<u8>,
    /// Output already flushed to controller DRAM this invocation.
    flushed: Vec<u8>,
    work: ParseWork,
    extra_instructions: f64,
    flushes: u64,
}

impl DeviceCtx {
    /// Creates a context for a core with `dsram_bytes` of data SRAM.
    pub fn new(dsram_bytes: u32) -> Self {
        DeviceCtx {
            dsram_bytes,
            staged: Vec::new(),
            flushed: Vec::new(),
            work: ParseWork::default(),
            extra_instructions: 0.0,
            flushes: 0,
        }
    }

    /// D-SRAM capacity of the executing core.
    pub fn dsram_bytes(&self) -> u32 {
        self.dsram_bytes
    }

    /// `ms_memcpy`: queue `bytes` for transfer to the destination buffer
    /// (host DRAM or GPU memory — the runtime binds the target address).
    pub fn ms_memcpy(&mut self, bytes: &[u8]) {
        self.staged.extend_from_slice(bytes);
        if self.staged.len() as u64 > self.dsram_bytes as u64 / 2 {
            self.flushed.append(&mut self.staged);
            self.flushes += 1;
        }
    }

    /// Charges parse work performed with the device library's scanning
    /// primitives.
    pub fn charge_work(&mut self, work: &ParseWork) {
        self.work.merge(work);
    }

    /// Charges app-specific instructions (beyond parsing).
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is negative or not finite.
    pub fn charge_instructions(&mut self, instructions: f64) {
        assert!(
            instructions.is_finite() && instructions >= 0.0,
            "instruction count must be finite and non-negative"
        );
        self.extra_instructions += instructions;
    }

    /// Verifies a resident working set fits D-SRAM.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::SramOverflow`] when it does not.
    pub fn ensure_working_set(&self, bytes: u64) -> Result<(), AppError> {
        if bytes > self.dsram_bytes as u64 {
            Err(AppError::SramOverflow {
                needed: bytes,
                dsram: self.dsram_bytes,
            })
        } else {
            Ok(())
        }
    }

    /// Drains everything the app produced (flushed + still staged), in
    /// emission order.
    pub fn take_output(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.flushed);
        out.append(&mut self.staged);
        out
    }

    /// Parse work accumulated (and clears it).
    pub fn take_work(&mut self) -> ParseWork {
        std::mem::take(&mut self.work)
    }

    /// Extra instructions accumulated (and clears them).
    pub fn take_extra_instructions(&mut self) -> f64 {
        std::mem::replace(&mut self.extra_instructions, 0.0)
    }

    /// D-SRAM output spills so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

/// A user-defined program the Morpheus-SSD can execute.
///
/// The firmware feeds the app file data chunk by chunk (as MREAD commands
/// deliver it) and finally asks it to wrap up; the returned `i32` travels
/// back to the host in the MDEINIT completion (§IV-A).
pub trait StorageApp: fmt::Debug + Send {
    /// Name (for traces and reports).
    fn name(&self) -> &str;

    /// Size of the compiled binary image; must fit the core's I-SRAM.
    fn code_bytes(&self) -> u32 {
        16 * 1024
    }

    /// Processes the next piece of the input stream.
    ///
    /// # Errors
    ///
    /// Any [`AppError`] aborts the instance with an `AppFault` status.
    fn on_chunk(&mut self, ctx: &mut DeviceCtx, data: &[u8]) -> Result<(), AppError>;

    /// Finishes the stream; returns the value delivered with MDEINIT.
    ///
    /// # Errors
    ///
    /// Any [`AppError`] aborts the instance with an `AppFault` status.
    fn on_finish(&mut self, ctx: &mut DeviceCtx) -> Result<i32, AppError>;
}

/// The paper's flagship StorageApp (Fig. 7's `inputapplet`, generalized):
/// scans the input stream against a [`Schema`], converts tokens to binary,
/// and `ms_memcpy`s the resulting object records to the host.
///
/// # Example
///
/// Driving the app directly through the device-library surface:
///
/// ```
/// use morpheus::{DeviceCtx, DeserializeApp, StorageApp};
/// use morpheus_format::{FieldKind, ParsedColumns, Schema};
///
/// let schema = Schema::new(vec![FieldKind::U32]);
/// let mut app = DeserializeApp::new("ints", schema.clone());
/// let mut ctx = DeviceCtx::new(256 * 1024);
/// app.on_chunk(&mut ctx, b"12\n34").unwrap();   // chunk ends mid-token
/// let records = app.on_finish(&mut ctx).unwrap();
/// assert_eq!(records, 2);
/// let objects = ParsedColumns::decode(schema, &ctx.take_output()).unwrap();
/// assert_eq!(objects.columns[0].as_ints().unwrap(), &[12, 34]);
/// ```
#[derive(Debug)]
pub struct DeserializeApp {
    name: String,
    parser: Option<StreamingParser>,
    schema: Schema,
    emitted_records: u64,
    last_work: ParseWork,
}

impl DeserializeApp {
    /// Creates the app for a record schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        DeserializeApp {
            name: name.into(),
            parser: Some(StreamingParser::new(schema.clone())),
            schema,
            emitted_records: 0,
            last_work: ParseWork::default(),
        }
    }

    /// The schema being deserialized.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn emit_new_records(&mut self, ctx: &mut DeviceCtx) {
        let parser = self.parser.as_ref().expect("instance still live");
        let total = parser.records();
        if total > self.emitted_records {
            let mut buf = Vec::new();
            let mut cols = parser.peek().clone();
            cols.canonicalize();
            cols.encode_rows(self.emitted_records, total, &mut buf);
            ctx.ms_memcpy(&buf);
            // Emitting binary costs ~1 instruction per byte (stores).
            ctx.charge_instructions(buf.len() as f64);
            self.emitted_records = total;
        }
    }

    fn charge_delta(&mut self, ctx: &mut DeviceCtx) {
        let w = self.parser.as_ref().expect("instance still live").work();
        let delta = ParseWork {
            bytes_scanned: w.bytes_scanned - self.last_work.bytes_scanned,
            int_tokens: w.int_tokens - self.last_work.int_tokens,
            int_digits: w.int_digits - self.last_work.int_digits,
            float_tokens: w.float_tokens - self.last_work.float_tokens,
            float_digits: w.float_digits - self.last_work.float_digits,
        };
        ctx.charge_work(&delta);
        self.last_work = w;
    }
}

impl StorageApp for DeserializeApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_chunk(&mut self, ctx: &mut DeviceCtx, data: &[u8]) -> Result<(), AppError> {
        let parser = self.parser.as_mut().expect("on_chunk after finish");
        parser.feed(data)?;
        ctx.ensure_working_set(parser.carry_len() as u64 + data.len() as u64)?;
        self.charge_delta(ctx);
        self.emit_new_records(ctx);
        Ok(())
    }

    fn on_finish(&mut self, ctx: &mut DeviceCtx) -> Result<i32, AppError> {
        self.emit_new_records(ctx);
        let parser = self.parser.take().expect("on_finish called twice");
        // The final carry may hold one last unterminated token.
        let before = self.emitted_records;
        let mut cols = parser.finish()?;
        cols.canonicalize();
        if cols.records > before {
            let mut buf = Vec::new();
            cols.encode_rows(before, cols.records, &mut buf);
            ctx.ms_memcpy(&buf);
            ctx.charge_instructions(buf.len() as f64);
        }
        Ok(cols.records as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, ParsedColumns};

    fn edge_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::U32])
    }

    #[test]
    fn deserialize_app_emits_binary_objects() {
        let text = b"1 2\n3 4\n5 6\n";
        let mut app = DeserializeApp::new("edges", edge_schema());
        let mut ctx = DeviceCtx::new(256 * 1024);
        app.on_chunk(&mut ctx, &text[..5]).unwrap();
        app.on_chunk(&mut ctx, &text[5..]).unwrap();
        let ret = app.on_finish(&mut ctx).unwrap();
        assert_eq!(ret, 3);
        let bytes = ctx.take_output();
        let decoded = ParsedColumns::decode(edge_schema(), &bytes).unwrap();
        let (mut expect, _) = parse_buffer(text, &edge_schema()).unwrap();
        expect.canonicalize();
        assert_eq!(decoded, expect);
    }

    #[test]
    fn work_is_charged_once_per_byte() {
        let text = b"10 20\n30 40\n";
        let mut app = DeserializeApp::new("edges", edge_schema());
        let mut ctx = DeviceCtx::new(256 * 1024);
        app.on_chunk(&mut ctx, text).unwrap();
        app.on_finish(&mut ctx).unwrap();
        let w = ctx.take_work();
        assert_eq!(w.bytes_scanned, text.len() as u64);
        assert_eq!(w.int_tokens, 4);
    }

    #[test]
    fn dsram_overflow_detected() {
        let mut app = DeserializeApp::new("edges", edge_schema());
        let mut ctx = DeviceCtx::new(16); // absurdly small d-sram
        let err = app.on_chunk(&mut ctx, b"123456789 123456789 ").unwrap_err();
        assert!(matches!(err, AppError::SramOverflow { .. }));
    }

    #[test]
    fn staged_output_flushes_at_half_dsram() {
        let mut ctx = DeviceCtx::new(64);
        ctx.ms_memcpy(&[0u8; 40]);
        assert_eq!(ctx.flushes(), 1);
        ctx.ms_memcpy(&[1u8; 4]);
        let out = ctx.take_output();
        assert_eq!(out.len(), 44);
        assert_eq!(out[40], 1);
    }

    #[test]
    fn parse_failure_surfaces() {
        let mut app = DeserializeApp::new("edges", edge_schema());
        let mut ctx = DeviceCtx::new(256 * 1024);
        assert!(matches!(
            app.on_chunk(&mut ctx, b"12 garbage\n"),
            Err(AppError::Parse(_))
        ));
    }

    #[test]
    fn error_messages_nonempty() {
        for e in [
            AppError::SramOverflow {
                needed: 10,
                dsram: 5,
            },
            AppError::App("boom".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
