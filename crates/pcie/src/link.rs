//! PCIe link generations and per-link bandwidth.

use morpheus_simcore::Bandwidth;

/// PCIe signalling generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 2.5 GT/s, 8b/10b encoding.
    Gen1,
    /// 5.0 GT/s, 8b/10b encoding.
    Gen2,
    /// 8.0 GT/s, 128b/130b encoding.
    Gen3,
    /// 16.0 GT/s, 128b/130b encoding.
    Gen4,
}

impl PcieGen {
    /// Usable bytes per second per lane after line encoding.
    pub fn bytes_per_lane(self) -> f64 {
        match self {
            // GT/s * encoding efficiency / 8 bits
            PcieGen::Gen1 => 2.5e9 * (8.0 / 10.0) / 8.0,
            PcieGen::Gen2 => 5.0e9 * (8.0 / 10.0) / 8.0,
            PcieGen::Gen3 => 8.0e9 * (128.0 / 130.0) / 8.0,
            PcieGen::Gen4 => 16.0e9 * (128.0 / 130.0) / 8.0,
        }
    }
}

/// A link's generation and width, convertible to effective bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Signalling generation.
    pub gen: PcieGen,
    /// Lane count (x1, x4, x8, x16).
    pub lanes: u32,
    /// Fraction of raw bandwidth left after TLP/DLLP protocol overhead.
    pub protocol_efficiency: f64,
}

impl LinkConfig {
    /// A link with the default ~84 % protocol efficiency (256-byte TLPs).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(gen: PcieGen, lanes: u32) -> Self {
        assert!(lanes > 0, "a link needs at least one lane");
        LinkConfig {
            gen,
            lanes,
            protocol_efficiency: 0.84,
        }
    }

    /// Effective one-direction bandwidth of the link.
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_s(
            self.gen.bytes_per_lane() * self.lanes as f64 * self.protocol_efficiency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x4_is_about_3_3_gbps() {
        // The paper's Morpheus-SSD uses PCIe 3.0 x4: ~3.9 GB/s raw, ~3.3
        // effective.
        let bw = LinkConfig::new(PcieGen::Gen3, 4).bandwidth();
        let gbs = bw.bytes_per_s() / 1e9;
        assert!((3.0..3.6).contains(&gbs), "got {gbs} GB/s");
    }

    #[test]
    fn bandwidth_scales_with_lanes() {
        let x4 = LinkConfig::new(PcieGen::Gen3, 4).bandwidth().bytes_per_s();
        let x16 = LinkConfig::new(PcieGen::Gen3, 16).bandwidth().bytes_per_s();
        assert!((x16 / x4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn generations_get_faster() {
        let mut prev = 0.0;
        for g in [PcieGen::Gen1, PcieGen::Gen2, PcieGen::Gen3, PcieGen::Gen4] {
            let b = g.bytes_per_lane();
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = LinkConfig::new(PcieGen::Gen3, 0);
    }
}
