//! The serialization direction at system level (§I's "other kinds of
//! interactions between memory objects and file data").
//!
//! [`System::run_serialize`] turns in-memory application objects into a
//! text interchange file on the drive:
//!
//! * **Conventional**: the host CPU formats every record (`printf`-path
//!   costs) and writes raw text over NVMe.
//! * **Morpheus**: MWRITE pushes *binary* objects to a [`SerializeApp`]
//!   running on the embedded cores; the text is produced and made durable
//!   inside the drive, so only the compact binary representation crosses
//!   the interconnect.

use crate::{Mode, RunError, SerializeApp, System};
use morpheus_format::{Column, ParsedColumns, TextWriter};
use morpheus_host::CodeClass;
use morpheus_nvme::{MorpheusCommand, NvmeCommand, StatusCode, LBA_BYTES};
use morpheus_pcie::DmaDir;
use morpheus_simcore::{SimDuration, SimTime};

/// Host-side `printf`-path serialization costs (locale, format-string
/// interpretation, buffered stdio) — the mirror image of the `scanf` path.
const HOST_SERIALIZE_INSTR_PER_BYTE: f64 = 30.0;
const HOST_SERIALIZE_INSTR_PER_TOKEN: f64 = 70.0;

/// Records pushed per MWRITE / formatted per host batch.
const RECORDS_PER_BATCH: u64 = 16_384;

/// Measurements of a serialization run.
#[derive(Debug, Clone)]
pub struct SerializeReport {
    /// Execution mode (Conventional or Morpheus).
    pub mode: Mode,
    /// Wall time until the file is durable.
    pub serialize_s: f64,
    /// Host CPU busy time.
    pub cpu_busy_s: f64,
    /// Binary object bytes serialized.
    pub object_bytes: u64,
    /// Text bytes produced.
    pub text_bytes: u64,
    /// Bytes that crossed the PCIe fabric.
    pub pcie_bytes: u64,
    /// Context switches taken.
    pub context_switches: u64,
}

impl System {
    /// Serializes `objects` into a text file named `output` on the drive.
    ///
    /// The produced file is byte-identical across modes (verified by the
    /// integration suite): records are written as space-separated tokens,
    /// floats at six decimals.
    ///
    /// # Errors
    ///
    /// Fails for unsupported modes ([`Mode::MorpheusP2P`] has no meaning
    /// here), firmware faults, or a full drive.
    pub fn run_serialize(
        &mut self,
        objects: &ParsedColumns,
        output: &str,
        mode: Mode,
    ) -> Result<SerializeReport, RunError> {
        if mode == Mode::MorpheusP2P {
            return Err(RunError::NotGpuApp(output.to_string()));
        }
        // Writing `output` (the MWRITE path) mutates the file: any cached
        // objects parsed from a previous incarnation of it must go.
        self.invalidate_cached_objects(output);
        self.reset_timing();
        let obj_bytes = objects.binary_bytes();
        // Worst-case text size bounds the file allocation; the file is
        // truncated to the real length afterwards.
        let per_record_max: u64 = objects
            .schema
            .fields()
            .iter()
            .map(|f| if f.is_float() { 28 } else { 21 })
            .sum::<u64>()
            + 1;
        let upper = (objects.records * per_record_max).max(LBA_BYTES);
        self.fs
            .create(output, upper)
            .map_err(|_| RunError::UnknownFile(output.to_string()))?;
        let base_slba = self.fs.open(output).expect("just created").extents[0].slba;

        let outcome = match mode {
            Mode::Conventional => self.serialize_conventional(objects, base_slba)?,
            Mode::Morpheus => self.serialize_morpheus(objects, base_slba)?,
            Mode::MorpheusP2P => unreachable!("rejected above"),
        };
        let (end, cpu_busy, text_bytes) = outcome;
        self.fs.truncate(output, text_bytes).expect("file exists");
        let acct = self.os.accounting();
        Ok(SerializeReport {
            mode,
            serialize_s: end.as_secs_f64(),
            cpu_busy_s: cpu_busy.as_secs_f64(),
            object_bytes: obj_bytes,
            text_bytes,
            pcie_bytes: self.fabric.traffic().total_bytes,
            context_switches: acct.context_switches,
        })
    }

    /// Host formats text, drive stores raw bytes.
    fn serialize_conventional(
        &mut self,
        objects: &ParsedColumns,
        base_slba: u64,
    ) -> Result<(SimTime, SimDuration, u64), RunError> {
        let src_addr = self.dram.alloc(1 << 20).ok_or(RunError::OutOfHostMemory)?;
        let mut cpu_ready = SimTime::ZERO;
        let mut cpu_busy = SimDuration::ZERO;
        let mut end = SimTime::ZERO;
        let mut text_off = 0u64;
        let mut carry: Vec<u8> = Vec::new();
        let mut rec = 0u64;
        while rec < objects.records || !carry.is_empty() {
            let hi = (rec + RECORDS_PER_BATCH).min(objects.records);
            let mut w = TextWriter::new();
            for r in rec..hi {
                render_record(objects, r as usize, &mut w);
            }
            rec = hi;
            let work = w.work();
            // Format on the CPU (printf-ish code, low IPC).
            let instr = work.bytes_emitted as f64 * HOST_SERIALIZE_INSTR_PER_BYTE
                + work.tokens as f64 * HOST_SERIALIZE_INSTR_PER_TOKEN;
            let iv = self
                .cpu_cores
                .acquire(cpu_ready, self.cpu.duration(instr, CodeClass::Deserialize));
            cpu_ready = iv.end;
            cpu_busy += iv.duration();
            // write() syscall per batch.
            let c = self.os.command_completion();
            let os_iv = self.cpu_cores.acquire(
                cpu_ready,
                self.cpu.duration(c.instructions, CodeClass::OsKernel),
            );
            cpu_ready = os_iv.end;
            cpu_busy += os_iv.duration();

            carry.extend_from_slice(w.as_bytes());
            let flush = if rec == objects.records {
                carry.len()
            } else {
                carry.len() - carry.len() % LBA_BYTES as usize
            };
            if flush == 0 {
                continue;
            }
            let chunk: Vec<u8> = carry.drain(..flush).collect();
            self.membus.account(chunk.len() as u64);
            let dma = self.fabric.dma(
                self.ssd_dev,
                DmaDir::Read,
                src_addr,
                chunk.len() as u64,
                os_iv.end,
            )?;
            let durable =
                self.mssd
                    .dev
                    .write_range(base_slba + text_off / LBA_BYTES, &chunk, dma.end)?;
            let cid = self.alloc_cid();
            let cmd = NvmeCommand::write(
                cid,
                1,
                base_slba + text_off / LBA_BYTES,
                (chunk.len() as u64).div_ceil(LBA_BYTES),
                src_addr,
            );
            self.round_trip(cmd, StatusCode::Success, 0);
            text_off += chunk.len() as u64;
            end = end.max(durable);
            if rec == objects.records && carry.is_empty() {
                break;
            }
        }
        Ok((end.max(cpu_ready), cpu_busy, text_off))
    }

    /// Host pushes binary objects; the drive formats and stores the text.
    fn serialize_morpheus(
        &mut self,
        objects: &ParsedColumns,
        base_slba: u64,
    ) -> Result<(SimTime, SimDuration, u64), RunError> {
        let iid = self.alloc_instance();
        let init = self.os.command_completion();
        let init_iv = self.cpu_cores.acquire(
            SimTime::ZERO,
            self.cpu.duration(init.instructions, CodeClass::OsKernel),
        );
        let mut cpu_busy = init_iv.duration();
        let app = SerializeApp::new("serialize", objects.schema.clone());
        let ready = self.mssd.minit(iid, Box::new(app), init_iv.end)?;
        let src_addr = self.dram.alloc(1 << 20).ok_or(RunError::OutOfHostMemory)?;

        let mut rec = 0u64;
        let mut issue = ready;
        while rec < objects.records {
            let hi = (rec + RECORDS_PER_BATCH).min(objects.records);
            let mut bin = Vec::new();
            objects.encode_rows(rec, hi, &mut bin);
            rec = hi;
            self.membus.account(bin.len() as u64);
            let dma = self.fabric.dma(
                self.ssd_dev,
                DmaDir::Read,
                src_addr,
                bin.len() as u64,
                issue,
            )?;
            let cid = self.alloc_cid();
            let wire = MorpheusCommand::Write {
                instance_id: iid,
                slba: base_slba,
                blocks: (bin.len() as u64).div_ceil(LBA_BYTES),
                dma_addr: src_addr,
            }
            .into_command(cid, 1);
            self.round_trip(wire, StatusCode::Success, 0);
            let out = self.mssd.mwrite(iid, base_slba, &bin, dma.end)?;
            // One host wakeup per completion.
            let c = self.os.command_completion();
            let iv = self.cpu_cores.acquire(
                out.durable,
                self.cpu.duration(c.instructions, CodeClass::OsKernel),
            );
            cpu_busy += iv.duration();
            issue = iv.end;
        }
        let cid = self.alloc_cid();
        let wire = MorpheusCommand::Deinit { instance_id: iid }.into_command(cid, 1);
        let dein = self.mssd.mdeinit(iid, issue)?;
        self.round_trip(wire, StatusCode::Success, dein.retval as u32);
        let c = self.os.command_completion();
        let iv = self.cpu_cores.acquire(
            dein.done,
            self.cpu.duration(c.instructions, CodeClass::OsKernel),
        );
        cpu_busy += iv.duration();
        Ok((iv.end, cpu_busy, dein.flushed_to_flash))
    }
}

/// Renders one record exactly as [`SerializeApp`] does (shared format so
/// the two paths produce byte-identical files).
fn render_record(objects: &ParsedColumns, r: usize, w: &mut TextWriter) {
    for (i, col) in objects.columns.iter().enumerate() {
        if i > 0 {
            w.sep();
        }
        match col {
            Column::Ints(v) => w.write_i64(v[r]),
            Column::Floats(v) => w.write_f64(v[r], 6),
        }
    }
    w.newline();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemParams;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    fn objects(n: u64) -> ParsedColumns {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::F64]);
        let mut w = TextWriter::new();
        for i in 0..n {
            w.write_u64(i * 31 % 100_000);
            w.sep();
            w.write_f64(i as f64 * 0.25 - 10.0, 2);
            w.newline();
        }
        let (mut p, _) = parse_buffer(w.as_bytes(), &schema).unwrap();
        p.canonicalize();
        p
    }

    #[test]
    fn both_modes_produce_identical_files() {
        let objs = objects(20_000);
        let mut sys = System::new(SystemParams::paper_testbed());
        let conv = sys
            .run_serialize(&objs, "out_conv.txt", Mode::Conventional)
            .unwrap();
        let morp = sys
            .run_serialize(&objs, "out_morph.txt", Mode::Morpheus)
            .unwrap();
        let a = sys.read_file_bytes("out_conv.txt").unwrap();
        let b = sys.read_file_bytes("out_morph.txt").unwrap();
        assert_eq!(a, b, "files must be byte-identical");
        assert_eq!(conv.text_bytes, morp.text_bytes);
        assert_eq!(a.len() as u64, conv.text_bytes);
        // And the file re-parses to the original objects.
        let (mut back, _) = parse_buffer(&a, &objs.schema).unwrap();
        back.canonicalize();
        assert_eq!(back.checksum(), objs.checksum());
    }

    #[test]
    fn morpheus_ships_fewer_bytes_over_pcie() {
        let objs = objects(50_000);
        let mut sys = System::new(SystemParams::paper_testbed());
        let conv = sys
            .run_serialize(&objs, "c.txt", Mode::Conventional)
            .unwrap();
        let morp = sys.run_serialize(&objs, "m.txt", Mode::Morpheus).unwrap();
        // Binary objects are more compact than the text they become here
        // (u32 + f64 as text ≈ 18 bytes vs 12 binary).
        assert!(morp.pcie_bytes < conv.pcie_bytes);
        assert!(morp.cpu_busy_s < conv.cpu_busy_s / 4.0);
    }

    #[test]
    fn p2p_mode_rejected() {
        let objs = objects(10);
        let mut sys = System::new(SystemParams::paper_testbed());
        assert!(sys
            .run_serialize(&objs, "x.txt", Mode::MorpheusP2P)
            .is_err());
    }

    #[test]
    fn empty_objects_serialize_to_empty_file() {
        let objs = objects(0);
        let mut sys = System::new(SystemParams::paper_testbed());
        let rep = sys
            .run_serialize(&objs, "empty.txt", Mode::Morpheus)
            .unwrap();
        assert_eq!(rep.text_bytes, 0);
        assert_eq!(sys.read_file_bytes("empty.txt").unwrap().len(), 0);
    }
}
