//! Little-endian wire codec helpers over plain slices.
//!
//! A dependency-free stand-in for the tiny subset of the `bytes` crate the
//! codecs used (`Buf::get_*_le` / `BufMut::put_*_le` on slices): readers
//! and writers are bare slices that advance themselves as they go, and
//! panic on under/overflow just like `bytes` does — callers check lengths
//! up front.

/// Reading side: `&[u8]` consumes itself from the front.
pub(crate) trait Buf {
    /// Next byte.
    fn get_u8(&mut self) -> u8;
    /// Next little-endian u16.
    fn get_u16_le(&mut self) -> u16;
    /// Next little-endian u32.
    fn get_u32_le(&mut self) -> u32;
    /// Next little-endian u64.
    fn get_u64_le(&mut self) -> u64;
}

/// Writing side: `&mut [u8]` fills itself from the front.
pub(crate) trait BufMut {
    /// Appends a byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64);
}

macro_rules! get_impl {
    ($self:ident, $t:ty) => {{
        const N: usize = std::mem::size_of::<$t>();
        let (head, tail) = $self.split_at(N);
        let v = <$t>::from_le_bytes(head.try_into().expect("split length"));
        *$self = tail;
        v
    }};
}

impl Buf for &[u8] {
    fn get_u8(&mut self) -> u8 {
        get_impl!(self, u8)
    }
    fn get_u16_le(&mut self) -> u16 {
        get_impl!(self, u16)
    }
    fn get_u32_le(&mut self) -> u32 {
        get_impl!(self, u32)
    }
    fn get_u64_le(&mut self) -> u64 {
        get_impl!(self, u64)
    }
}

macro_rules! put_impl {
    ($self:ident, $v:ident, $t:ty) => {{
        const N: usize = std::mem::size_of::<$t>();
        let buf = std::mem::take($self);
        let (head, tail) = buf.split_at_mut(N);
        head.copy_from_slice(&$v.to_le_bytes());
        *$self = tail;
    }};
}

impl BufMut for &mut [u8] {
    fn put_u8(&mut self, v: u8) {
        put_impl!(self, v, u8)
    }
    fn put_u16_le(&mut self, v: u16) {
        put_impl!(self, v, u16)
    }
    fn put_u32_le(&mut self, v: u32) {
        put_impl!(self, v, u32)
    }
    fn put_u64_le(&mut self, v: u64) {
        put_impl!(self, v, u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut buf = [0u8; 15];
        {
            let mut w: &mut [u8] = &mut buf;
            w.put_u8(0xAB);
            w.put_u16_le(0x1234);
            w.put_u32_le(0xDEAD_BEEF);
            w.put_u64_le(0x0123_4567_89AB_CDEF);
            assert!(w.is_empty());
        }
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic]
    fn read_past_end_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u16_le();
    }
}
