//! The controller's pool of general-purpose embedded cores.

use morpheus_simcore::{Interval, SimDuration, SimTime, Timeline};

/// A pool of identical in-order embedded cores (Tensilica LX-class).
///
/// Work is expressed in instructions; the pool converts to time at the
/// configured clock (IPC 1.0 — these are simple in-order cores). Each core
/// is its own timeline so work can be *pinned*: the Morpheus firmware
/// routes all packets of one StorageApp instance to one core (§IV-B),
/// which is what lets independent tenants overlap. Busy time feeds the
/// SSD power rail.
#[derive(Debug)]
pub struct EmbeddedCorePool {
    cores: Vec<Timeline>,
    clock_hz: f64,
}

impl EmbeddedCorePool {
    /// Creates a pool of `cores` cores at `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the clock is not positive.
    pub fn new(cores: u32, clock_hz: f64) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            clock_hz.is_finite() && clock_hz > 0.0,
            "clock must be positive"
        );
        EmbeddedCorePool {
            cores: (0..cores)
                .map(|c| Timeline::new(format!("ssd-core{c}"), 1))
                .collect(),
            clock_hz,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// The stable timeline name of one core (e.g. `ssd-core1`), usable as
    /// a trace track without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_name(&self, core: usize) -> &str {
        self.cores[core].name()
    }

    /// The core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Time to retire `instructions` on one core.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is negative or not finite.
    pub fn duration(&self, instructions: f64) -> SimDuration {
        assert!(
            instructions.is_finite() && instructions >= 0.0,
            "instruction count must be finite and non-negative"
        );
        SimDuration::from_secs_f64(instructions / self.clock_hz)
    }

    /// Executes `instructions` on the earliest-free core, starting no
    /// earlier than `ready` (used for firmware work with no affinity,
    /// e.g. conventional command dispatch).
    pub fn exec(&mut self, ready: SimTime, instructions: f64) -> Interval {
        let core = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.horizon())
            .map(|(i, _)| i)
            .expect("pool has at least one core");
        self.exec_on(core, ready, instructions)
    }

    /// Executes `instructions` on a specific core — the affinity path the
    /// Morpheus firmware uses to keep one instance on one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn exec_on(&mut self, core: usize, ready: SimTime, instructions: f64) -> Interval {
        let d = self.duration(instructions);
        self.cores[core].acquire(ready, d)
    }

    /// Total busy time across cores (feeds the power model).
    pub fn busy(&self) -> SimDuration {
        self.cores.iter().map(Timeline::busy).sum()
    }

    /// Mean pool utilization over the window `[0, until]`: total busy time
    /// divided by the window across all cores. Serving reports use this to
    /// show how loaded the drive's cores were over a run. Zero-length
    /// windows yield `0.0`.
    pub fn utilization(&self, until: SimTime) -> f64 {
        let window = until.as_secs_f64() * self.cores.len() as f64;
        if window > 0.0 {
            (self.busy().as_secs_f64() / window).min(1.0)
        } else {
            0.0
        }
    }

    /// Latest time any core frees up.
    pub fn horizon(&self) -> SimTime {
        self.cores
            .iter()
            .map(Timeline::horizon)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Clears all timing state back to time zero.
    pub fn reset(&mut self) {
        for c in &mut self.cores {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_uses_clock() {
        let pool = EmbeddedCorePool::new(4, 500e6);
        assert_eq!(pool.duration(500e6).as_secs_f64(), 1.0);
    }

    #[test]
    fn four_cores_run_four_jobs_in_parallel() {
        let mut pool = EmbeddedCorePool::new(4, 500e6);
        let ivs: Vec<_> = (0..4).map(|_| pool.exec(SimTime::ZERO, 5e6)).collect();
        for iv in &ivs {
            assert_eq!(iv.start, SimTime::ZERO);
        }
        let fifth = pool.exec(SimTime::ZERO, 5e6);
        assert_eq!(fifth.start, ivs[0].end);
    }

    #[test]
    fn busy_accumulates() {
        let mut pool = EmbeddedCorePool::new(2, 1e9);
        pool.exec(SimTime::ZERO, 1e9);
        pool.exec(SimTime::ZERO, 1e9);
        assert_eq!(pool.busy().as_secs_f64(), 2.0);
    }

    #[test]
    fn utilization_is_busy_over_window() {
        let mut pool = EmbeddedCorePool::new(2, 1e9);
        pool.exec(SimTime::ZERO, 1e9); // one core busy for 1s of a 2s window
        let until = SimTime::ZERO + SimDuration::from_secs(2);
        assert!((pool.utilization(until) - 0.25).abs() < 1e-9);
        assert_eq!(pool.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn zero_window_utilization_is_defined() {
        // busy > 0 over a zero-width window is the NaN-dangerous case
        // (0/0 and x/0 both lurk here): it must report exactly 0.0, not
        // NaN or infinity, so telemetry windows that start at a run's
        // t=0 fold cleanly.
        let mut pool = EmbeddedCorePool::new(2, 1e9);
        pool.exec(SimTime::ZERO, 1e9);
        let u = pool.utilization(SimTime::ZERO);
        assert_eq!(u, 0.0);
        assert!(u.is_finite());
        let idle = EmbeddedCorePool::new(4, 1e9);
        assert_eq!(idle.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = EmbeddedCorePool::new(0, 1e9);
    }
}
