//! Figure 11 (§VII-B): end-to-end application speedup.
//!
//! Paper claims: Morpheus-SSD alone speeds total execution by **~1.32×**;
//! adding NVMe-P2P (objects stream straight from the SSD into GPU memory)
//! raises the gain to **~1.39×** on the heterogeneous (CUDA) applications.

use morpheus::Mode;
use morpheus_bench::{mean, print_table, Harness};
use morpheus_workloads::{run_benchmark, suite};

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 11: end-to-end speedup over the conventional baseline (scale 1/{})\n",
        h.scale
    );
    let benches = suite();
    // Per benchmark: (baseline total_s, morpheus speedup, optional p2p speedup).
    let results: Vec<(f64, f64, Option<f64>)> = h.run_suite_parallel(&benches, |bench| {
        let mut sys = h.app_system(bench);
        let conv = run_benchmark(&mut sys, bench, Mode::Conventional).expect("conventional");
        let morp = run_benchmark(&mut sys, bench, Mode::Morpheus).expect("morpheus");
        assert_eq!(conv.kernel, morp.kernel, "{}", bench.name);
        let ms = morp.report.total_speedup_over(&conv.report);
        let p2p = (bench.parallel_label == "CUDA").then(|| {
            let p2p = run_benchmark(&mut sys, bench, Mode::MorpheusP2P).expect("p2p");
            assert_eq!(conv.kernel, p2p.kernel, "{}", bench.name);
            p2p.report.total_speedup_over(&conv.report)
        });
        (conv.report.phases.total_s(), ms, p2p)
    });
    let mut rows = Vec::new();
    let mut morph_speedups = Vec::new();
    let mut p2p_speedups = Vec::new();
    for (bench, (base_total, ms, p2p)) in benches.iter().zip(&results) {
        morph_speedups.push(*ms);
        let p2p_cell = match p2p {
            Some(ps) => {
                p2p_speedups.push(*ps);
                format!("{ps:.2}x")
            }
            None => "-".to_string(),
        };
        rows.push(vec![
            bench.name.to_string(),
            format!("{base_total:.3}s"),
            format!("{ms:.2}x"),
            p2p_cell,
        ]);
    }
    print_table(
        &["app", "baseline_total", "morpheus", "morpheus+p2p"],
        &rows,
    );
    println!();
    println!(
        "average morpheus speedup: {:.2}x (paper: ~1.32x)",
        mean(&morph_speedups)
    );
    println!(
        "average morpheus+p2p speedup (CUDA apps): {:.2}x (paper: ~1.39x)",
        mean(&p2p_speedups)
    );
}
