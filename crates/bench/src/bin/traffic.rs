//! Interconnect traffic (§VII-A prose): bytes crossing the PCIe fabric and
//! the CPU-memory bus per application.
//!
//! Paper claims: shipping binary objects instead of raw text cuts **PCIe
//! traffic by ~22 %** and **CPU-memory-bus traffic by ~58 %**.

use morpheus_bench::{mean, print_table, run_pair, Harness};
use morpheus_workloads::suite;

fn main() {
    let h = Harness::from_args();
    println!(
        "Interconnect traffic, conventional vs Morpheus-SSD (scale 1/{})\n",
        h.scale
    );
    let benches = suite();
    let pairs = h.run_suite_parallel(&benches, |bench| run_pair(&h, bench));
    let mut rows = Vec::new();
    let mut pcie_red = Vec::new();
    let mut mem_red = Vec::new();
    for (bench, (conv, morp)) in benches.iter().zip(&pairs) {
        let pr = 1.0 - morp.report.pcie_bytes as f64 / conv.report.pcie_bytes as f64;
        let mr = 1.0 - morp.report.membus_bytes as f64 / conv.report.membus_bytes as f64;
        pcie_red.push(pr);
        mem_red.push(mr);
        rows.push(vec![
            bench.name.to_string(),
            format!("{:.1}MB", conv.report.pcie_bytes as f64 / 1e6),
            format!("{:.1}MB", morp.report.pcie_bytes as f64 / 1e6),
            format!("{:.1}%", 100.0 * pr),
            format!("{:.1}MB", conv.report.membus_bytes as f64 / 1e6),
            format!("{:.1}MB", morp.report.membus_bytes as f64 / 1e6),
            format!("{:.1}%", 100.0 * mr),
        ]);
    }
    print_table(
        &[
            "app",
            "pcie_base",
            "pcie_morph",
            "pcie_saved",
            "mem_base",
            "mem_morph",
            "mem_saved",
        ],
        &rows,
    );
    println!();
    println!(
        "average pcie reduction:   {:.1}% (paper: ~22%)",
        100.0 * mean(&pcie_red)
    );
    println!(
        "average membus reduction: {:.1}% (paper: ~58%)",
        100.0 * mean(&mem_red)
    );
}
