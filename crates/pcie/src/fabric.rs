//! The switch fabric: devices, BAR address map, DMA routing, traffic.

use crate::LinkConfig;
use morpheus_simcore::{FaultDice, SimDuration, SimTime, Timeline, TraceLayer, Tracer};
use std::error::Error;
use std::fmt;

/// Bus addresses below this resolve to host DRAM through the root complex;
/// BAR windows are allocated above it.
pub const HOST_MEMORY_TOP: u64 = 1 << 40;

/// Identifies a device attached to the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub(crate) usize);

/// A mapped BAR window in bus address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarWindow {
    /// First bus address of the window.
    pub base: u64,
    /// Window size in bytes.
    pub size: u64,
    /// Owning device.
    pub device: DeviceId,
}

impl BarWindow {
    /// True if `addr` falls inside the window.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.size
    }
}

/// What a bus address resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Host DRAM, reached through the root complex.
    HostMemory,
    /// A peer device's BAR.
    Device(DeviceId),
    /// No mapping — the TLP would raise an unsupported-request error.
    Unmapped,
}

/// Direction of a DMA issued by a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDir {
    /// The device reads from `addr` (data flows toward the device).
    Read,
    /// The device writes to `addr` (data flows from the device).
    Write,
}

/// Completed DMA description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaOutcome {
    /// When the transfer started moving data.
    pub start: SimTime,
    /// When the last byte landed.
    pub end: SimTime,
    /// What the address resolved to.
    pub target: Target,
    /// True if the transfer never crossed the root complex.
    pub peer_to_peer: bool,
}

/// Per-fabric traffic counters (bytes that crossed each domain).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bytes that crossed the root-complex link (host-bound traffic).
    pub root_bytes: u64,
    /// Bytes moved device-to-device without touching the root complex.
    pub p2p_bytes: u64,
    /// Total bytes DMAed through the switch.
    pub total_bytes: u64,
    /// DMAs that ran over a fault-injected degraded link.
    pub degraded_dmas: u64,
}

/// Injected link-quality faults: each DMA rolls the dice; a hit stretches
/// its service time by `factor` (replay/retrain overhead on a flaky link).
#[derive(Debug)]
struct LinkFaults {
    dice: FaultDice,
    factor: f64,
}

/// Errors from the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcieError {
    /// DMA to/from an address no BAR or DRAM range claims.
    UnmappedAddress(u64),
    /// A device tried to DMA to its own BAR (loopback is not modelled).
    Loopback(DeviceId),
}

impl fmt::Display for PcieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcieError::UnmappedAddress(a) => write!(f, "unmapped bus address {a:#x}"),
            PcieError::Loopback(_) => write!(f, "device dma to its own bar"),
        }
    }
}

impl Error for PcieError {}

#[derive(Debug)]
struct DeviceSlot {
    name: String,
    link: LinkConfig,
    /// Data leaving the device (toward the switch).
    tx: Timeline,
    /// Data arriving at the device.
    rx: Timeline,
    bytes: u64,
}

/// The PCIe switch fabric with its attached devices and the root complex.
///
/// Transfers are cut-through: a DMA occupies the source link and the
/// destination link over the same window, paced by the slower of the two,
/// plus a fixed per-transfer hop latency. Concurrent DMAs sharing a link
/// queue FIFO on that link's timeline.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Fabric {
    root_link: LinkConfig,
    devices: Vec<DeviceSlot>,
    bars: Vec<BarWindow>,
    next_bar_base: u64,
    /// Root-complex link toward host memory (writes to DRAM).
    root_down: Timeline,
    /// Root-complex link from host memory (reads from DRAM).
    root_up: Timeline,
    /// Per-transfer latency (switch + completion overhead).
    hop_latency: SimDuration,
    traffic: TrafficStats,
    tracer: Tracer,
    link_faults: Option<LinkFaults>,
}

impl Fabric {
    /// Creates a fabric whose root-complex link has the given configuration.
    pub fn new(root_link: LinkConfig) -> Self {
        Fabric {
            root_link,
            devices: Vec::new(),
            bars: Vec::new(),
            next_bar_base: HOST_MEMORY_TOP,
            root_down: Timeline::new("root-down", 1),
            root_up: Timeline::new("root-up", 1),
            hop_latency: SimDuration::from_nanos(500),
            traffic: TrafficStats::default(),
            tracer: Tracer::disabled(),
            link_faults: None,
        }
    }

    /// Arms link-degradation fault injection: every subsequent DMA rolls
    /// `dice`, and a hit multiplies that transfer's service time by
    /// `factor` (link-level replay/retrain overhead). Disabled by default.
    pub fn set_link_faults(&mut self, dice: FaultDice, factor: f64) {
        self.link_faults = Some(LinkFaults { dice, factor });
    }

    /// Installs a trace handle; DMA transfers record through it (disabled
    /// by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a device with its own link and returns its id.
    pub fn add_device(&mut self, name: impl Into<String>, link: LinkConfig) -> DeviceId {
        let name = name.into();
        self.devices.push(DeviceSlot {
            tx: Timeline::new(format!("{name}-tx"), 1),
            rx: Timeline::new(format!("{name}-rx"), 1),
            name,
            link,
            bytes: 0,
        });
        DeviceId(self.devices.len() - 1)
    }

    /// Device name.
    pub fn device_name(&self, id: DeviceId) -> &str {
        &self.devices[id.0].name
    }

    /// Maps a BAR window of `size` bytes for `device` and returns it.
    ///
    /// This is the operation NVMe-P2P performs on the GPU's behalf (via
    /// GPUDirect / DirectGMA) so the SSD can address GPU memory directly.
    ///
    /// # Errors
    ///
    /// Returns [`PcieError::UnmappedAddress`] if `size` is zero (nothing to
    /// map).
    pub fn map_bar(&mut self, device: DeviceId, size: u64) -> Result<BarWindow, PcieError> {
        if size == 0 {
            return Err(PcieError::UnmappedAddress(self.next_bar_base));
        }
        // Align windows to 1 MiB like real BAR allocation.
        const ALIGN: u64 = 1 << 20;
        let base = self.next_bar_base;
        let span = size.div_ceil(ALIGN) * ALIGN;
        self.next_bar_base += span;
        let win = BarWindow { base, size, device };
        self.bars.push(win);
        Ok(win)
    }

    /// Unmaps a previously mapped window. Unknown windows are ignored.
    pub fn unmap_bar(&mut self, window: BarWindow) {
        self.bars.retain(|w| w != &window);
    }

    /// Resolves a bus address exactly as the switch routes TLPs.
    pub fn route(&self, addr: u64) -> Target {
        if addr < HOST_MEMORY_TOP {
            return Target::HostMemory;
        }
        for w in &self.bars {
            if w.contains(addr) {
                return Target::Device(w.device);
            }
        }
        Target::Unmapped
    }

    /// Performs a DMA of `bytes` issued by `initiator` against bus address
    /// `addr`, starting no earlier than `ready`.
    ///
    /// # Errors
    ///
    /// Returns [`PcieError::UnmappedAddress`] if no window claims `addr`
    /// and [`PcieError::Loopback`] if the address resolves to the
    /// initiator itself.
    pub fn dma(
        &mut self,
        initiator: DeviceId,
        dir: DmaDir,
        addr: u64,
        bytes: u64,
        ready: SimTime,
    ) -> Result<DmaOutcome, PcieError> {
        let target = self.route(addr);
        if bytes == 0 {
            return Ok(DmaOutcome {
                start: ready,
                end: ready,
                target,
                peer_to_peer: !matches!(target, Target::HostMemory),
            });
        }
        let (peer_bw, p2p) = match target {
            Target::HostMemory => (self.root_link.bandwidth(), false),
            Target::Device(d) => {
                if d == initiator {
                    return Err(PcieError::Loopback(d));
                }
                (self.devices[d.0].link.bandwidth(), true)
            }
            Target::Unmapped => return Err(PcieError::UnmappedAddress(addr)),
        };
        let init_bw = self.devices[initiator.0].link.bandwidth();
        let pace = if init_bw.bytes_per_s() < peer_bw.bytes_per_s() {
            init_bw
        } else {
            peer_bw
        };
        let mut service = pace.duration_for(bytes);
        let mut degraded = false;
        if let Some(lf) = &mut self.link_faults {
            if lf.dice.roll() {
                let stretched = (service.as_nanos() as f64 * lf.factor).round() as u64;
                service = SimDuration::from_nanos(stretched);
                degraded = true;
            }
        }

        // Cut-through: both links occupied over the same window, which
        // begins when both are free.
        let start_at = {
            let a = match dir {
                DmaDir::Write => self.devices[initiator.0].tx.horizon(),
                DmaDir::Read => self.devices[initiator.0].rx.horizon(),
            };
            let b = match (target, dir) {
                (Target::HostMemory, DmaDir::Write) => self.root_down.horizon(),
                (Target::HostMemory, DmaDir::Read) => self.root_up.horizon(),
                (Target::Device(d), DmaDir::Write) => self.devices[d.0].rx.horizon(),
                (Target::Device(d), DmaDir::Read) => self.devices[d.0].tx.horizon(),
                (Target::Unmapped, _) => unreachable!("checked above"),
            };
            ready.max(a).max(b)
        };
        let iv = match dir {
            DmaDir::Write => self.devices[initiator.0].tx.acquire(start_at, service),
            DmaDir::Read => self.devices[initiator.0].rx.acquire(start_at, service),
        };
        match (target, dir) {
            (Target::HostMemory, DmaDir::Write) => {
                self.root_down.acquire(start_at, service);
            }
            (Target::HostMemory, DmaDir::Read) => {
                self.root_up.acquire(start_at, service);
            }
            (Target::Device(d), DmaDir::Write) => {
                self.devices[d.0].rx.acquire(start_at, service);
            }
            (Target::Device(d), DmaDir::Read) => {
                self.devices[d.0].tx.acquire(start_at, service);
            }
            (Target::Unmapped, _) => unreachable!("checked above"),
        }

        {
            let slot = &self.devices[initiator.0];
            let track = match dir {
                DmaDir::Write => slot.tx.name(),
                DmaDir::Read => slot.rx.name(),
            };
            let name = if p2p { "dma-p2p" } else { "dma-host" };
            self.tracer
                .span_bytes(TraceLayer::Pcie, track, name, iv.start, iv.end, bytes);
            if degraded {
                self.tracer
                    .instant(TraceLayer::Pcie, track, "link-degraded", iv.start);
            }
        }

        if degraded {
            self.traffic.degraded_dmas += 1;
        }

        self.devices[initiator.0].bytes += bytes;
        self.traffic.total_bytes += bytes;
        if p2p {
            self.traffic.p2p_bytes += bytes;
            if let Target::Device(d) = target {
                self.devices[d.0].bytes += bytes;
            }
        } else {
            self.traffic.root_bytes += bytes;
        }

        Ok(DmaOutcome {
            start: iv.start,
            end: iv.end + self.hop_latency,
            target,
            peer_to_peer: p2p,
        })
    }

    /// Traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// Bytes that crossed a particular device's link (both directions).
    pub fn device_bytes(&self, id: DeviceId) -> u64 {
        self.devices[id.0].bytes
    }

    /// Busy time of a device's transmit link.
    pub fn device_tx_busy(&self, id: DeviceId) -> SimDuration {
        self.devices[id.0].tx.busy()
    }

    /// Overrides the per-transfer hop latency.
    pub fn set_hop_latency(&mut self, latency: SimDuration) {
        self.hop_latency = latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcieGen;

    fn fabric() -> (Fabric, DeviceId, DeviceId) {
        let mut f = Fabric::new(LinkConfig::new(PcieGen::Gen3, 8));
        let ssd = f.add_device("ssd", LinkConfig::new(PcieGen::Gen3, 4));
        let gpu = f.add_device("gpu", LinkConfig::new(PcieGen::Gen3, 16));
        (f, ssd, gpu)
    }

    #[test]
    fn host_addresses_route_to_host() {
        let (f, _, _) = fabric();
        assert_eq!(f.route(0), Target::HostMemory);
        assert_eq!(f.route(HOST_MEMORY_TOP - 1), Target::HostMemory);
        assert_eq!(f.route(HOST_MEMORY_TOP), Target::Unmapped);
    }

    #[test]
    fn bar_mapping_routes_to_device() {
        let (mut f, _, gpu) = fabric();
        let w = f.map_bar(gpu, 4096).unwrap();
        assert_eq!(f.route(w.base), Target::Device(gpu));
        assert_eq!(f.route(w.base + 4095), Target::Device(gpu));
        assert_eq!(f.route(w.base + 4096), Target::Unmapped);
        f.unmap_bar(w);
        assert_eq!(f.route(w.base), Target::Unmapped);
    }

    #[test]
    fn bars_do_not_overlap() {
        let (mut f, ssd, gpu) = fabric();
        let a = f.map_bar(gpu, 3 << 20).unwrap();
        let b = f.map_bar(ssd, 1 << 20).unwrap();
        assert!(a.base + a.size <= b.base);
    }

    #[test]
    fn host_dma_crosses_root_link() {
        let (mut f, ssd, _) = fabric();
        let out = f
            .dma(ssd, DmaDir::Write, 0x1000, 1 << 20, SimTime::ZERO)
            .unwrap();
        assert!(!out.peer_to_peer);
        assert_eq!(f.traffic().root_bytes, 1 << 20);
        assert_eq!(f.traffic().p2p_bytes, 0);
    }

    #[test]
    fn p2p_dma_avoids_root_link() {
        let (mut f, ssd, gpu) = fabric();
        let w = f.map_bar(gpu, 1 << 24).unwrap();
        let out = f
            .dma(ssd, DmaDir::Write, w.base, 1 << 20, SimTime::ZERO)
            .unwrap();
        assert!(out.peer_to_peer);
        assert_eq!(f.traffic().root_bytes, 0);
        assert_eq!(f.traffic().p2p_bytes, 1 << 20);
        assert_eq!(f.device_bytes(gpu), 1 << 20);
    }

    #[test]
    fn transfer_paced_by_slower_link() {
        let (mut f, ssd, gpu) = fabric();
        let w = f.map_bar(gpu, 1 << 24).unwrap();
        f.set_hop_latency(SimDuration::ZERO);
        let bytes = 100 << 20;
        let out = f
            .dma(ssd, DmaDir::Write, w.base, bytes, SimTime::ZERO)
            .unwrap();
        let ssd_bw = LinkConfig::new(PcieGen::Gen3, 4).bandwidth();
        let expect = ssd_bw.duration_for(bytes);
        assert_eq!(out.end.duration_since(out.start), expect);
    }

    #[test]
    fn concurrent_dmas_contend_on_shared_link() {
        let (mut f, ssd, _) = fabric();
        f.set_hop_latency(SimDuration::ZERO);
        let a = f
            .dma(ssd, DmaDir::Write, 0, 1 << 20, SimTime::ZERO)
            .unwrap();
        let b = f
            .dma(ssd, DmaDir::Write, 0, 1 << 20, SimTime::ZERO)
            .unwrap();
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn reads_and_writes_use_independent_directions() {
        let (mut f, ssd, _) = fabric();
        f.set_hop_latency(SimDuration::ZERO);
        let w = f
            .dma(ssd, DmaDir::Write, 0, 1 << 20, SimTime::ZERO)
            .unwrap();
        let r = f.dma(ssd, DmaDir::Read, 0, 1 << 20, SimTime::ZERO).unwrap();
        // Full duplex: both start at time zero.
        assert_eq!(w.start, r.start);
    }

    #[test]
    fn loopback_rejected() {
        let (mut f, ssd, _) = fabric();
        let w = f.map_bar(ssd, 4096).unwrap();
        assert_eq!(
            f.dma(ssd, DmaDir::Write, w.base, 64, SimTime::ZERO)
                .unwrap_err(),
            PcieError::Loopback(ssd)
        );
    }

    #[test]
    fn unmapped_dma_rejected() {
        let (mut f, ssd, _) = fabric();
        assert!(matches!(
            f.dma(ssd, DmaDir::Write, HOST_MEMORY_TOP + 5, 64, SimTime::ZERO),
            Err(PcieError::UnmappedAddress(_))
        ));
    }

    #[test]
    fn zero_byte_dma_is_instant() {
        let (mut f, ssd, _) = fabric();
        let out = f.dma(ssd, DmaDir::Write, 0, 0, SimTime::ZERO).unwrap();
        assert_eq!(out.start, out.end);
        assert_eq!(f.traffic().total_bytes, 0);
    }

    #[test]
    fn degraded_link_stretches_service() {
        let (mut f, ssd, _) = fabric();
        f.set_hop_latency(SimDuration::ZERO);
        let clean = f
            .dma(ssd, DmaDir::Write, 0, 1 << 20, SimTime::ZERO)
            .unwrap();
        let base = clean.end.duration_since(clean.start);
        let dice = morpheus_simcore::FaultPlan::none().dice("pcie-link", 1.0);
        f.set_link_faults(dice, 4.0);
        let slow = f.dma(ssd, DmaDir::Write, 0, 1 << 20, clean.end).unwrap();
        assert_eq!(
            slow.end.duration_since(slow.start).as_nanos(),
            base.as_nanos() * 4
        );
        assert_eq!(f.traffic().degraded_dmas, 1);
    }

    #[test]
    fn device_names_kept() {
        let (f, ssd, gpu) = fabric();
        assert_eq!(f.device_name(ssd), "ssd");
        assert_eq!(f.device_name(gpu), "gpu");
    }
}
