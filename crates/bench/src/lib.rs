//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). Inputs are the paper's nominal sizes
//! divided by a `--scale` factor (default 256) and clamped to a tractable
//! range; all reported quantities are ratios or rates, which a scale sweep
//! (`ablate --sweep scale`) shows to be size-stable.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

use morpheus::{Mode, RunReport, StorageKind, System, SystemParams};
use morpheus_simcore::FaultPlan;
use morpheus_workloads::{run_benchmark, stage_input, BenchOutcome, Benchmark};

/// Command-line configuration shared by all figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Divisor applied to the paper's nominal input sizes.
    pub scale: u64,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads for suite fan-out (`--jobs`, `MORPHEUS_JOBS`).
    pub jobs: usize,
    /// Fault-injection plan (`--faults SPEC`), armed on every system the
    /// harness builds. `None` leaves every run fault-free.
    pub faults: Option<FaultPlan>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            scale: 256,
            seed: 42,
            jobs: default_jobs(),
            faults: None,
        }
    }
}

/// Default worker count: `MORPHEUS_JOBS` if set, else 1 (sequential).
fn default_jobs() -> usize {
    std::env::var("MORPHEUS_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|j| *j >= 1)
        .unwrap_or(1)
}

/// Parse error for the harness flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Harness {
    /// Parses `--scale N`, `--seed N` and `--jobs N` from the process
    /// arguments. Unknown flags and malformed values are fatal (exit 2):
    /// a typo like `--sacle` silently running the default configuration
    /// would poison recorded results.
    pub fn from_args() -> Self {
        Self::from_args_with(&[])
    }

    /// Like [`Harness::from_args`] but tolerating `extra` flags that the
    /// binary parses itself (each consumes one value argument).
    pub fn from_args_with(extra: &[&str]) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args, extra) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--scale N] [--seed N] [--jobs N] [--faults SPEC]{}",
                    {
                        let mut s = String::new();
                        for f in extra {
                            s.push_str(&format!(" [{f} V]"));
                        }
                        s
                    }
                );
                std::process::exit(2);
            }
        }
    }

    /// The argument grammar, separated from process state for testing.
    pub fn parse(args: &[String], extra: &[&str]) -> Result<Self, ArgError> {
        fn value_of<'a>(
            flag: &str,
            it: &mut std::slice::Iter<'a, String>,
        ) -> Result<&'a String, ArgError> {
            it.next()
                .ok_or_else(|| ArgError(format!("{flag} requires a value")))
        }
        let mut h = Harness::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = value_of("--scale", &mut it)?;
                    h.scale = v.parse().map_err(|_| {
                        ArgError(format!("--scale expects a positive integer, got {v:?}"))
                    })?;
                    if h.scale == 0 {
                        return Err(ArgError("--scale must be >= 1".into()));
                    }
                }
                "--seed" => {
                    let v = value_of("--seed", &mut it)?;
                    h.seed = v.parse().map_err(|_| {
                        ArgError(format!("--seed expects an unsigned integer, got {v:?}"))
                    })?;
                }
                "--jobs" => {
                    let v = value_of("--jobs", &mut it)?;
                    h.jobs = v.parse().map_err(|_| {
                        ArgError(format!("--jobs expects a positive integer, got {v:?}"))
                    })?;
                    if h.jobs == 0 {
                        return Err(ArgError("--jobs must be >= 1".into()));
                    }
                }
                "--faults" => {
                    let v = value_of("--faults", &mut it)?;
                    let plan =
                        FaultPlan::parse(v).map_err(|e| ArgError(format!("--faults: {e}")))?;
                    h.faults = Some(plan);
                }
                other if extra.contains(&other) => {
                    value_of(other, &mut it)?;
                }
                other => {
                    return Err(ArgError(format!("unknown flag {other:?}")));
                }
            }
        }
        Ok(h)
    }

    /// Runs `f` once per benchmark on `self.jobs` worker threads and
    /// returns the results in suite order, exactly as a sequential
    /// `benches.iter().map(f)` would. Each invocation builds its own
    /// fresh [`System`], so runs are independent and the fan-out cannot
    /// perturb any simulated quantity — only wall-clock time.
    pub fn run_suite_parallel<T, F>(&self, benches: &[Benchmark], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Benchmark) -> T + Sync,
    {
        run_parallel(self.jobs, benches, f)
    }

    /// Bytes staged for a benchmark at this scale.
    pub fn input_bytes(&self, bench: &Benchmark) -> u64 {
        (bench.nominal_bytes / self.scale.max(1)).clamp(2_000_000, 48_000_000)
    }

    /// A fresh paper-testbed system with this benchmark's input staged.
    pub fn app_system(&self, bench: &Benchmark) -> System {
        self.app_system_with(bench, StorageKind::NvmeSsd, None)
    }

    /// A fresh system with the given conventional-path storage device and
    /// optional host frequency override.
    pub fn app_system_with(
        &self,
        bench: &Benchmark,
        storage: StorageKind,
        freq_hz: Option<f64>,
    ) -> System {
        let mut params = SystemParams::paper_testbed();
        params.storage = storage;
        let mut sys = System::new(params);
        if let Some(f) = freq_hz {
            sys.cpu.set_frequency(f);
        }
        stage_input(&mut sys, bench, self.input_bytes(bench), self.seed)
            .expect("staging benchmark input");
        // Arm faults only after staging: input files are always written
        // intact, faults perturb the measured runs alone.
        if let Some(plan) = self.faults {
            sys.set_fault_plan(plan);
        }
        sys
    }
}

/// Maps `f` over `items` on up to `jobs` threads, preserving input
/// order in the output. Work is claimed dynamically (an atomic cursor),
/// so a slow item never strands the remaining ones behind it; results
/// are tagged with their index and merged after the join, keeping the
/// output — and therefore everything printed from it — byte-identical
/// to the sequential run. A panic in any worker propagates.
pub fn run_parallel<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok(local) => tagged.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// Runs one benchmark under one mode on its own fresh system.
pub fn run_mode(h: &Harness, bench: &Benchmark, mode: Mode) -> BenchOutcome {
    let mut sys = h.app_system(bench);
    run_benchmark(&mut sys, bench, mode).expect("benchmark run")
}

/// Runs conventional and Morpheus over the *same* staged input.
pub fn run_pair(h: &Harness, bench: &Benchmark) -> (BenchOutcome, BenchOutcome) {
    let mut sys = h.app_system(bench);
    let conv = run_benchmark(&mut sys, bench, Mode::Conventional).expect("conventional run");
    let morp = run_benchmark(&mut sys, bench, Mode::Morpheus).expect("morpheus run");
    assert_eq!(
        conv.kernel, morp.kernel,
        "{}: modes must compute identical results",
        bench.name
    );
    (conv, morp)
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let s: f64 = xs
        .iter()
        .map(|x| {
            assert!(*x > 0.0, "geomean needs positive values");
            x.ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Prints an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a report's deserialization seconds.
pub fn deser_s(r: &RunReport) -> f64 {
    r.phases.deserialization_s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn input_bytes_clamped() {
        let h = Harness {
            scale: 1_000_000,
            ..Harness::default()
        };
        let bench = &morpheus_workloads::suite()[0];
        assert_eq!(h.input_bytes(bench), 2_000_000);
    }

    #[test]
    fn parse_accepts_known_flags() {
        let h = Harness::parse(&argv(&["--scale", "64", "--seed", "7", "--jobs", "3"]), &[])
            .expect("valid flags");
        assert_eq!((h.scale, h.seed, h.jobs), (64, 7, 3));
    }

    #[test]
    fn parse_rejects_unknown_flag() {
        let err = Harness::parse(&argv(&["--sacle", "64"]), &[]).unwrap_err();
        assert!(err.0.contains("unknown flag"), "{err}");
    }

    #[test]
    fn parse_rejects_malformed_values() {
        for bad in [
            vec!["--scale", "abc"],
            vec!["--scale", "0"],
            vec!["--seed", "-3"],
            vec!["--jobs", "0"],
            vec!["--jobs"],
        ] {
            assert!(
                Harness::parse(&argv(&bad), &[]).is_err(),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn parse_tolerates_registered_extras() {
        let h = Harness::parse(&argv(&["--sweep", "cores", "--scale", "128"]), &["--sweep"])
            .expect("registered extra flag");
        assert_eq!(h.scale, 128);
        assert!(Harness::parse(&argv(&["--sweep", "cores"]), &[]).is_err());
    }

    #[test]
    fn run_parallel_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 7, 100, 1000] {
            let par = run_parallel(jobs, &items, |x| x * x);
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn run_parallel_handles_empty_input() {
        let out: Vec<u64> = run_parallel(4, &[], |x: &u64| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_suite_reports_match_sequential_field_for_field() {
        // The determinism contract of the tentpole: fanning the suite out
        // over threads must not change a single reported quantity.
        let h = Harness {
            scale: 8192,
            seed: 42,
            jobs: 1,
            faults: None,
        };
        let benches: Vec<Benchmark> = morpheus_workloads::suite().into_iter().take(4).collect();
        let seq = h.run_suite_parallel(&benches, |b| run_mode(&h, b, Mode::Conventional));
        let hp = Harness { jobs: 4, ..h };
        let par = hp.run_suite_parallel(&benches, |b| run_mode(&hp, b, Mode::Conventional));
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            // RunReport has no PartialEq; its Debug form prints every
            // field, so equal strings mean field-for-field equality.
            assert_eq!(format!("{:?}", s.report), format!("{:?}", p.report));
            assert_eq!(s.kernel, p.kernel);
        }
    }
}
