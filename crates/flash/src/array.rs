//! The flash array: page state, real contents, NAND rules, wear, errors.

use crate::{BlockId, EccModel, FlashError, FlashGeometry, FlashTiming, PageData, Ppa};
use morpheus_simcore::{SimDuration, SplitMix64};
use std::collections::HashMap;

/// Lifecycle state of a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageState {
    /// Erased and programmable.
    #[default]
    Free,
    /// Holds live data.
    Valid,
    /// Holds stale data awaiting erase (set by the FTL on overwrite/trim).
    Invalid,
}

/// What kind of flash operation a [`FlashOp`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashOpKind {
    /// Page read.
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

/// Timing description of one completed flash operation.
///
/// `cell_time` occupies the die; `bus_time` occupies the channel bus. The
/// SSD controller decides how to overlay these on its channel timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashOp {
    /// Operation kind.
    pub kind: FlashOpKind,
    /// Channel the operation used.
    pub channel: u32,
    /// Die-busy time (array access, including any ECC retries).
    pub cell_time: SimDuration,
    /// Channel-bus time (data transfer to/from the controller).
    pub bus_time: SimDuration,
}

impl FlashOp {
    /// Total serialized latency of the operation.
    pub fn total(&self) -> SimDuration {
        self.cell_time + self.bus_time
    }
}

/// Operation counters for the array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashStats {
    /// Page reads served.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Reads that required ECC correction retries.
    pub corrected_reads: u64,
    /// Reads that failed uncorrectably.
    pub uncorrectable_reads: u64,
    /// Blocks retired due to wear.
    pub retired_blocks: u64,
}

/// The NAND flash array.
///
/// Stores real page contents (sparsely), enforces NAND programming rules,
/// tracks per-block wear and state, and injects bit errors according to an
/// [`EccModel`]. All operations are deterministic given the seed.
#[derive(Debug, Clone)]
pub struct FlashArray {
    geometry: FlashGeometry,
    timing: FlashTiming,
    ecc: EccModel,
    rng: SplitMix64,
    data: HashMap<Ppa, PageData>,
    state: Vec<PageState>,
    /// Next programmable page index per block (NAND sequential-program rule).
    write_point: Vec<u32>,
    erase_count: Vec<u64>,
    bad: Vec<bool>,
    stats: FlashStats,
}

impl FlashArray {
    /// Creates an erased array.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Self {
        Self::with_ecc(geometry, timing, EccModel::perfect(), 0)
    }

    /// Creates an erased array with a specific error model and seed.
    pub fn with_ecc(
        geometry: FlashGeometry,
        timing: FlashTiming,
        ecc: EccModel,
        seed: u64,
    ) -> Self {
        let pages = geometry.total_pages() as usize;
        let blocks = geometry.total_blocks() as usize;
        FlashArray {
            geometry,
            timing,
            ecc,
            rng: SplitMix64::new(seed),
            data: HashMap::new(),
            state: vec![PageState::Free; pages],
            write_point: vec![0; blocks],
            erase_count: vec![0; blocks],
            bad: vec![false; blocks],
            stats: FlashStats::default(),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The array's timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Operation counters.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Replaces the bit-error model and re-seeds its PRNG stream, leaving
    /// stored data, wear, and counters untouched. The fault plane re-arms
    /// this at the start of every run so each run over the same array sees
    /// an identical fault stream.
    pub fn set_error_model(&mut self, ecc: EccModel, seed: u64) {
        self.ecc = ecc;
        self.rng = SplitMix64::new(seed);
    }

    /// State of a page.
    ///
    /// # Panics
    ///
    /// Panics if `ppa` is out of range.
    pub fn page_state(&self, ppa: Ppa) -> PageState {
        self.state[self.index(ppa)]
    }

    /// Erase count of a block.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.erase_count[block.0 as usize]
    }

    /// True if the block has been retired.
    pub fn is_bad(&self, block: BlockId) -> bool {
        self.bad[block.0 as usize]
    }

    /// Number of valid pages in a block.
    pub fn valid_pages_in(&self, block: BlockId) -> u32 {
        let first = self.geometry.first_page_of(block).0;
        (0..self.geometry.pages_per_block as u64)
            .filter(|i| self.state[(first + i) as usize] == PageState::Valid)
            .count() as u32
    }

    /// Reads a page, returning a zero-copy handle to its contents and the
    /// operation timing. The handle shares the stored allocation; it stays
    /// valid (with the contents as of this read) even if the page is later
    /// overwritten or erased.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::ReadOfFreePage`] for unprogrammed pages,
    /// [`FlashError::BadBlock`] for retired blocks,
    /// [`FlashError::Uncorrectable`] when the error model injects a failure,
    /// and [`FlashError::OutOfRange`] for invalid addresses.
    pub fn read_page(&mut self, ppa: Ppa) -> Result<(PageData, FlashOp), FlashError> {
        let idx = self.checked_index(ppa)?;
        let block = self.geometry.block_of(ppa);
        if self.bad[block.0 as usize] {
            return Err(FlashError::BadBlock(block));
        }
        if self.state[idx] == PageState::Free {
            return Err(FlashError::ReadOfFreePage(ppa));
        }
        if self.rng.chance(self.ecc.uncorrectable_prob) {
            self.stats.uncorrectable_reads += 1;
            return Err(FlashError::Uncorrectable(ppa));
        }
        let mut cell_time = self.timing.read_latency;
        if self.rng.chance(self.ecc.correctable_prob) {
            self.stats.corrected_reads += 1;
            cell_time += self.timing.read_latency * self.ecc.correction_retries as u64;
        }
        self.stats.reads += 1;
        // Clone of the handle, not the payload: the read path never copies
        // page contents (see `copy_audit`).
        let data = self
            .data
            .get(&ppa)
            .cloned()
            .expect("valid/invalid page must have stored data");
        let op = FlashOp {
            kind: FlashOpKind::Read,
            channel: self.geometry.channel_of(ppa),
            cell_time,
            bus_time: self.timing.bus_transfer(data.len() as u64),
        };
        Ok((data, op))
    }

    /// Programs a page with `data`, returning the operation timing.
    ///
    /// # Errors
    ///
    /// Enforces the NAND rules: a page may be programmed once per erase
    /// cycle ([`FlashError::ProgramTwice`]), pages within a block must be
    /// programmed in order ([`FlashError::ProgramOutOfOrder`]), the data
    /// must fit ([`FlashError::DataTooLarge`]), and retired blocks reject
    /// all operations ([`FlashError::BadBlock`]).
    pub fn program_page(&mut self, ppa: Ppa, data: &[u8]) -> Result<FlashOp, FlashError> {
        // Copying the caller's buffer into the array is the program
        // operation itself, not a read-path copy.
        self.program_page_data(ppa, PageData::copy_from(data))
    }

    /// Programs a page from an existing [`PageData`] handle without copying
    /// the payload — the array stores the shared allocation. This is the
    /// garbage collector's relocation path: a valid page moves blocks by
    /// re-homing its handle, never its bytes.
    ///
    /// # Errors
    ///
    /// Same rules as [`FlashArray::program_page`].
    pub fn program_page_data(&mut self, ppa: Ppa, data: PageData) -> Result<FlashOp, FlashError> {
        let idx = self.checked_index(ppa)?;
        let block = self.geometry.block_of(ppa);
        if self.bad[block.0 as usize] {
            return Err(FlashError::BadBlock(block));
        }
        if data.len() > self.geometry.page_bytes as usize {
            return Err(FlashError::DataTooLarge {
                ppa,
                len: data.len(),
                page_bytes: self.geometry.page_bytes,
            });
        }
        if self.state[idx] != PageState::Free {
            return Err(FlashError::ProgramTwice(ppa));
        }
        let expected = self.write_point[block.0 as usize];
        let page_idx = self.geometry.page_in_block(ppa);
        if page_idx != expected {
            return Err(FlashError::ProgramOutOfOrder {
                ppa,
                expected_page: expected,
            });
        }
        self.write_point[block.0 as usize] = expected + 1;
        self.state[idx] = PageState::Valid;
        let len = data.len() as u64;
        self.data.insert(ppa, data);
        self.stats.programs += 1;
        Ok(FlashOp {
            kind: FlashOpKind::Program,
            channel: self.geometry.channel_of(ppa),
            cell_time: self.timing.program_latency,
            bus_time: self.timing.bus_transfer(len),
        })
    }

    /// Marks a page's contents stale (an FTL-level operation that costs no
    /// flash time — the out-of-band metadata update is folded into the
    /// controller's own costs).
    ///
    /// # Panics
    ///
    /// Panics if `ppa` is out of range.
    pub fn invalidate_page(&mut self, ppa: Ppa) {
        let idx = self.index(ppa);
        if self.state[idx] == PageState::Valid {
            self.state[idx] = PageState::Invalid;
        }
    }

    /// Erases a block, freeing all of its pages and advancing wear.
    ///
    /// Returns the operation timing. When the erase count reaches the error
    /// model's wear limit the block is retired and subsequent operations on
    /// it fail with [`FlashError::BadBlock`].
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::BadBlock`] for already-retired blocks and
    /// [`FlashError::OutOfRange`] for invalid block ids.
    pub fn erase_block(&mut self, block: BlockId) -> Result<FlashOp, FlashError> {
        if block.0 >= self.geometry.total_blocks() {
            return Err(FlashError::OutOfRange(self.geometry.first_page_of(block)));
        }
        if self.bad[block.0 as usize] {
            return Err(FlashError::BadBlock(block));
        }
        let first = self.geometry.first_page_of(block).0;
        for i in 0..self.geometry.pages_per_block as u64 {
            let ppa = Ppa(first + i);
            self.state[ppa.0 as usize] = PageState::Free;
            self.data.remove(&ppa);
        }
        self.write_point[block.0 as usize] = 0;
        self.erase_count[block.0 as usize] += 1;
        self.stats.erases += 1;
        if self.erase_count[block.0 as usize] >= self.ecc.wear_limit {
            self.bad[block.0 as usize] = true;
            self.stats.retired_blocks += 1;
        }
        Ok(FlashOp {
            kind: FlashOpKind::Erase,
            channel: self.geometry.channel_of_block(block),
            cell_time: self.timing.erase_latency,
            bus_time: SimDuration::ZERO,
        })
    }

    fn index(&self, ppa: Ppa) -> usize {
        assert!(
            self.geometry.contains(ppa),
            "physical page {} out of range",
            ppa.0
        );
        ppa.0 as usize
    }

    fn checked_index(&self, ppa: Ppa) -> Result<usize, FlashError> {
        if self.geometry.contains(ppa) {
            Ok(ppa.0 as usize)
        } else {
            Err(FlashError::OutOfRange(ppa))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlashArray {
        FlashArray::new(FlashGeometry::small(), FlashTiming::default())
    }

    #[test]
    fn program_then_read_returns_data() {
        let mut a = small();
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        a.program_page(ppa, b"abc").unwrap();
        let (d, op) = a.read_page(ppa).unwrap();
        assert_eq!(&d[..], b"abc");
        assert_eq!(op.kind, FlashOpKind::Read);
        assert_eq!(op.channel, 0);
        assert!(op.cell_time > SimDuration::ZERO);
    }

    #[test]
    fn read_of_free_page_fails() {
        let mut a = small();
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        assert_eq!(
            a.read_page(ppa).unwrap_err(),
            FlashError::ReadOfFreePage(ppa)
        );
    }

    #[test]
    fn program_twice_fails() {
        let mut a = small();
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        a.program_page(ppa, b"x").unwrap();
        assert_eq!(
            a.program_page(ppa, b"y").unwrap_err(),
            FlashError::ProgramTwice(ppa)
        );
    }

    #[test]
    fn out_of_order_program_fails() {
        let mut a = small();
        let p2 = a.geometry().ppa(0, 0, 0, 0, 2);
        match a.program_page(p2, b"x").unwrap_err() {
            FlashError::ProgramOutOfOrder { expected_page, .. } => assert_eq!(expected_page, 0),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn sequential_program_within_block_succeeds() {
        let mut a = small();
        for p in 0..4 {
            let ppa = a.geometry().ppa(0, 0, 0, 1, p);
            a.program_page(ppa, &[p as u8]).unwrap();
        }
        assert_eq!(a.stats().programs, 4);
    }

    #[test]
    fn erase_frees_pages_and_counts_wear() {
        let mut a = small();
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        a.program_page(ppa, b"x").unwrap();
        let block = a.geometry().block_of(ppa);
        a.erase_block(block).unwrap();
        assert_eq!(a.page_state(ppa), PageState::Free);
        assert_eq!(a.erase_count(block), 1);
        // Programmable again from page 0.
        a.program_page(ppa, b"y").unwrap();
        let (d, _) = a.read_page(ppa).unwrap();
        assert_eq!(&d[..], b"y");
    }

    #[test]
    fn invalidate_marks_page_stale_but_readable() {
        let mut a = small();
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        a.program_page(ppa, b"x").unwrap();
        a.invalidate_page(ppa);
        assert_eq!(a.page_state(ppa), PageState::Invalid);
        // GC still needs to read stale pages' neighbours; reading invalid
        // data is allowed at the flash level.
        assert!(a.read_page(ppa).is_ok());
    }

    #[test]
    fn oversized_data_rejected() {
        let mut a = small();
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        let big = vec![0u8; 5000];
        assert!(matches!(
            a.program_page(ppa, &big).unwrap_err(),
            FlashError::DataTooLarge { .. }
        ));
    }

    #[test]
    fn wear_limit_retires_block() {
        let ecc = EccModel {
            wear_limit: 2,
            ..EccModel::perfect()
        };
        let mut a = FlashArray::with_ecc(FlashGeometry::small(), FlashTiming::default(), ecc, 1);
        let b = BlockId(0);
        a.erase_block(b).unwrap();
        assert!(!a.is_bad(b));
        a.erase_block(b).unwrap();
        assert!(a.is_bad(b));
        assert_eq!(a.erase_block(b).unwrap_err(), FlashError::BadBlock(b));
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        assert_eq!(
            a.program_page(ppa, b"x").unwrap_err(),
            FlashError::BadBlock(b)
        );
        assert_eq!(a.stats().retired_blocks, 1);
    }

    #[test]
    fn uncorrectable_errors_injected_deterministically() {
        let ecc = EccModel {
            uncorrectable_prob: 1.0,
            ..EccModel::perfect()
        };
        let mut a = FlashArray::with_ecc(FlashGeometry::small(), FlashTiming::default(), ecc, 7);
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        a.program_page(ppa, b"x").unwrap();
        assert_eq!(
            a.read_page(ppa).unwrap_err(),
            FlashError::Uncorrectable(ppa)
        );
        assert_eq!(a.stats().uncorrectable_reads, 1);
    }

    #[test]
    fn correctable_errors_add_retry_latency() {
        let ecc = EccModel {
            correctable_prob: 1.0,
            correction_retries: 2,
            ..EccModel::perfect()
        };
        let mut a = FlashArray::with_ecc(FlashGeometry::small(), FlashTiming::default(), ecc, 7);
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        a.program_page(ppa, b"x").unwrap();
        let (_, op) = a.read_page(ppa).unwrap();
        assert_eq!(
            op.cell_time.as_nanos(),
            FlashTiming::default().read_latency.as_nanos() * 3
        );
        assert_eq!(a.stats().corrected_reads, 1);
    }

    #[test]
    fn reads_share_the_stored_allocation() {
        let mut a = small();
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        a.program_page(ppa, b"shared").unwrap();
        let (first, _) = a.read_page(ppa).unwrap();
        let (second, _) = a.read_page(ppa).unwrap();
        assert!(
            PageData::ptr_eq(&first, &second),
            "repeated reads must hand out the same allocation"
        );
    }

    #[test]
    fn program_page_data_reuses_the_handle() {
        let mut a = small();
        let src = a.geometry().ppa(0, 0, 0, 0, 0);
        let dst = a.geometry().ppa(0, 0, 0, 1, 0);
        a.program_page(src, b"relocate me").unwrap();
        let (data, _) = a.read_page(src).unwrap();
        a.program_page_data(dst, data.clone()).unwrap();
        let (moved, _) = a.read_page(dst).unwrap();
        assert!(PageData::ptr_eq(&data, &moved), "relocation must not copy");
        assert_eq!(&moved[..], b"relocate me");
    }

    #[test]
    fn read_handle_survives_erase() {
        let mut a = small();
        let ppa = a.geometry().ppa(0, 0, 0, 0, 0);
        a.program_page(ppa, b"snapshot").unwrap();
        let (data, _) = a.read_page(ppa).unwrap();
        a.erase_block(a.geometry().block_of(ppa)).unwrap();
        assert_eq!(&data[..], b"snapshot");
    }

    #[test]
    fn valid_page_counting() {
        let mut a = small();
        let g = *a.geometry();
        for p in 0..3 {
            a.program_page(g.ppa(0, 0, 0, 0, p), b"x").unwrap();
        }
        a.invalidate_page(g.ppa(0, 0, 0, 0, 1));
        assert_eq!(a.valid_pages_in(BlockId(0)), 2);
    }
}
