//! Figure 8: object-deserialization speedup with Morpheus-SSD.
//!
//! Paper claim: up to **2.3×**, average **1.66×**; SpMV is the outlier
//! (~1.1×) because a third of its tokens are floats and the embedded cores
//! have no FPU.

use morpheus_bench::{mean, print_table, run_pair, Harness};
use morpheus_workloads::suite;

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 8: deserialization speedup, Morpheus-SSD vs baseline (scale 1/{})\n",
        h.scale
    );
    let benches = suite();
    let pairs = h.run_suite_parallel(&benches, |bench| run_pair(&h, bench));
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (bench, (conv, morp)) in benches.iter().zip(&pairs) {
        let s = morp.report.deser_speedup_over(&conv.report);
        speedups.push(s);
        rows.push(vec![
            bench.name.to_string(),
            format!("{:.3}s", conv.report.phases.deserialization_s),
            format!("{:.3}s", morp.report.phases.deserialization_s),
            format!("{s:.2}x"),
        ]);
    }
    print_table(&["app", "baseline", "morpheus-ssd", "speedup"], &rows);
    println!();
    println!(
        "average speedup: {:.2}x  (paper: ~1.66x, max ~2.3x, spmv lowest at ~1.1x)",
        mean(&speedups)
    );
}
