//! Multi-tenant deserialization: several applications sharing one platform.
//!
//! §III argues the Morpheus model shines in multiprogrammed environments:
//! each tenant's StorageApp occupies *its own* embedded core (instances pin
//! per §IV-B), so tenants scale with the drive's core count while the host
//! CPU stays free; conventional tenants instead fight for host cores, the
//! memory bus, and the scheduler. [`System::run_deserialize_many`] executes
//! the deserialization phase of N tenants concurrently — chunks are issued
//! round-robin so resource contention is modelled at chunk granularity —
//! and reports per-tenant and aggregate throughput.
//!
//! The per-tenant state machine ([`TenantState`]) is shared with the
//! open-loop serving layer (`serve.rs`), which steps tenants one request
//! at a time instead of round-robin.

use crate::deser_memo::{self, MemoKey};
use crate::exec::{AppSpec, RunError};
use crate::report::{mb_per_sec, Mode};
use crate::system::ChunkIo;
use crate::{DeserializeApp, StorageKind, System};
use morpheus_format::{ParseWork, ParsedColumns, StreamingParser};
use morpheus_host::CodeClass;
use morpheus_pcie::{BarWindow, DmaDir};
use morpheus_simcore::SimTime;
use std::sync::Arc;

/// One tenant's outcome.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Application name.
    pub app: String,
    /// Execution mode.
    pub mode: Mode,
    /// When this tenant's objects were all delivered.
    pub deser_s: f64,
    /// Records deserialized.
    pub records: u64,
    /// Object checksum (must match a solo run of the same input).
    pub checksum: u64,
    /// Binary object bytes produced.
    pub object_bytes: u64,
}

/// Aggregate outcome of a concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Per-tenant results, in input order.
    pub tenants: Vec<TenantReport>,
    /// Time until the slowest tenant finished.
    pub makespan_s: f64,
    /// Aggregate object throughput over the makespan, MB/s.
    pub aggregate_mbs: f64,
    /// Context switches across all tenants.
    pub context_switches: u64,
}

/// Per-tenant progress state, stepped one chunk at a time. Built via
/// [`System::conventional_tenant`] / [`System::morpheus_tenant`] and driven
/// with [`System::step_tenant`] / [`System::finish_tenant`].
pub(crate) enum TenantState {
    /// Host-side `read()`+parse tenant.
    Conventional {
        spec: AppSpec,
        chunks: Vec<ChunkIo>,
        next: usize,
        parser: StreamingParser,
        last_work: ParseWork,
        buf_addr: u64,
        /// No I/O is issued before this time (the dispatch instant).
        start: SimTime,
        cpu_ready: SimTime,
    },
    /// In-SSD StorageApp tenant.
    Morpheus {
        spec: AppSpec,
        chunks: Vec<ChunkIo>,
        next: usize,
        iid: u32,
        /// Instance-ready floor every MREAD respects (fault injection may
        /// push it back).
        ready: SimTime,
        last_end: SimTime,
        obj_bin: Vec<u8>,
        /// P2P delivery window; `None` delivers objects to host DRAM.
        bar: Option<BarWindow>,
        /// Device memo key (fault-free runs only), under which this
        /// lifecycle's decoded objects are published for later reuse.
        memo_key: Option<MemoKey>,
        /// Decoded objects from an earlier identical lifecycle. When
        /// present the byte-stream assembly and final decode are skipped;
        /// every timed step (flash, cores, DMA, bus) still runs live.
        prefab: Option<Arc<ParsedColumns>>,
    },
}

impl TenantState {
    pub(crate) fn finished_chunks(&self) -> bool {
        match self {
            TenantState::Conventional { chunks, next, .. } => *next >= chunks.len(),
            TenantState::Morpheus { chunks, next, .. } => *next >= chunks.len(),
        }
    }
}

impl System {
    /// Builds a conventional tenant whose first I/O happens no earlier
    /// than `start`.
    pub(crate) fn conventional_tenant(
        &mut self,
        spec: &AppSpec,
        start: SimTime,
    ) -> Result<TenantState, RunError> {
        let meta = self
            .fs
            .open(&spec.input)
            .map_err(|_| RunError::UnknownFile(spec.input.clone()))?
            .clone();
        let chunks = Self::file_chunks(&meta, self.params.conventional_chunk_bytes);
        let buf_addr = self
            .dram
            .alloc(self.params.conventional_chunk_bytes)
            .ok_or(RunError::OutOfHostMemory)?;
        Ok(TenantState::Conventional {
            chunks,
            next: 0,
            parser: StreamingParser::new(spec.schema.clone()),
            last_work: ParseWork::default(),
            buf_addr,
            start,
            cpu_ready: start,
            spec: spec.clone(),
        })
    }

    /// Builds a Morpheus tenant: takes the MINIT syscall on a host core no
    /// earlier than `start` and initializes instance `iid` on the drive.
    /// The caller picks `iid` (so a dispatcher can pin instances to
    /// embedded cores) and the delivery target (`bar` for P2P).
    pub(crate) fn morpheus_tenant(
        &mut self,
        spec: &AppSpec,
        iid: u32,
        start: SimTime,
        bar: Option<BarWindow>,
    ) -> Result<TenantState, RunError> {
        let meta = self
            .fs
            .open(&spec.input)
            .map_err(|_| RunError::UnknownFile(spec.input.clone()))?
            .clone();
        let chunks = Self::file_chunks(&meta, self.params.mread_chunk_bytes);
        let memo_key = self.device_memo_key(spec, &chunks);
        let prefab = memo_key.and_then(deser_memo::objects_get);
        let c = self.os.command_completion();
        let iv = self.cpu_cores.acquire(
            start,
            self.cpu.duration(c.instructions, CodeClass::OsKernel),
        );
        let app = DeserializeApp::new(&spec.name, spec.schema.clone());
        let ready = self
            .mssd
            .minit_keyed(iid, Box::new(app), iv.end, memo_key)?;
        Ok(TenantState::Morpheus {
            chunks,
            next: 0,
            iid,
            ready,
            last_end: ready,
            obj_bin: Vec::new(),
            bar,
            memo_key,
            prefab,
            spec: spec.clone(),
        })
    }

    /// Runs the deserialization phase of several tenants concurrently.
    ///
    /// Chunks are issued round-robin across tenants, so host cores, the
    /// memory bus, flash channels, embedded cores, and PCIe links all
    /// contend exactly as the shared timelines dictate. Only
    /// [`Mode::Conventional`] and [`Mode::Morpheus`] tenants are supported
    /// (P2P is a single-accelerator concept), and only text inputs.
    ///
    /// # Errors
    ///
    /// Fails on an empty tenant list ([`RunError::NoTenants`]), unknown
    /// files, parse failures, firmware faults, or an unsupported mode.
    pub fn run_deserialize_many(
        &mut self,
        tenants: &[(AppSpec, Mode)],
    ) -> Result<ConcurrentReport, RunError> {
        if tenants.is_empty() {
            return Err(RunError::NoTenants);
        }
        self.reset_timing();
        assert!(
            self.params.storage == StorageKind::NvmeSsd,
            "concurrent runs model the NVMe path"
        );
        let mut states = Vec::with_capacity(tenants.len());
        for (spec, mode) in tenants {
            let state = match mode {
                Mode::Conventional => self.conventional_tenant(spec, SimTime::ZERO)?,
                Mode::Morpheus => {
                    let iid = self.alloc_instance();
                    self.morpheus_tenant(spec, iid, SimTime::ZERO, None)?
                }
                Mode::MorpheusP2P => return Err(RunError::NotGpuApp(spec.name.clone())),
            };
            states.push(state);
        }

        // Round-robin chunk issue until everyone has drained their file.
        loop {
            let mut progressed = false;
            for t in states.iter_mut() {
                if t.finished_chunks() {
                    continue;
                }
                progressed = true;
                self.step_tenant(t)?;
            }
            if !progressed {
                break;
            }
        }

        // Finish every tenant and assemble reports.
        let mut reports = Vec::with_capacity(states.len());
        let mut makespan = SimTime::ZERO;
        for t in states.iter_mut() {
            let (name, mode, end, objects) = self.finish_tenant(t)?;
            makespan = makespan.max(end);
            reports.push(TenantReport {
                app: name,
                mode,
                deser_s: end.as_secs_f64(),
                records: objects.records,
                checksum: objects.checksum(),
                object_bytes: objects.binary_bytes(),
            });
        }
        let makespan_s = makespan.as_secs_f64();
        let total_obj: u64 = reports.iter().map(|r| r.object_bytes).sum();
        Ok(ConcurrentReport {
            aggregate_mbs: mb_per_sec(total_obj, makespan_s),
            tenants: reports,
            makespan_s,
            context_switches: self.os.accounting().context_switches,
        })
    }

    /// Issues one chunk of one tenant.
    pub(crate) fn step_tenant(&mut self, t: &mut TenantState) -> Result<(), RunError> {
        match t {
            TenantState::Conventional {
                spec,
                chunks,
                next,
                parser,
                last_work,
                buf_addr,
                start,
                cpu_ready,
            } => {
                let c = chunks[*next];
                *next += 1;
                let (data, t_ssd) = self.mssd.dev.read_range(c.slba, c.blocks, *start)?;
                let dma = self.fabric.dma(
                    self.ssd_dev,
                    DmaDir::Write,
                    *buf_addr,
                    c.valid_bytes,
                    t_ssd,
                )?;
                let mb = self.membus.transfer(dma.start, c.valid_bytes);
                let io_done = dma.end.max(mb.end);
                parser.feed(&data[..c.valid_bytes as usize])?;
                let w = parser.work();
                let dw = ParseWork {
                    bytes_scanned: w.bytes_scanned - last_work.bytes_scanned,
                    int_tokens: w.int_tokens - last_work.int_tokens,
                    int_digits: w.int_digits - last_work.int_digits,
                    float_tokens: w.float_tokens - last_work.float_tokens,
                    float_digits: w.float_digits - last_work.float_digits,
                };
                *last_work = w;
                let os_cost = self.os.buffered_read(c.valid_bytes);
                let os_t = self.cpu.duration(os_cost.instructions, CodeClass::OsKernel);
                let parse_t = self.cpu.duration(
                    self.params.host_cost.int_path_instructions(&dw)
                        + self.params.host_cost.float_path_instructions(&dw),
                    CodeClass::Deserialize,
                );
                let iv = self
                    .cpu_cores
                    .acquire(io_done.max(*cpu_ready), os_t + parse_t);
                *cpu_ready = iv.end;
                self.membus.account(c.valid_bytes);
                let _ = spec;
                Ok(())
            }
            TenantState::Morpheus {
                chunks,
                next,
                iid,
                ready,
                last_end,
                obj_bin,
                bar,
                prefab,
                ..
            } => {
                let bar = *bar;
                let c = chunks[*next];
                *next += 1;
                let out = self
                    .mssd
                    .mread(*iid, c.slba, c.blocks, c.valid_bytes, *ready)?;
                if !out.output.is_empty() {
                    let n = out.output.len() as u64;
                    let addr = match bar {
                        Some(w) => {
                            let buf = self.gpu.alloc(n).ok_or(RunError::OutOfGpuMemory)?;
                            w.base + buf.offset
                        }
                        None => self.dram.alloc(n).ok_or(RunError::OutOfHostMemory)?,
                    };
                    let dma = self
                        .fabric
                        .dma(self.ssd_dev, DmaDir::Write, addr, n, out.done)?;
                    if bar.is_none() {
                        self.membus.transfer(dma.start, n);
                    }
                    let w = self.os.command_completion();
                    let iv = self.cpu_cores.acquire(
                        dma.end,
                        self.cpu.duration(w.instructions, CodeClass::OsKernel),
                    );
                    *last_end = (*last_end).max(iv.end);
                } else {
                    *last_end = (*last_end).max(out.done);
                }
                // With a prefab in hand the assembled stream is never
                // decoded, so skip the copy (lengths above still priced
                // the DMA and bus legs identically).
                if prefab.is_none() {
                    obj_bin.extend_from_slice(&out.output);
                }
                Ok(())
            }
        }
    }

    /// Completes a tenant's stream and returns its objects.
    pub(crate) fn finish_tenant(
        &mut self,
        t: &mut TenantState,
    ) -> Result<(String, Mode, SimTime, Arc<ParsedColumns>), RunError> {
        match t {
            TenantState::Conventional {
                spec,
                parser,
                cpu_ready,
                ..
            } => {
                let mut objects =
                    std::mem::replace(parser, StreamingParser::new(spec.schema.clone()))
                        .finish()?;
                objects.canonicalize();
                Ok((
                    spec.name.clone(),
                    Mode::Conventional,
                    *cpu_ready,
                    Arc::new(objects),
                ))
            }
            TenantState::Morpheus {
                spec,
                iid,
                last_end,
                obj_bin,
                bar,
                memo_key,
                prefab,
                ..
            } => {
                let bar = *bar;
                let dein = self.mssd.mdeinit(*iid, *last_end)?;
                let mut end = dein.done;
                if !dein.host_output.is_empty() {
                    let n = dein.host_output.len() as u64;
                    let addr = match bar {
                        Some(w) => {
                            let buf = self.gpu.alloc(n).ok_or(RunError::OutOfGpuMemory)?;
                            w.base + buf.offset
                        }
                        None => self.dram.alloc(n).ok_or(RunError::OutOfHostMemory)?,
                    };
                    let dma = self
                        .fabric
                        .dma(self.ssd_dev, DmaDir::Write, addr, n, dein.done)?;
                    if bar.is_none() {
                        self.membus.transfer(dma.start, n);
                    }
                    end = dma.end;
                }
                let c = self.os.command_completion();
                let iv = self.cpu_cores.acquire(
                    end.max(*last_end),
                    self.cpu.duration(c.instructions, CodeClass::OsKernel),
                );
                let objects = match prefab.take() {
                    Some(o) => o,
                    None => {
                        obj_bin.extend_from_slice(&dein.host_output);
                        let o = Arc::new(ParsedColumns::decode(spec.schema.clone(), obj_bin)?);
                        if let Some(k) = *memo_key {
                            deser_memo::objects_put(k, o.clone());
                        }
                        o
                    }
                };
                let mode = if bar.is_some() {
                    Mode::MorpheusP2P
                } else {
                    Mode::Morpheus
                };
                Ok((spec.name.clone(), mode, iv.end, objects))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppSpec, SystemParams};
    use morpheus_format::{FieldKind, Schema, TextWriter};

    fn edge_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::U32])
    }

    fn edge_text(n: u32, salt: u64) -> Vec<u8> {
        let mut w = TextWriter::new();
        for i in 0..n as u64 {
            w.write_u64((i * 7 + salt) % 100_000);
            w.sep();
            w.write_u64((i * 13 + salt) % 100_000);
            w.newline();
        }
        w.into_bytes()
    }

    fn system_with_tenants(n: usize) -> (System, Vec<AppSpec>) {
        let mut sys = System::new(SystemParams::paper_testbed());
        let mut specs = Vec::new();
        for i in 0..n {
            let name = format!("tenant{i}");
            let file = format!("{name}.txt");
            sys.create_input_file(&file, &edge_text(60_000, i as u64))
                .unwrap();
            specs.push(AppSpec::cpu_app(&name, &file, edge_schema(), 1, 50.0));
        }
        (sys, specs)
    }

    #[test]
    fn concurrent_tenants_match_solo_checksums() {
        let (mut sys, specs) = system_with_tenants(3);
        let solo: Vec<u64> = specs
            .iter()
            .map(|s| sys.run(s, Mode::Morpheus).unwrap().report.checksum)
            .collect();
        let tenants: Vec<(AppSpec, Mode)> =
            specs.iter().map(|s| (s.clone(), Mode::Morpheus)).collect();
        let rep = sys.run_deserialize_many(&tenants).unwrap();
        for (t, want) in rep.tenants.iter().zip(&solo) {
            assert_eq!(t.checksum, *want, "{}", t.app);
        }
    }

    #[test]
    fn morpheus_tenants_scale_with_embedded_cores() {
        let (mut sys, specs) = system_with_tenants(4);
        // Solo time of one Morpheus tenant.
        let solo = sys
            .run(&specs[0], Mode::Morpheus)
            .unwrap()
            .report
            .phases
            .deserialization_s;
        // Four tenants on four embedded cores: makespan must be far below
        // 4x solo (they parse in parallel inside the drive).
        let tenants: Vec<(AppSpec, Mode)> =
            specs.iter().map(|s| (s.clone(), Mode::Morpheus)).collect();
        let rep = sys.run_deserialize_many(&tenants).unwrap();
        assert!(
            rep.makespan_s < 4.0 * solo * 0.6,
            "4 tenants took {:.4}s, solo {:.4}s — no overlap?",
            rep.makespan_s,
            solo
        );
    }

    #[test]
    fn morpheus_beats_conventional_under_multitenancy() {
        // More tenants than host cores: the conventional path serializes on
        // the CPU while Morpheus tenants spread over the drive's cores AND
        // leave the host idle.
        let (mut sys, specs) = system_with_tenants(4);
        let conv: Vec<(AppSpec, Mode)> = specs
            .iter()
            .map(|s| (s.clone(), Mode::Conventional))
            .collect();
        let morp: Vec<(AppSpec, Mode)> =
            specs.iter().map(|s| (s.clone(), Mode::Morpheus)).collect();
        let conv_rep = sys.run_deserialize_many(&conv).unwrap();
        let morp_rep = sys.run_deserialize_many(&morp).unwrap();
        assert!(morp_rep.aggregate_mbs > conv_rep.aggregate_mbs);
        assert!(morp_rep.context_switches < conv_rep.context_switches / 3);
        // Results identical either way.
        for (a, b) in conv_rep.tenants.iter().zip(&morp_rep.tenants) {
            assert_eq!(a.checksum, b.checksum);
        }
    }

    #[test]
    fn p2p_tenants_rejected() {
        let (mut sys, specs) = system_with_tenants(1);
        let tenants = vec![(specs[0].clone(), Mode::MorpheusP2P)];
        assert!(matches!(
            sys.run_deserialize_many(&tenants),
            Err(RunError::NotGpuApp(_))
        ));
    }

    #[test]
    fn empty_tenant_list_is_an_error() {
        let (mut sys, _) = system_with_tenants(0);
        assert!(matches!(
            sys.run_deserialize_many(&[]),
            Err(RunError::NoTenants)
        ));
    }
}
