//! Seeded open-loop arrival processes for serving experiments.
//!
//! Open-loop load generation (requests arrive on their own schedule, not
//! when the previous response returns) is what exposes queueing behaviour:
//! the latency-vs-throughput knee only appears when arrivals keep coming
//! while the server is busy. The process here is Poisson — independent
//! exponential gaps at a target rate — drawn from a [`SplitMix64`] stream,
//! so identical seeds produce byte-identical schedules. The serving
//! layer's determinism contract rests on that.

use crate::rng::SplitMix64;
use crate::time::SimTime;
use std::fmt;

/// A rejected arrival-rate configuration: the rate was NaN, infinite,
/// zero, or negative, all of which would yield a degenerate stream (gaps
/// of NaN nanoseconds or a schedule that never advances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalRateError {
    /// The offending rate, requests per second.
    pub rate_per_s: f64,
}

impl fmt::Display for ArrivalRateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "arrival rate must be positive and finite, got {}",
            self.rate_per_s
        )
    }
}

impl std::error::Error for ArrivalRateError {}

/// An infinite, deterministic Poisson arrival stream.
///
/// Iterating yields strictly ordered arrival timestamps whose gaps are
/// exponentially distributed with mean `1 / rate`. The float accumulator
/// keeps full precision across long runs; each emitted [`SimTime`] is the
/// accumulator truncated to whole nanoseconds.
///
/// ```
/// use morpheus_simcore::ArrivalProcess;
///
/// let a: Vec<_> = ArrivalProcess::new(7, 1000.0).take(3).collect();
/// let b: Vec<_> = ArrivalProcess::new(7, 1000.0).take(3).collect();
/// assert_eq!(a, b); // same seed, same schedule
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    rng: SplitMix64,
    /// Mean inter-arrival gap, nanoseconds.
    mean_gap_ns: f64,
    /// Running clock, nanoseconds (float so rounding never accumulates).
    clock_ns: f64,
}

impl ArrivalProcess {
    /// Creates a Poisson process emitting `rate_per_s` arrivals per
    /// simulated second on average, seeded like every other deterministic
    /// stream in this crate.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_s` is positive and finite; use
    /// [`try_new`](ArrivalProcess::try_new) to handle untrusted rates.
    pub fn new(seed: u64, rate_per_s: f64) -> Self {
        Self::try_new(seed, rate_per_s).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: a NaN, infinite, zero, or negative rate is a
    /// typed configuration error instead of a degenerate stream.
    ///
    /// # Errors
    ///
    /// Returns [`ArrivalRateError`] unless `rate_per_s` is positive and
    /// finite.
    pub fn try_new(seed: u64, rate_per_s: f64) -> Result<Self, ArrivalRateError> {
        if !(rate_per_s.is_finite() && rate_per_s > 0.0) {
            return Err(ArrivalRateError { rate_per_s });
        }
        Ok(ArrivalProcess {
            rng: SplitMix64::new(seed),
            mean_gap_ns: 1e9 / rate_per_s,
            clock_ns: 0.0,
        })
    }
}

/// A Zipfian popularity distribution over `n` ranks (rank 0 is the most
/// popular; rank `r` has weight `1 / (r + 1)^skew`). This is the seeded
/// file-popularity generator behind the serve binary's `--skew` flag:
/// draws come from the caller's [`SplitMix64`] stream, so a fixed seed
/// gives a byte-identical popularity schedule. `skew = 0` degenerates to
/// uniform — the serving layer keeps using its historical
/// `next_below`-based pick there so pre-skew runs stay byte-identical.
///
/// ```
/// use morpheus_simcore::{SplitMix64, Zipfian};
///
/// let z = Zipfian::new(8, 1.1);
/// let mut rng = SplitMix64::new(7);
/// let first = z.sample(&mut rng);
/// assert!(first < 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipfian {
    /// Normalized cumulative weights; `cum[r]` is P(rank <= r).
    cum: Vec<f64>,
}

impl Zipfian {
    /// Builds the distribution over `n` ranks with exponent `skew`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or `skew` is negative or non-finite
    /// (config bugs, not runtime outcomes).
    pub fn new(n: usize, skew: f64) -> Self {
        assert!(n > 0, "zipfian needs at least one rank");
        assert!(
            skew.is_finite() && skew >= 0.0,
            "zipfian skew must be finite and non-negative, got {skew}"
        );
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 1..=n as u64 {
            total += 1.0 / (r as f64).powf(skew);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipfian { cum }
    }

    /// Maps a uniform draw `u` in `[0, 1)` to a rank.
    pub fn index_of(&self, u: f64) -> usize {
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }

    /// Draws a rank from `rng` (one `next_f64` per sample, so the stream
    /// position matches one uniform pick).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        self.index_of(rng.next_f64())
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cum.len()
    }
}

impl Iterator for ArrivalProcess {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        // Inverse-CDF exponential gap; `1 - u` keeps ln's argument in
        // (0, 1] since next_f64 yields [0, 1).
        let u = self.rng.next_f64();
        self.clock_ns += -(1.0 - u).ln() * self.mean_gap_ns;
        Some(SimTime::from_nanos(self.clock_ns as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a: Vec<SimTime> = ArrivalProcess::new(42, 5000.0).take(1000).collect();
        let b: Vec<SimTime> = ArrivalProcess::new(42, 5000.0).take(1000).collect();
        assert_eq!(a, b);
        let c: Vec<SimTime> = ArrivalProcess::new(43, 5000.0).take(1000).collect();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut prev = SimTime::ZERO;
        for t in ArrivalProcess::new(9, 100_000.0).take(10_000) {
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn mean_rate_is_close_to_target() {
        let n = 50_000usize;
        let last = ArrivalProcess::new(1, 10_000.0).take(n).last().unwrap();
        let measured = n as f64 / last.as_secs_f64();
        assert!(
            (measured - 10_000.0).abs() / 10_000.0 < 0.05,
            "measured rate {measured} too far from 10000"
        );
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::new(0, 0.0);
    }

    #[test]
    fn try_new_rejects_zero_and_negative_rates() {
        for bad in [0.0, -1.0, -1e300] {
            assert_eq!(
                ArrivalProcess::try_new(1, bad).expect_err("degenerate rate"),
                ArrivalRateError { rate_per_s: bad }
            );
        }
    }

    #[test]
    fn try_new_rejects_non_finite_rates() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ArrivalProcess::try_new(1, bad).expect_err("non-finite rate");
            assert!(!err.rate_per_s.is_finite());
            assert!(err.to_string().contains("positive and finite"));
        }
    }

    #[test]
    fn try_new_matches_new_for_valid_rates() {
        let a: Vec<SimTime> = ArrivalProcess::try_new(5, 2000.0)
            .expect("valid")
            .take(100)
            .collect();
        let b: Vec<SimTime> = ArrivalProcess::new(5, 2000.0).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zipfian_is_deterministic_and_in_range() {
        let z = Zipfian::new(16, 1.1);
        let draw = |seed| {
            let mut rng = SplitMix64::new(seed);
            (0..1000).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(42);
        assert_eq!(a, draw(42));
        assert_ne!(a, draw(43));
        assert!(a.iter().all(|&r| r < 16));
    }

    #[test]
    fn zipfian_popularity_is_monotone_in_rank() {
        let z = Zipfian::new(8, 1.2);
        let mut rng = SplitMix64::new(9);
        let mut counts = [0u32; 8];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for w in counts.windows(2) {
            // Allow sampling noise on the flat tail, but the head must
            // clearly dominate.
            assert!(
                w[0] as f64 >= w[1] as f64 * 0.8,
                "rank popularity should not increase: {counts:?}"
            );
        }
        assert!(counts[0] > counts[7] * 4, "skew 1.2 concentrates the head");
    }

    #[test]
    fn zipfian_skew_zero_is_uniform() {
        let z = Zipfian::new(4, 0.0);
        let mut rng = SplitMix64::new(6);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }
}
