//! The parallel suite driver's contract: `--jobs N` must not change a
//! single output byte, only wall-clock time. These tests run the real
//! figure binaries (the exact artifacts `run_all` launches) sequentially
//! and fanned out, and compare entire stdout captures.

use std::process::{Command, Output};

fn run(bin: &str, extra: &[&str]) -> Output {
    let out = Command::new(bin)
        .args(["--scale", "8192", "--seed", "42"])
        .args(extra)
        .env_remove("MORPHEUS_JOBS")
        .output()
        .expect("launch figure binary");
    assert!(
        out.status.success(),
        "{bin} {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn assert_jobs_invariant(bin: &str) {
    let seq = run(bin, &["--jobs", "1"]);
    let par = run(bin, &["--jobs", "4"]);
    assert!(
        seq.stdout == par.stdout,
        "{bin}: parallel stdout differs from sequential\n--- jobs=1 ---\n{}\n--- jobs=4 ---\n{}",
        String::from_utf8_lossy(&seq.stdout),
        String::from_utf8_lossy(&par.stdout)
    );
    assert!(!seq.stdout.is_empty(), "{bin} printed nothing");
}

#[test]
fn fig2_output_is_jobs_invariant() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig2"));
}

#[test]
fn fig8_output_is_jobs_invariant() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig8"));
}

#[test]
fn table1_output_is_jobs_invariant() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_table1"));
}

#[test]
fn env_var_sets_default_jobs() {
    // MORPHEUS_JOBS is the deploy-side knob: same output, no flag needed.
    let seq = run(env!("CARGO_BIN_EXE_table1"), &["--jobs", "1"]);
    let out = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--scale", "8192", "--seed", "42"])
        .env("MORPHEUS_JOBS", "4")
        .output()
        .expect("launch table1");
    assert!(out.status.success());
    assert_eq!(seq.stdout, out.stdout);
}

#[test]
fn unknown_flag_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig2"))
        .args(["--sacle", "8192"])
        .output()
        .expect("launch fig2");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag"), "stderr: {err}");
}

#[test]
fn malformed_value_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig2"))
        .args(["--jobs", "zero"])
        .output()
        .expect("launch fig2");
    assert_eq!(out.status.code(), Some(2));
}
