//! **Morpheus**: creating application objects efficiently for heterogeneous
//! computing — a full reproduction of the ISCA 2016 system.
//!
//! This crate is the paper's contribution layered over the substrate crates:
//!
//! * the **programming model** — [`StorageApp`], the device library
//!   ([`DeviceCtx`] with `ms_memcpy`, work charging, D-SRAM limits), and the
//!   flagship [`DeserializeApp`] (§V);
//! * the **Morpheus-SSD firmware** — [`MorpheusSsd`] executes StorageApps
//!   on the drive's embedded cores behind the four NVMe extension commands
//!   (§IV), pipelining flash page reads with in-SSD parsing;
//! * **NVMe-P2P** — mapping GPU memory into a PCIe BAR so MREAD results DMA
//!   straight into the accelerator (§IV-C);
//! * the **full system** — [`System`] composes host CPU/OS/memory, the
//!   Morpheus-SSD, the GPU, and the PCIe fabric, and executes applications
//!   under three modes ([`Mode::Conventional`], [`Mode::Morpheus`],
//!   [`Mode::MorpheusP2P`]), producing the [`RunReport`]s every figure of
//!   the paper is regenerated from;
//! * **open-loop serving** — [`System::serve`] pushes a seeded arrival
//!   stream through admission, same-app batching, and per-tenant NVMe
//!   queues to find each mode's latency-vs-RPS knee ([`ServeConfig`],
//!   [`ServeReport`]);
//! * the **object cache** — a tiered deserialized-object cache in
//!   controller DRAM with a host-memory spill tier
//!   ([`System::set_object_cache`], [`CacheConfig`], [`ObjectCache`]):
//!   under Zipfian serve traffic a hit skips flash, parsing, and the
//!   embedded cores, paying only PCIe delivery (`docs/CACHE.md`);
//! * **windowed telemetry + SLO engine** — sim-time sampling of the whole
//!   serving plane at a fixed window with burn-rate / error-budget
//!   evaluation ([`ServeConfig::telemetry`],
//!   [`System::set_telemetry_window`],
//!   [`TelemetryConfig`], [`TelemetryReport`], [`SloSpec`] —
//!   `docs/TELEMETRY.md`);
//! * the **fleet** — N Morpheus-SSDs behind the switch fabric with a
//!   seeded-deterministic placement layer (round-robin / hash-by-file /
//!   capacity-aware), tenant-aware routing, and fault-aware rebalancing
//!   that drains killed devices onto healthy peers ([`Fleet`],
//!   [`FleetConfig`], [`PlacementPolicy`], [`FleetReport`] —
//!   `docs/FLEET.md`).
//!
//! Deserialization is functionally real end to end: bytes live in simulated
//! flash behind a real FTL, StorageApps parse them with the same parser the
//! host baseline uses, and all three modes must produce bit-identical
//! application objects.
//!
//! # Example
//!
//! ```
//! use morpheus::{AppSpec, Mode, ParallelModel, System, SystemParams};
//! use morpheus_format::{FieldKind, Schema};
//!
//! let mut sys = System::new(SystemParams::paper_testbed());
//! sys.create_input_file("edges.txt", b"0 1\n1 2\n2 0\n").unwrap();
//! let spec = AppSpec::cpu_app("demo", "edges.txt",
//!     Schema::new(vec![FieldKind::U32, FieldKind::U32]), 2, 50.0);
//! let conv = sys.run(&spec, Mode::Conventional).unwrap();
//! let morp = sys.run(&spec, Mode::Morpheus).unwrap();
//! // Both modes deserialize the same objects, bit for bit.
//! assert_eq!(conv.report.checksum, morp.report.checksum);
//! assert_eq!(conv.report.records, 3);
//! // (At realistic input sizes the Morpheus run is also faster — see the
//! // fig8 benchmark; a three-line file is dominated by fixed costs.)
//! ```

#![deny(missing_docs)]

mod apps;
mod cache;
mod concurrent;
mod control;
mod deser_memo;
mod exec;
mod faults;
mod firmware;
mod fleet;
mod params;
mod report;
mod runtime;
mod serialize;
mod serve;
mod storage_app;
mod system;

pub use apps::{BinaryDeserializeApp, SerializeApp};
pub use cache::{
    format_digest, CacheConfig, CacheEvent, CacheHit, CachePolicy, CacheStats, CacheTier,
    ObjectCache,
};
pub use concurrent::{ConcurrentReport, TenantReport};
pub use control::{
    ControlConfig, ControlPlan, ControlReport, DeviceControl, DeviceState, HealPolicy, Health,
    IllegalTransition, Lifecycle, RollingUpdate, Transition, TransitionCounts, DEFAULT_DRAIN,
    DEFAULT_REBOOT, DEFAULT_UPDATE,
};
pub use exec::{AppSpec, GpuKernelPerRecord, InputFormat, ParallelModel, RunError, RunOutcome};
pub use firmware::{MorpheusError, MorpheusSsd, MreadOutcome, MwriteOutcome};
pub use fleet::{
    aggregate_reports, DeviceDown, DeviceKill, Fleet, FleetConfig, FleetConfigError, FleetReport,
    PlacementPolicy,
};
pub use params::{CoRunner, StorageKind, SystemParams};
pub use report::{mb_per_sec, Mode, Phases, RunReport, MB};
pub use runtime::{ms_stream_create, CommandPlan, MsStream};
pub use serialize::SerializeReport;
pub use serve::{ServeConfig, ServePolicy, ServeReport};
pub use storage_app::{AppError, DeserializeApp, DeviceCtx, StorageApp};
pub use system::{ChunkIo, System};

// Re-export the telemetry vocabulary used in public signatures so bench
// code can configure serving telemetry without naming the simcore crate.
pub use morpheus_simcore::{
    SloOutcome, SloSpec, TelemetryConfig, TelemetryReport, TelemetrySampler,
};
