//! A small ordered metric bag used by reports throughout the workspace.

use std::collections::BTreeMap;
use std::fmt;

/// Named floating-point metrics with deterministic (sorted) iteration order.
///
/// # Example
///
/// ```
/// use morpheus_simcore::Metrics;
///
/// let mut m = Metrics::new();
/// m.add("bytes", 4096.0);
/// m.add("bytes", 4096.0);
/// assert_eq!(m.get("bytes"), 8192.0);
/// assert_eq!(m.get("missing"), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    values: BTreeMap<String, f64>,
}

impl Metrics {
    /// Creates an empty metric bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the named metric (creating it at zero first).
    pub fn add(&mut self, name: &str, v: f64) {
        *self.values.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Sets the named metric, replacing any previous value.
    pub fn set(&mut self, name: &str, v: f64) {
        self.values.insert(name.to_string(), v);
    }

    /// Increments the named metric by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1.0);
    }

    /// Reads a metric; missing metrics read as zero.
    pub fn get(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or(0.0)
    }

    /// True if the metric has been written.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Iterates metrics in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another bag into this one, summing shared names.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Number of distinct metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no metric has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Metrics {
    type Item = (&'a String, &'a f64);
    type IntoIter = std::collections::btree_map::Iter<'a, String, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut m = Metrics::new();
        m.add("x", 1.5);
        m.add("x", 2.5);
        assert_eq!(m.get("x"), 4.0);
    }

    #[test]
    fn set_replaces() {
        let mut m = Metrics::new();
        m.add("x", 1.0);
        m.set("x", 9.0);
        assert_eq!(m.get("x"), 9.0);
    }

    #[test]
    fn merge_sums_shared_names() {
        let mut a = Metrics::new();
        a.add("x", 1.0);
        let mut b = Metrics::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Metrics::new();
        m.inc("zeta");
        m.inc("alpha");
        let names: Vec<_> = m.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = Metrics::new();
        m.set("a", 1.0);
        assert_eq!(m.to_string(), "a: 1\n");
    }
}
