//! k-means clustering over integer-coordinate points.

use crate::kernels::KernelResult;
use crate::Digest;
use morpheus_format::ParsedColumns;

/// Lloyd's algorithm: `k` clusters, `iters` iterations, seeded from the
/// first `k` points. The first column is the point id; the rest are
/// coordinates.
pub fn kmeans(objects: &ParsedColumns, k: usize, iters: u32) -> KernelResult {
    let dims = objects.columns.len() - 1;
    let n = objects.records as usize;
    let coords: Vec<&[i64]> = objects.columns[1..]
        .iter()
        .map(|c| c.as_ints().expect("point coordinates are integers"))
        .collect();
    let k = k.min(n.max(1));
    if n == 0 {
        return KernelResult {
            digest: Digest::new().value(),
            summary: "kmeans: no points".into(),
        };
    }
    let mut centroids = vec![0.0f64; k * dims];
    for c in 0..k {
        for (d, col) in coords.iter().enumerate() {
            centroids[c * dims + d] = col[c] as f64;
        }
    }
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        // Assignment step.
        for (i, a) in assign.iter_mut().enumerate() {
            let mut best = f64::INFINITY;
            for c in 0..k {
                let mut dist = 0.0;
                for (d, col) in coords.iter().enumerate() {
                    let delta = col[i] as f64 - centroids[c * dims + d];
                    dist += delta * delta;
                }
                if dist < best {
                    best = dist;
                    *a = c;
                }
            }
        }
        // Update step.
        let mut sums = vec![0.0f64; k * dims];
        let mut counts = vec![0u64; k];
        for (i, a) in assign.iter().enumerate() {
            counts[*a] += 1;
            for (d, col) in coords.iter().enumerate() {
                sums[*a * dims + d] += col[i] as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            for d in 0..dims {
                centroids[c * dims + d] = sums[c * dims + d] / counts[c] as f64;
            }
        }
    }
    let mut digest = Digest::new();
    let mut inertia = 0.0f64;
    for (i, a) in assign.iter().enumerate() {
        for (d, col) in coords.iter().enumerate() {
            let delta = col[i] as f64 - centroids[*a * dims + d];
            inertia += delta * delta;
        }
    }
    for c in &centroids {
        digest.mix_f64(*c);
    }
    digest.mix_f64(inertia);
    KernelResult {
        digest: digest.value(),
        summary: format!("kmeans: {n} points, k={k}, inertia {inertia:.1}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    fn points(text: &[u8]) -> ParsedColumns {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::I32, FieldKind::I32]);
        parse_buffer(text, &schema).unwrap().0
    }

    #[test]
    fn two_well_separated_clusters_have_low_inertia() {
        let p = points(b"0 0 0\n1 1 1\n2 100 100\n3 101 101\n");
        let r = kmeans(&p, 2, 10);
        let inertia: f64 = r.summary.split("inertia ").nth(1).unwrap().parse().unwrap();
        assert!(inertia < 5.0, "{}", r.summary);
    }

    #[test]
    fn deterministic() {
        let p = points(b"0 1 2\n1 5 4\n2 9 0\n3 2 2\n");
        assert_eq!(kmeans(&p, 2, 5).digest, kmeans(&p, 2, 5).digest);
    }

    #[test]
    fn k_capped_to_point_count() {
        let p = points(b"0 1 1\n");
        let r = kmeans(&p, 8, 3);
        assert!(r.summary.contains("k=1"));
    }

    #[test]
    fn empty_input_handled() {
        let p = points(b"");
        assert!(kmeans(&p, 4, 3).summary.contains("no points"));
    }
}
