//! Record schemas and the columnar objects deserialization produces.

use crate::{ParseError, ParseErrorKind, ParseWork, TextScanner};

/// Binary type of one field in a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// 32-bit unsigned integer.
    U32,
    /// 32-bit signed integer.
    I32,
    /// 64-bit unsigned integer.
    U64,
    /// 64-bit signed integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl FieldKind {
    /// Bytes of the binary representation.
    pub fn byte_width(self) -> u64 {
        match self {
            FieldKind::U32 | FieldKind::I32 | FieldKind::F32 => 4,
            FieldKind::U64 | FieldKind::I64 | FieldKind::F64 => 8,
        }
    }

    /// True for the float kinds (which hit the soft-float path on the
    /// embedded cores).
    pub fn is_float(self) -> bool {
        matches!(self, FieldKind::F32 | FieldKind::F64)
    }
}

/// The field layout of one record (one text line / tuple).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<FieldKind>,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty.
    pub fn new(fields: Vec<FieldKind>) -> Self {
        assert!(!fields.is_empty(), "a schema needs at least one field");
        Schema { fields }
    }

    /// The record's fields.
    pub fn fields(&self) -> &[FieldKind] {
        &self.fields
    }

    /// Binary bytes per record.
    pub fn record_bytes(&self) -> u64 {
        self.fields.iter().map(|f| f.byte_width()).sum()
    }

    /// Fraction of fields that are floats.
    pub fn float_fraction(&self) -> f64 {
        self.fields.iter().filter(|f| f.is_float()).count() as f64 / self.fields.len() as f64
    }
}

/// One parsed column (integers are widened to `i64`, floats to `f64`; the
/// declared [`FieldKind`] still governs the binary byte width).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer-kind column.
    Ints(Vec<i64>),
    /// Float-kind column.
    Floats(Vec<f64>),
}

impl Column {
    /// The integer data, if this is an integer column.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            Column::Ints(v) => Some(v),
            Column::Floats(_) => None,
        }
    }

    /// The float data, if this is a float column.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            Column::Floats(v) => Some(v),
            Column::Ints(_) => None,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Ints(v) => v.len(),
            Column::Floats(v) => v.len(),
        }
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The application objects a deserialization produced: one column per
/// schema field, in field order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedColumns {
    /// The schema the data was parsed against.
    pub schema: Schema,
    /// One column per field.
    pub columns: Vec<Column>,
    /// Records parsed.
    pub records: u64,
}

impl ParsedColumns {
    /// Creates the empty result for a schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| {
                if f.is_float() {
                    Column::Floats(Vec::new())
                } else {
                    Column::Ints(Vec::new())
                }
            })
            .collect();
        ParsedColumns {
            schema,
            columns,
            records: 0,
        }
    }

    /// Size of the binary object representation (what the Morpheus-SSD
    /// ships over the interconnect instead of text).
    pub fn binary_bytes(&self) -> u64 {
        self.records * self.schema.record_bytes()
    }

    /// An order-sensitive checksum used by the cross-mode equivalence
    /// tests (conventional, Morpheus, and P2P must produce identical
    /// objects).
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        mix(self.records);
        for c in &self.columns {
            match c {
                Column::Ints(v) => {
                    for x in v {
                        mix(*x as u64);
                    }
                }
                Column::Floats(v) => {
                    for x in v {
                        mix(x.to_bits());
                    }
                }
            }
        }
        h
    }
}

impl ParsedColumns {
    /// Narrows every value to its declared field width (u32 truncation,
    /// f32 rounding, ...), exactly what storing into a typed C array does.
    ///
    /// Both execution paths apply this, so the conventional host parse and
    /// the Morpheus binary-object path produce bit-identical objects.
    pub fn canonicalize(&mut self) {
        for (kind, col) in self.schema.fields().iter().zip(self.columns.iter_mut()) {
            match (col, kind) {
                (Column::Ints(v), FieldKind::U32) => {
                    for x in v {
                        *x = (*x as u32) as i64;
                    }
                }
                (Column::Ints(v), FieldKind::I32) => {
                    for x in v {
                        *x = (*x as i32) as i64;
                    }
                }
                (Column::Ints(v), FieldKind::U64) => {
                    for x in v {
                        *x = (*x as u64) as i64;
                    }
                }
                (Column::Floats(v), FieldKind::F32) => {
                    for x in v {
                        *x = (*x as f32) as f64;
                    }
                }
                _ => {}
            }
        }
    }

    /// Encodes records `[from, to)` into little-endian binary at the
    /// declared field widths (the representation StorageApps DMA to the
    /// host instead of text).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the parsed record count.
    pub fn encode_rows(&self, from: u64, to: u64, out: &mut Vec<u8>) {
        assert!(from <= to && to <= self.records, "row range out of bounds");
        for r in from..to {
            for (kind, col) in self.schema.fields().iter().zip(&self.columns) {
                match col {
                    Column::Ints(v) => {
                        let x = v[r as usize];
                        match kind {
                            FieldKind::U32 => out.extend_from_slice(&(x as u32).to_le_bytes()),
                            FieldKind::I32 => out.extend_from_slice(&(x as i32).to_le_bytes()),
                            FieldKind::U64 => out.extend_from_slice(&(x as u64).to_le_bytes()),
                            FieldKind::I64 => out.extend_from_slice(&x.to_le_bytes()),
                            _ => unreachable!("int column with float kind"),
                        }
                    }
                    Column::Floats(v) => {
                        let x = v[r as usize];
                        match kind {
                            FieldKind::F32 => out.extend_from_slice(&(x as f32).to_le_bytes()),
                            FieldKind::F64 => out.extend_from_slice(&x.to_le_bytes()),
                            _ => unreachable!("float column with int kind"),
                        }
                    }
                }
            }
        }
    }

    /// Decodes binary records produced by [`encode_rows`].
    ///
    /// [`encode_rows`]: ParsedColumns::encode_rows
    ///
    /// # Errors
    ///
    /// Fails with [`ParseErrorKind::UnexpectedEof`] if `bytes` is not a
    /// whole number of records.
    pub fn decode(schema: Schema, bytes: &[u8]) -> Result<ParsedColumns, ParseError> {
        let rec = schema.record_bytes() as usize;
        if !bytes.len().is_multiple_of(rec) {
            return Err(ParseError::new(bytes.len(), ParseErrorKind::UnexpectedEof));
        }
        let mut out = ParsedColumns::empty(schema);
        let kinds = out.schema.fields().to_vec();
        let mut pos = 0;
        while pos < bytes.len() {
            for (i, kind) in kinds.iter().enumerate() {
                let w = kind.byte_width() as usize;
                let raw = &bytes[pos..pos + w];
                match &mut out.columns[i] {
                    Column::Ints(v) => v.push(match kind {
                        FieldKind::U32 => u32::from_le_bytes(raw.try_into().unwrap()) as i64,
                        FieldKind::I32 => i32::from_le_bytes(raw.try_into().unwrap()) as i64,
                        FieldKind::U64 => u64::from_le_bytes(raw.try_into().unwrap()) as i64,
                        FieldKind::I64 => i64::from_le_bytes(raw.try_into().unwrap()),
                        _ => unreachable!("int column with float kind"),
                    }),
                    Column::Floats(v) => v.push(match kind {
                        FieldKind::F32 => f32::from_le_bytes(raw.try_into().unwrap()) as f64,
                        FieldKind::F64 => f64::from_le_bytes(raw.try_into().unwrap()),
                        _ => unreachable!("float column with int kind"),
                    }),
                }
                pos += w;
            }
            out.records += 1;
        }
        Ok(out)
    }
}

/// Parses an entire buffer of whitespace/comma-separated records against a
/// schema (the conventional host path, which has the whole file in memory).
///
/// Returns the columns and the work performed.
///
/// # Errors
///
/// Fails on malformed tokens or if the input ends mid-record.
pub fn parse_buffer(
    data: &[u8],
    schema: &Schema,
) -> Result<(ParsedColumns, ParseWork), ParseError> {
    let mut out = ParsedColumns::empty(schema.clone());
    let mut scanner = TextScanner::new(data);
    'records: loop {
        for (i, field) in schema.fields().iter().enumerate() {
            if i == 0 && scanner.at_end() {
                break 'records;
            }
            match (field.is_float(), &mut out.columns[i]) {
                (false, Column::Ints(v)) => v.push(scanner.parse_i64()?),
                (true, Column::Floats(v)) => v.push(scanner.parse_f64()?),
                _ => unreachable!("columns built from the same schema"),
            }
        }
        out.records += 1;
    }
    Ok((out, scanner.work()))
}

/// Ensures the input did not end in the middle of a record; exposed for the
/// streaming parser.
pub(crate) fn incomplete_record_error(offset: usize) -> ParseError {
    ParseError::new(offset, ParseErrorKind::UnexpectedEof)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::U32])
    }

    #[test]
    fn schema_widths() {
        let s = Schema::new(vec![FieldKind::U32, FieldKind::F64, FieldKind::I32]);
        assert_eq!(s.record_bytes(), 16);
        assert!((s.float_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parse_buffer_builds_columns() {
        let (p, w) = parse_buffer(b"0 1\n2 3\n4 5\n", &edge_schema()).unwrap();
        assert_eq!(p.records, 3);
        assert_eq!(p.columns[0].as_ints().unwrap(), &[0, 2, 4]);
        assert_eq!(p.columns[1].as_ints().unwrap(), &[1, 3, 5]);
        assert_eq!(p.binary_bytes(), 3 * 8);
        assert_eq!(w.int_tokens, 6);
        assert_eq!(w.bytes_scanned, 12);
    }

    #[test]
    fn mixed_schema_parses_floats() {
        let s = Schema::new(vec![FieldKind::U32, FieldKind::U32, FieldKind::F64]);
        let (p, w) = parse_buffer(b"1 2 0.5\n3 4 -1.25\n", &s).unwrap();
        assert_eq!(p.columns[2].as_floats().unwrap(), &[0.5, -1.25]);
        assert_eq!(w.float_tokens, 2);
    }

    #[test]
    fn empty_input_is_zero_records() {
        let (p, _) = parse_buffer(b"  \n ", &edge_schema()).unwrap();
        assert_eq!(p.records, 0);
        assert_eq!(p.binary_bytes(), 0);
    }

    #[test]
    fn truncated_record_fails() {
        let err = parse_buffer(b"0 1\n2", &edge_schema()).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn checksum_differs_on_different_data() {
        let (a, _) = parse_buffer(b"0 1\n", &edge_schema()).unwrap();
        let (b, _) = parse_buffer(b"0 2\n", &edge_schema()).unwrap();
        assert_ne!(a.checksum(), b.checksum());
        let (a2, _) = parse_buffer(b"0 1\n", &edge_schema()).unwrap();
        assert_eq!(a.checksum(), a2.checksum());
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn empty_schema_rejected() {
        let _ = Schema::new(vec![]);
    }
}

#[cfg(test)]
mod binary_codec_tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips_after_canonicalize() {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::I32, FieldKind::F32]);
        let (mut p, _) = parse_buffer(b"1 -2 0.5\n4294967295 3 1.25\n", &schema).unwrap();
        p.canonicalize();
        let mut bytes = Vec::new();
        p.encode_rows(0, p.records, &mut bytes);
        assert_eq!(bytes.len() as u64, p.binary_bytes());
        let back = ParsedColumns::decode(schema, &bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.checksum(), p.checksum());
    }

    #[test]
    fn canonicalize_narrows_u32() {
        let schema = Schema::new(vec![FieldKind::U32]);
        let (mut p, _) = parse_buffer(b"4294967296\n", &schema).unwrap();
        p.canonicalize();
        assert_eq!(p.columns[0].as_ints().unwrap(), &[0]);
    }

    #[test]
    fn partial_row_ranges_encode() {
        let schema = Schema::new(vec![FieldKind::U64]);
        let (p, _) = parse_buffer(b"1\n2\n3\n", &schema).unwrap();
        let mut bytes = Vec::new();
        p.encode_rows(1, 3, &mut bytes);
        let back = ParsedColumns::decode(schema, &bytes).unwrap();
        assert_eq!(back.columns[0].as_ints().unwrap(), &[2, 3]);
    }

    #[test]
    fn decode_rejects_ragged_input() {
        let schema = Schema::new(vec![FieldKind::U64]);
        assert!(ParsedColumns::decode(schema, &[0u8; 7]).is_err());
    }
}
