//! Cross-run record/replay memoization of deserialization work.
//!
//! A simulated deserialization spends most of its *wall-clock* time doing
//! functional work whose result is fully determined by the input bytes:
//! running the parser (host path) or the StorageApp chunk loop (device
//! path). Design-space sweeps and benchmark suites re-run the same inputs
//! under many configurations, so this module memoizes that functional work
//! globally (process-wide) and replays it on later runs, while every
//! *timing* decision — flash reads, core grants, DMA, spans — still
//! executes live against the run's own timelines. Replayed runs are
//! byte-identical to live runs by construction: the recorded values
//! (per-page instruction counts, parse-work deltas, output bytes) are pure
//! functions of the memo key.
//!
//! Keys fold every input that determines the recorded values: the file's
//! content digest, the app's schema/format, the chunk geometry, and (for
//! the device path) the SSD config and embedded-core cost model. Fault
//! injection perturbs functional behavior, so keys are only issued on
//! fault-free runs. Set `MORPHEUS_DESER_MEMO=0` to disable replay (used
//! for A/B timing comparisons).

use crate::exec::AppSpec;
use crate::system::ChunkIo;
use crate::System;
use morpheus_format::{ParseWork, ParsedColumns};
use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::sync::{Arc, Mutex, OnceLock};

/// A memo key: (content digest, configuration/geometry digest). Two
/// independent 64-bit streams keep accidental collisions out of reach of
/// any realistic sweep; an actual collision is caught by the replay-side
/// geometry asserts.
pub(crate) type MemoKey = (u64, u64);

/// Streaming FNV-style digest, folding 8-byte lanes at a time.
pub(crate) struct FnvStream(u64);

const FNV_PRIME: u64 = 0x100_0000_01b3;

impl FnvStream {
    pub(crate) fn new(seed: u64) -> Self {
        FnvStream(seed)
    }

    /// Folds a byte slice. Lane alignment is part of the digest, so
    /// callers streaming one logical buffer through several calls must
    /// split only on 8-byte boundaries (file extents are LBA-sized, so
    /// per-extent slices satisfy this).
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        let mut chunks = b.chunks_exact(8);
        for w in &mut chunks {
            let v = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
        }
        for &byte in chunks.remainder() {
            self.0 = (self.0 ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Write for FnvStream {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.bytes(s.as_bytes());
        Ok(())
    }
}

/// One recorded MREAD: its wire geometry (re-verified at replay), the
/// embedded-core instruction count of each page's parse step, and the
/// output bytes staged for DMA.
#[derive(Debug)]
pub(crate) struct CmdRecord {
    pub slba: u64,
    pub blocks: u64,
    pub valid_bytes: u64,
    pub page_instr: Vec<f64>,
    pub output: Arc<[u8]>,
}

/// A full recorded MINIT→MREAD*→MDEINIT instance lifecycle.
#[derive(Debug)]
pub(crate) struct DeviceReplay {
    pub cmds: Vec<CmdRecord>,
    /// MDEINIT instruction count (includes command dispatch, as charged).
    pub finish_instr: f64,
    pub retval: i32,
    pub host_output: Arc<[u8]>,
}

/// A recorded host-side parse of one file: the per-chunk parse-work
/// deltas (priced live against the run's own cost model) and the final
/// canonicalized objects.
#[derive(Debug)]
pub(crate) struct HostReplay {
    pub per_chunk: Vec<ParseWork>,
    pub objects: ParsedColumns,
}

/// Entry cap per table: a sweep touches tens of distinct inputs, and the
/// host table holds whole object columns, so the caps bound memory rather
/// than implement an eviction policy (insertion simply stops).
const MAX_ENTRIES: usize = 256;

fn device_table() -> &'static Mutex<HashMap<MemoKey, Arc<DeviceReplay>>> {
    static T: OnceLock<Mutex<HashMap<MemoKey, Arc<DeviceReplay>>>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(HashMap::new()))
}

fn host_table() -> &'static Mutex<HashMap<MemoKey, Arc<HostReplay>>> {
    static T: OnceLock<Mutex<HashMap<MemoKey, Arc<HostReplay>>>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Decoded-object prefabs for the device path: the `ParsedColumns` a full
/// MINIT→MREAD*→MDEINIT lifecycle decodes from its assembled byte stream.
/// A pure function of the device memo key (fault-free lifecycles only), so
/// later identical lifecycles can share the decoded columns by `Arc` and
/// skip the byte-stream assembly and final decode entirely.
fn objects_table() -> &'static Mutex<HashMap<MemoKey, Arc<ParsedColumns>>> {
    static T: OnceLock<Mutex<HashMap<MemoKey, Arc<ParsedColumns>>>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(HashMap::new()))
}

/// True unless `MORPHEUS_DESER_MEMO=0` (or `off`) is set.
pub(crate) fn enabled() -> bool {
    static E: OnceLock<bool> = OnceLock::new();
    *E.get_or_init(|| {
        !matches!(
            std::env::var("MORPHEUS_DESER_MEMO").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

pub(crate) fn device_get(key: MemoKey) -> Option<Arc<DeviceReplay>> {
    device_table().lock().expect("memo lock").get(&key).cloned()
}

pub(crate) fn device_put(key: MemoKey, rec: Arc<DeviceReplay>) {
    let mut t = device_table().lock().expect("memo lock");
    if t.len() < MAX_ENTRIES || t.contains_key(&key) {
        t.insert(key, rec);
    }
}

pub(crate) fn objects_get(key: MemoKey) -> Option<Arc<ParsedColumns>> {
    objects_table()
        .lock()
        .expect("memo lock")
        .get(&key)
        .cloned()
}

pub(crate) fn objects_put(key: MemoKey, rec: Arc<ParsedColumns>) {
    let mut t = objects_table().lock().expect("memo lock");
    if t.len() < MAX_ENTRIES || t.contains_key(&key) {
        t.insert(key, rec);
    }
}

pub(crate) fn host_get(key: MemoKey) -> Option<Arc<HostReplay>> {
    host_table().lock().expect("memo lock").get(&key).cloned()
}

pub(crate) fn host_put(key: MemoKey, rec: Arc<HostReplay>) {
    let mut t = host_table().lock().expect("memo lock");
    if t.len() < MAX_ENTRIES || t.contains_key(&key) {
        t.insert(key, rec);
    }
}

impl System {
    /// Digest of a staged file's logical byte stream, cached per name.
    /// The cache is dropped by [`System::invalidate_cached_objects`], which
    /// every file-mutation path already calls. Returns `None` when the
    /// file cannot be read back (no memoization, never an error).
    pub(crate) fn content_digest(&mut self, name: &str) -> Option<u64> {
        if let Some(&d) = self.deser_digests.get(name) {
            return Some(d);
        }
        let meta = self.fs.open(name).ok()?.clone();
        let mut s = FnvStream::new(0xcbf2_9ce4_8422_2325);
        let mut remaining = meta.len;
        for e in &meta.extents {
            if remaining == 0 {
                break;
            }
            let bytes = self.mssd.dev.read_range_untimed(e.slba, e.blocks).ok()?;
            let take = remaining.min(e.blocks * morpheus_nvme::LBA_BYTES) as usize;
            s.bytes(&bytes[..take]);
            remaining -= take as u64;
        }
        let d = s.finish();
        self.deser_digests.insert(name.to_string(), d);
        Some(d)
    }

    /// Memo key for a device-side (StorageApp) deserialization of `spec`
    /// over `chunks`, or `None` when memoization is off or a fault plan is
    /// armed (injected faults perturb functional behavior).
    pub(crate) fn device_memo_key(
        &mut self,
        spec: &AppSpec,
        chunks: &[ChunkIo],
    ) -> Option<MemoKey> {
        if self.faults.is_some() || !enabled() {
            return None;
        }
        let content = self.content_digest(&spec.input)?;
        let mut s = FnvStream::new(0x84222325_cbf29ce4);
        // Everything that shapes per-page instruction counts and outputs:
        // the app (schema + encoding + name), the embedded-core cost
        // table, and the drive geometry the page loop derives from.
        let _ = write!(
            s,
            "{:?}|{:?}|{}|{:?}|{:?}",
            spec.schema,
            spec.input_format,
            spec.name,
            self.mssd.device_cost(),
            self.mssd.dev.config(),
        );
        s.u64(self.mssd.dev.page_bytes());
        s.u64(chunks.len() as u64);
        for c in chunks {
            s.u64(c.slba);
            s.u64(c.blocks);
            s.u64(c.valid_bytes);
        }
        Some((content, s.finish()))
    }

    /// Memo key for a host-side parse of `spec` over `chunks` (the
    /// recorded parse-work deltas are platform-independent, so host cost
    /// tables stay out of the key), or `None` when memoization is off or
    /// a fault plan is armed.
    pub(crate) fn host_memo_key(&mut self, spec: &AppSpec, chunks: &[ChunkIo]) -> Option<MemoKey> {
        if self.faults.is_some() || !enabled() {
            return None;
        }
        let content = self.content_digest(&spec.input)?;
        let mut s = FnvStream::new(0x9ce48422_2325cbf2);
        let _ = write!(s, "{:?}|{:?}", spec.schema, spec.input_format);
        s.u64(chunks.len() as u64);
        for c in chunks {
            s.u64(c.valid_bytes);
        }
        Some((content, s.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_digest_is_stable_across_aligned_splits() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let mut whole = FnvStream::new(1);
        whole.bytes(&data);
        let mut split = FnvStream::new(1);
        split.bytes(&data[..512]);
        split.bytes(&data[512..]);
        assert_eq!(whole.finish(), split.finish());
    }

    #[test]
    fn digest_distinguishes_close_inputs() {
        let mut a = FnvStream::new(1);
        a.bytes(b"1 2\n3 4\n");
        let mut b = FnvStream::new(1);
        b.bytes(b"1 2\n3 5\n");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tables_cap_but_allow_overwrite() {
        // Overwriting an existing key never counts against the cap.
        let k = (u64::MAX, u64::MAX);
        host_put(
            k,
            Arc::new(HostReplay {
                per_chunk: vec![],
                objects: ParsedColumns::empty(morpheus_format::Schema::new(vec![
                    morpheus_format::FieldKind::U32,
                ])),
            }),
        );
        assert!(host_get(k).is_some());
        host_put(
            k,
            Arc::new(HostReplay {
                per_chunk: vec![ParseWork::default()],
                objects: ParsedColumns::empty(morpheus_format::Schema::new(vec![
                    morpheus_format::FieldKind::U32,
                ])),
            }),
        );
        assert_eq!(host_get(k).unwrap().per_chunk.len(), 1);
    }
}
