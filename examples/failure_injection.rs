//! Failure injection in the storage substrate: bit errors, ECC retries,
//! and wear-induced bad blocks under the FTL.
//!
//! The Morpheus model rides on stock firmware ("without sacrificing
//! performance or guarantees", §IV-B), so the substrate has to survive
//! media misbehaviour. This example exercises those paths through the
//! public API.
//!
//! ```sh
//! cargo run --release --example failure_injection
//! ```

use morpheus_flash::{BlockId, EccModel, FlashArray, FlashGeometry, FlashTiming};
use morpheus_ftl::{Ftl, FtlConfig, FtlError, Lpn};

fn main() {
    // A flaky flash array: 20% of reads need ECC retries and 2% fail
    // uncorrectably (wear is exercised separately below).
    let ecc = EccModel {
        correctable_prob: 0.2,
        correction_retries: 2,
        uncorrectable_prob: 0.02,
        wear_limit: 10_000,
    };
    let flash = FlashArray::with_ecc(FlashGeometry::small(), FlashTiming::default(), ecc, 2024);
    let mut ftl = Ftl::new(flash, FtlConfig::default());
    let cap = ftl.capacity_pages();
    println!("flaky drive: {cap} logical pages, 20% correctable / 2% uncorrectable reads\n");

    // Hammer it: fill, overwrite, and read back everything, several times.
    let mut reads = 0u64;
    let mut recovered = 0u64;
    let mut lost = 0u64;
    for round in 0u8..8 {
        for l in 0..cap {
            ftl.write(Lpn(l), &[round, l as u8]).unwrap();
        }
        for l in 0..cap {
            reads += 1;
            match ftl.read(Lpn(l)) {
                Ok(out) => {
                    assert_eq!(&out.data[..], &[round, l as u8], "silent corruption!");
                    if out.retries > 0 {
                        recovered += 1;
                    }
                }
                Err(FtlError::MediaFailure(..)) => lost += 1,
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
    }
    let stats = ftl.stats();
    println!("after {} reads:", reads);
    println!(
        "  {} recovered through retries, {} lost after all retries",
        recovered, lost
    );
    println!(
        "  ftl: {} host writes, {} gc writes (WA {:.2}), {} gc runs, {} erases",
        stats.host_writes,
        stats.gc_writes,
        stats.write_amplification(),
        stats.gc_runs,
        stats.erases
    );

    // Wear-out: erase one block past its life and watch it retire.
    let mut ftl2 = Ftl::new(
        FlashArray::with_ecc(
            FlashGeometry::small(),
            FlashTiming::default(),
            EccModel {
                wear_limit: 10,
                ..EccModel::perfect()
            },
            7,
        ),
        FtlConfig::default(),
    );
    // Overwrite hot pages until wear starts retiring blocks, then keep
    // going until the drive dies of old age.
    let mut writes = 0u64;
    let mut first_retirement = None;
    loop {
        match ftl2.write(Lpn(writes % 8), &[writes as u8]) {
            Ok(_) => writes += 1,
            Err(FtlError::NoFreeBlocks) => break, // end of life
            Err(e) => panic!("unexpected failure: {e}"),
        }
        if first_retirement.is_none() && ftl2.flash().stats().retired_blocks > 0 {
            first_retirement = Some(writes);
        }
        if writes > 1_000_000 {
            break;
        }
    }
    println!(
        "\nwear-out run: first block retired after {} writes; drive died after {} writes",
        first_retirement.unwrap_or(0),
        writes
    );
    println!(
        "  {} blocks retired, {} erases served over a wear limit of 10",
        ftl2.flash().stats().retired_blocks,
        ftl2.stats().erases
    );
    // Data that survived is still readable right up to the end.
    let probe = Lpn((writes.saturating_sub(1)) % 8);
    let val = ftl2.read(probe).unwrap();
    println!("  last written page still intact: {:?}", &val.data[..1]);
    // Show a raw bad-block rejection at the flash layer.
    let bad = (0..ftl2.flash().geometry().total_blocks())
        .map(BlockId)
        .find(|b| ftl2.flash().is_bad(*b));
    if let Some(b) = bad {
        println!(
            "  block {} is retired and rejects new work at the flash layer",
            b.0
        );
    }
}
