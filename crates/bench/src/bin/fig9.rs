//! Figure 9: normalized power and energy during object deserialization.
//!
//! Paper claims: Morpheus-SSD lowers total system power by **~7 % on
//! average (up to 17 %)** and energy by **~42 %** — the baseline pulls
//! ≈ +10.4 W over the 105 W idle floor, the Morpheus path only ≈ +1.8 W,
//! and it also finishes sooner.

use morpheus_bench::{mean, print_table, run_pair, Harness};
use morpheus_workloads::suite;

fn main() {
    let h = Harness::from_args();
    println!(
        "Figure 9: normalized power and energy during deserialization (scale 1/{})\n",
        h.scale
    );
    let benches = suite();
    let pairs = h.run_suite_parallel(&benches, |bench| run_pair(&h, bench));
    let mut rows = Vec::new();
    let mut power_ratios = Vec::new();
    let mut energy_ratios = Vec::new();
    for (bench, (conv, morp)) in benches.iter().zip(&pairs) {
        let pr = morp.report.deser_power_watts / conv.report.deser_power_watts;
        let er = morp.report.deser_energy_j / conv.report.deser_energy_j;
        power_ratios.push(pr);
        energy_ratios.push(er);
        rows.push(vec![
            bench.name.to_string(),
            format!("{:.1}W", conv.report.deser_power_watts),
            format!("{:.1}W", morp.report.deser_power_watts),
            format!("{pr:.3}"),
            format!("{:.1}J", conv.report.deser_energy_j),
            format!("{:.1}J", morp.report.deser_energy_j),
            format!("{er:.3}"),
        ]);
    }
    print_table(
        &[
            "app",
            "base_power",
            "morph_power",
            "power_ratio",
            "base_energy",
            "morph_energy",
            "energy_ratio",
        ],
        &rows,
    );
    println!();
    println!(
        "average power ratio:  {:.3} (paper: ~0.93, i.e. 7% less power)",
        mean(&power_ratios)
    );
    println!(
        "average energy ratio: {:.3} (paper: ~0.58, i.e. 42% less energy)",
        mean(&energy_ratios)
    );
}
