//! The host-side Morpheus runtime (§V): streams and command plans.
//!
//! §V-A2: "the programming model requires the host application to create a
//! `ms_stream` and pass this stream as an argument of the StorageApp. …
//! `ms_stream_create` interacts with the underlying file system to get
//! permission to access a file and information about the logical block
//! addresses in file layouts." — [`ms_stream_create`] is exactly that
//! call; permission/layout work stays on the host, the SSD never parses a
//! filesystem.
//!
//! §V-B: the compiler replaces a StorageApp call site with runtime calls
//! that issue MINIT, break the stream into MREADs no larger than the NVMe
//! transfer limit, and finish with MDEINIT. [`CommandPlan`] is that lowered
//! sequence, inspectable before execution; the `System` drivers execute an
//! equivalent plan command by command through the real submission queue.

use crate::system::ChunkIo;
use crate::System;
use morpheus_host::{FileMeta, FsError, SimFs};
use morpheus_nvme::MorpheusCommand;

/// A Morpheus stream: the host-resolved layout of one input file.
///
/// Created by [`ms_stream_create`]; owns the file's byte length and the
/// MREAD-sized chunks covering it.
#[derive(Debug, Clone)]
pub struct MsStream {
    name: String,
    meta: FileMeta,
    chunks: Vec<ChunkIo>,
}

impl MsStream {
    /// The file's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Exact byte length of the stream.
    pub fn len(&self) -> u64 {
        self.meta.len
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.meta.len == 0
    }

    /// The MREAD-sized pieces covering the file, in order.
    pub fn chunks(&self) -> &[ChunkIo] {
        &self.chunks
    }

    /// The underlying extent layout.
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }
}

/// Resolves a file into a [`MsStream`] (the paper's `ms_stream_create`).
///
/// `chunk_bytes` bounds each MREAD; it is additionally clamped to the
/// NVMe per-command limit and rounded to whole logical blocks.
///
/// # Errors
///
/// Returns [`FsError::NotFound`] for unknown files.
pub fn ms_stream_create(fs: &SimFs, name: &str, chunk_bytes: u64) -> Result<MsStream, FsError> {
    let meta = fs.open(name)?.clone();
    let chunks = System::file_chunks(&meta, chunk_bytes);
    Ok(MsStream {
        name: name.to_string(),
        meta,
        chunks,
    })
}

/// The NVMe command sequence the Morpheus compiler's inserted runtime
/// calls will issue for one StorageApp invocation (§V-B).
#[derive(Debug, Clone)]
pub struct CommandPlan {
    /// Commands in issue order: MINIT, the MREADs, MDEINIT.
    pub commands: Vec<MorpheusCommand>,
    /// The instance every command targets.
    pub instance_id: u32,
}

impl CommandPlan {
    /// Lowers a stream into the plan for `instance_id`, with StorageApp
    /// code of `code_len` bytes at host address `code_ptr` and results
    /// DMAed to `dma_base`.
    pub fn lower(
        stream: &MsStream,
        instance_id: u32,
        code_ptr: u64,
        code_len: u32,
        dma_base: u64,
    ) -> CommandPlan {
        let mut commands = Vec::with_capacity(stream.chunks().len() + 2);
        commands.push(MorpheusCommand::Init {
            instance_id,
            code_ptr,
            code_len,
            arg: stream.len() as u32,
        });
        for c in stream.chunks() {
            commands.push(MorpheusCommand::Read {
                instance_id,
                slba: c.slba,
                blocks: c.blocks,
                dma_addr: dma_base,
            });
        }
        commands.push(MorpheusCommand::Deinit { instance_id });
        CommandPlan {
            commands,
            instance_id,
        }
    }

    /// Number of MREAD commands in the plan.
    pub fn reads(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, MorpheusCommand::Read { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_nvme::{LBA_BYTES, MAX_IO_BLOCKS};

    fn fs_with(name: &str, len: u64) -> SimFs {
        let mut fs = SimFs::new(LBA_BYTES, 1 << 24);
        fs.create(name, len).unwrap();
        fs
    }

    #[test]
    fn stream_covers_the_file_exactly() {
        let fs = fs_with("in.txt", 10_000_000);
        let s = ms_stream_create(&fs, "in.txt", 1 << 20).unwrap();
        assert_eq!(s.len(), 10_000_000);
        let covered: u64 = s.chunks().iter().map(|c| c.valid_bytes).sum();
        assert_eq!(covered, 10_000_000);
        assert_eq!(s.chunks().len(), 10); // ceil(10e6 / 1MiB)
    }

    #[test]
    fn unknown_file_rejected() {
        let fs = SimFs::new(LBA_BYTES, 1024);
        assert!(ms_stream_create(&fs, "missing", 1 << 20).is_err());
    }

    #[test]
    fn chunks_respect_the_nvme_limit() {
        let fs = fs_with("big.txt", 100 << 20);
        // Ask for absurdly large chunks; the runtime must clamp.
        let s = ms_stream_create(&fs, "big.txt", u64::MAX / 2).unwrap();
        for c in s.chunks() {
            assert!(c.blocks <= MAX_IO_BLOCKS);
        }
    }

    #[test]
    fn plan_brackets_reads_with_init_and_deinit() {
        let fs = fs_with("in.txt", 3 << 20);
        let s = ms_stream_create(&fs, "in.txt", 1 << 20).unwrap();
        let plan = CommandPlan::lower(&s, 7, 0x4000, 16 * 1024, 0x9000);
        assert_eq!(plan.commands.len(), 3 + 2);
        assert_eq!(plan.reads(), 3);
        assert!(matches!(
            plan.commands.first(),
            Some(MorpheusCommand::Init { instance_id: 7, arg, .. }) if *arg == (3u32 << 20)
        ));
        assert!(matches!(
            plan.commands.last(),
            Some(MorpheusCommand::Deinit { instance_id: 7 })
        ));
        // Reads are ordered and contiguous over the file.
        let mut next_slba = 0;
        for c in &plan.commands[1..plan.commands.len() - 1] {
            if let MorpheusCommand::Read { slba, blocks, .. } = c {
                assert_eq!(*slba, next_slba);
                next_slba += blocks;
            }
        }
    }

    #[test]
    fn empty_file_has_one_empty_chunk_covering_zero_bytes() {
        let fs = fs_with("empty.txt", 0);
        let s = ms_stream_create(&fs, "empty.txt", 1 << 20).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.chunks().iter().map(|c| c.valid_bytes).sum::<u64>(), 0);
    }
}
