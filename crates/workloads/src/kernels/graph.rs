//! Graph kernels: PageRank and BFS over an edge list.

use crate::kernels::KernelResult;
use crate::Digest;
use morpheus_format::ParsedColumns;

/// Compressed sparse row adjacency built from two integer columns.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Offsets into `targets`, length `n + 1`.
    pub offsets: Vec<u32>,
    /// Edge targets.
    pub targets: Vec<u32>,
}

impl Csr {
    /// Builds adjacency from an edge list (src, dst columns).
    ///
    /// # Panics
    ///
    /// Panics if the columns are not two integer columns.
    pub fn from_edges(objects: &ParsedColumns) -> Csr {
        let src = objects.columns[0]
            .as_ints()
            .expect("edge source column is integer");
        let dst = objects.columns[1]
            .as_ints()
            .expect("edge target column is integer");
        let n = src
            .iter()
            .chain(dst.iter())
            .map(|v| *v as u32)
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        let mut degree = vec![0u32; n];
        for s in src {
            degree[*s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; src.len()];
        for (s, d) in src.iter().zip(dst) {
            let c = &mut cursor[*s as usize];
            targets[*c as usize] = *d as u32;
            *c += 1;
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Out-neighbours of `v`.
    pub fn neighbours(&self, v: usize) -> &[u32] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.targets[lo..hi]
    }
}

/// PageRank: `iters` power iterations with damping 0.85.
pub fn pagerank(objects: &ParsedColumns, iters: u32) -> KernelResult {
    let g = Csr::from_edges(objects);
    let n = g.vertices();
    if n == 0 {
        return KernelResult {
            digest: Digest::new().value(),
            summary: "pagerank: empty graph".into(),
        };
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.fill((1.0 - 0.85) / n as f64);
        let mut dangling = 0.0;
        for (v, r) in rank.iter().enumerate() {
            let out = g.neighbours(v);
            if out.is_empty() {
                dangling += r;
                continue;
            }
            let share = 0.85 * r / out.len() as f64;
            for t in out {
                next[*t as usize] += share;
            }
        }
        let spread = 0.85 * dangling / n as f64;
        for r in &mut next {
            *r += spread;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    let mut d = Digest::new();
    let (mut best, mut best_v) = (0.0f64, 0usize);
    for (v, r) in rank.iter().enumerate() {
        d.mix_f64(*r);
        if *r > best {
            best = *r;
            best_v = v;
        }
    }
    KernelResult {
        digest: d.value(),
        summary: format!("pagerank: {n} vertices, top vertex {best_v} rank {best:.6}"),
    }
}

/// BFS from vertex 0; digests the level of every vertex.
pub fn bfs(objects: &ParsedColumns) -> KernelResult {
    let g = Csr::from_edges(objects);
    let n = g.vertices();
    let mut level = vec![u32::MAX; n];
    let mut frontier = std::collections::VecDeque::new();
    if n > 0 {
        level[0] = 0;
        frontier.push_back(0usize);
    }
    let mut reached = 0u64;
    let mut max_level = 0u32;
    while let Some(v) = frontier.pop_front() {
        reached += 1;
        max_level = max_level.max(level[v]);
        for t in g.neighbours(v) {
            let t = *t as usize;
            if level[t] == u32::MAX {
                level[t] = level[v] + 1;
                frontier.push_back(t);
            }
        }
    }
    let mut d = Digest::new();
    for l in &level {
        d.mix(*l as u64);
    }
    KernelResult {
        digest: d.value(),
        summary: format!("bfs: reached {reached}/{n} vertices, depth {max_level}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    fn edges(text: &[u8]) -> ParsedColumns {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        parse_buffer(text, &schema).unwrap().0
    }

    #[test]
    fn csr_preserves_adjacency() {
        let p = edges(b"0 1\n0 2\n1 2\n2 0\n");
        let g = Csr::from_edges(&p);
        assert_eq!(g.vertices(), 3);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(1), &[2]);
        assert_eq!(g.neighbours(2), &[0]);
    }

    #[test]
    fn bfs_levels_on_a_path() {
        let p = edges(b"0 1\n1 2\n2 3\n");
        let r = bfs(&p);
        assert!(r.summary.contains("reached 4/4"));
        assert!(r.summary.contains("depth 3"));
    }

    #[test]
    fn bfs_ignores_unreachable_components() {
        let p = edges(b"0 1\n2 3\n");
        let r = bfs(&p);
        assert!(r.summary.contains("reached 2/4"), "{}", r.summary);
    }

    #[test]
    fn pagerank_ranks_sink_hub_highest() {
        // Everyone links to 3.
        let p = edges(b"0 3\n1 3\n2 3\n3 0\n");
        let r = pagerank(&p, 20);
        assert!(r.summary.contains("top vertex 3"), "{}", r.summary);
    }

    #[test]
    fn pagerank_deterministic() {
        let p = edges(b"0 1\n1 2\n2 0\n0 2\n");
        assert_eq!(pagerank(&p, 10).digest, pagerank(&p, 10).digest);
        assert_ne!(pagerank(&p, 10).digest, pagerank(&p, 11).digest);
    }

    #[test]
    fn empty_graph_handled() {
        let p = edges(b"");
        assert!(pagerank(&p, 5).summary.contains("empty"));
        let r = bfs(&p);
        assert!(r.summary.contains("reached 0/0"));
    }
}
