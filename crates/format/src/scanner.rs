//! Byte-exact text scanning and numeric conversion.

use crate::{ParseError, ParseErrorKind, ParseWork};

/// True for the separator bytes the formats use (space, tab, newline,
/// carriage return, comma).
#[inline]
pub(crate) fn is_separator(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | b',')
}

/// Exact positive powers of ten. Every entry equals the result of the
/// corresponding run of `*= 10.0` steps from 1.0 (exact through 10^22, the
/// largest power of ten representable exactly in an f64).
const POW10: [f64; 23] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
    1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
];

/// The fraction scale after `n` fractional digits: 10^n, continuing with
/// the same progressive rounding the old per-digit `*= 10.0` chain had
/// once past the exact range.
#[inline]
fn frac_scale_for(n: usize) -> f64 {
    if n < POW10.len() {
        return POW10[n];
    }
    let mut s = POW10[POW10.len() - 1];
    for _ in POW10.len() - 1..n {
        s *= 10.0;
    }
    s
}

/// Mantissa accumulator for [`TextScanner::parse_f64`]: folds digits in the
/// integer domain while exactness is guaranteed (up to 15 folded digits
/// stays below 10^15 < 2^53), then spills to the float shift-add the
/// scalar path always used. Bit-identical results, but the common short
/// literal never touches the dependent f64 multiply-add chain.
struct Mantissa {
    acc: u64,
    folded: u32,
    spill: f64,
    spilled: bool,
}

impl Mantissa {
    #[inline]
    fn new() -> Self {
        Mantissa {
            acc: 0,
            folded: 0,
            spill: 0.0,
            spilled: false,
        }
    }

    #[inline]
    fn push(&mut self, d: u8) {
        if self.spilled {
            self.spill = self.spill * 10.0 + d as f64;
        } else if self.folded < 15 {
            self.acc = self.acc * 10 + d as u64;
            self.folded += 1;
        } else {
            // `acc` < 10^15 < 2^53, so the conversion is exact and this
            // rounds exactly like the pure-f64 sequence would have.
            self.spill = self.acc as f64 * 10.0 + d as f64;
            self.spilled = true;
        }
    }

    #[inline]
    fn value(&self) -> f64 {
        if self.spilled {
            self.spill
        } else {
            self.acc as f64
        }
    }
}

/// A scanner over a byte buffer that converts ASCII tokens to binary values
/// while counting the work performed.
///
/// # Example
///
/// ```
/// use morpheus_format::TextScanner;
///
/// let mut s = TextScanner::new(b"12 -3 4.5\n");
/// assert_eq!(s.parse_i64().unwrap(), 12);
/// assert_eq!(s.parse_i64().unwrap(), -3);
/// assert!((s.parse_f64().unwrap() - 4.5).abs() < 1e-12);
/// assert!(s.at_end());
/// assert_eq!(s.work().int_tokens, 2);
/// ```
#[derive(Debug, Clone)]
pub struct TextScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Offset of `buf[0]` within the larger stream (for error reporting in
    /// streaming parses).
    base_offset: usize,
    work: ParseWork,
}

impl<'a> TextScanner<'a> {
    /// Creates a scanner over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self::with_base_offset(buf, 0)
    }

    /// Creates a scanner whose error offsets are shifted by `base_offset`.
    pub fn with_base_offset(buf: &'a [u8], base_offset: usize) -> Self {
        TextScanner {
            buf,
            pos: 0,
            base_offset,
            work: ParseWork::default(),
        }
    }

    /// Current position within the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Work performed so far.
    pub fn work(&self) -> ParseWork {
        self.work
    }

    /// Skips separator bytes.
    pub fn skip_separators(&mut self) {
        let buf = self.buf;
        let start = self.pos;
        let mut i = start;
        while i < buf.len() && is_separator(buf[i]) {
            i += 1;
        }
        self.pos = i;
        self.work.bytes_scanned += (i - start) as u64;
    }

    /// True once only separators remain.
    pub fn at_end(&mut self) -> bool {
        self.skip_separators();
        self.pos == self.buf.len()
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(self.base_offset + self.pos, kind)
    }

    fn peek(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    /// Scans the decimal magnitude at the cursor in a single fused pass and
    /// advances past it, returning the value and digit count.
    ///
    /// Fast path: the first 19 digits cannot overflow `u64` (19 nines
    /// < 2^64), so they accumulate without per-digit overflow checks. Only
    /// a 20th digit switches to the checked continuation, so overflow is
    /// still reported at the exact offending digit.
    #[inline]
    fn scan_magnitude(&mut self) -> Result<(u64, usize), ParseError> {
        let start = self.pos;
        let rest = &self.buf[start..];
        let limit = rest.len().min(19);
        let mut v: u64 = 0;
        let mut n = 0usize;
        while n < limit {
            let d = rest[n].wrapping_sub(b'0');
            if d >= 10 {
                break;
            }
            v = v * 10 + d as u64;
            n += 1;
        }
        if n == 19 {
            while n < rest.len() {
                let d = rest[n].wrapping_sub(b'0');
                if d >= 10 {
                    break;
                }
                v = v
                    .checked_mul(10)
                    .and_then(|m| m.checked_add(d as u64))
                    .ok_or_else(|| {
                        ParseError::new(self.base_offset + start + n, ParseErrorKind::Overflow)
                    })?;
                n += 1;
            }
        }
        self.pos = start + n;
        if n == 0 {
            return Err(match self.peek() {
                Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                None => self.err(ParseErrorKind::UnexpectedEof),
            });
        }
        if let Some(b) = self.peek() {
            if !is_separator(b) {
                return Err(self.err(ParseErrorKind::UnexpectedChar(b)));
            }
        }
        Ok((v, n))
    }

    /// Parses a (possibly signed) decimal integer token.
    ///
    /// # Errors
    ///
    /// Fails on a non-numeric byte, on overflow, or at end of input.
    pub fn parse_i64(&mut self) -> Result<i64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let mut neg = false;
        match self.peek() {
            Some(b'-') => {
                neg = true;
                self.pos += 1;
            }
            Some(b'+') => {
                self.pos += 1;
            }
            _ => {}
        }
        let (magnitude, ndigits) = self.scan_magnitude()?;
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.int_tokens += 1;
        self.work.int_digits += ndigits as u64;
        let limit = if neg { 1u64 << 63 } else { (1u64 << 63) - 1 };
        if magnitude > limit {
            return Err(self.err(ParseErrorKind::Overflow));
        }
        Ok(if neg {
            (magnitude as i64).wrapping_neg()
        } else {
            magnitude as i64
        })
    }

    /// Parses an unsigned decimal integer token.
    ///
    /// # Errors
    ///
    /// Fails on a sign or non-numeric byte, on overflow, or at end of input.
    pub fn parse_u64(&mut self) -> Result<u64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let (value, ndigits) = self.scan_magnitude()?;
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.int_tokens += 1;
        self.work.int_digits += ndigits as u64;
        Ok(value)
    }

    /// Parses a decimal floating-point token (`-12.5`, `3.0e-4`, `7`).
    ///
    /// # Errors
    ///
    /// Fails on a malformed literal or at end of input.
    pub fn parse_f64(&mut self) -> Result<f64, ParseError> {
        self.skip_separators();
        let tok_start = self.pos;
        let mut neg = false;
        match self.peek() {
            Some(b'-') => {
                neg = true;
                self.pos += 1;
            }
            Some(b'+') => {
                self.pos += 1;
            }
            _ => {}
        }
        let buf = self.buf;
        let mut i = self.pos;
        let mut m = Mantissa::new();
        let int_start = i;
        while i < buf.len() {
            let d = buf[i].wrapping_sub(b'0');
            if d >= 10 {
                break;
            }
            m.push(d);
            i += 1;
        }
        let mut digits = (i - int_start) as u64;
        let mut frac_scale = 1.0f64;
        if buf.get(i) == Some(&b'.') {
            i += 1;
            let frac_start = i;
            while i < buf.len() {
                let d = buf[i].wrapping_sub(b'0');
                if d >= 10 {
                    break;
                }
                m.push(d);
                i += 1;
            }
            frac_scale = frac_scale_for(i - frac_start);
            digits += (i - frac_start) as u64;
        }
        self.pos = i;
        if digits == 0 {
            return Err(match self.peek() {
                Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                None => self.err(ParseErrorKind::UnexpectedEof),
            });
        }
        let mut exp: i32 = 0;
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            let mut exp_neg = false;
            match self.peek() {
                Some(b'-') => {
                    exp_neg = true;
                    self.pos += 1;
                }
                Some(b'+') => {
                    self.pos += 1;
                }
                _ => {}
            }
            let exp_start = self.pos;
            let mut j = self.pos;
            while j < buf.len() {
                let d = buf[j].wrapping_sub(b'0');
                if d >= 10 {
                    break;
                }
                exp = exp.saturating_mul(10).saturating_add(d as i32);
                j += 1;
            }
            if j == exp_start {
                return Err(match self.peek() {
                    Some(b) => self.err(ParseErrorKind::UnexpectedChar(b)),
                    None => self.err(ParseErrorKind::UnexpectedEof),
                });
            }
            digits += (j - exp_start) as u64;
            self.pos = j;
            if exp_neg {
                exp = -exp;
            }
        }
        // Reject garbage stuck to the token.
        if let Some(b) = self.peek() {
            if !is_separator(b) {
                return Err(self.err(ParseErrorKind::UnexpectedChar(b)));
            }
        }
        self.work.bytes_scanned += (self.pos - tok_start) as u64;
        self.work.float_tokens += 1;
        self.work.float_digits += digits;
        let mut value = m.value() / frac_scale * 10f64.powi(exp);
        if neg {
            value = -value;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_signed_integers() {
        let mut s = TextScanner::new(b"  42\t-17,+8\n");
        assert_eq!(s.parse_i64().unwrap(), 42);
        assert_eq!(s.parse_i64().unwrap(), -17);
        assert_eq!(s.parse_i64().unwrap(), 8);
        assert!(s.at_end());
    }

    #[test]
    fn parses_u64_and_rejects_sign() {
        let mut s = TextScanner::new(b"18446744073709551615");
        assert_eq!(s.parse_u64().unwrap(), u64::MAX);
        let mut s = TextScanner::new(b"-1");
        assert!(matches!(
            s.parse_u64().unwrap_err().kind,
            ParseErrorKind::UnexpectedChar(b'-')
        ));
    }

    #[test]
    fn parses_extreme_i64() {
        let mut s = TextScanner::new(b"-9223372036854775808 9223372036854775807");
        assert_eq!(s.parse_i64().unwrap(), i64::MIN);
        assert_eq!(s.parse_i64().unwrap(), i64::MAX);
    }

    #[test]
    fn integer_overflow_detected() {
        let mut s = TextScanner::new(b"9223372036854775808");
        assert_eq!(s.parse_i64().unwrap_err().kind, ParseErrorKind::Overflow);
        let mut s = TextScanner::new(b"99999999999999999999999");
        assert_eq!(s.parse_u64().unwrap_err().kind, ParseErrorKind::Overflow);
    }

    #[test]
    fn fast_path_boundary_is_exact() {
        // 19 digits: longest run the unchecked fast path may take.
        let mut s = TextScanner::new(b"9999999999999999999");
        assert_eq!(s.parse_u64().unwrap(), 9_999_999_999_999_999_999);
        // 20 digits: checked path; u64::MAX still parses...
        let mut s = TextScanner::new(b"18446744073709551615");
        assert_eq!(s.parse_u64().unwrap(), u64::MAX);
        // ...and u64::MAX + 1 reports overflow at the offending digit.
        let mut s = TextScanner::new(b"18446744073709551616");
        let e = s.parse_u64().unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Overflow);
        assert_eq!(e.offset, 19);
    }

    #[test]
    fn parses_floats() {
        let cases: [(&[u8], f64); 7] = [
            (b"0", 0.0),
            (b"3.5", 3.5),
            (b"-2.25", -2.25),
            (b"1e3", 1000.0),
            (b"2.5e-2", 0.025),
            (b"+4.0E+1", 40.0),
            (b"123456.789", 123456.789),
        ];
        for (text, want) in cases {
            let mut s = TextScanner::new(text);
            let got = s.parse_f64().unwrap();
            assert!(
                (got - want).abs() <= want.abs() * 1e-12,
                "{:?} -> {got}, want {want}",
                std::str::from_utf8(text).unwrap()
            );
        }
    }

    #[test]
    fn rejects_malformed_tokens() {
        assert!(TextScanner::new(b"12x").parse_i64().is_err());
        assert!(TextScanner::new(b"abc").parse_f64().is_err());
        assert!(TextScanner::new(b".").parse_f64().is_err());
        assert!(TextScanner::new(b"1e").parse_f64().is_err());
        assert!(TextScanner::new(b"").parse_i64().is_err());
        assert!(TextScanner::new(b"-").parse_i64().is_err());
    }

    #[test]
    fn error_offsets_account_for_base() {
        let mut s = TextScanner::with_base_offset(b"zz", 100);
        assert_eq!(s.parse_i64().unwrap_err().offset, 100);
    }

    #[test]
    fn work_counts_every_byte_once() {
        let text = b" 12 34.5\t-6\n";
        let mut s = TextScanner::new(text);
        s.parse_i64().unwrap();
        s.parse_f64().unwrap();
        s.parse_i64().unwrap();
        assert!(s.at_end());
        let w = s.work();
        assert_eq!(w.bytes_scanned, text.len() as u64);
        assert_eq!(w.int_tokens, 2);
        assert_eq!(w.float_tokens, 1);
        assert_eq!(w.int_digits, 3);
        assert_eq!(w.float_digits, 3);
    }
}
