//! Visualizing the Morpheus pipeline: a Gantt chart of flash reads,
//! in-SSD parsing, and DMA built straight from the simulation kernel.
//!
//! The StorageApp's win comes from *overlap*: while the embedded core
//! parses page N, the flash array already reads page N+1 and the DMA
//! engine ships the objects of page N−1. This example renders that.
//!
//! ```sh
//! cargo run --release --example timeline_trace
//! ```

use morpheus_simcore::{
    pipeline, render_gantt, Bandwidth, SimDuration, SimTime, StageDemand, Timeline,
};

fn main() {
    // A miniature Morpheus-SSD data path: one flash channel, one embedded
    // core, the SSD's PCIe DMA engine.
    let mut flash = Timeline::new("flash", 1).with_recording();
    let mut core = Timeline::new("core", 1).with_recording();
    let mut dma = Timeline::new("dma", 1).with_recording();

    let page = 16 * 1024u64;
    let read = SimDuration::from_micros(70) + Bandwidth::from_mb_per_s(400.0).duration_for(page);
    let parse = SimDuration::from_micros(180); // ~11 ns/byte on the embedded core
    let ship = Bandwidth::from_gb_per_s(3.3).duration_for(page / 2); // objects are compact

    let pages = 12;
    let result = {
        let mut stages = [&mut flash, &mut core, &mut dma];
        pipeline(&mut stages, SimTime::ZERO, pages, |_, s| {
            StageDemand::service(match s {
                0 => read,
                1 => parse,
                _ => ship,
            })
        })
    };

    println!(
        "{} pages through read({read}) -> parse({parse}) -> dma({ship}):\n",
        pages
    );
    print!(
        "{}",
        render_gantt(
            &[("flash", &flash), ("core", &core), ("dma", &dma)],
            result.end,
            72
        )
    );

    let serial = (read + parse + ship) * pages as u64;
    println!(
        "\npipelined: {}   fully serial would be: {}   overlap buys {:.2}x",
        result.makespan(),
        serial,
        serial.as_secs_f64() / result.makespan().as_secs_f64()
    );
    println!(
        "bottleneck stage (the embedded core) is busy {:.0}% of the makespan",
        100.0 * core.busy().as_secs_f64() / result.makespan().as_secs_f64()
    );
}
