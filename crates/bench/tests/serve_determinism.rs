//! The serving determinism contract: same seed, same rate, same fault
//! plan ⇒ byte-identical report *and* trace, run-to-run and across the
//! harness's `--jobs` fan-out. This is what lets CI diff serve output and
//! lets a knee measurement be quoted as a number instead of a range.

use morpheus::{AppSpec, Mode, ServeConfig, ServePolicy, ServeReport, System, SystemParams};
use morpheus_bench::run_parallel;
use morpheus_format::{FieldKind, Schema, TextWriter};
use morpheus_simcore::{FaultPlan, Tracer};
use proptest::prelude::*;

/// Stages a small two-tenant serving system (tiny inputs: this file cares
/// about bit-equality, not steady-state throughput).
fn build(seed: u64, faults: Option<&FaultPlan>) -> (System, Vec<AppSpec>) {
    let mut sys = System::new(SystemParams::paper_testbed());
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let mut specs = Vec::new();
    for i in 0..2u64 {
        let name = format!("svc{i}");
        let file = format!("{name}.txt");
        let mut w = TextWriter::new();
        for j in 0..200u64 {
            w.write_u64((j * 7 + i + seed) % 100_000);
            w.sep();
            w.write_u64((j * 13 + i + seed) % 100_000);
            w.newline();
        }
        sys.create_input_file(&file, &w.into_bytes()).unwrap();
        specs.push(AppSpec::cpu_app(&name, &file, schema.clone(), 1, 50.0));
    }
    if let Some(plan) = faults {
        sys.set_fault_plan(*plan);
    }
    (sys, specs)
}

/// One full serve run on a fresh system, returning every observable:
/// the report rendered field-for-field (`ServeReport` has no `PartialEq`;
/// its `Debug` form prints every field, histograms included) and the
/// Chrome-JSON export of the per-request trace.
fn run_once(seed: u64, rps: f64, mode: Mode, faults: Option<&FaultPlan>) -> (String, String) {
    run_cfg(seed, rps, mode, faults, false)
}

/// Like [`run_once`] but with the idle fast-forward toggled, and windowed
/// telemetry sampled so the report's CSV-visible series are covered too.
fn run_cfg(
    seed: u64,
    rps: f64,
    mode: Mode,
    faults: Option<&FaultPlan>,
    fast_forward: bool,
) -> (String, String) {
    let (mut sys, specs) = build(seed, faults);
    sys.set_tracer(Tracer::enabled());
    let cfg = ServeConfig {
        rps,
        duration_s: 0.01,
        depth: 8,
        batch_max: 4,
        sq_depth: 16,
        mode,
        policy: ServePolicy::Shed,
        seed,
        skew: 0.0,
        telemetry: Some(morpheus::TelemetryConfig::new(
            morpheus_simcore::SimDuration::from_micros(500),
        )),
        fast_forward,
    };
    let rep: ServeReport = sys.serve(&specs, &cfg).expect("serve");
    let csv = rep
        .telemetry
        .as_ref()
        .map(|t| t.to_csv(&[]))
        .unwrap_or_default();
    (
        format!("{rep:?}\n{csv}"),
        sys.tracer().take().to_chrome_json(),
    )
}

#[test]
fn serve_grid_is_identical_at_jobs_1_and_4() {
    // The exact shape the serve binary fans out: a (mode, rps) grid over
    // the order-preserving worker pool.
    let grid: Vec<(Mode, f64)> = [Mode::Conventional, Mode::Morpheus, Mode::MorpheusP2P]
        .into_iter()
        .flat_map(|m| [900.0, 2700.0].into_iter().map(move |r| (m, r)))
        .collect();
    let seq = run_parallel(1, &grid, |(m, r)| run_once(42, *r, *m, None));
    let par = run_parallel(4, &grid, |(m, r)| run_once(42, *r, *m, None));
    assert_eq!(seq, par, "fan-out must not change a single byte");
}

#[test]
fn faulty_serve_is_identical_across_jobs_and_repeats() {
    let plan = FaultPlan::parse("seed=9,crash=0.05,stall=0.05,timeout=0.02,flash-uncorr=0.01")
        .expect("valid plan");
    let grid: Vec<f64> = vec![900.0, 2700.0, 8000.0];
    let seq = run_parallel(1, &grid, |r| run_once(7, *r, Mode::Morpheus, Some(&plan)));
    let par = run_parallel(4, &grid, |r| run_once(7, *r, Mode::Morpheus, Some(&plan)));
    assert_eq!(seq, par, "fault rolls must not race with the fan-out");
    let again = run_parallel(1, &grid, |r| run_once(7, *r, Mode::Morpheus, Some(&plan)));
    assert_eq!(seq, again, "fault rolls must replay run-to-run");
}

#[test]
fn fast_forward_is_byte_identical_to_plain_serve() {
    // Idle fast-forward only skips dispatch scans that would have found
    // nothing queued, so every observable — report, telemetry CSV, trace —
    // must match the plain run byte for byte, across the jobs fan-out.
    // Low rates (mostly idle) exercise the skip hardest.
    let grid: Vec<(Mode, f64)> = [Mode::Conventional, Mode::Morpheus]
        .into_iter()
        .flat_map(|m| [150.0, 900.0, 2700.0].into_iter().map(move |r| (m, r)))
        .collect();
    let plain = run_parallel(1, &grid, |(m, r)| run_cfg(42, *r, *m, None, false));
    let ff_seq = run_parallel(1, &grid, |(m, r)| run_cfg(42, *r, *m, None, true));
    let ff_par = run_parallel(4, &grid, |(m, r)| run_cfg(42, *r, *m, None, true));
    assert_eq!(plain, ff_seq, "fast-forward changed an observable");
    assert_eq!(ff_seq, ff_par, "fast-forward raced with the fan-out");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, rate, mode, and fault plan: the fast-forwarded run is
    /// byte-identical to the plain run (report + telemetry CSV + trace).
    #[test]
    fn fast_forward_never_changes_observables(
        seed in 0u64..10_000,
        rps in 100.0f64..6000.0,
        conventional in any::<bool>(),
        faulty in any::<bool>(),
    ) {
        let plan = FaultPlan::parse("seed=3,crash=0.1,stall=0.1,timeout=0.05").unwrap();
        let faults = faulty.then_some(&plan);
        let mode = if conventional { Mode::Conventional } else { Mode::Morpheus };
        let plain = run_cfg(seed, rps, mode, faults, false);
        let ff = run_cfg(seed, rps, mode, faults, true);
        prop_assert_eq!(plain.0, ff.0, "reports/telemetry diverged");
        prop_assert_eq!(plain.1, ff.1, "traces diverged");
    }

    /// Any seed, any rate, faults on or off: two runs from scratch agree
    /// on the report and the trace, byte for byte.
    #[test]
    fn serve_replays_byte_identically(
        seed in 0u64..10_000,
        rps in 200.0f64..6000.0,
        conventional in any::<bool>(),
        faulty in any::<bool>(),
    ) {
        let plan = FaultPlan::parse("seed=3,crash=0.1,stall=0.1,timeout=0.05").unwrap();
        let faults = faulty.then_some(&plan);
        let mode = if conventional { Mode::Conventional } else { Mode::Morpheus };
        let a = run_once(seed, rps, mode, faults);
        let b = run_once(seed, rps, mode, faults);
        prop_assert_eq!(a.0, b.0, "reports diverged");
        prop_assert_eq!(a.1, b.1, "traces diverged");
    }
}
