//! Key-value scan offload (§I's "emitting key-value pairs from
//! flash-based key-value store"): selectivity sweep.
//!
//! The in-storage scan wins hardest when few keys match — cold buckets
//! never cross PCIe — and converges toward the conventional path as the
//! range widens (everything must be shipped anyway).

use morpheus::{System, SystemParams};
use morpheus_bench::{print_table, Harness};
use morpheus_kvstore::{scan_conventional, scan_morpheus, synth_pairs, KvConfig, KvStore};

fn main() {
    // The scan sweep has fixed sizing, but validate flags so `run_all`
    // can forward its argument list here unchanged.
    let _ = Harness::from_args();
    let mut sys = System::new(SystemParams::paper_testbed());
    let cfg = KvConfig {
        buckets: 4096,
        bucket_bytes: 4096,
        probe_limit: 4,
    };
    let kv = KvStore::format(&mut sys.mssd.dev, 0, cfg).expect("format");
    let key_space = 1_000_000u64;
    for (k, v) in synth_pairs(60_000, key_space, 9) {
        kv.put(&mut sys.mssd.dev, k, &v).expect("populate");
    }
    println!(
        "KV region: {} buckets x {} B = {:.1} MB, 60k pairs\n",
        cfg.buckets,
        cfg.bucket_bytes,
        kv.region_bytes() as f64 / 1e6
    );

    let mut rows = Vec::new();
    for pct in [1u64, 10, 50, 100] {
        let hi = key_space * pct / 100;
        let (conv, conv_rep) = scan_conventional(&mut sys, &kv, 0, hi).expect("conventional");
        let (morp, morp_rep) = scan_morpheus(&mut sys, &kv, 0, hi).expect("morpheus");
        assert_eq!(conv, morp, "scans must agree");
        rows.push(vec![
            format!("{pct}%"),
            format!("{}", morp_rep.matches),
            format!("{:.2}ms", conv_rep.elapsed_s * 1e3),
            format!("{:.2}ms", morp_rep.elapsed_s * 1e3),
            format!("{:.2}x", conv_rep.elapsed_s / morp_rep.elapsed_s),
            format!("{:.1}MB", conv_rep.pcie_bytes as f64 / 1e6),
            format!("{:.1}MB", morp_rep.pcie_bytes as f64 / 1e6),
            format!("{:.3}ms", conv_rep.host_cpu_busy_s * 1e3),
            format!("{:.3}ms", morp_rep.host_cpu_busy_s * 1e3),
        ]);
    }
    print_table(
        &[
            "selectivity",
            "matches",
            "host_scan",
            "ssd_scan",
            "speedup",
            "pcie_host",
            "pcie_ssd",
            "cpu_host",
            "cpu_ssd",
        ],
        &rows,
    );
    println!("\n(the scan is flash-bound either way, so elapsed time ties; the offload's win is");
    println!("interconnect traffic and a freed host CPU — exactly the paper's §III argument)");
}
