//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Sweeps (use `--sweep <name>` to run one, default all):
//!
//! * `cores`   — how many embedded cores the Morpheus-SSD needs. One
//!   instance is pinned to one core (§IV-B), so single-app runs are flat,
//!   but multiprogrammed hosts drive several instances.
//! * `clock`   — embedded-core clock vs deserialization speedup.
//! * `chunk`   — MREAD chunk size vs speedup (completion-interrupt
//!   amortization vs pipeline granularity).
//! * `float`   — soft-float penalty vs the SpMV outlier.
//! * `multi`   — multiprogrammed co-runners: contention hurts the host
//!   path (preemptions, faults, bus share) but not the in-SSD path.
//! * `tenants` — N applications deserializing concurrently: conventional
//!   tenants fight for host cores, Morpheus tenants spread over the
//!   drive's embedded cores.
//! * `scale`   — input-size stability of the headline speedup ratio.

use morpheus::{Mode, System, SystemParams};
use morpheus_bench::{print_table, run_parallel, Harness};
use morpheus_simcore::render_error_chain;
use morpheus_workloads::{run_benchmark, stage_input, suite, Benchmark};

/// A sweep point's failure, rendered for the operator. Run failures are
/// reported as full cause chains and exit 1 — a panicking worker thread
/// would bury the cause under a backtrace.
type SweepError = String;

fn run_with(
    params: SystemParams,
    bench: &Benchmark,
    bytes: u64,
    seed: u64,
) -> Result<(f64, f64), SweepError> {
    let mut sys = System::new(params);
    stage_input(&mut sys, bench, bytes, seed)
        .map_err(|e| format!("staging {}: {}", bench.name, render_error_chain(&e)))?;
    let conv = run_benchmark(&mut sys, bench, Mode::Conventional)
        .map_err(|e| format!("{} (conventional): {}", bench.name, render_error_chain(&e)))?;
    let morp = run_benchmark(&mut sys, bench, Mode::Morpheus)
        .map_err(|e| format!("{} (morpheus): {}", bench.name, render_error_chain(&e)))?;
    assert_eq!(conv.kernel, morp.kernel);
    Ok((
        morp.report.deser_speedup_over(&conv.report),
        morp.report.total_speedup_over(&conv.report),
    ))
}

/// Unwraps one sweep's rows, exiting 1 with the first rendered failure.
fn rows_or_exit(rows: Vec<Result<Vec<String>, SweepError>>) -> Vec<Vec<String>> {
    rows.into_iter()
        .map(|r| {
            r.unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            })
        })
        .collect()
}

const SWEEPS: [&str; 7] = [
    "cores", "clock", "chunk", "float", "multi", "tenants", "scale",
];

fn wanted(name: &str) -> bool {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--sweep") {
        Some(i) => args.get(i + 1).map(|s| s == name).unwrap_or(true),
        None => true,
    }
}

fn main() {
    let h = Harness::from_args_with(&["--sweep"]);
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--sweep") {
        if let Some(s) = args.get(i + 1) {
            if !SWEEPS.contains(&s.as_str()) {
                eprintln!("error: unknown sweep {s:?} (one of: {})", SWEEPS.join(", "));
                std::process::exit(2);
            }
        }
    }
    let benches = suite();
    let pagerank = benches
        .iter()
        .find(|b| b.name == "pagerank")
        .expect("suite");
    let spmv = benches.iter().find(|b| b.name == "spmv").expect("suite");
    let bytes = h.input_bytes(pagerank);

    if wanted("cores") {
        println!("\nablation: embedded core count (pagerank)");
        let cores = [1u32, 2, 4, 8];
        let rows = run_parallel(h.jobs, &cores, |cores| {
            let mut p = SystemParams::paper_testbed();
            p.ssd.embedded_cores = *cores;
            let (d, t) = run_with(p, pagerank, bytes, h.seed)?;
            Ok(vec![
                format!("{cores}"),
                format!("{d:.2}x"),
                format!("{t:.2}x"),
            ])
        });
        print_table(
            &["cores", "deser_speedup", "total_speedup"],
            &rows_or_exit(rows),
        );
        println!("(one instance is pinned to one core; extra cores serve other tenants)");
    }

    if wanted("clock") {
        println!("\nablation: embedded core clock (pagerank)");
        let clocks = [200.0, 400.0, 800.0, 1600.0];
        let rows = run_parallel(h.jobs, &clocks, |mhz| {
            let mut p = SystemParams::paper_testbed();
            p.ssd.core_clock_hz = mhz * 1e6;
            let (d, t) = run_with(p, pagerank, bytes, h.seed)?;
            Ok(vec![
                format!("{mhz:.0}MHz"),
                format!("{d:.2}x"),
                format!("{t:.2}x"),
            ])
        });
        print_table(
            &["clock", "deser_speedup", "total_speedup"],
            &rows_or_exit(rows),
        );
    }

    if wanted("chunk") {
        println!("\nablation: MREAD chunk size (pagerank)");
        let chunks = [1u64, 2, 4, 8, 16, 32];
        let rows = run_parallel(h.jobs, &chunks, |mb| {
            let mut p = SystemParams::paper_testbed();
            p.mread_chunk_bytes = mb << 20;
            let (d, t) = run_with(p, pagerank, bytes, h.seed)?;
            Ok(vec![
                format!("{mb}MiB"),
                format!("{d:.2}x"),
                format!("{t:.2}x"),
            ])
        });
        print_table(
            &["chunk", "deser_speedup", "total_speedup"],
            &rows_or_exit(rows),
        );
    }

    if wanted("float") {
        println!("\nablation: soft-float penalty (spmv, the Fig. 8 outlier)");
        let penalties = [1.0, 2.0, 4.0, 8.0, 16.0];
        let rows = run_parallel(h.jobs, &penalties, |pen| {
            let mut p = SystemParams::paper_testbed();
            p.device_cost.float_penalty = *pen;
            let (d, _) = run_with(p, spmv, h.input_bytes(spmv), h.seed)?;
            Ok(vec![format!("{pen:.0}x"), format!("{d:.2}x")])
        });
        print_table(&["fp_penalty", "spmv_deser_speedup"], &rows_or_exit(rows));
        println!("(an FPU-equipped controller would move spmv up to the integer apps)");
    }

    if wanted("multi") {
        println!("\nablation: multiprogrammed co-runner (pagerank)");
        use morpheus::CoRunner;
        let cases = [
            ("idle host", None),
            ("moderate co-runner", Some(CoRunner::moderate())),
            ("heavy co-runner", Some(CoRunner::heavy())),
        ];
        let rows = run_parallel(h.jobs, &cases, |(label, co)| {
            let mut p = SystemParams::paper_testbed();
            p.corunner = *co;
            let (d, t) = run_with(p, pagerank, bytes, h.seed)?;
            Ok(vec![
                label.to_string(),
                format!("{d:.2}x"),
                format!("{t:.2}x"),
            ])
        });
        print_table(
            &["host load", "deser_speedup", "total_speedup"],
            &rows_or_exit(rows),
        );
        println!("(contention widens the deserialization gap; total speedup compresses because");
        println!(" the compute kernel — identical in both modes — slows with the stolen cores)");
    }

    if wanted("tenants") {
        println!("\nablation: concurrent tenants (edge-list deserialization, aggregate MB/s)");
        use morpheus::AppSpec;
        use morpheus_format::{FieldKind, Schema, TextWriter};
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        let counts = [1usize, 2, 4, 8];
        let rows = run_parallel(h.jobs, &counts, |n| {
            let mut sys = System::new(SystemParams::paper_testbed());
            let mut specs = Vec::new();
            for i in 0..*n {
                let file = format!("tenant{i}.txt");
                let mut w = TextWriter::new();
                for j in 0..200_000u64 {
                    w.write_u64((j * 7 + i as u64) % 100_000);
                    w.sep();
                    w.write_u64((j * 13 + i as u64) % 100_000);
                    w.newline();
                }
                sys.create_input_file(&file, w.as_bytes())
                    .map_err(|e| format!("staging {file}: {}", render_error_chain(&e)))?;
                specs.push(AppSpec::cpu_app(
                    &format!("t{i}"),
                    &file,
                    schema.clone(),
                    1,
                    50.0,
                ));
            }
            let conv: Vec<_> = specs
                .iter()
                .map(|s| (s.clone(), Mode::Conventional))
                .collect();
            let morp: Vec<_> = specs.iter().map(|s| (s.clone(), Mode::Morpheus)).collect();
            let c = sys
                .run_deserialize_many(&conv)
                .map_err(|e| format!("{n} conventional tenants: {}", render_error_chain(&e)))?;
            let m = sys
                .run_deserialize_many(&morp)
                .map_err(|e| format!("{n} morpheus tenants: {}", render_error_chain(&e)))?;
            Ok(vec![
                format!("{n}"),
                format!("{:.1}", c.aggregate_mbs),
                format!("{:.1}", m.aggregate_mbs),
                format!("{:.2}x", m.aggregate_mbs / c.aggregate_mbs),
            ])
        });
        print_table(
            &["tenants", "conventional", "morpheus", "advantage"],
            &rows_or_exit(rows),
        );
        println!("(4 host cores vs 4 embedded cores; beyond 4 tenants both saturate,");
        println!(" but the Morpheus host is still free to run real work — §III)");
    }

    if wanted("scale") {
        println!("\nablation: input-scale stability of the speedup (pagerank)");
        let sizes = [2u64, 4, 8, 16, 32];
        let rows = run_parallel(h.jobs, &sizes, |mb| {
            let (d, t) = run_with(SystemParams::paper_testbed(), pagerank, mb << 20, h.seed)?;
            Ok(vec![
                format!("{mb}MB"),
                format!("{d:.2}x"),
                format!("{t:.2}x"),
            ])
        });
        print_table(
            &["input", "deser_speedup", "total_speedup"],
            &rows_or_exit(rows),
        );
        println!("(ratios are size-stable, justifying scaled-down staging)");
    }
}
