//! Multi-SSD fleet: placement-aware serving across N Morpheus-SSDs.
//!
//! The paper evaluates one Morpheus-SSD; a datacenter serves millions of
//! users from racks of them behind PCIe switch fabrics. [`Fleet`]
//! generalizes the single-[`System`] simulator into N devices — each a
//! full Morpheus-SSD with its own NVMe queues, [`AdminController`]
//! (created per device inside [`System::serve_requests`]), admission
//! queue, flash array, FTL, embedded cores, and PCIe link — plus a
//! placement layer that assigns tenants to devices and a router that
//! sends each request to its tenant's device, draining degraded devices
//! onto healthy peers.
//!
//! Determinism contract (see `docs/FLEET.md`): placement is keyed by a
//! *seeded hash of the tenant's input file* (or a pure function of the
//! tenant index), never by arrival order or device load at arrival time,
//! so the assignment — and therefore every byte of every per-device
//! report — is a pure function of (seed, app list, fleet config). The
//! offered load is the *same* global stream a single SSD would see
//! ([`offered_requests`]); a fleet run partitions it, so `--devices 1`
//! reproduces the single-SSD reports bit for bit.
//!
//! [`AdminController`]: morpheus_nvme::AdminController

use crate::cache::{CacheConfig, CacheStats};
use crate::control::{ControlConfig, ControlPlan, ControlReport};
use crate::exec::{AppSpec, RunError};
use crate::serve::{offered_requests, validate_serve_cfg, Request, ServeConfig, ServeReport};
use crate::{System, SystemParams};
use morpheus_simcore::{
    FaultCounters, FaultPlan, Metrics, SimDuration, SimTime, TraceEvent, TraceEventKind,
    TraceLayer, Tracer,
};
use morpheus_ssd::SsdError;
use std::error::Error;
use std::fmt;

/// How the placement layer assigns tenants (and their input files) to
/// devices. Every policy is a pure, seeded function of the app list —
/// never of arrival order — so fleet runs stay byte-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Tenant `i` lives on device `i % N`. Perfectly even tenant counts,
    /// oblivious to file sizes.
    RoundRobin,
    /// Device = seeded hash of the tenant's input-file name, mod N. Two
    /// tenants sharing a file always land together, and the assignment
    /// survives tenant-list reordering.
    HashByFile,
    /// Files are placed in tenant order, each onto the device with the
    /// fewest placed bytes so far (ties break on the lowest device id).
    /// Balances bytes instead of tenant counts.
    CapacityAware,
}

impl PlacementPolicy {
    /// Parses the CLI spelling (`rr`/`round-robin`, `hash`, `capacity`).
    pub fn parse(s: &str) -> Option<PlacementPolicy> {
        match s {
            "rr" | "round-robin" => Some(PlacementPolicy::RoundRobin),
            "hash" => Some(PlacementPolicy::HashByFile),
            "capacity" => Some(PlacementPolicy::CapacityAware),
            _ => None,
        }
    }
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::HashByFile => "hash",
            PlacementPolicy::CapacityAware => "capacity",
        })
    }
}

/// A scheduled device death: from `at` onward the device admits nothing;
/// requests already dispatched to it drain to completion (the operator's
/// "drain then pull" shape). Produced by the fleet-level fault plane
/// (`--kill-device DEV@SECS`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceKill {
    /// Which device dies.
    pub device: usize,
    /// When it dies (sim-time).
    pub at: SimTime,
}

impl DeviceKill {
    /// Parses `DEV@SECS`, e.g. `2@0.01` (device 2 dies 10 ms in).
    /// Seconds may be zero: a device dead at t=0 is dead at admission
    /// time for every request.
    pub fn parse(s: &str) -> Result<DeviceKill, String> {
        let (dev, secs) = s
            .split_once('@')
            .ok_or_else(|| format!("expected DEV@SECS, got {s:?}"))?;
        let device: usize = dev
            .parse()
            .map_err(|_| format!("expected a device index, got {dev:?}"))?;
        let at: f64 = secs
            .parse()
            .map_err(|_| format!("expected seconds, got {secs:?}"))?;
        if !at.is_finite() || at < 0.0 {
            return Err(format!("kill time must be finite and >= 0, got {secs:?}"));
        }
        Ok(DeviceKill {
            device,
            at: SimTime::ZERO + SimDuration::from_secs_f64(at),
        })
    }
}

/// Fleet shape and the fleet-level fault plane.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of Morpheus-SSDs behind the switch.
    pub devices: usize,
    /// Tenant→device assignment policy.
    pub placement: PlacementPolicy,
    /// Seed for the placement hash (decorrelated from the serve seed so
    /// re-seeding traffic never migrates data).
    pub seed: u64,
    /// Scheduled device deaths (see [`DeviceKill`]).
    pub kills: Vec<DeviceKill>,
    /// Control-plane intent: rolling updates and kill healing (inactive
    /// by default — see [`ControlConfig`]).
    pub control: ControlConfig,
}

impl FleetConfig {
    /// A fleet of `devices` SSDs with the default hash placement, seed
    /// 42, no scheduled kills, and the control plane off.
    pub fn new(devices: usize) -> Self {
        FleetConfig {
            devices,
            placement: PlacementPolicy::HashByFile,
            seed: 42,
            kills: Vec::new(),
            control: ControlConfig::default(),
        }
    }

    /// Checks the config for internal consistency: at least one device,
    /// and every kill naming a device inside the fleet.
    ///
    /// # Errors
    ///
    /// The first [`FleetConfigError`] found. CLIs surface it at parse
    /// time and exit 2; library callers get it from
    /// [`Fleet::try_new`].
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.devices == 0 {
            return Err(FleetConfigError::NoDevices);
        }
        for k in &self.kills {
            if k.device >= self.devices {
                return Err(FleetConfigError::KillOutOfRange {
                    device: k.device,
                    devices: self.devices,
                });
            }
        }
        Ok(())
    }
}

/// A fleet configuration that cannot describe a real fleet. Returned by
/// [`FleetConfig::validate`] / [`Fleet::try_new`] at config build time,
/// so an out-of-range kill spec fails loudly instead of silently never
/// matching a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// Zero devices.
    NoDevices,
    /// A kill names a device index outside the fleet.
    KillOutOfRange {
        /// The device the kill names.
        device: usize,
        /// How many devices the fleet has.
        devices: usize,
    },
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::NoDevices => write!(f, "a fleet needs at least one device"),
            FleetConfigError::KillOutOfRange { device, devices } => write!(
                f,
                "kill names device {device} but the fleet has {devices} \
                 (valid indices are 0..={})",
                devices - 1
            ),
        }
    }
}

impl Error for FleetConfigError {}

/// The typed admission-time routing failure: a request's placement target
/// was already dead when it arrived and every rebalance candidate was
/// dead too. Carried by [`RunError::DeviceDown`] so binaries exit 1 with
/// a rendered cause chain instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceDown {
    /// The placement target.
    pub device: usize,
    /// When the fleet fault plane killed it, seconds.
    pub killed_at_s: f64,
    /// The request's arrival time, seconds.
    pub at_s: f64,
}

impl fmt::Display for DeviceDown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "placement target device {} was killed at {:.6}s and no healthy peer \
             remains for the request arriving at {:.6}s",
            self.device, self.killed_at_s, self.at_s
        )
    }
}

impl Error for DeviceDown {}

/// N simulated Morpheus-SSDs behind the PCIe switch fabric, with
/// placement-aware request routing and fault-aware rebalancing.
///
/// Each device is a full [`System`]: its own flash array, FTL, embedded
/// cores, NVMe front end, per-tenant submission queues, admission queue,
/// object cache, and telemetry sampler. Staged files are replicated to
/// every device (replication is the availability story that lets a
/// drained device's traffic land on any healthy peer; placement chooses
/// the *serving* device). See `docs/FLEET.md`.
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    devices: Vec<System>,
    /// The control plan the last serve executed (kept so
    /// [`take_merged_trace`](Fleet::take_merged_trace) can emit the
    /// lifecycle track); `None` until a control-active serve runs.
    ctl_plan: Option<ControlPlan>,
}

/// FNV-1a over a file name, the stable half of the placement key.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: diffuses the (file hash ^ seed) key so nearby
/// names don't land on nearby devices.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Fleet {
    /// Builds `cfg.devices` identical Morpheus-SSD systems.
    ///
    /// # Panics
    ///
    /// Panics on an invalid config — zero devices or a kill naming a
    /// device outside the fleet. Library callers that want the typed
    /// error use [`Fleet::try_new`]; the CLIs validate at parse time and
    /// exit 2.
    pub fn new(params: SystemParams, cfg: FleetConfig) -> Self {
        Fleet::try_new(params, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the fleet, rejecting an inconsistent config with a typed
    /// [`FleetConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Whatever [`FleetConfig::validate`] finds — zero devices, or a
    /// kill spec naming a device outside the fleet.
    pub fn try_new(params: SystemParams, cfg: FleetConfig) -> Result<Self, FleetConfigError> {
        cfg.validate()?;
        let devices = (0..cfg.devices)
            .map(|_| System::new(params.clone()))
            .collect();
        Ok(Fleet {
            cfg,
            devices,
            ctl_plan: None,
        })
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// One device, immutably.
    pub fn device(&self, i: usize) -> &System {
        &self.devices[i]
    }

    /// One device, mutably (e.g. to install a per-device fault plan —
    /// the PR-3 fault plane scoped to a single fleet member).
    pub fn device_mut(&mut self, i: usize) -> &mut System {
        &mut self.devices[i]
    }

    /// Stages a file on **every** device (full replication; see the type
    /// docs). Untimed, like [`System::create_input_file`].
    ///
    /// # Errors
    ///
    /// Propagates the first device's filesystem or drive error.
    pub fn create_input_file(&mut self, name: &str, data: &[u8]) -> Result<(), SsdError> {
        for d in &mut self.devices {
            d.create_input_file(name, data)?;
        }
        Ok(())
    }

    /// Replaces a staged file's bytes on every device, invalidating any
    /// cached objects parsed from the old bytes.
    ///
    /// # Errors
    ///
    /// Propagates the first device's filesystem or drive error.
    pub fn overwrite_input_file(&mut self, name: &str, data: &[u8]) -> Result<(), SsdError> {
        for d in &mut self.devices {
            d.overwrite_input_file(name, data)?;
        }
        Ok(())
    }

    /// Installs the same fault plan on every device (use
    /// [`device_mut`](Fleet::device_mut) to degrade a single member).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        for d in &mut self.devices {
            d.set_fault_plan(plan);
        }
    }

    /// Installs an object cache of this shape on every device. Each
    /// device caches independently — cached objects live in *its*
    /// controller DRAM, charged against *its* accounting.
    pub fn set_object_cache(&mut self, cfg: CacheConfig) {
        for d in &mut self.devices {
            d.set_object_cache(cfg);
        }
    }

    /// Arms a fresh enabled tracer on every device. Each device records
    /// into its own log; [`take_merged_trace`](Fleet::take_merged_trace)
    /// re-homes them onto per-device tracks.
    pub fn enable_tracing(&mut self) {
        for d in &mut self.devices {
            d.set_tracer(Tracer::enabled());
        }
    }

    /// Drains every device's trace into one log. With more than one
    /// device each event's track is prefixed `dev<K>/`, so Perfetto shows
    /// one row group per fleet member; a single-device fleet keeps the
    /// legacy track names (byte-identical to the pre-fleet export).
    ///
    /// When the last serve ran with the control plane active, the
    /// executed lifecycle timeline is appended as instant events on
    /// `ctl/dev<K>` tracks (one row group for the whole control plane),
    /// one event per state entered.
    pub fn take_merged_trace(&self) -> morpheus_simcore::TraceLog {
        let mut merged = morpheus_simcore::TraceLog::default();
        let solo = self.devices.len() == 1;
        let traced = self.devices.iter().any(|d| d.tracer().is_enabled());
        for (i, d) in self.devices.iter().enumerate() {
            let mut log = d.tracer().take();
            if !solo {
                for ev in &mut log.events {
                    ev.track = format!("dev{i}/{}", ev.track);
                }
            }
            merged.events.extend(log.events);
        }
        if let (true, Some(plan)) = (traced, &self.ctl_plan) {
            for dev in 0..plan.devices() {
                for t in plan.timeline(dev) {
                    merged.events.push(TraceEvent {
                        layer: TraceLayer::Host,
                        track: format!("ctl/dev{dev}"),
                        name: t.to.to_string(),
                        start_ns: t.at.as_nanos(),
                        dur_ns: 0,
                        kind: TraceEventKind::Instant,
                        bytes: None,
                    });
                }
            }
        }
        merged
    }

    /// The devices placement may target: every device, minus any that
    /// the kill schedule declares dead at t=0 *permanently* (no heal
    /// policy to bring them back). Placing a tenant on a device that can
    /// never admit a single request just taxes every arrival with the
    /// rebalance scan — the dead-device placement bug. When the whole
    /// fleet is dead at t=0 the full device list is returned so serving
    /// fails with the usual typed [`DeviceDown`] error.
    fn placement_candidates(&self) -> Vec<usize> {
        let healing = self.cfg.control.heal.is_some();
        let eligible: Vec<usize> = (0..self.devices.len())
            .filter(|&d| healing || self.killed_at(d) != Some(SimTime::ZERO))
            .collect();
        if eligible.is_empty() {
            (0..self.devices.len()).collect()
        } else {
            eligible
        }
    }

    /// The tenant→device assignment the configured policy produces for
    /// this app list. Pure and seeded: same (policy, seed, apps, fleet
    /// size, kill schedule) ⇒ same placement, regardless of traffic.
    /// Devices dead at t=0 with no heal policy receive no tenants (see
    /// [`placement_candidates`](Self::placement_candidates)).
    pub fn placement(&self, apps: &[AppSpec]) -> Vec<usize> {
        let cand = self.placement_candidates();
        let n = cand.len() as u64;
        match self.cfg.placement {
            PlacementPolicy::RoundRobin => (0..apps.len()).map(|i| cand[i % n as usize]).collect(),
            PlacementPolicy::HashByFile => apps
                .iter()
                .map(|a| cand[(mix(fnv1a(a.input.as_bytes()) ^ self.cfg.seed) % n) as usize])
                .collect(),
            PlacementPolicy::CapacityAware => {
                // Greedy least-bytes-first over tenants in list order;
                // a file shared by several tenants is placed (and its
                // bytes counted) once.
                let mut placed_bytes = vec![0u64; cand.len()];
                let mut by_file: std::collections::HashMap<&str, usize> =
                    std::collections::HashMap::new();
                let mut out = Vec::with_capacity(apps.len());
                for a in apps {
                    if let Some(&d) = by_file.get(a.input.as_str()) {
                        out.push(d);
                        continue;
                    }
                    let len = self.devices[0]
                        .fs
                        .open(&a.input)
                        .map(|m| m.len)
                        .unwrap_or(0);
                    let slot = placed_bytes
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, b)| (**b, *i))
                        .map(|(i, _)| i)
                        .expect("fleet has at least one candidate");
                    placed_bytes[slot] += len;
                    by_file.insert(a.input.as_str(), cand[slot]);
                    out.push(cand[slot]);
                }
                out
            }
        }
    }

    /// When `device` dies per the kill schedule (`None` = never).
    pub fn killed_at(&self, device: usize) -> Option<SimTime> {
        self.cfg
            .kills
            .iter()
            .filter(|k| k.device == device)
            .map(|k| k.at)
            .min()
    }

    /// True if `device` still admits requests at `at`.
    pub fn alive_at(&self, device: usize, at: SimTime) -> bool {
        self.killed_at(device).is_none_or(|t| at < t)
    }

    /// Routes one arrival: the placement target if it admits at `at`,
    /// else the first admitting peer scanning upward from it
    /// (deterministic in the fleet config alone — the control plan is
    /// compiled before any request is routed). `Err` carries the typed
    /// admission-time failure when no device admits.
    fn route(&self, plan: &ControlPlan, primary: usize, at: SimTime) -> Result<usize, DeviceDown> {
        let n = self.devices.len();
        for step in 0..n {
            let d = (primary + step) % n;
            if plan.admits(d, at) {
                return Ok(d);
            }
        }
        Err(DeviceDown {
            device: primary,
            killed_at_s: plan
                .down_since(primary, at)
                .map_or(0.0, |t| t.as_secs_f64()),
            at_s: at.as_secs_f64(),
        })
    }

    /// Runs one open-loop serving experiment over the whole fleet.
    ///
    /// The offered load is the exact global stream one SSD would see;
    /// each request routes to its tenant's placed device (or a healthy
    /// peer if that device is dead at arrival — counted in
    /// [`FleetReport::rebalanced`]), and every device then serves its
    /// slice through the single-SSD dispatcher: per-device admission
    /// queue, same-app batching, per-tenant NVMe queues, per-device
    /// telemetry windows. A one-device fleet with no kill schedule
    /// delegates to [`System::serve`] outright, so its report is
    /// byte-identical to the single-SSD path.
    ///
    /// # Errors
    ///
    /// [`RunError::NoTenants`] on an empty app list,
    /// [`RunError::DeviceDown`] when a request finds every device dead,
    /// plus everything [`System::serve`] can return.
    ///
    /// # Panics
    ///
    /// Panics on config-bug serve parameters, like [`System::serve`].
    pub fn serve(&mut self, apps: &[AppSpec], cfg: &ServeConfig) -> Result<FleetReport, RunError> {
        if apps.is_empty() {
            return Err(RunError::NoTenants);
        }
        validate_serve_cfg(cfg);
        let placement = self.placement(apps);
        let control_on = self.cfg.control.is_active();
        if self.devices.len() == 1 && self.cfg.kills.is_empty() && !control_on {
            let rep = self.devices[0].serve(apps, cfg)?;
            return Ok(FleetReport {
                policy: self.cfg.placement,
                placement,
                rebalanced: 0,
                aggregate: rep.clone(),
                per_device: vec![rep],
                control: None,
            });
        }
        let n = self.devices.len();
        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(cfg.duration_s);
        let plan = ControlPlan::compile(&self.cfg.control, n, &self.cfg.kills, horizon);
        let mut slices: Vec<Vec<Request>> = vec![Vec::new(); n];
        let mut rebalanced = 0u64;
        for r in offered_requests(cfg, apps.len()) {
            let primary = placement[r.app];
            let d = self
                .route(&plan, primary, r.arrival)
                .map_err(RunError::DeviceDown)?;
            if d != primary {
                rebalanced += 1;
            }
            slices[d].push(r);
        }
        let mut per_device = Vec::with_capacity(n);
        for (d, slice) in slices.into_iter().enumerate() {
            per_device.push(self.devices[d].serve_requests(apps, cfg, slice)?);
        }
        let aggregate = aggregate_reports(&per_device);
        let control = control_on.then(|| ControlReport::build(&plan, &per_device));
        self.ctl_plan = control_on.then_some(plan);
        Ok(FleetReport {
            policy: self.cfg.placement,
            placement,
            rebalanced,
            aggregate,
            per_device,
            control,
        })
    }
}

/// Everything measured during one fleet serve run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The placement policy in force.
    pub policy: PlacementPolicy,
    /// Tenant→device assignment used for routing.
    pub placement: Vec<usize>,
    /// Requests routed away from a dead placement target onto a healthy
    /// peer.
    pub rebalanced: u64,
    /// The fleet-wide roll-up (see [`aggregate_reports`] for exactly
    /// which fields sum, merge, or recompute).
    pub aggregate: ServeReport,
    /// Each device's own full serve report, in device order.
    pub per_device: Vec<ServeReport>,
    /// Lifecycle transitions and per-device health verdicts, present only
    /// when the run had the control plane active (so control-off reports
    /// render byte-identically to pre-control builds).
    pub control: Option<ControlReport>,
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet devices={} placement={} rebalanced={}",
            self.per_device.len(),
            self.policy,
            self.rebalanced
        )?;
        for (i, r) in self.per_device.iter().enumerate() {
            writeln!(
                f,
                "device {i}: offered={} completed={} shed={} failed={} \
                 sustained_rps={:.1} p99_us={:.1}",
                r.offered,
                r.completed,
                r.shed,
                r.failed,
                r.sustained_rps,
                r.e2e_ns.p99() as f64 / 1e3
            )?;
        }
        if let Some(c) = &self.control {
            write!(f, "{c}")?;
        }
        write!(f, "aggregate:\n{}", self.aggregate)
    }
}

/// Sums `b`'s fault counters into `a` (the simcore type carries no
/// arithmetic of its own).
fn add_faults(a: &mut FaultCounters, b: &FaultCounters) {
    a.ecc_corrected += b.ecc_corrected;
    a.media_retries += b.media_retries;
    a.media_failures += b.media_failures;
    a.nvme_timeouts += b.nvme_timeouts;
    a.nvme_retries += b.nvme_retries;
    a.core_stalls += b.core_stalls;
    a.core_crashes += b.core_crashes;
    a.pcie_degraded += b.pcie_degraded;
    a.host_fallbacks += b.host_fallbacks;
}

/// Sums `b`'s cache counters into `a` (occupancy included: fleet-wide
/// cached bytes across all controllers).
fn add_cache(a: &mut CacheStats, b: &CacheStats) {
    a.hits += b.hits;
    a.dram_hits += b.dram_hits;
    a.host_hits += b.host_hits;
    a.misses += b.misses;
    a.admitted += b.admitted;
    a.rejected += b.rejected;
    a.evictions += b.evictions;
    a.spills += b.spills;
    a.promotions += b.promotions;
    a.invalidations += b.invalidations;
    a.dram_bytes += b.dram_bytes;
    a.host_bytes += b.host_bytes;
}

/// Rolls per-device serve reports into one fleet-wide report: counters
/// sum, histograms merge, the makespan is the slowest device's, and the
/// rates (`sustained_rps`, `aggregate_mbs`) are recomputed over that
/// fleet makespan — the number an operator sees at the load balancer.
/// Checksums fold in device order (`checksum`) and commutatively
/// (`checksum_unordered`); per-device telemetry stays in the per-device
/// reports. `ssd_core_utilization` is the per-device makespan-weighted
/// mean, so a device that died early (and idled thereafter) doesn't drag
/// the fleet number down as if it had run the whole time.
pub fn aggregate_reports(per_device: &[ServeReport]) -> ServeReport {
    assert!(!per_device.is_empty(), "aggregate of an empty fleet");
    let first = &per_device[0];
    let mut agg = ServeReport {
        mode: first.mode,
        policy: first.policy,
        target_rps: first.target_rps,
        duration_s: first.duration_s,
        offered: 0,
        admitted: 0,
        completed: 0,
        shed: 0,
        overflow_fallbacks: 0,
        fault_redispatches: 0,
        failed: 0,
        batches: 0,
        commands: 0,
        doorbell_writes: 0,
        makespan_s: 0.0,
        sustained_rps: 0.0,
        aggregate_mbs: 0.0,
        records: 0,
        checksum: 0,
        checksum_unordered: 0,
        queue_wait_ns: morpheus_simcore::Histogram::new(),
        service_ns: morpheus_simcore::Histogram::new(),
        e2e_ns: morpheus_simcore::Histogram::new(),
        faults: FaultCounters::default(),
        cache: None,
        telemetry: None,
        metrics: Metrics::new(),
    };
    let mut mb = 0.0f64;
    let mut util = 0.0f64;
    let mut util_weight = 0.0f64;
    for r in per_device {
        agg.offered += r.offered;
        agg.admitted += r.admitted;
        agg.completed += r.completed;
        agg.shed += r.shed;
        agg.overflow_fallbacks += r.overflow_fallbacks;
        agg.fault_redispatches += r.fault_redispatches;
        agg.failed += r.failed;
        agg.batches += r.batches;
        agg.commands += r.commands;
        agg.doorbell_writes += r.doorbell_writes;
        agg.makespan_s = agg.makespan_s.max(r.makespan_s);
        agg.records += r.records;
        agg.checksum = agg.checksum.rotate_left(1) ^ r.checksum;
        agg.checksum_unordered = agg.checksum_unordered.wrapping_add(r.checksum_unordered);
        agg.queue_wait_ns.merge(&r.queue_wait_ns);
        agg.service_ns.merge(&r.service_ns);
        agg.e2e_ns.merge(&r.e2e_ns);
        add_faults(&mut agg.faults, &r.faults);
        if let Some(c) = &r.cache {
            add_cache(agg.cache.get_or_insert_with(CacheStats::default), c);
        }
        // aggregate_mbs is bytes/makespan per device; undo the division
        // to sum bytes, then re-divide by the fleet makespan below.
        mb += r.aggregate_mbs * r.makespan_s;
        // Utilization weighted by each device's busy window: an
        // early-killed device was only measurable while it ran, so its
        // (near-idle) number must not count like a full-run device's.
        util += r.metrics.get("ssd_core_utilization") * r.makespan_s;
        util_weight += r.makespan_s;
    }
    if agg.makespan_s > 0.0 {
        agg.sustained_rps = agg.completed as f64 / agg.makespan_s;
        agg.aggregate_mbs = mb / agg.makespan_s;
    }
    let mut metrics = Metrics::new();
    metrics.set("fleet_devices", per_device.len() as f64);
    metrics.set(
        "ssd_core_utilization",
        if util_weight > 0.0 {
            util / util_weight
        } else {
            0.0
        },
    );
    agg.queue_wait_ns.export("queue_wait_ns", &mut metrics);
    agg.service_ns.export("service_ns", &mut metrics);
    agg.e2e_ns.export("e2e_ns", &mut metrics);
    if let Some(c) = &agg.cache {
        metrics.set("cache_hits", c.hits as f64);
        metrics.set("cache_misses", c.misses as f64);
        metrics.set("cache_hit_rate", c.hit_rate());
    }
    agg.metrics = metrics;
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Mode;
    use morpheus_format::{FieldKind, Schema, TextWriter};

    fn edge_text(n: u32, salt: u64) -> Vec<u8> {
        let mut w = TextWriter::new();
        for i in 0..n as u64 {
            w.write_u64((i * 7 + salt) % 100_000);
            w.sep();
            w.write_u64((i * 13 + salt) % 100_000);
            w.newline();
        }
        w.into_bytes()
    }

    fn fleet_with(cfg: FleetConfig, napps: usize, records: u32) -> (Fleet, Vec<AppSpec>) {
        let mut fleet = Fleet::new(SystemParams::paper_testbed(), cfg);
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        let mut specs = Vec::new();
        for i in 0..napps {
            let name = format!("svc{i}");
            let file = format!("{name}.txt");
            fleet
                .create_input_file(&file, &edge_text(records, i as u64))
                .unwrap();
            specs.push(AppSpec::cpu_app(&name, &file, schema.clone(), 1, 50.0));
        }
        (fleet, specs)
    }

    fn quick_cfg() -> ServeConfig {
        let mut cfg = ServeConfig::new(4000.0, 0.02);
        cfg.mode = Mode::Morpheus;
        cfg
    }

    #[test]
    fn single_device_fleet_matches_solo_system_bit_for_bit() {
        let (mut fleet, specs) = fleet_with(FleetConfig::new(1), 3, 500);
        let cfg = quick_cfg();
        let fleet_rep = fleet.serve(&specs, &cfg).unwrap();

        let mut solo = System::new(SystemParams::paper_testbed());
        for i in 0..3 {
            solo.create_input_file(&format!("svc{i}.txt"), &edge_text(500, i as u64))
                .unwrap();
        }
        let solo_rep = solo.serve(&specs, &cfg).unwrap();
        assert_eq!(
            format!("{}", fleet_rep.aggregate),
            format!("{solo_rep}"),
            "--devices 1 must reproduce the single-SSD report byte for byte"
        );
        assert_eq!(fleet_rep.per_device.len(), 1);
        assert_eq!(fleet_rep.rebalanced, 0);
    }

    #[test]
    fn placement_policies_are_deterministic_and_total() {
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::HashByFile,
            PlacementPolicy::CapacityAware,
        ] {
            let mut cfg = FleetConfig::new(4);
            cfg.placement = policy;
            let (fleet, specs) = fleet_with(cfg.clone(), 8, 100);
            let a = fleet.placement(&specs);
            let b = fleet.placement(&specs);
            assert_eq!(a, b, "{policy}: placement must be pure");
            assert!(a.iter().all(|&d| d < 4), "{policy}: devices in range");
            if policy == PlacementPolicy::RoundRobin {
                assert_eq!(a, vec![0, 1, 2, 3, 0, 1, 2, 3]);
            }
        }
    }

    #[test]
    fn capacity_aware_balances_bytes_not_counts() {
        let mut cfg = FleetConfig::new(2);
        cfg.placement = PlacementPolicy::CapacityAware;
        let mut fleet = Fleet::new(SystemParams::paper_testbed(), cfg);
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        // One huge file then three small ones: greedy least-bytes puts
        // the big file alone on device 0 and the small ones on device 1.
        let sizes = [4000u32, 100, 100, 100];
        let mut specs = Vec::new();
        for (i, n) in sizes.iter().enumerate() {
            let file = format!("svc{i}.txt");
            fleet
                .create_input_file(&file, &edge_text(*n, i as u64))
                .unwrap();
            specs.push(AppSpec::cpu_app(
                &format!("svc{i}"),
                &file,
                schema.clone(),
                1,
                50.0,
            ));
        }
        assert_eq!(fleet.placement(&specs), vec![0, 1, 1, 1]);
    }

    #[test]
    fn fleet_serve_accounts_every_offered_request() {
        let (mut fleet, specs) = fleet_with(FleetConfig::new(4), 6, 500);
        let rep = fleet.serve(&specs, &quick_cfg()).unwrap();
        assert!(rep.aggregate.offered > 0);
        assert_eq!(
            rep.aggregate.offered,
            rep.per_device.iter().map(|r| r.offered).sum::<u64>(),
            "routing partitions the global stream"
        );
        assert_eq!(
            rep.aggregate.completed + rep.aggregate.shed + rep.aggregate.failed,
            rep.aggregate.offered
        );
    }

    #[test]
    fn fleet_serve_is_deterministic_across_rebuilds() {
        let run = || {
            let (mut fleet, specs) = fleet_with(FleetConfig::new(3), 5, 400);
            format!("{}", fleet.serve(&specs, &quick_cfg()).unwrap())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kill_schedule_rebalances_onto_healthy_peers() {
        let mut cfg = FleetConfig::new(3);
        cfg.placement = PlacementPolicy::RoundRobin;
        cfg.kills = vec![DeviceKill::parse("1@0.005").unwrap()];
        let (mut fleet, specs) = fleet_with(cfg, 3, 400);
        let serve_cfg = quick_cfg();
        let rep = fleet.serve(&specs, &serve_cfg).unwrap();
        assert!(rep.rebalanced > 0, "post-kill arrivals must migrate");
        assert_eq!(
            rep.aggregate.completed + rep.aggregate.shed + rep.aggregate.failed,
            rep.aggregate.offered,
            "rebalanced requests still end served, shed, or failed"
        );
        // Device 1 saw only pre-kill arrivals; its peers absorbed the rest.
        assert!(rep.per_device[1].offered < rep.per_device[0].offered + rep.per_device[2].offered);
    }

    #[test]
    fn all_devices_dead_is_a_typed_error_not_a_panic() {
        let mut cfg = FleetConfig::new(2);
        cfg.kills = vec![
            DeviceKill::parse("0@0").unwrap(),
            DeviceKill::parse("1@0").unwrap(),
        ];
        let (mut fleet, specs) = fleet_with(cfg, 2, 100);
        let err = fleet.serve(&specs, &quick_cfg()).unwrap_err();
        let RunError::DeviceDown(d) = err else {
            panic!("expected DeviceDown, got {err:?}");
        };
        assert_eq!(d.killed_at_s, 0.0);
        let chain = morpheus_simcore::render_error_chain(&RunError::DeviceDown(d));
        assert!(chain.contains("no healthy device"), "chain: {chain}");
        assert!(chain.contains("killed at"), "chain: {chain}");
    }

    #[test]
    fn kill_spec_parses_and_rejects() {
        let k = DeviceKill::parse("2@0.01").unwrap();
        assert_eq!(k.device, 2);
        assert_eq!(k.at, SimTime::ZERO + SimDuration::from_secs_f64(0.01));
        for bad in ["", "2", "@1", "x@1", "1@x", "1@-1", "1@inf"] {
            assert!(DeviceKill::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn out_of_range_kill_is_a_typed_config_error() {
        let mut cfg = FleetConfig::new(4);
        cfg.kills = vec![DeviceKill::parse("9@0.1").unwrap()];
        let err = cfg.validate().unwrap_err();
        assert_eq!(
            err,
            FleetConfigError::KillOutOfRange {
                device: 9,
                devices: 4
            }
        );
        let err = Fleet::try_new(SystemParams::paper_testbed(), cfg).unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("kill names device 9"), "{text}");
        assert!(text.contains("the fleet has 4"), "{text}");
        assert!(
            Fleet::try_new(SystemParams::paper_testbed(), FleetConfig::new(0)).is_err(),
            "zero devices is a config error too"
        );
    }

    #[test]
    #[should_panic(expected = "kill names device 9")]
    fn out_of_range_kill_still_panics_via_new() {
        let mut cfg = FleetConfig::new(4);
        cfg.kills = vec![DeviceKill::parse("9@0.1").unwrap()];
        Fleet::new(SystemParams::paper_testbed(), cfg);
    }

    #[test]
    fn placement_skips_devices_dead_at_t0() {
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::HashByFile,
            PlacementPolicy::CapacityAware,
        ] {
            let mut cfg = FleetConfig::new(4);
            cfg.placement = policy;
            cfg.kills = vec![DeviceKill::parse("0@0").unwrap()];
            let (fleet, specs) = fleet_with(cfg, 8, 100);
            let p = fleet.placement(&specs);
            assert!(
                p.iter().all(|&d| d != 0),
                "{policy}: a device dead at t=0 must receive no tenants, got {p:?}"
            );
            if policy == PlacementPolicy::RoundRobin {
                // Round-robin over the three surviving devices.
                assert_eq!(p, vec![1, 2, 3, 1, 2, 3, 1, 2]);
            }
        }
    }

    #[test]
    fn placement_keeps_devices_killed_later_or_healed() {
        // Killed mid-run: still placed (it serves until the kill).
        let mut cfg = FleetConfig::new(2);
        cfg.placement = PlacementPolicy::RoundRobin;
        cfg.kills = vec![DeviceKill::parse("0@0.01").unwrap()];
        let (fleet, specs) = fleet_with(cfg, 4, 100);
        assert_eq!(fleet.placement(&specs), vec![0, 1, 0, 1]);

        // Dead at t=0 but healing: it comes back, so it keeps tenants.
        let mut cfg = FleetConfig::new(2);
        cfg.placement = PlacementPolicy::RoundRobin;
        cfg.kills = vec![DeviceKill::parse("0@0").unwrap()];
        cfg.control.heal = Some(crate::control::HealPolicy::default());
        let (fleet, specs) = fleet_with(cfg, 4, 100);
        assert_eq!(fleet.placement(&specs), vec![0, 1, 0, 1]);
    }

    #[test]
    fn t0_dead_device_serves_nothing_and_peers_absorb_all() {
        let mut cfg = FleetConfig::new(3);
        cfg.placement = PlacementPolicy::RoundRobin;
        cfg.kills = vec![DeviceKill::parse("1@0").unwrap()];
        let (mut fleet, specs) = fleet_with(cfg, 6, 300);
        let rep = fleet.serve(&specs, &quick_cfg()).unwrap();
        assert_eq!(rep.per_device[1].offered, 0, "dead at t=0 serves nothing");
        assert_eq!(
            rep.rebalanced, 0,
            "placement already skipped the dead device, so nothing pays the rebalance path"
        );
        assert_eq!(
            rep.aggregate.completed + rep.aggregate.shed + rep.aggregate.failed,
            rep.aggregate.offered
        );
    }

    #[test]
    fn aggregate_utilization_is_makespan_weighted() {
        let (mut fleet, specs) = fleet_with(FleetConfig::new(2), 4, 300);
        let rep = fleet.serve(&specs, &quick_cfg()).unwrap();
        let expected_num: f64 = rep
            .per_device
            .iter()
            .map(|r| r.metrics.get("ssd_core_utilization") * r.makespan_s)
            .sum();
        let expected_den: f64 = rep.per_device.iter().map(|r| r.makespan_s).sum();
        let got = rep.aggregate.metrics.get("ssd_core_utilization");
        assert!(
            (got - expected_num / expected_den).abs() < 1e-12,
            "weighted mean: got {got}, want {}",
            expected_num / expected_den
        );
        // An idle device (zero util, zero-ish makespan) must not halve
        // the fleet number the way the old unweighted mean did.
        let mut idle = rep.per_device[0].clone();
        idle.makespan_s = 0.0;
        idle.metrics.set("ssd_core_utilization", 0.0);
        let busy = rep.per_device[1].clone();
        let busy_util = busy.metrics.get("ssd_core_utilization");
        let agg = aggregate_reports(&[idle, busy]);
        assert!(
            (agg.metrics.get("ssd_core_utilization") - busy_util).abs() < 1e-12,
            "a zero-makespan device contributes zero weight"
        );
    }

    #[test]
    fn control_off_reports_render_like_pre_control_builds() {
        let (mut fleet, specs) = fleet_with(FleetConfig::new(2), 4, 300);
        let rep = fleet.serve(&specs, &quick_cfg()).unwrap();
        assert!(rep.control.is_none());
        assert!(
            !format!("{rep}").contains("control:"),
            "control-off display must not mention the control plane"
        );
    }

    #[test]
    fn rolling_update_serve_loses_nothing_and_cycles_every_device() {
        let mut cfg = FleetConfig::new(4);
        cfg.placement = PlacementPolicy::RoundRobin;
        cfg.control.rolling = Some(crate::control::RollingUpdate::starting_at(0.002));
        let (mut fleet, specs) = fleet_with(cfg, 8, 300);
        let mut serve_cfg = ServeConfig::new(3000.0, 0.03);
        serve_cfg.mode = Mode::Morpheus;
        let rep = fleet.serve(&specs, &serve_cfg).unwrap();
        assert_eq!(rep.aggregate.failed, 0, "a rolling update loses nothing");
        assert_eq!(
            rep.aggregate.completed + rep.aggregate.shed,
            rep.aggregate.offered
        );
        assert!(
            rep.rebalanced > 0,
            "drained devices steer arrivals onto peers"
        );
        let ctl = rep.control.as_ref().expect("control plane was active");
        assert!(ctl.all_in_service(), "every device returns to service");
        assert_eq!(
            (
                ctl.counts.draining,
                ctl.counts.updating,
                ctl.counts.rebooting
            ),
            (4, 4, 4),
            "every device walks the full cycle"
        );
        assert_eq!(ctl.counts.failed, 0);
        let text = format!("{rep}");
        assert!(text.contains("control: transitions"), "{text}");
        assert!(text.contains("ctl dev3:"), "{text}");
    }

    #[test]
    fn control_trace_lands_on_ctl_tracks() {
        let mut cfg = FleetConfig::new(2);
        cfg.placement = PlacementPolicy::RoundRobin;
        cfg.control.rolling = Some(crate::control::RollingUpdate::starting_at(0.001));
        let (mut fleet, specs) = fleet_with(cfg, 4, 200);
        fleet.enable_tracing();
        fleet.serve(&specs, &quick_cfg()).unwrap();
        let log = fleet.take_merged_trace();
        let ctl_events: Vec<&TraceEvent> = log
            .events
            .iter()
            .filter(|e| e.track.starts_with("ctl/"))
            .collect();
        assert!(!ctl_events.is_empty(), "lifecycle events on ctl/ tracks");
        assert!(ctl_events.iter().any(|e| e.name == "draining"));
        assert!(ctl_events
            .iter()
            .all(|e| e.kind == TraceEventKind::Instant && e.layer == TraceLayer::Host));
    }

    #[test]
    fn merged_trace_has_per_device_tracks() {
        let mut cfg = FleetConfig::new(2);
        cfg.placement = PlacementPolicy::RoundRobin;
        let (mut fleet, specs) = fleet_with(cfg, 4, 200);
        fleet.enable_tracing();
        fleet.serve(&specs, &quick_cfg()).unwrap();
        let log = fleet.take_merged_trace();
        assert!(!log.is_empty());
        let tracks: std::collections::BTreeSet<&str> = log
            .events
            .iter()
            .filter_map(|e| e.track.split('/').next())
            .collect();
        assert!(
            tracks.contains("dev0") && tracks.contains("dev1"),
            "{tracks:?}"
        );
    }
}
