//! Integration tests for the serialization direction and the runtime's
//! command-plan lowering.

use morpheus::{ms_stream_create, CommandPlan, Mode, System, SystemParams};
use morpheus_format::{parse_buffer, FieldKind, Schema, TextWriter};
use morpheus_nvme::MorpheusCommand;

fn objects(n: u64) -> morpheus_format::ParsedColumns {
    let schema = Schema::new(vec![FieldKind::I32, FieldKind::U32]);
    let mut w = TextWriter::new();
    for i in 0..n {
        w.write_i64((i as i64 * 17 % 5000) - 2500);
        w.sep();
        w.write_u64(i * 3 % 10_000);
        w.newline();
    }
    let (mut p, _) = parse_buffer(w.as_bytes(), &schema).unwrap();
    p.canonicalize();
    p
}

#[test]
fn serialize_then_deserialize_round_trips_through_the_drive() {
    let objs = objects(30_000);
    let mut sys = System::new(SystemParams::paper_testbed());

    // Serialize on the drive (MWRITE through a SerializeApp).
    let rep = sys
        .run_serialize(&objs, "roundtrip.txt", Mode::Morpheus)
        .unwrap();
    assert_eq!(rep.object_bytes, objs.binary_bytes());
    assert!(rep.text_bytes > 0);

    // Deserialize the produced file back — also on the drive.
    let spec =
        morpheus::AppSpec::cpu_app("roundtrip", "roundtrip.txt", objs.schema.clone(), 2, 50.0);
    let back = sys.run(&spec, Mode::Morpheus).unwrap();
    assert_eq!(
        back.objects, objs,
        "drive->drive round trip must be lossless"
    );
}

#[test]
fn serialization_report_is_consistent() {
    let objs = objects(10_000);
    let mut sys = System::new(SystemParams::paper_testbed());
    let conv = sys
        .run_serialize(&objs, "c.txt", Mode::Conventional)
        .unwrap();
    let morp = sys.run_serialize(&objs, "m.txt", Mode::Morpheus).unwrap();
    for r in [&conv, &morp] {
        assert!(r.serialize_s > 0.0);
        assert!(r.text_bytes > r.object_bytes / 2);
        assert!(r.pcie_bytes > 0);
    }
    // Conventional ships text; Morpheus ships binary (smaller here).
    assert!(morp.pcie_bytes < conv.pcie_bytes);
    // The recorded file length matches what the filesystem serves.
    assert_eq!(
        sys.read_file_bytes("m.txt").unwrap().len() as u64,
        morp.text_bytes
    );
}

#[test]
fn command_plan_matches_what_the_driver_issues() {
    let mut sys = System::new(SystemParams::paper_testbed());
    let data = vec![b'7'; 3_000_000];
    // "7 7 7 ..." would not parse as pairs; this test only inspects layout.
    sys.create_input_file("layout.bin", &data).unwrap();
    let stream = ms_stream_create(&sys.fs, "layout.bin", sys.params.mread_chunk_bytes).unwrap();
    let plan = CommandPlan::lower(&stream, 42, 0x4000, 16 * 1024, 0x2000);
    // One MINIT + ceil(3MB / 8MiB) = 1 MREAD + one MDEINIT.
    assert_eq!(plan.reads(), 1);
    assert_eq!(plan.commands.len(), 3);
    let covered: u64 = plan
        .commands
        .iter()
        .filter_map(|c| match c {
            MorpheusCommand::Read { blocks, .. } => Some(*blocks * 512),
            _ => None,
        })
        .sum();
    assert!(covered >= stream.len());
    assert!(covered - stream.len() < 512, "over-read is under one block");
}
