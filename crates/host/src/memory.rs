//! Host DRAM and the CPU–memory bus.
//!
//! The conventional model moves every input byte across the CPU-memory bus
//! at least twice (DMA into buffer X, CPU load for parsing) and the
//! resulting objects once more (store to location Y), while the Morpheus
//! model touches DRAM only with finished objects (§II, §III). [`MemBus`]
//! makes that bandwidth a contended resource and counts the traffic that
//! backs the paper's "58 % less CPU-memory traffic" claim; [`HostDram`]
//! hands out buffer addresses that PCIe DMA can target.

use morpheus_simcore::{Bandwidth, Interval, SimDuration, SimTime, Timeline};

/// The CPU–memory bus: a bandwidth resource plus a traffic counter.
#[derive(Debug)]
pub struct MemBus {
    bw: Bandwidth,
    timeline: Timeline,
    traffic_bytes: u64,
}

impl MemBus {
    /// Creates a bus with the given bandwidth (the paper's DDR3 testbed
    /// peaks at 12.8 GB/s).
    pub fn new(bw: Bandwidth) -> Self {
        MemBus {
            bw,
            timeline: Timeline::new("membus", 1),
            traffic_bytes: 0,
        }
    }

    /// A 12.8 GB/s DDR3-1600 channel.
    pub fn ddr3_1600() -> Self {
        Self::new(Bandwidth::from_gb_per_s(12.8))
    }

    /// Moves `bytes` across the bus starting no earlier than `ready`.
    pub fn transfer(&mut self, ready: SimTime, bytes: u64) -> Interval {
        self.traffic_bytes += bytes;
        self.timeline.acquire_bytes(ready, bytes, self.bw)
    }

    /// Accounts traffic without occupying the bus (used when the time is
    /// already charged elsewhere, e.g. CPU parse loops whose loads are
    /// overlapped by the core model).
    pub fn account(&mut self, bytes: u64) {
        self.traffic_bytes += bytes;
    }

    /// Total bytes moved.
    pub fn traffic_bytes(&self) -> u64 {
        self.traffic_bytes
    }

    /// Time the bus has been busy.
    pub fn busy(&self) -> SimDuration {
        self.timeline.busy()
    }

    /// The bus rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bw
    }

    /// Clears traffic and timeline state.
    pub fn reset(&mut self) {
        self.traffic_bytes = 0;
        self.timeline.reset();
    }
}

/// Host DRAM: capacity tracking and a bump allocator for DMA buffers.
///
/// Addresses returned are bus addresses in the host range (below
/// `HOST_MEMORY_TOP` in the PCIe fabric's map).
#[derive(Debug, Clone)]
pub struct HostDram {
    capacity: u64,
    next: u64,
    allocated: u64,
    high_watermark: u64,
}

impl HostDram {
    /// Creates a DRAM of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        HostDram {
            capacity,
            next: 0x1000, // leave page zero unmapped
            allocated: 0,
            high_watermark: 0,
        }
    }

    /// Allocates a buffer, returning its bus address.
    ///
    /// Returns `None` if capacity is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> Option<u64> {
        if self.allocated + bytes > self.capacity {
            return None;
        }
        let addr = self.next;
        // Page-align the next allocation.
        self.next += bytes.div_ceil(4096) * 4096;
        self.allocated += bytes;
        self.high_watermark = self.high_watermark.max(self.allocated);
        Some(addr)
    }

    /// Releases `bytes` of a previous allocation (bump allocators do not
    /// reuse addresses; this only tracks occupancy).
    pub fn free(&mut self, bytes: u64) {
        self.allocated = self.allocated.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Peak allocation over the run (the paper's memory-pressure argument:
    /// Morpheus eliminates buffer X entirely).
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_takes_bandwidth_time_and_counts() {
        let mut bus = MemBus::new(Bandwidth::from_gb_per_s(1.0));
        let iv = bus.transfer(SimTime::ZERO, 1_000_000_000);
        assert_eq!(iv.duration().as_secs_f64(), 1.0);
        assert_eq!(bus.traffic_bytes(), 1_000_000_000);
    }

    #[test]
    fn transfers_contend() {
        let mut bus = MemBus::ddr3_1600();
        let a = bus.transfer(SimTime::ZERO, 1 << 30);
        let b = bus.transfer(SimTime::ZERO, 1 << 30);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn account_adds_traffic_without_time() {
        let mut bus = MemBus::ddr3_1600();
        bus.account(4096);
        assert_eq!(bus.traffic_bytes(), 4096);
        assert!(bus.busy().is_zero());
    }

    #[test]
    fn dram_allocations_are_disjoint_and_page_aligned() {
        let mut d = HostDram::new(1 << 30);
        let a = d.alloc(100).unwrap();
        let b = d.alloc(5000).unwrap();
        assert!(b >= a + 4096);
        assert_eq!(a % 4096, 0);
        assert_eq!(b % 4096, 0);
    }

    #[test]
    fn dram_capacity_enforced() {
        let mut d = HostDram::new(8192);
        assert!(d.alloc(8192).is_some());
        assert!(d.alloc(1).is_none());
        d.free(8192);
        assert!(d.alloc(4096).is_some());
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut d = HostDram::new(1 << 20);
        d.alloc(1000).unwrap();
        d.alloc(2000).unwrap();
        d.free(2500);
        d.alloc(100).unwrap();
        assert_eq!(d.high_watermark(), 3000);
    }
}
