//! Property-based tests: the FTL must behave exactly like a flat
//! `HashMap<Lpn, Vec<u8>>` under arbitrary interleavings of writes,
//! overwrites, trims, and reads — including through GC storms and with
//! injected correctable errors.

use morpheus_flash::{EccModel, FlashArray, FlashGeometry, FlashTiming};
use morpheus_ftl::{Ftl, FtlConfig, FtlError, Lpn};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write(u64, Vec<u8>),
    Trim(u64),
    Read(u64),
}

fn op_strategy(cap: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..cap, proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(l, d)| Op::Write(l, d)),
        1 => (0..cap).prop_map(Op::Trim),
        2 => (0..cap).prop_map(Op::Read),
    ]
}

fn run_model_check(ops: Vec<Op>, ecc: EccModel, seed: u64) {
    let flash = FlashArray::with_ecc(FlashGeometry::small(), FlashTiming::default(), ecc, seed);
    let mut ftl = Ftl::new(flash, FtlConfig::default());
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Write(l, d) => {
                ftl.write(Lpn(l), &d).unwrap();
                model.insert(l, d);
            }
            Op::Trim(l) => {
                ftl.trim(Lpn(l)).unwrap();
                model.remove(&l);
            }
            Op::Read(l) => match (ftl.read(Lpn(l)), model.get(&l)) {
                (Ok(out), Some(expect)) => assert_eq!(&out.data[..], &expect[..]),
                (Err(FtlError::Unmapped(_)), None) => {}
                (got, want) => panic!("mismatch: ftl={got:?} model={want:?}"),
            },
        }
    }
    // Final full audit.
    for (l, expect) in &model {
        let out = ftl.read(Lpn(*l)).unwrap();
        assert_eq!(&out.data[..], &expect[..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ftl_matches_flat_map(ops in proptest::collection::vec(op_strategy(112), 1..300)) {
        run_model_check(ops, EccModel::perfect(), 0);
    }

    #[test]
    fn ftl_matches_flat_map_with_correctable_errors(
        ops in proptest::collection::vec(op_strategy(112), 1..200),
        seed in any::<u64>(),
    ) {
        let ecc = EccModel {
            correctable_prob: 0.3,
            correction_retries: 2,
            ..EccModel::perfect()
        };
        run_model_check(ops, ecc, seed);
    }

    #[test]
    fn mapping_is_injective(ops in proptest::collection::vec(op_strategy(112), 1..300)) {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::default());
        let mut ftl = Ftl::new(flash, FtlConfig::default());
        for op in ops {
            match op {
                Op::Write(l, d) => { ftl.write(Lpn(l), &d).unwrap(); }
                Op::Trim(l) => { ftl.trim(Lpn(l)).unwrap(); }
                Op::Read(_) => {}
            }
        }
        let mut seen = std::collections::HashSet::new();
        for l in 0..ftl.capacity_pages() {
            if let Some(ppa) = ftl.translate(Lpn(l)) {
                prop_assert!(seen.insert(ppa));
            }
        }
    }

    #[test]
    fn write_amplification_is_at_least_one(
        ops in proptest::collection::vec(op_strategy(112), 1..200),
    ) {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::default());
        let mut ftl = Ftl::new(flash, FtlConfig::default());
        for op in ops {
            match op {
                Op::Write(l, d) => { ftl.write(Lpn(l), &d).unwrap(); }
                Op::Trim(l) => { ftl.trim(Lpn(l)).unwrap(); }
                Op::Read(l) => { let _ = ftl.read(Lpn(l)); }
            }
        }
        prop_assert!(ftl.stats().write_amplification() >= 1.0);
    }
}
