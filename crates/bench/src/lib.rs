//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). Inputs are the paper's nominal sizes
//! divided by a `--scale` factor (default 256) and clamped to a tractable
//! range; all reported quantities are ratios or rates, which a scale sweep
//! (`ablate --sweep scale`) shows to be size-stable.

#![warn(missing_docs)]

use morpheus::{Mode, RunReport, StorageKind, System, SystemParams};
use morpheus_workloads::{run_benchmark, stage_input, BenchOutcome, Benchmark};

/// Command-line configuration shared by all figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Divisor applied to the paper's nominal input sizes.
    pub scale: u64,
    /// Generator seed.
    pub seed: u64,
}

impl Harness {
    /// Parses `--scale N` and `--seed N` from the process arguments.
    pub fn from_args() -> Self {
        let mut h = Harness {
            scale: 256,
            seed: 42,
        };
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    h.scale = v;
                }
            }
            if args[i] == "--seed" {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    h.seed = v;
                }
            }
        }
        h
    }

    /// Bytes staged for a benchmark at this scale.
    pub fn input_bytes(&self, bench: &Benchmark) -> u64 {
        (bench.nominal_bytes / self.scale.max(1)).clamp(2_000_000, 48_000_000)
    }

    /// A fresh paper-testbed system with this benchmark's input staged.
    pub fn app_system(&self, bench: &Benchmark) -> System {
        self.app_system_with(bench, StorageKind::NvmeSsd, None)
    }

    /// A fresh system with the given conventional-path storage device and
    /// optional host frequency override.
    pub fn app_system_with(
        &self,
        bench: &Benchmark,
        storage: StorageKind,
        freq_hz: Option<f64>,
    ) -> System {
        let mut params = SystemParams::paper_testbed();
        params.storage = storage;
        let mut sys = System::new(params);
        if let Some(f) = freq_hz {
            sys.cpu.set_frequency(f);
        }
        stage_input(&mut sys, bench, self.input_bytes(bench), self.seed)
            .expect("staging benchmark input");
        sys
    }
}

/// Runs one benchmark under one mode on its own fresh system.
pub fn run_mode(h: &Harness, bench: &Benchmark, mode: Mode) -> BenchOutcome {
    let mut sys = h.app_system(bench);
    run_benchmark(&mut sys, bench, mode).expect("benchmark run")
}

/// Runs conventional and Morpheus over the *same* staged input.
pub fn run_pair(h: &Harness, bench: &Benchmark) -> (BenchOutcome, BenchOutcome) {
    let mut sys = h.app_system(bench);
    let conv = run_benchmark(&mut sys, bench, Mode::Conventional).expect("conventional run");
    let morp = run_benchmark(&mut sys, bench, Mode::Morpheus).expect("morpheus run");
    assert_eq!(
        conv.kernel, morp.kernel,
        "{}: modes must compute identical results",
        bench.name
    );
    (conv, morp)
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let s: f64 = xs
        .iter()
        .map(|x| {
            assert!(*x > 0.0, "geomean needs positive values");
            x.ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Prints an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a report's deserialization seconds.
pub fn deser_s(r: &RunReport) -> f64 {
    r.phases.deserialization_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn input_bytes_clamped() {
        let h = Harness {
            scale: 1_000_000,
            seed: 1,
        };
        let bench = &morpheus_workloads::suite()[0];
        assert_eq!(h.input_bytes(bench), 2_000_000);
    }
}
