//! Extent-based mini filesystem.
//!
//! The Morpheus runtime keeps file-permission checks and layout lookups on
//! the host: `ms_stream_create` "interacts with the underlying file system
//! to get permission to access a file and information about the logical
//! block addresses in file layouts" (§V-A2). [`SimFs`] provides exactly that
//! service over the SSD's logical block space: it allocates extents for
//! named files and returns their LBA layout; the actual bytes live in the
//! SSD (written through NVMe like any other data).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A contiguous run of logical blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Starting logical block address.
    pub slba: u64,
    /// Length in blocks.
    pub blocks: u64,
}

/// Metadata of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Exact byte length of the file (the last block may be partial).
    pub len: u64,
    /// The file's extents, in file order.
    pub extents: Vec<Extent>,
}

impl FileMeta {
    /// Total blocks across all extents.
    pub fn total_blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.blocks).sum()
    }
}

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// File already exists.
    Exists(String),
    /// File not found.
    NotFound(String),
    /// The volume has no space left.
    NoSpace,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Exists(n) => write!(f, "file {n:?} already exists"),
            FsError::NotFound(n) => write!(f, "file {n:?} not found"),
            FsError::NoSpace => write!(f, "no space left on volume"),
        }
    }
}

impl Error for FsError {}

/// An extent-allocating filesystem over a logical block volume.
#[derive(Debug, Clone)]
pub struct SimFs {
    block_bytes: u64,
    volume_blocks: u64,
    next_lba: u64,
    /// Maximum extent length; longer files fragment into several extents,
    /// exercising multi-extent streams.
    max_extent_blocks: u64,
    files: BTreeMap<String, FileMeta>,
}

impl SimFs {
    /// Creates a filesystem over a volume of `volume_blocks` blocks of
    /// `block_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(block_bytes: u64, volume_blocks: u64) -> Self {
        assert!(
            block_bytes > 0 && volume_blocks > 0,
            "volume must be non-empty"
        );
        SimFs {
            block_bytes,
            volume_blocks,
            next_lba: 0,
            max_extent_blocks: 1 << 15,
            files: BTreeMap::new(),
        }
    }

    /// Limits extent length (forces fragmentation; used in tests).
    pub fn set_max_extent_blocks(&mut self, blocks: u64) {
        assert!(blocks > 0, "extents must be non-empty");
        self.max_extent_blocks = blocks;
    }

    /// Bytes per block.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Creates a file of `len` bytes and returns its metadata.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Exists`] for duplicate names and
    /// [`FsError::NoSpace`] when the volume is full.
    pub fn create(&mut self, name: &str, len: u64) -> Result<&FileMeta, FsError> {
        if self.files.contains_key(name) {
            return Err(FsError::Exists(name.to_string()));
        }
        let mut blocks_needed = len.div_ceil(self.block_bytes).max(1);
        if self.next_lba + blocks_needed > self.volume_blocks {
            return Err(FsError::NoSpace);
        }
        let mut extents = Vec::new();
        while blocks_needed > 0 {
            let take = blocks_needed.min(self.max_extent_blocks);
            extents.push(Extent {
                slba: self.next_lba,
                blocks: take,
            });
            self.next_lba += take;
            blocks_needed -= take;
        }
        self.files
            .insert(name.to_string(), FileMeta { len, extents });
        Ok(&self.files[name])
    }

    /// Looks up a file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown names.
    pub fn open(&self, name: &str) -> Result<&FileMeta, FsError> {
        self.files
            .get(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    /// Shrinks a file's recorded byte length (the extents keep their
    /// reserved blocks; used when a writer learns the final size only
    /// after producing the data).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown names. Growing a file is
    /// a programming error and panics.
    pub fn truncate(&mut self, name: &str, len: u64) -> Result<(), FsError> {
        let meta = self
            .files
            .get_mut(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        assert!(len <= meta.len, "truncate cannot grow a file");
        meta.len = len;
        Ok(())
    }

    /// Removes a file's metadata (space is not reclaimed by this simple
    /// bump allocator).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown names.
    pub fn remove(&mut self, name: &str) -> Result<FileMeta, FsError> {
        self.files
            .remove(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))
    }

    /// Iterates file names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_open_round_trip() {
        let mut fs = SimFs::new(512, 1 << 20);
        let meta = fs.create("input.txt", 100_000).unwrap().clone();
        assert_eq!(meta.len, 100_000);
        assert_eq!(meta.total_blocks(), 100_000u64.div_ceil(512));
        assert_eq!(fs.open("input.txt").unwrap(), &meta);
    }

    #[test]
    fn files_do_not_overlap() {
        let mut fs = SimFs::new(512, 1 << 20);
        let a = fs.create("a", 10_000).unwrap().clone();
        let b = fs.create("b", 10_000).unwrap().clone();
        let a_end = a.extents.last().unwrap().slba + a.extents.last().unwrap().blocks;
        assert!(b.extents[0].slba >= a_end);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut fs = SimFs::new(512, 1024);
        fs.create("x", 1).unwrap();
        assert_eq!(fs.create("x", 1).unwrap_err(), FsError::Exists("x".into()));
    }

    #[test]
    fn missing_open_rejected() {
        let fs = SimFs::new(512, 1024);
        assert_eq!(
            fs.open("nope").unwrap_err(),
            FsError::NotFound("nope".into())
        );
    }

    #[test]
    fn volume_capacity_enforced() {
        let mut fs = SimFs::new(512, 4);
        fs.create("a", 512 * 4).unwrap();
        assert_eq!(fs.create("b", 1).unwrap_err(), FsError::NoSpace);
    }

    #[test]
    fn long_files_fragment_into_extents() {
        let mut fs = SimFs::new(512, 1 << 20);
        fs.set_max_extent_blocks(10);
        let meta = fs.create("big", 512 * 25).unwrap();
        assert_eq!(meta.extents.len(), 3);
        assert_eq!(meta.total_blocks(), 25);
        // Extents are contiguous in file order.
        assert_eq!(meta.extents[0].blocks, 10);
        assert_eq!(meta.extents[1].slba, meta.extents[0].slba + 10);
    }

    #[test]
    fn zero_length_file_still_gets_a_block() {
        let mut fs = SimFs::new(512, 1024);
        assert_eq!(fs.create("empty", 0).unwrap().total_blocks(), 1);
    }

    #[test]
    fn truncate_shrinks_length() {
        let mut fs = SimFs::new(512, 1024);
        fs.create("x", 1000).unwrap();
        fs.truncate("x", 100).unwrap();
        assert_eq!(fs.open("x").unwrap().len, 100);
        assert!(fs.truncate("missing", 0).is_err());
    }

    #[test]
    fn remove_forgets_file() {
        let mut fs = SimFs::new(512, 1024);
        fs.create("x", 1).unwrap();
        fs.remove("x").unwrap();
        assert!(fs.open("x").is_err());
        assert_eq!(fs.names().count(), 0);
    }
}
