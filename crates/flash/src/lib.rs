//! NAND flash array model.
//!
//! Models the flash medium inside the Morpheus-SSD at the level the paper's
//! results depend on: a [`FlashGeometry`] of channels × dies × planes ×
//! blocks × pages, per-operation [`FlashTiming`] (page read/program latency,
//! block erase latency, channel bus transfer rate), *real page contents*
//! (bytes written are bytes read back), NAND ordering rules (program-once
//! pages, sequential programming within a block, erase-before-reuse), wear
//! counters, grown bad blocks, and a bit-error/ECC model for failure
//! injection.
//!
//! The array is purely functional + timing-descriptive: each operation
//! returns a [`FlashOp`] describing how long the die core and the channel
//! bus are occupied; the SSD controller layers those onto its channel
//! [`Timeline`](morpheus_simcore::Timeline)s.
//!
//! # Example
//!
//! ```
//! use morpheus_flash::{FlashArray, FlashGeometry, FlashTiming};
//!
//! let mut array = FlashArray::new(FlashGeometry::small(), FlashTiming::default());
//! let ppa = array.geometry().ppa(0, 0, 0, 0, 0);
//! array.program_page(ppa, b"hello flash").unwrap();
//! let (data, _op) = array.read_page(ppa).unwrap();
//! assert_eq!(&data[..], b"hello flash");
//! ```

#![warn(missing_docs)]

mod array;
mod errors;
mod geometry;
mod page;
mod timing;

pub use array::{FlashArray, FlashOp, FlashOpKind, FlashStats, PageState};
pub use errors::{EccModel, FlashError};
pub use geometry::{BlockId, FlashGeometry, Ppa};
pub use page::{copy_audit, PageData};
pub use timing::FlashTiming;
