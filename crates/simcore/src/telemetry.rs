//! Windowed telemetry time-series and the SLO / error-budget engine.
//!
//! A run report says *what* happened; a trace says *where the time went*;
//! this module says *when things changed*. A [`TelemetrySampler`] buckets
//! counters, gauges, occupancy spans, and latency histograms into
//! fixed-size **sim-time** windows (e.g. `--telemetry-window 10ms`), and
//! [`TelemetrySampler::finalize`] folds them into a [`TelemetryReport`]:
//! one [`Metrics`] bag per window plus cumulative totals and histograms.
//!
//! On top of the series sits an SLO engine. A [`SloSpec`] holds
//! declarative objectives parsed from strings like `p99<500us,avail>99.9`;
//! both kinds reduce to *ratio SLOs* (a target fraction of good events):
//!
//! * `pNN<thr` — at least NN% of completed requests finish within `thr`
//!   end-to-end. Good/bad is counted **exactly** per request at record
//!   time, not reconstructed from histogram buckets, so the verdict has
//!   no quantization error.
//! * `avail>PP` — at least PP% of offered requests complete (shed and
//!   failed requests are the bad events).
//!
//! Per window the engine computes the **burn rate** (bad fraction divided
//! by the budget fraction `1 - target`), a trailing slow burn over
//! [`SLOW_BURN_WINDOWS`] windows, the remaining error budget, and the
//! standard multi-window alert (fast burn ≥ [`FAST_BURN_ALERT`] *and*
//! slow burn ≥ [`SLOW_BURN_ALERT`], the Google SRE workbook's page-level
//! thresholds).
//!
//! Everything is deterministic: windows are keyed by integer nanosecond
//! division, per-window folds are commutative (so recording order cannot
//! leak into the output), and all emitters ([`TelemetryReport::to_csv`],
//! [`TelemetryReport::to_prometheus`], the sparklines) format numbers
//! through one canonical path. Zero-denominator windows (no events, no
//! lookups, zero makespan) read as `0.0`, never NaN.
//!
//! # Example
//!
//! ```
//! use morpheus_simcore::{SimDuration, SimTime, SloSpec, TelemetryConfig, TelemetrySampler};
//!
//! let cfg = TelemetryConfig {
//!     window: SimDuration::from_millis(10),
//!     slo: SloSpec::parse("p99<500us,avail>99.9").unwrap(),
//! };
//! let mut s = TelemetrySampler::new(&cfg);
//! let at = SimTime::from_nanos(3_000_000);
//! s.count("completed", at);
//! s.served(at, 200_000); // e2e 200us: good for both objectives
//! let rep = s.finalize(SimTime::from_nanos(25_000_000));
//! assert_eq!(rep.windows.len(), 3);
//! assert!(rep.slo.iter().all(|o| o.met));
//! ```

use crate::metrics::{Histogram, Metrics};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEventKind, TraceLog};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Fast-burn alert threshold: the one-window burn rate that pages
/// (consuming a 30-day budget in ~2 hours, per the SRE workbook).
pub const FAST_BURN_ALERT: f64 = 14.4;
/// Slow-burn alert threshold over the trailing window set.
pub const SLOW_BURN_ALERT: f64 = 6.0;
/// Number of trailing windows (inclusive) the slow burn averages over.
pub const SLOW_BURN_WINDOWS: u64 = 6;

/// Parses a human duration (`500us`, `10ms`, `1.5s`, `250ns`) into a
/// [`SimDuration`]. A bare number is nanoseconds.
///
/// # Errors
///
/// Returns a description for an empty, non-positive, non-finite, or
/// unparseable spelling.
///
/// # Example
///
/// ```
/// use morpheus_simcore::{parse_duration, SimDuration};
///
/// assert_eq!(parse_duration("10ms").unwrap(), SimDuration::from_millis(10));
/// assert_eq!(parse_duration("1.5us").unwrap(), SimDuration::from_nanos(1_500));
/// assert!(parse_duration("10 fortnights").is_err());
/// ```
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty duration".into());
    }
    let (num, scale) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e9)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {s:?}"))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("duration must be positive, got {s:?}"));
    }
    Ok(SimDuration::from_nanos((v * scale).round() as u64))
}

/// What kind of events an objective classifies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// `pNN<thr`: a completed request is good iff its end-to-end latency
    /// is at or under the threshold. The quantile NN is the target.
    Latency {
        /// Inclusive end-to-end latency bound, nanoseconds.
        threshold_ns: u64,
    },
    /// `avail>PP`: an offered request is good iff it completes (shed and
    /// failed requests are bad).
    Availability,
}

/// One declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloObjective {
    /// The original spelling (used for display and Prometheus labels).
    pub spec: String,
    /// Event classifier.
    pub kind: SloKind,
    /// Target good fraction in `(0, 1)` (e.g. `p99<...` → 0.99).
    pub target: f64,
}

impl SloObjective {
    /// The error-budget fraction `1 - target`.
    fn budget_frac(&self) -> f64 {
        1.0 - self.target
    }
}

/// A parsed comma-separated list of objectives (possibly empty).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloSpec {
    /// The objectives, in spec order.
    pub objectives: Vec<SloObjective>,
}

impl SloSpec {
    /// The empty spec: telemetry without SLO evaluation.
    pub fn none() -> Self {
        SloSpec::default()
    }

    /// True if no objective was declared.
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Parses `p99<500us,avail>99.9`-style objective lists. Latency
    /// objectives are `p<quantile><<duration>`; availability objectives
    /// are `avail><percent>`. Quantiles and percents are in `(0, 100)`
    /// (a 100% target has no error budget to burn).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed objective.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty SLO spec".into());
        }
        let mut objectives = Vec::new();
        for term in s.split(',') {
            let term = term.trim();
            if let Some(rest) = term.strip_prefix("avail>") {
                let pct: f64 = rest
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad availability target in {term:?}"))?;
                if !(pct > 0.0 && pct < 100.0) {
                    return Err(format!("availability target must be in (0,100): {term:?}"));
                }
                objectives.push(SloObjective {
                    spec: term.to_string(),
                    kind: SloKind::Availability,
                    target: pct / 100.0,
                });
            } else if let Some(rest) = term.strip_prefix('p') {
                let (q, thr) = rest
                    .split_once('<')
                    .ok_or_else(|| format!("latency objective needs '<': {term:?}"))?;
                let q: f64 = q
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad quantile in {term:?}"))?;
                if !(q > 0.0 && q < 100.0) {
                    return Err(format!("quantile must be in (0,100): {term:?}"));
                }
                let threshold_ns = parse_duration(thr)
                    .map_err(|e| format!("bad threshold in {term:?}: {e}"))?
                    .as_nanos();
                objectives.push(SloObjective {
                    spec: term.to_string(),
                    kind: SloKind::Latency { threshold_ns },
                    target: q / 100.0,
                });
            } else {
                return Err(format!(
                    "unknown objective {term:?} (expected pNN<dur or avail>PP)"
                ));
            }
        }
        Ok(SloSpec { objectives })
    }
}

impl fmt::Display for SloSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, o) in self.objectives.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            f.write_str(&o.spec)?;
        }
        Ok(())
    }
}

/// Configuration of a telemetry run: the sampling window plus the
/// objectives to evaluate over it.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Window length (must be non-zero).
    pub window: SimDuration,
    /// Objectives to evaluate (may be empty).
    pub slo: SloSpec,
}

impl TelemetryConfig {
    /// A config with the given window and no objectives.
    pub fn new(window: SimDuration) -> Self {
        TelemetryConfig {
            window,
            slo: SloSpec::none(),
        }
    }
}

/// Gauge fold: sum, sample count, max — enough for mean/max columns.
#[derive(Debug, Clone, Copy, Default)]
struct GaugeAgg {
    sum: f64,
    n: u64,
    max: f64,
}

/// One window's raw folds (all commutative, so recording order is moot).
#[derive(Debug, Clone, Default)]
struct Bucket {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, GaugeAgg>,
    hists: BTreeMap<String, Histogram>,
    /// Per-objective (good, bad) event counts.
    slo: Vec<(u64, u64)>,
}

/// Buckets events into fixed sim-time windows during a run.
///
/// All recording methods take the sim-time the event belongs to; the
/// sampler never consults wall-clock state, so a run's telemetry is a
/// pure function of the simulation.
#[derive(Debug, Clone)]
pub struct TelemetrySampler {
    window: SimDuration,
    slo: Vec<SloObjective>,
    buckets: BTreeMap<u64, Bucket>,
}

impl TelemetrySampler {
    /// Creates a sampler for the given config.
    ///
    /// # Panics
    ///
    /// Panics on a zero window (a config bug, not a run outcome).
    pub fn new(cfg: &TelemetryConfig) -> Self {
        assert!(!cfg.window.is_zero(), "telemetry window must be non-zero");
        TelemetrySampler {
            window: cfg.window,
            slo: cfg.slo.objectives.clone(),
            buckets: BTreeMap::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn widx(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.window.as_nanos()
    }

    fn bucket(&mut self, at: SimTime) -> &mut Bucket {
        let w = self.widx(at);
        let n = self.slo.len();
        self.buckets.entry(w).or_insert_with(|| Bucket {
            slo: vec![(0, 0); n],
            ..Bucket::default()
        })
    }

    /// Adds `v` to a windowed counter series at `at`.
    pub fn add(&mut self, series: &str, at: SimTime, v: f64) {
        *self
            .bucket(at)
            .counters
            .entry(series.to_string())
            .or_insert(0.0) += v;
    }

    /// Increments a windowed counter series at `at`.
    pub fn count(&mut self, series: &str, at: SimTime) {
        self.add(series, at, 1.0);
    }

    /// Samples a gauge (queue depth, ring occupancy) at `at`. The window
    /// reports its mean and max; a window with no samples reports 0.
    pub fn gauge(&mut self, series: &str, at: SimTime, v: f64) {
        let g = self
            .bucket(at)
            .gauges
            .entry(series.to_string())
            .or_default();
        g.sum += v;
        g.n += 1;
        g.max = g.max.max(v);
    }

    /// Records a latency sample into the window holding `at` (the window
    /// exports `_p50/_p95/_p99/_max/_count` columns and the run keeps a
    /// cumulative merge for histogram exposition).
    pub fn latency(&mut self, series: &str, at: SimTime, ns: u64) {
        self.bucket(at)
            .hists
            .entry(series.to_string())
            .or_default()
            .record(ns);
    }

    /// Attributes a busy span to a `*_busy_ns` counter, apportioned
    /// pro-rata across every window it overlaps. Windows derive a sibling
    /// `*_occ` occupancy column (busy ns per window ns; can exceed 1.0
    /// when parallel lanes overlap).
    pub fn span(&mut self, series: &str, start: SimTime, end: SimTime) {
        let (s, e) = (start.as_nanos(), end.as_nanos());
        if e <= s {
            return;
        }
        let win = self.window.as_nanos();
        let mut w = s / win;
        loop {
            let lo = s.max(w * win);
            let hi = e.min((w + 1) * win);
            if hi > lo {
                self.add(series, SimTime::from_nanos(w * win), (hi - lo) as f64);
            }
            if hi >= e {
                break;
            }
            w += 1;
        }
    }

    /// Books one completed request for SLO accounting: good for
    /// availability objectives, good for a latency objective iff `e2e_ns`
    /// is at or under its threshold.
    pub fn served(&mut self, at: SimTime, e2e_ns: u64) {
        let slo = self.slo.clone();
        let b = self.bucket(at);
        for (i, o) in slo.iter().enumerate() {
            let good = match o.kind {
                SloKind::Latency { threshold_ns } => e2e_ns <= threshold_ns,
                SloKind::Availability => true,
            };
            if good {
                b.slo[i].0 += 1;
            } else {
                b.slo[i].1 += 1;
            }
        }
    }

    /// Books one request that never completed (shed or failed): bad for
    /// availability objectives, invisible to latency objectives (which
    /// judge only completed requests).
    pub fn lost(&mut self, at: SimTime) {
        let slo = self.slo.clone();
        let b = self.bucket(at);
        for (i, o) in slo.iter().enumerate() {
            if o.kind == SloKind::Availability {
                b.slo[i].1 += 1;
            }
        }
    }

    /// Folds the buckets into a report covering `ceil(makespan / window)`
    /// windows (at least enough to hold every recorded event).
    pub fn finalize(&self, makespan: SimTime) -> TelemetryReport {
        let win = self.window.as_nanos();
        let span_windows = makespan.as_nanos().div_ceil(win);
        let data_windows = self.buckets.keys().next_back().map_or(0, |w| w + 1);
        let nwin = span_windows.max(data_windows);
        let win_s = self.window.as_secs_f64();
        let empty = Bucket::default();

        // Column conventions derived once, from any window that saw data.
        let derives_rps = self
            .buckets
            .values()
            .any(|b| b.counters.contains_key("completed"));
        let derives_hit_rate = self.buckets.values().any(|b| {
            b.counters.contains_key("cache_hits") || b.counters.contains_key("cache_misses")
        });

        let mut windows = Vec::with_capacity(nwin as usize);
        let mut totals = Metrics::new();
        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        for w in 0..nwin {
            let b = self.buckets.get(&w).unwrap_or(&empty);
            let mut m = Metrics::new();
            for (k, v) in &b.counters {
                m.set(k, *v);
                totals.add(k, *v);
                if let Some(base) = k.strip_suffix("_busy_ns") {
                    m.set(&format!("{base}_occ"), *v / win as f64);
                }
            }
            for (k, g) in &b.gauges {
                m.set(
                    &format!("{k}_mean"),
                    if g.n > 0 { g.sum / g.n as f64 } else { 0.0 },
                );
                m.set(&format!("{k}_max"), g.max);
            }
            for (k, h) in &b.hists {
                h.export(k, &mut m);
                hists.entry(k.clone()).or_default().merge(h);
            }
            if derives_rps {
                m.set("rps", m.get("completed") / win_s);
            }
            if derives_hit_rate {
                let (hits, misses) = (m.get("cache_hits"), m.get("cache_misses"));
                let total = hits + misses;
                m.set(
                    "cache_hit_rate",
                    if total > 0.0 { hits / total } else { 0.0 },
                );
            }
            windows.push(TelemetryWindow {
                index: w,
                start_ns: w * win,
                metrics: m,
            });
        }

        let slo = self
            .slo
            .iter()
            .enumerate()
            .map(|(i, o)| self.evaluate(i, o, nwin))
            .collect();

        TelemetryReport {
            window_ns: win,
            windows,
            totals,
            hists: hists.into_iter().collect(),
            slo,
        }
    }

    /// Evaluates one objective over the full window range.
    fn evaluate(&self, idx: usize, o: &SloObjective, nwin: u64) -> SloOutcome {
        let budget = o.budget_frac();
        let per_win: Vec<(u64, u64)> = (0..nwin)
            .map(|w| self.buckets.get(&w).map_or((0, 0), |b| b.slo[idx]))
            .collect();
        let burn_of = |good: u64, bad: u64| -> f64 {
            let total = good + bad;
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            }
        };
        let mut points = Vec::with_capacity(nwin as usize);
        let (mut cum_good, mut cum_bad) = (0u64, 0u64);
        let mut alerts = 0u64;
        for w in 0..nwin {
            let (good, bad) = per_win[w as usize];
            cum_good += good;
            cum_bad += bad;
            let burn_fast = burn_of(good, bad);
            let lo = w.saturating_sub(SLOW_BURN_WINDOWS - 1) as usize;
            let (sg, sb) = per_win[lo..=w as usize]
                .iter()
                .fold((0, 0), |(g, b), (wg, wb)| (g + wg, b + wb));
            let burn_slow = burn_of(sg, sb);
            let cum_total = cum_good + cum_bad;
            let budget_remaining = if cum_total == 0 {
                1.0
            } else {
                1.0 - (cum_bad as f64 / cum_total as f64) / budget
            };
            let alert = burn_fast >= FAST_BURN_ALERT && burn_slow >= SLOW_BURN_ALERT;
            if alert {
                alerts += 1;
            }
            points.push(BudgetPoint {
                window: w,
                good,
                bad,
                burn_fast,
                burn_slow,
                budget_remaining,
                alert,
            });
        }
        let budget_remaining = points.last().map_or(1.0, |p| p.budget_remaining);
        SloOutcome {
            spec: o.spec.clone(),
            target: o.target,
            good: cum_good,
            bad: cum_bad,
            met: budget_remaining >= 0.0,
            budget_remaining,
            alerts,
            points,
        }
    }
}

/// One telemetry window's folded metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryWindow {
    /// Zero-based window index.
    pub index: u64,
    /// Window start, sim-time nanoseconds.
    pub start_ns: u64,
    /// The window's metric columns (sorted iteration).
    pub metrics: Metrics,
}

/// One window's error-budget state for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPoint {
    /// Window index.
    pub window: u64,
    /// Good events in this window.
    pub good: u64,
    /// Bad events in this window.
    pub bad: u64,
    /// One-window burn rate (bad fraction over budget fraction).
    pub burn_fast: f64,
    /// Trailing [`SLOW_BURN_WINDOWS`]-window burn rate.
    pub burn_slow: f64,
    /// Error budget left after this window (1.0 = untouched, negative =
    /// overspent).
    pub budget_remaining: f64,
    /// True when both burn thresholds fire (the paging condition).
    pub alert: bool,
}

/// The end-of-run verdict for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloOutcome {
    /// The objective's original spelling.
    pub spec: String,
    /// Target good fraction.
    pub target: f64,
    /// Total good events.
    pub good: u64,
    /// Total bad events.
    pub bad: u64,
    /// True when the run ended within budget.
    pub met: bool,
    /// Final error budget (negative = overspent).
    pub budget_remaining: f64,
    /// Windows in which the multi-window alert fired.
    pub alerts: u64,
    /// The per-window timeline.
    pub points: Vec<BudgetPoint>,
}

impl SloOutcome {
    /// The alert timeline: one char per window — `X` alert fired, `!`
    /// burning faster than budget (fast burn ≥ 1), `·` healthy.
    pub fn timeline(&self) -> String {
        self.points
            .iter()
            .map(|p| {
                if p.alert {
                    'X'
                } else if p.burn_fast >= 1.0 {
                    '!'
                } else {
                    '·'
                }
            })
            .collect()
    }
}

/// A finished run's windowed telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Window length, nanoseconds.
    pub window_ns: u64,
    /// The windows, in order, each with a sorted metric bag.
    pub windows: Vec<TelemetryWindow>,
    /// Counter totals across all windows.
    pub totals: Metrics,
    /// Cumulative latency histograms, sorted by series name.
    pub hists: Vec<(String, Histogram)>,
    /// One outcome per declared objective, in spec order.
    pub slo: Vec<SloOutcome>,
}

impl TelemetryReport {
    /// Rebuilds windowed telemetry from a trace log: per window, one
    /// `{layer}_events` counter and a `{layer}_busy_ns` busy fold (spans
    /// apportioned pro-rata). This is how suite runs get telemetry
    /// without threading a sampler through every model.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn from_trace(log: &TraceLog, window: SimDuration) -> TelemetryReport {
        let mut s = TelemetrySampler::new(&TelemetryConfig::new(window));
        let mut end = SimTime::ZERO;
        for e in &log.events {
            let layer = e.layer.as_str();
            s.count(&format!("{layer}_events"), SimTime::from_nanos(e.start_ns));
            if e.kind == TraceEventKind::Span && e.dur_ns > 0 {
                s.span(
                    &format!("{layer}_busy_ns"),
                    SimTime::from_nanos(e.start_ns),
                    SimTime::from_nanos(e.end_ns()),
                );
            }
            end = end.max(SimTime::from_nanos(e.end_ns()));
        }
        s.finalize(end)
    }

    /// The union of metric columns across all windows, sorted.
    pub fn column_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for w in &self.windows {
            for (k, _) in w.metrics.iter() {
                if !names.iter().any(|n| n == k) {
                    names.push(k.to_string());
                }
            }
        }
        names.sort();
        names
    }

    /// One series across all windows (missing values read 0).
    pub fn series(&self, name: &str) -> Vec<f64> {
        self.windows.iter().map(|w| w.metrics.get(name)).collect()
    }

    /// An eight-level unicode sparkline of a series, scaled to its own
    /// min/max (a flat non-zero series renders mid-height).
    pub fn sparkline(&self, series: &str) -> String {
        sparkline(&self.series(series))
    }

    /// Renders the windowed CSV: `window,start_ms` then the sorted column
    /// union; missing values are 0. `prefix` columns (e.g. `mode`, `rps`)
    /// are repeated on every row, letting sweep cells concatenate.
    pub fn to_csv(&self, prefix: &[(&str, String)]) -> String {
        let cols = self.column_names();
        let mut out = String::new();
        for (k, _) in prefix {
            let _ = write!(out, "{k},");
        }
        out.push_str("window,start_ms");
        for c in &cols {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
        for w in &self.windows {
            for (_, v) in prefix {
                let _ = write!(out, "{v},");
            }
            let _ = write!(out, "{},{}", w.index, fmt_num(w.start_ns as f64 / 1e6));
            for c in &cols {
                let _ = write!(out, ",{}", fmt_num(w.metrics.get(c)));
            }
            out.push('\n');
        }
        out
    }

    /// Renders Prometheus text exposition: counter totals, cumulative
    /// log₂ histograms (`_bucket`/`_sum`/`_count` with inclusive `le`
    /// bounds), every windowed column as a timestamped gauge series, and
    /// the SLO burn/budget series labelled by objective. `namespace`
    /// prefixes every family; `labels` ride on every sample.
    pub fn to_prometheus(&self, namespace: &str, labels: &[(&str, &str)]) -> String {
        let mut out = String::new();
        let base = render_labels(labels);

        for (k, v) in self.totals.iter() {
            let name = format!("{namespace}_{}_total", sanitize_metric_name(k));
            let _ = writeln!(out, "# HELP {name} Cumulative {k} over the run.");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{base} {}", fmt_num(v));
        }

        for (k, h) in &self.hists {
            let name = format!("{namespace}_{}", sanitize_metric_name(k));
            let _ = writeln!(out, "# HELP {name} Log2-bucket distribution of {k}.");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let counts = h.bucket_counts();
            let top = counts
                .iter()
                .rposition(|c| *c > 0)
                .map_or(0, |b| b + 1)
                .min(64);
            let mut cum = 0u64;
            for (b, c) in counts.iter().enumerate().take(top) {
                cum += c;
                let le = Histogram::bucket_upper(b);
                let lab = render_labels_with(labels, &[("le", &le.to_string())]);
                let _ = writeln!(out, "{name}_bucket{lab} {cum}");
            }
            let lab = render_labels_with(labels, &[("le", "+Inf")]);
            let _ = writeln!(out, "{name}_bucket{lab} {}", h.count());
            let _ = writeln!(out, "{name}_sum{base} {}", h.sum());
            let _ = writeln!(out, "{name}_count{base} {}", h.count());
        }

        let cols = self.column_names();
        for c in &cols {
            let name = format!("{namespace}_window_{}", sanitize_metric_name(c));
            let _ = writeln!(out, "# HELP {name} Per-window {c} (telemetry series).");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for w in &self.windows {
                let _ = writeln!(
                    out,
                    "{name}{base} {} {}",
                    fmt_num(w.metrics.get(c)),
                    w.start_ns / 1_000_000
                );
            }
        }

        if !self.slo.is_empty() {
            let fam = |out: &mut String, suffix: &str, what: &str| {
                let name = format!("{namespace}_slo_{suffix}");
                let _ = writeln!(out, "# HELP {name} {what}");
                let _ = writeln!(out, "# TYPE {name} gauge");
                name
            };
            let name = fam(
                &mut out,
                "burn_rate",
                "Windowed SLO burn rate (bad fraction over budget fraction).",
            );
            for o in &self.slo {
                for p in &o.points {
                    for (speed, v) in [("fast", p.burn_fast), ("slow", p.burn_slow)] {
                        let lab = render_labels_with(labels, &[("slo", &o.spec), ("speed", speed)]);
                        let _ = writeln!(
                            out,
                            "{name}{lab} {} {}",
                            fmt_num(v),
                            p.window * self.window_ns / 1_000_000
                        );
                    }
                }
            }
            let name = fam(
                &mut out,
                "error_budget_remaining",
                "Error budget left after each window (1 = untouched).",
            );
            for o in &self.slo {
                for p in &o.points {
                    let lab = render_labels_with(labels, &[("slo", &o.spec)]);
                    let _ = writeln!(
                        out,
                        "{name}{lab} {} {}",
                        fmt_num(p.budget_remaining),
                        p.window * self.window_ns / 1_000_000
                    );
                }
            }
        }
        out
    }
}

impl fmt::Display for TelemetryReport {
    /// The compact human summary appended to serve reports: window count,
    /// headline sparklines, and one verdict line per objective.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "telemetry windows={} window={}",
            self.windows.len(),
            SimDuration::from_nanos(self.window_ns)
        )?;
        for series in ["rps", "e2e_ns_p99", "queue_depth_mean", "cache_hit_rate"] {
            let vals = self.series(series);
            if vals.iter().all(|v| *v == 0.0) {
                continue;
            }
            let peak = vals.iter().cloned().fold(0.0f64, f64::max);
            write!(
                f,
                "\n  {series:<16} [{}] peak={}",
                sparkline(&vals),
                fmt_num(peak)
            )?;
        }
        for o in &self.slo {
            write!(
                f,
                "\n  slo {:<16} good={} bad={} budget={} alerts={} [{}] {}",
                o.spec,
                o.good,
                o.bad,
                fmt_num(o.budget_remaining),
                o.alerts,
                o.timeline(),
                if o.met { "MET" } else { "VIOLATED" }
            )?;
        }
        Ok(())
    }
}

/// Renders values as an eight-level sparkline (empty input → empty
/// string; an all-equal series renders flat: `▁` at zero, `▄` otherwise).
pub fn sparkline(vals: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if vals.is_empty() {
        return String::new();
    }
    let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    vals.iter()
        .map(|v| {
            if max <= min {
                if max == 0.0 {
                    BLOCKS[0]
                } else {
                    BLOCKS[3]
                }
            } else {
                let idx = ((v - min) / (max - min) * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

/// Canonical number formatting shared by every emitter: integers print
/// bare, fractions print with up to six decimals, trailing zeros trimmed.
/// Deterministic across platforms (no locale, no shortest-float search).
pub fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.6}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Maps a series name onto the Prometheus metric-name alphabet.
fn sanitize_metric_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for (i, c) in s.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value per the exposition format (`\` → `\\`,
/// `"` → `\"`, newline → `\n`).
fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    render_labels_with(labels, &[])
}

/// Renders a label set (base labels then extras, in given order), or the
/// empty string when there are none.
fn render_labels_with(labels: &[(&str, &str)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().chain(extra.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceLayer, Tracer};

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn cfg_10ms() -> TelemetryConfig {
        TelemetryConfig::new(SimDuration::from_millis(10))
    }

    #[test]
    fn parse_duration_units() {
        assert_eq!(parse_duration("250ns").unwrap().as_nanos(), 250);
        assert_eq!(parse_duration("500us").unwrap().as_nanos(), 500_000);
        assert_eq!(parse_duration("10ms").unwrap().as_nanos(), 10_000_000);
        assert_eq!(parse_duration("1.5s").unwrap().as_nanos(), 1_500_000_000);
        assert_eq!(parse_duration("123").unwrap().as_nanos(), 123);
        for bad in ["", "ms", "-1ms", "0s", "inf", "10 fortnights"] {
            assert!(parse_duration(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn slo_spec_parses_and_displays() {
        let spec = SloSpec::parse("p99<500us,avail>99.9").unwrap();
        assert_eq!(spec.objectives.len(), 2);
        assert_eq!(
            spec.objectives[0].kind,
            SloKind::Latency {
                threshold_ns: 500_000
            }
        );
        assert!((spec.objectives[0].target - 0.99).abs() < 1e-12);
        assert_eq!(spec.objectives[1].kind, SloKind::Availability);
        assert!((spec.objectives[1].target - 0.999).abs() < 1e-12);
        assert_eq!(spec.to_string(), "p99<500us,avail>99.9");
        for bad in ["", "p99", "p0<1ms", "p100<1ms", "avail>100", "lat<1ms"] {
            assert!(SloSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn windows_cover_makespan_and_fold_counters() {
        let mut s = TelemetrySampler::new(&cfg_10ms());
        s.count("completed", at(1_000_000));
        s.count("completed", at(12_000_000));
        s.count("completed", at(12_500_000));
        let rep = s.finalize(at(25_000_000));
        assert_eq!(rep.windows.len(), 3, "ceil(25ms / 10ms)");
        assert_eq!(rep.windows[0].metrics.get("completed"), 1.0);
        assert_eq!(rep.windows[1].metrics.get("completed"), 2.0);
        assert_eq!(rep.windows[2].metrics.get("completed"), 0.0);
        assert_eq!(rep.totals.get("completed"), 3.0);
        // rps derives from the window length, not the makespan.
        assert_eq!(rep.windows[1].metrics.get("rps"), 200.0);
    }

    #[test]
    fn recording_order_does_not_change_the_report() {
        let build = |order: &[u64]| {
            let mut s = TelemetrySampler::new(&cfg_10ms());
            for &ns in order {
                s.count("completed", at(ns));
                s.latency("e2e_ns", at(ns), ns);
                s.gauge("queue_depth", at(ns), ns as f64);
            }
            s.finalize(at(20_000_000))
        };
        let fwd = build(&[1_000_000, 5_000_000, 15_000_000]);
        let rev = build(&[15_000_000, 5_000_000, 1_000_000]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_csv(&[]), rev.to_csv(&[]));
    }

    #[test]
    fn spans_apportion_across_windows() {
        let mut s = TelemetrySampler::new(&cfg_10ms());
        // 5ms before the boundary, 3ms after.
        s.span("ssd_busy_ns", at(5_000_000), at(13_000_000));
        let rep = s.finalize(at(20_000_000));
        assert_eq!(rep.windows[0].metrics.get("ssd_busy_ns"), 5_000_000.0);
        assert_eq!(rep.windows[1].metrics.get("ssd_busy_ns"), 3_000_000.0);
        assert!((rep.windows[0].metrics.get("ssd_occ") - 0.5).abs() < 1e-12);
        assert!((rep.windows[1].metrics.get("ssd_occ") - 0.3).abs() < 1e-12);
        // Degenerate spans record nothing.
        let mut z = TelemetrySampler::new(&cfg_10ms());
        z.span("ssd_busy_ns", at(7), at(7));
        assert!(z.finalize(SimTime::ZERO).windows.is_empty());
    }

    #[test]
    fn empty_windows_read_zero_never_nan() {
        let mut s = TelemetrySampler::new(&cfg_10ms());
        s.gauge("queue_depth", at(1_000_000), 4.0);
        s.count("cache_hits", at(1_000_000));
        s.count("cache_misses", at(1_000_000));
        let rep = s.finalize(at(30_000_000));
        let w = &rep.windows[2].metrics;
        assert_eq!(w.get("queue_depth_mean"), 0.0);
        assert_eq!(w.get("cache_hit_rate"), 0.0, "no lookups → defined 0.0");
        let csv = rep.to_csv(&[]);
        assert!(!csv.to_lowercase().contains("nan"), "{csv}");
    }

    #[test]
    fn slo_latency_counts_exactly_and_avail_counts_losses() {
        let cfg = TelemetryConfig {
            window: SimDuration::from_millis(10),
            slo: SloSpec::parse("p50<1us,avail>90").unwrap(),
        };
        let mut s = TelemetrySampler::new(&cfg);
        for _ in 0..8 {
            s.served(at(1_000_000), 500); // under threshold
        }
        s.served(at(1_000_000), 2_000); // over threshold
        s.lost(at(1_000_000)); // shed
        let rep = s.finalize(at(10_000_000));
        let lat = &rep.slo[0];
        assert_eq!((lat.good, lat.bad), (8, 1), "latency judges completions");
        let avail = &rep.slo[1];
        assert_eq!((avail.good, avail.bad), (9, 1), "avail counts the loss");
        // p50 target met (8/9 ≥ 0.5); avail target violated (0.9 budget
        // fraction 0.1, bad fraction 0.1 → budget exactly spent).
        assert!(lat.met);
        assert!((avail.budget_remaining - 0.0).abs() < 1e-9);
    }

    #[test]
    fn burn_rates_and_alerts_follow_the_multiwindow_rule() {
        let cfg = TelemetryConfig {
            window: SimDuration::from_millis(10),
            slo: SloSpec::parse("avail>99").unwrap(),
        };
        let mut s = TelemetrySampler::new(&cfg);
        // Window 0 healthy; window 1 catastrophic (50% bad → burn 50).
        for _ in 0..100 {
            s.served(at(1_000_000), 1);
        }
        for _ in 0..50 {
            s.served(at(11_000_000), 1);
            s.lost(at(11_000_000));
        }
        let rep = s.finalize(at(20_000_000));
        let o = &rep.slo[0];
        assert_eq!(o.points[0].burn_fast, 0.0);
        assert!((o.points[1].burn_fast - 50.0).abs() < 1e-9);
        // Slow burn covers both windows: 50 bad / 200 total / 0.01 = 25.
        assert!((o.points[1].burn_slow - 25.0).abs() < 1e-9);
        assert!(o.points[1].alert, "both thresholds exceeded");
        assert_eq!(o.alerts, 1);
        assert_eq!(o.timeline(), "·X");
        assert!(!o.met, "budget overspent");
        assert!(o.budget_remaining < 0.0);
    }

    #[test]
    fn csv_has_stable_sorted_columns_and_prefix() {
        let mut s = TelemetrySampler::new(&cfg_10ms());
        s.count("zeta", at(1));
        s.count("alpha", at(11_000_000));
        let rep = s.finalize(at(20_000_000));
        let csv = rep.to_csv(&[("mode", "morpheus".into())]);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "mode,window,start_ms,alpha,zeta");
        assert_eq!(lines.next().unwrap(), "morpheus,0,0,0,1");
        assert_eq!(lines.next().unwrap(), "morpheus,1,10,1,0");
    }

    #[test]
    fn prometheus_grammar_golden() {
        let cfg = TelemetryConfig {
            window: SimDuration::from_millis(10),
            slo: SloSpec::parse("avail>99").unwrap(),
        };
        let mut s = TelemetrySampler::new(&cfg);
        s.count("completed", at(1_000_000));
        s.served(at(1_000_000), 3);
        s.latency("e2e_ns", at(1_000_000), 3);
        s.latency("e2e_ns", at(1_000_000), 0);
        let rep = s.finalize(at(10_000_000));
        let text = rep.to_prometheus("morpheus_serve", &[("mode", "morpheus")]);
        // Counter family.
        assert!(
            text.contains("# HELP morpheus_serve_completed_total"),
            "{text}"
        );
        assert!(text.contains("# TYPE morpheus_serve_completed_total counter"));
        assert!(text.contains("morpheus_serve_completed_total{mode=\"morpheus\"} 1"));
        // Histogram family: cumulative buckets with inclusive le bounds.
        assert!(text.contains("# TYPE morpheus_serve_e2e_ns histogram"));
        assert!(text.contains("_bucket{mode=\"morpheus\",le=\"0\"} 1"));
        assert!(text.contains("_bucket{mode=\"morpheus\",le=\"3\"} 2"));
        assert!(text.contains("_bucket{mode=\"morpheus\",le=\"+Inf\"} 2"));
        assert!(text.contains("morpheus_serve_e2e_ns_sum{mode=\"morpheus\"} 3"));
        assert!(text.contains("morpheus_serve_e2e_ns_count{mode=\"morpheus\"} 2"));
        // Windowed gauge with millisecond timestamps.
        assert!(text.contains("# TYPE morpheus_serve_window_rps gauge"));
        assert!(text.contains("morpheus_serve_window_rps{mode=\"morpheus\"} 100 0"));
        // SLO series carry the objective label.
        assert!(text.contains("slo=\"avail>99\""), "{text}");
        assert!(text.contains("morpheus_serve_slo_error_budget_remaining"));
    }

    #[test]
    fn prometheus_bucket_counts_are_cumulative_and_monotone() {
        let mut s = TelemetrySampler::new(&cfg_10ms());
        for v in [1u64, 2, 4, 8, 16, 16, 1000] {
            s.latency("lat_ns", at(1), v);
        }
        let rep = s.finalize(at(10_000_000));
        let text = rep.to_prometheus("m", &[]);
        let mut last = 0u64;
        let mut buckets = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("m_lat_ns_bucket{le=\"") {
                let v: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(v >= last, "bucket counts must be cumulative: {text}");
                last = v;
                buckets += 1;
            }
        }
        assert!(buckets > 2, "{text}");
        assert_eq!(last, 7, "+Inf bucket equals the count");
    }

    #[test]
    fn label_escaping_is_spec_conformant() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        let mut s = TelemetrySampler::new(&cfg_10ms());
        s.count("x", at(1));
        let rep = s.finalize(at(10_000_000));
        let text = rep.to_prometheus("m", &[("app", "sv\"c\\1\n2")]);
        assert!(text.contains("app=\"sv\\\"c\\\\1\\n2\""), "{text}");
        assert!(!text.contains("sv\"c"), "raw quote must not survive");
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(sanitize_metric_name("e2e_ns_p99"), "e2e_ns_p99");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a-b.c"), "a_b_c");
    }

    #[test]
    fn sparkline_levels() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
        let line = sparkline(&[0.0, 1.0, 2.0, 4.0, 8.0]);
        assert_eq!(line.chars().count(), 5);
        assert!(line.starts_with('▁') && line.ends_with('█'));
    }

    #[test]
    fn fmt_num_is_canonical() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(-3.0), "-3");
        assert_eq!(fmt_num(0.5), "0.5");
        assert_eq!(fmt_num(1.0 / 3.0), "0.333333");
        assert_eq!(fmt_num(-0.25), "-0.25");
    }

    #[test]
    fn from_trace_attributes_layers_per_window() {
        let t = Tracer::enabled();
        t.span(TraceLayer::Flash, "ch0", "read", at(0), at(15_000_000));
        t.instant(TraceLayer::Ftl, "map", "gc", at(12_000_000));
        let log = t.take();
        let rep = TelemetryReport::from_trace(&log, SimDuration::from_millis(10));
        assert_eq!(rep.windows.len(), 2);
        assert_eq!(rep.windows[0].metrics.get("flash_events"), 1.0);
        assert_eq!(rep.windows[0].metrics.get("flash_busy_ns"), 10_000_000.0);
        assert_eq!(rep.windows[1].metrics.get("flash_busy_ns"), 5_000_000.0);
        assert_eq!(rep.windows[1].metrics.get("ftl_events"), 1.0);
        assert!((rep.windows[0].metrics.get("flash_occ") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_sparklines_and_verdicts() {
        let cfg = TelemetryConfig {
            window: SimDuration::from_millis(10),
            slo: SloSpec::parse("avail>99").unwrap(),
        };
        let mut s = TelemetrySampler::new(&cfg);
        for w in 0..3u64 {
            for _ in 0..=w {
                let ts = at(w * 10_000_000 + 1);
                s.count("completed", ts);
                s.served(ts, 100);
            }
        }
        let rep = s.finalize(at(30_000_000));
        let text = rep.to_string();
        assert!(text.starts_with("telemetry windows=3 window=10.000ms"));
        assert!(text.contains("rps"), "{text}");
        assert!(text.contains("slo avail>99"), "{text}");
        assert!(text.contains("MET"), "{text}");
    }
}
