//! Seeded input generators producing the text formats of Table I.
//!
//! All generators emit whitespace-separated decimal tokens — the format
//! family the paper targets — and grow the output until it reaches the
//! requested size, so input scale is a single knob.

use morpheus_format::TextWriter;
use morpheus_simcore::SplitMix64;

/// Generator RNG: SplitMix64, the workspace's deterministic source of
/// simulation randomness (`rand` is unavailable offline and its exact
/// streams are not load-bearing — all reported quantities are ratios).
struct GenRng(SplitMix64);

fn rng(seed: u64) -> GenRng {
    GenRng(SplitMix64::new(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA076_1D64_78BD_642F,
    ))
}

impl GenRng {
    /// Uniform float in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        self.0.next_f64()
    }

    /// Uniform integer in `[lo, hi)`.
    fn below_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo);
        lo + self.0.next_below((hi - lo) as u64) as i64
    }

    /// Uniform unsigned integer in `[0, hi)`.
    fn below_u64(&mut self, hi: u64) -> u64 {
        self.0.next_below(hi)
    }
}

/// A graph edge list (`src dst` per line) over `~sqrt`-sized vertex set,
/// with power-law-ish degree skew like BigDataBench's graph inputs.
pub fn edge_list_text(target_bytes: u64, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    // Scale the vertex universe with the input size (about one vertex per
    // 40 input bytes keeps average degree ~5).
    let vertices = (target_bytes / 40).clamp(16, u64::MAX) as u32;
    let mut w = TextWriter::with_capacity(target_bytes as usize + 32);
    while (w.len() as u64) < target_bytes {
        // Skewed endpoints: squaring a uniform sample biases toward low
        // ids, giving hub vertices.
        let u = ((r.unit_f64() * r.unit_f64()) * vertices as f64) as u64;
        let v = r.below_u64(vertices as u64);
        w.write_u64(u);
        w.sep();
        w.write_u64(v);
        w.newline();
    }
    w.into_bytes()
}

/// A flat list of unsigned integers, one per line (sort/word-count inputs).
pub fn int_list_text(target_bytes: u64, seed: u64, max_value: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let mut w = TextWriter::with_capacity(target_bytes as usize + 16);
    while (w.len() as u64) < target_bytes {
        w.write_u64(r.below_u64(max_value));
        w.newline();
    }
    w.into_bytes()
}

/// A dense n×n integer matrix (row-major, one value per token). The
/// dimension is derived from the byte budget; values keep the matrix
/// diagonally dominant so elimination kernels stay stable.
pub fn matrix_text(target_bytes: u64, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    // ~4 bytes per token.
    let n = (((target_bytes / 4) as f64).sqrt() as usize).max(4);
    let mut w = TextWriter::with_capacity(target_bytes as usize + 16);
    for i in 0..n {
        for j in 0..n {
            let v: i64 = if i == j {
                1000 + r.below_i64(0, 100)
            } else {
                r.below_i64(-9, 10)
            };
            w.write_i64(v);
            if j + 1 < n {
                w.sep();
            }
        }
        w.newline();
    }
    w.into_bytes()
}

/// Point records `id x y z w` with integer coordinates (k-means / NN
/// inputs, integer-dominated per the paper's selection criteria).
pub fn points_text(target_bytes: u64, seed: u64, dims: usize) -> Vec<u8> {
    let mut r = rng(seed);
    let mut w = TextWriter::with_capacity(target_bytes as usize + 32);
    let mut id = 0u64;
    while (w.len() as u64) < target_bytes {
        w.write_u64(id);
        for _ in 0..dims {
            w.sep();
            w.write_i64(r.below_i64(0, 1000));
        }
        w.newline();
        id += 1;
    }
    w.into_bytes()
}

/// A sparse matrix in COO form: `row col value` with float values — the
/// one format whose tokens are one-third floats (SpMV, the Fig. 8
/// outlier).
pub fn sparse_coo_text(target_bytes: u64, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let n = (target_bytes / 60).clamp(8, u64::MAX) as u32; // matrix dim
    let mut w = TextWriter::with_capacity(target_bytes as usize + 32);
    while (w.len() as u64) < target_bytes {
        w.write_u64(r.below_u64(n as u64));
        w.sep();
        w.write_u64(r.below_u64(n as u64));
        w.sep();
        w.write_f64(r.unit_f64() * 10.0 - 5.0, 3);
        w.newline();
    }
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(edge_list_text(1000, 7), edge_list_text(1000, 7));
        assert_ne!(edge_list_text(1000, 7), edge_list_text(1000, 8));
    }

    #[test]
    fn generators_hit_size_targets() {
        for gen in [
            edge_list_text(10_000, 1),
            int_list_text(10_000, 1, 1_000_000),
            points_text(10_000, 1, 4),
            sparse_coo_text(10_000, 1),
        ] {
            assert!(gen.len() >= 10_000);
            assert!(gen.len() < 11_000, "overshoot: {}", gen.len());
        }
    }

    #[test]
    fn edge_list_parses_against_schema() {
        let text = edge_list_text(5000, 3);
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
        let (p, _) = parse_buffer(&text, &schema).unwrap();
        assert!(p.records > 100);
    }

    #[test]
    fn matrix_is_square_and_diagonally_dominant() {
        let text = matrix_text(4000, 5);
        let schema = Schema::new(vec![FieldKind::I32]);
        let (p, _) = parse_buffer(&text, &schema).unwrap();
        let n = (p.records as f64).sqrt() as u64;
        assert_eq!(n * n, p.records);
        let vals = p.columns[0].as_ints().unwrap();
        for i in 0..n as usize {
            assert!(vals[i * n as usize + i] >= 1000);
        }
    }

    #[test]
    fn coo_parses_with_float_column() {
        let text = sparse_coo_text(5000, 9);
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32, FieldKind::F64]);
        let (p, w) = parse_buffer(&text, &schema).unwrap();
        assert!(p.records > 50);
        assert_eq!(w.float_tokens, p.records);
        assert_eq!(w.int_tokens, 2 * p.records);
    }

    #[test]
    fn points_have_requested_dims() {
        let text = points_text(3000, 2, 4);
        let schema = Schema::new(vec![
            FieldKind::U32,
            FieldKind::I32,
            FieldKind::I32,
            FieldKind::I32,
            FieldKind::I32,
        ]);
        let (p, _) = parse_buffer(&text, &schema).unwrap();
        let ids = p.columns[0].as_ints().unwrap();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, i as i64);
        }
    }
}
