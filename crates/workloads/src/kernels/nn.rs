//! k-nearest-neighbours over 2-D integer points (Rodinia NN).

use crate::kernels::KernelResult;
use crate::Digest;
use morpheus_format::ParsedColumns;

/// Finds the `k` points nearest to `(qx, qy)` by linear scan (exactly what
/// Rodinia NN does) and digests their ids and distances.
pub fn nearest(objects: &ParsedColumns, qx: f64, qy: f64, k: usize) -> KernelResult {
    let ids = objects.columns[0].as_ints().expect("id column");
    let xs = objects.columns[1].as_ints().expect("x column");
    let ys = objects.columns[2].as_ints().expect("y column");
    let mut best: Vec<(f64, i64)> = Vec::with_capacity(k + 1);
    for i in 0..objects.records as usize {
        let dx = xs[i] as f64 - qx;
        let dy = ys[i] as f64 - qy;
        let dist = (dx * dx + dy * dy).sqrt();
        let pos = best
            .binary_search_by(|probe| probe.partial_cmp(&(dist, ids[i])).expect("no NaNs"))
            .unwrap_or_else(|e| e);
        if pos < k {
            best.insert(pos, (dist, ids[i]));
            best.truncate(k);
        }
    }
    let mut d = Digest::new();
    for (dist, id) in &best {
        d.mix_i64(*id);
        d.mix_f64(*dist);
    }
    let closest = best
        .first()
        .map(|(dist, id)| format!("id {id} at {dist:.3}"))
        .unwrap_or_else(|| "none".into());
    KernelResult {
        digest: d.value(),
        summary: format!(
            "nn: {} of {} points, closest {closest}",
            best.len(),
            objects.records
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    fn points(text: &[u8]) -> ParsedColumns {
        let schema = Schema::new(vec![FieldKind::U32, FieldKind::I32, FieldKind::I32]);
        parse_buffer(text, &schema).unwrap().0
    }

    #[test]
    fn finds_the_closest_point() {
        let p = points(b"0 0 0\n1 10 10\n2 5 5\n");
        let r = nearest(&p, 4.0, 4.0, 1);
        assert!(r.summary.contains("closest id 2"), "{}", r.summary);
    }

    #[test]
    fn returns_k_in_distance_order() {
        let p = points(b"0 0 0\n1 1 0\n2 2 0\n3 3 0\n");
        let r = nearest(&p, 0.0, 0.0, 3);
        assert!(r.summary.contains("3 of 4"), "{}", r.summary);
        assert!(r.summary.contains("closest id 0"));
    }

    #[test]
    fn fewer_points_than_k() {
        let p = points(b"0 1 1\n");
        let r = nearest(&p, 0.0, 0.0, 5);
        assert!(r.summary.contains("1 of 1"));
    }

    #[test]
    fn deterministic() {
        let p = points(b"0 3 4\n1 6 8\n");
        assert_eq!(
            nearest(&p, 0.0, 0.0, 2).digest,
            nearest(&p, 0.0, 0.0, 2).digest
        );
    }
}
