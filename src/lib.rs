//! Umbrella crate for the Morpheus (ISCA 2016) reproduction.
//!
//! This package exists to host the workspace-level `examples/` and `tests/`
//! directories; the actual functionality lives in the `crates/*` members.
//! It re-exports every member so examples and integration tests can reach
//! the whole stack through one dependency.

pub use morpheus;
pub use morpheus_flash as flash;
pub use morpheus_format as format;
pub use morpheus_ftl as ftl;
pub use morpheus_gpu as gpu;
pub use morpheus_host as host;
pub use morpheus_kvstore as kvstore;
pub use morpheus_nvme as nvme;
pub use morpheus_pcie as pcie;
pub use morpheus_simcore as simcore;
pub use morpheus_ssd as ssd;
pub use morpheus_workloads as workloads;
