//! Criterion: NVMe packet codec and queue-ring throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use morpheus_nvme::{
    CompletionQueue, IoOpcode, MorpheusCommand, NvmeCommand, StatusCode, SubmissionQueue,
};
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("nvme");
    g.throughput(Throughput::Elements(1));

    let cmd = MorpheusCommand::Read {
        instance_id: 3,
        slba: 123_456,
        blocks: 4096,
        dma_addr: 0x0dea_dbee_f000,
    }
    .into_command(77, 1);

    g.bench_function("encode", |b| b.iter(|| black_box(cmd).encode()));

    let bytes = cmd.encode();
    g.bench_function("decode_and_parse", |b| {
        b.iter(|| {
            let c = NvmeCommand::decode(black_box(&bytes)).unwrap();
            MorpheusCommand::parse(&c).unwrap()
        })
    });

    g.bench_function("queue_round_trip", |b| {
        let mut sq = SubmissionQueue::new(64);
        let mut cq = CompletionQueue::new(64);
        b.iter(|| {
            sq.submit(NvmeCommand::new(IoOpcode::Flush, 1, 1)).unwrap();
            let c = sq.pop().unwrap();
            cq.post(c.cid, StatusCode::Success, 0).unwrap();
            black_box(cq.reap().unwrap())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
