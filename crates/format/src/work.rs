//! Parse-work accounting and the per-platform cost tables.
//!
//! Every parser in this crate counts what it did ([`ParseWork`]): bytes
//! scanned, integer and float tokens converted, digits processed. A
//! [`CostModel`] then prices that work in *instructions* for a particular
//! execution platform. Two models matter:
//!
//! * [`CostModel::host_cpu`] — an out-of-order Xeon core running `scanf`-ish
//!   library code.
//! * [`CostModel::embedded_core`] — the SSD's in-order embedded core running
//!   the lean `ms_scanf` device-library loop. It has **no FPU**, so float
//!   conversions are multiplied by a soft-float penalty — the reason the
//!   paper's SpMV (33 % float tokens) barely gains from Morpheus-SSD.

/// Accumulated parsing work, platform-independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseWork {
    /// Bytes the scanner advanced over (tokens + separators).
    pub bytes_scanned: u64,
    /// Integer tokens converted.
    pub int_tokens: u64,
    /// Digits across all integer tokens.
    pub int_digits: u64,
    /// Float tokens converted.
    pub float_tokens: u64,
    /// Mantissa/exponent digits across all float tokens.
    pub float_digits: u64,
}

impl ParseWork {
    /// Sums two work records.
    pub fn merge(&mut self, other: &ParseWork) {
        self.bytes_scanned += other.bytes_scanned;
        self.int_tokens += other.int_tokens;
        self.int_digits += other.int_digits;
        self.float_tokens += other.float_tokens;
        self.float_digits += other.float_digits;
    }

    /// Total tokens of any kind.
    pub fn tokens(&self) -> u64 {
        self.int_tokens + self.float_tokens
    }
}

/// Prices [`ParseWork`] in instructions for one execution platform.
///
/// Split into integer-path and float-path instruction counts because the
/// host CPU model runs them at different IPC ([`CodeClass`]) and the
/// embedded core multiplies the float path by its soft-float penalty.
///
/// [`CodeClass`]: https://docs.rs/morpheus-host
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Instructions per byte scanned (delimiter test, pointer bump, branch).
    pub scan_instr_per_byte: f64,
    /// Fixed instructions per integer token (sign, accumulate setup, store).
    pub int_instr_per_token: f64,
    /// Instructions per integer digit (multiply-add, bounds check).
    pub int_instr_per_digit: f64,
    /// Fixed instructions per float token.
    pub float_instr_per_token: f64,
    /// Instructions per float digit.
    pub float_instr_per_digit: f64,
    /// Multiplier applied to the float path (software FP emulation; 1.0 on
    /// a machine with an FPU).
    pub float_penalty: f64,
}

impl CostModel {
    /// Library `scanf`-path on the host CPU (FPU present).
    ///
    /// Calibrated so that the conversion kernel itself is a minority of the
    /// conventional path's time, matching the §II profile (≈15 % convert,
    /// the rest scanning and OS overhead).
    pub fn host_cpu() -> Self {
        CostModel {
            // The stdio scan path interprets the format string, locks the
            // FILE, and funnels every byte through getc-machinery: tens of
            // instructions per byte (vfscanf really is this heavy).
            scan_instr_per_byte: 45.0,
            int_instr_per_token: 30.0,
            int_instr_per_digit: 5.5,
            // strtod carries locale, rounding, and precision machinery.
            float_instr_per_token: 300.0,
            float_instr_per_digit: 20.0,
            float_penalty: 1.0,
        }
    }

    /// The lean `ms_scanf` loop on the SSD's embedded core (no FPU).
    ///
    /// The device loop skips the layers a general-purpose `scanf` carries
    /// (format-string interpretation, locale, wide-char paths), so its
    /// per-byte work is lower even though the core is far simpler — but
    /// every float conversion is software-emulated.
    pub fn embedded_core() -> Self {
        CostModel {
            scan_instr_per_byte: 4.2,
            int_instr_per_token: 10.0,
            int_instr_per_digit: 1.7,
            float_instr_per_token: 25.0,
            float_instr_per_digit: 5.0,
            // Soft-float mantissa assembly on the FPU-less core: a few
            // times the lean integer path (the host's strtod is bloated
            // enough that the *relative* penalty stays moderate).
            float_penalty: 4.0,
        }
    }

    /// Instructions on the integer path (scanning + integer conversion).
    pub fn int_path_instructions(&self, w: &ParseWork) -> f64 {
        w.bytes_scanned as f64 * self.scan_instr_per_byte
            + w.int_tokens as f64 * self.int_instr_per_token
            + w.int_digits as f64 * self.int_instr_per_digit
    }

    /// Instructions on the float path, after the soft-float penalty.
    pub fn float_path_instructions(&self, w: &ParseWork) -> f64 {
        (w.float_tokens as f64 * self.float_instr_per_token
            + w.float_digits as f64 * self.float_instr_per_digit)
            * self.float_penalty
    }

    /// Total instructions for the work.
    pub fn total_instructions(&self, w: &ParseWork) -> f64 {
        self.int_path_instructions(w) + self.float_path_instructions(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_work() -> ParseWork {
        ParseWork {
            bytes_scanned: 1000,
            int_tokens: 100,
            int_digits: 700,
            float_tokens: 10,
            float_digits: 80,
        }
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = sample_work();
        a.merge(&sample_work());
        assert_eq!(a.bytes_scanned, 2000);
        assert_eq!(a.tokens(), 220);
    }

    #[test]
    fn host_prices_work() {
        let m = CostModel::host_cpu();
        let w = sample_work();
        let total = m.total_instructions(&w);
        assert!(total > 0.0);
        assert_eq!(
            total,
            m.int_path_instructions(&w) + m.float_path_instructions(&w)
        );
    }

    #[test]
    fn embedded_float_penalty_dominates_float_heavy_work() {
        let m = CostModel::embedded_core();
        let int_only = ParseWork {
            bytes_scanned: 1000,
            int_tokens: 125,
            int_digits: 750,
            ..ParseWork::default()
        };
        let float_only = ParseWork {
            bytes_scanned: 1000,
            float_tokens: 125,
            float_digits: 750,
            ..ParseWork::default()
        };
        let int_cost = m.total_instructions(&int_only);
        let float_cost = m.total_instructions(&float_only);
        assert!(
            float_cost > 2.5 * int_cost,
            "soft-float should dominate: {float_cost} vs {int_cost}"
        );
    }

    #[test]
    fn embedded_integer_path_is_leaner_than_host() {
        let w = ParseWork {
            bytes_scanned: 1000,
            int_tokens: 125,
            int_digits: 750,
            ..ParseWork::default()
        };
        assert!(
            CostModel::embedded_core().int_path_instructions(&w)
                < CostModel::host_cpu().int_path_instructions(&w)
        );
    }
}
