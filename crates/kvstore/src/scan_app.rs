//! The in-storage range-scan StorageApp.

use crate::encode_pair;
use crate::store::decode_bucket;
use morpheus::{AppError, DeviceCtx, StorageApp};
use morpheus_simcore::SplitMix64;

/// Scans KV bucket pages delivered by MREAD and emits the pairs whose key
/// lies in `[lo, hi]` — the paper's "emitting key-value pairs from \[a\]
/// flash-based key-value store" offload (§I).
///
/// MREAD chunk boundaries may split a bucket; the app buffers until a
/// whole bucket is resident (one bucket always fits D-SRAM).
#[derive(Debug)]
pub struct KvScanApp {
    bucket_bytes: usize,
    lo: u64,
    hi: u64,
    carry: Vec<u8>,
    matched: u32,
    buckets_scanned: u32,
}

impl KvScanApp {
    /// Creates a scan over `[lo, hi]` for a table with the given bucket
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_bytes` is zero or the range is inverted.
    pub fn new(bucket_bytes: u32, lo: u64, hi: u64) -> Self {
        assert!(bucket_bytes > 0, "bucket size must be positive");
        assert!(lo <= hi, "scan range is inverted");
        KvScanApp {
            bucket_bytes: bucket_bytes as usize,
            lo,
            hi,
            carry: Vec::new(),
            matched: 0,
            buckets_scanned: 0,
        }
    }

    /// Buckets fully processed so far.
    pub fn buckets_scanned(&self) -> u32 {
        self.buckets_scanned
    }
}

impl StorageApp for KvScanApp {
    fn name(&self) -> &str {
        "kv-range-scan"
    }

    fn on_chunk(&mut self, ctx: &mut DeviceCtx, data: &[u8]) -> Result<(), AppError> {
        ctx.ensure_working_set(self.bucket_bytes as u64 + self.carry.len() as u64)?;
        self.carry.extend_from_slice(data);
        let mut emitted = Vec::new();
        while self.carry.len() >= self.bucket_bytes {
            let bucket: Vec<u8> = self.carry.drain(..self.bucket_bytes).collect();
            let pairs = decode_bucket(&bucket);
            // Price the scan through the shared work model: every bucket
            // byte is examined once, every record is one fixed-up compare.
            ctx.charge_work(&morpheus_format_work(
                self.bucket_bytes as u64,
                pairs.len() as u64,
            ));
            for (k, v) in pairs {
                if (self.lo..=self.hi).contains(&k) {
                    encode_pair(&mut emitted, k, &v);
                    self.matched += 1;
                }
            }
            self.buckets_scanned += 1;
        }
        if !emitted.is_empty() {
            ctx.charge_instructions(emitted.len() as f64); // output stores
            ctx.ms_memcpy(&emitted);
        }
        Ok(())
    }

    fn on_finish(&mut self, _ctx: &mut DeviceCtx) -> Result<i32, AppError> {
        if !self.carry.is_empty() {
            return Err(AppError::App(format!(
                "{} trailing bytes do not form a whole bucket",
                self.carry.len()
            )));
        }
        Ok(self.matched as i32)
    }
}

/// Scan work in the shared accounting currency: bucket bytes ride the
/// byte-scan path, records the per-token path.
///
/// The embedded cores scan buckets with wide compares (Tensilica-style
/// 16-byte custom ops — exactly the extensibility such cores are built
/// for), so the byte-path work is 1/16 of the bucket size.
fn morpheus_format_work(bytes: u64, records: u64) -> morpheus_format::ParseWork {
    morpheus_format::ParseWork {
        bytes_scanned: bytes / 16,
        int_tokens: records,
        int_digits: 0,
        float_tokens: 0,
        float_digits: 0,
    }
}

/// Deterministic synthetic KV population helper (used by tests, examples,
/// and the `kv` bench): `count` pairs with pseudo-random keys below
/// `key_space` and small values derived from the key.
pub fn synth_pairs(count: u32, key_space: u64, seed: u64) -> Vec<(u64, Vec<u8>)> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(count as usize);
    let mut seen = std::collections::HashSet::new();
    while out.len() < count as usize {
        let k = rng.next_below(key_space);
        if !seen.insert(k) {
            continue;
        }
        let len = 8 + (k % 25) as usize;
        let mut v = vec![0u8; len];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (k as u8).wrapping_add(i as u8);
        }
        out.push((k, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_pairs, KvConfig, KvStore};
    use morpheus_flash::{FlashGeometry, FlashTiming};
    use morpheus_ssd::{Ssd, SsdConfig};

    fn populated() -> (Ssd, KvStore) {
        let mut ssd = Ssd::new(
            SsdConfig::default(),
            FlashGeometry::small(),
            FlashTiming::default(),
        );
        let kv = KvStore::format(&mut ssd, 0, KvConfig::default()).unwrap();
        for (k, v) in synth_pairs(300, 10_000, 1) {
            kv.put(&mut ssd, k, &v).unwrap();
        }
        (ssd, kv)
    }

    #[test]
    fn device_scan_matches_host_scan() {
        let (mut ssd, kv) = populated();
        let (lo, hi) = (2_000u64, 6_000u64);
        let want = kv.scan_range_host(&mut ssd, lo, hi).unwrap();

        // Run the app directly over the raw region bytes, chunked
        // awkwardly (not bucket aligned).
        let (slba, blocks) = kv.region();
        let raw = ssd.read_range_untimed(slba, blocks).unwrap();
        let mut app = KvScanApp::new(kv.config().bucket_bytes, lo, hi);
        let mut ctx = DeviceCtx::new(256 * 1024);
        for chunk in raw.chunks(3000) {
            app.on_chunk(&mut ctx, chunk).unwrap();
        }
        let matched = app.on_finish(&mut ctx).unwrap();
        let got = decode_pairs(&ctx.take_output());
        assert_eq!(got, want);
        assert_eq!(matched as usize, want.len());
        assert_eq!(app.buckets_scanned(), kv.config().buckets);
    }

    #[test]
    fn empty_range_emits_nothing() {
        let (mut ssd, kv) = populated();
        let (slba, blocks) = kv.region();
        let raw = ssd.read_range_untimed(slba, blocks).unwrap();
        let mut app = KvScanApp::new(kv.config().bucket_bytes, 20_000, 30_000);
        let mut ctx = DeviceCtx::new(256 * 1024);
        app.on_chunk(&mut ctx, &raw).unwrap();
        assert_eq!(app.on_finish(&mut ctx).unwrap(), 0);
        assert!(ctx.take_output().is_empty());
    }

    #[test]
    fn ragged_region_rejected() {
        let mut app = KvScanApp::new(4096, 0, 10);
        let mut ctx = DeviceCtx::new(256 * 1024);
        app.on_chunk(&mut ctx, &[0u8; 100]).unwrap();
        assert!(app.on_finish(&mut ctx).is_err());
    }

    #[test]
    fn synth_pairs_deterministic_and_unique() {
        let a = synth_pairs(100, 1000, 7);
        let b = synth_pairs(100, 1000, 7);
        assert_eq!(a, b);
        let keys: std::collections::HashSet<u64> = a.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 100);
    }
}
