//! Binary (packed-record) input formats.
//!
//! The paper notes the Morpheus model applies "to other input formats
//! (e.g. binary inputs)" (§I): machines exchange packed structs whose
//! endianness may not match the consumer, so creating application objects
//! still requires a per-field transformation pass — just a cheaper one
//! than ASCII conversion. Crucially, byte-swapping a float is *integer*
//! work, so binary inputs sidestep the embedded cores' missing FPU
//! entirely.
//!
//! [`parse_binary`] converts a packed record stream (at a declared
//! [`Endianness`]) into the same [`ParsedColumns`] the text parsers
//! produce, with work accounted as pure integer-path effort.

use crate::{Column, FieldKind, ParseError, ParseErrorKind, ParseWork, ParsedColumns, Schema};

/// Byte order of a packed input file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endianness {
    /// Little-endian (matches the host and our canonical object layout).
    Little,
    /// Big-endian (requires a swap per field).
    Big,
}

/// Parses a packed record stream against a schema.
///
/// Returns the columns plus the work performed: every byte is touched
/// once (`bytes_scanned`), every field costs one fixed-up store
/// (`int_tokens`), and big-endian inputs add one swap per field byte
/// (`int_digits`) — all integer-path work, FPU-free.
///
/// # Errors
///
/// Fails with [`ParseErrorKind::UnexpectedEof`] if the input is not a
/// whole number of records.
pub fn parse_binary(
    data: &[u8],
    schema: &Schema,
    endian: Endianness,
) -> Result<(ParsedColumns, ParseWork), ParseError> {
    let rec = schema.record_bytes() as usize;
    if !data.len().is_multiple_of(rec) {
        return Err(ParseError::new(data.len(), ParseErrorKind::UnexpectedEof));
    }
    let mut out = ParsedColumns::empty(schema.clone());
    let mut pos = 0usize;
    let mut work = ParseWork {
        bytes_scanned: data.len() as u64,
        ..ParseWork::default()
    };
    let fields: Vec<FieldKind> = schema.fields().to_vec();
    while pos < data.len() {
        for (i, kind) in fields.iter().enumerate() {
            let w = kind.byte_width() as usize;
            let raw = &data[pos..pos + w];
            work.int_tokens += 1;
            if endian == Endianness::Big {
                work.int_digits += w as u64; // swap cost, one op per byte
            }
            let le4 = |b: &[u8]| -> [u8; 4] {
                let mut a: [u8; 4] = b.try_into().expect("width checked");
                if endian == Endianness::Big {
                    a.reverse();
                }
                a
            };
            let le8 = |b: &[u8]| -> [u8; 8] {
                let mut a: [u8; 8] = b.try_into().expect("width checked");
                if endian == Endianness::Big {
                    a.reverse();
                }
                a
            };
            match &mut out.columns[i] {
                Column::Ints(v) => v.push(match kind {
                    FieldKind::U32 => u32::from_le_bytes(le4(raw)) as i64,
                    FieldKind::I32 => i32::from_le_bytes(le4(raw)) as i64,
                    FieldKind::U64 => u64::from_le_bytes(le8(raw)) as i64,
                    FieldKind::I64 => i64::from_le_bytes(le8(raw)),
                    _ => unreachable!("int column with float kind"),
                }),
                Column::Floats(v) => v.push(match kind {
                    FieldKind::F32 => f32::from_le_bytes(le4(raw)) as f64,
                    FieldKind::F64 => f64::from_le_bytes(le8(raw)),
                    _ => unreachable!("float column with int kind"),
                }),
            }
            pos += w;
        }
        out.records += 1;
    }
    Ok((out, work))
}

/// Serializes columns into a packed record stream at the given byte order
/// (the generator-side inverse of [`parse_binary`]).
pub fn encode_binary(columns: &ParsedColumns, endian: Endianness) -> Vec<u8> {
    let mut le = Vec::new();
    columns.encode_rows(0, columns.records, &mut le);
    if endian == Endianness::Little {
        return le;
    }
    // Swap each field in place.
    let mut out = Vec::with_capacity(le.len());
    let widths: Vec<usize> = columns
        .schema
        .fields()
        .iter()
        .map(|f| f.byte_width() as usize)
        .collect();
    let mut pos = 0;
    while pos < le.len() {
        for w in &widths {
            let mut field = le[pos..pos + w].to_vec();
            field.reverse();
            out.extend_from_slice(&field);
            pos += w;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_buffer;

    fn mixed_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::I64, FieldKind::F64])
    }

    fn sample() -> ParsedColumns {
        let (mut p, _) =
            parse_buffer(b"1 -20 0.5\n4294967295 300 -2.25\n", &mixed_schema()).unwrap();
        p.canonicalize();
        p
    }

    #[test]
    fn little_endian_round_trips() {
        let p = sample();
        let bytes = encode_binary(&p, Endianness::Little);
        let (back, work) = parse_binary(&bytes, &mixed_schema(), Endianness::Little).unwrap();
        assert_eq!(back, p);
        assert_eq!(work.bytes_scanned, bytes.len() as u64);
        assert_eq!(work.int_tokens, 6);
        assert_eq!(work.int_digits, 0, "no swaps needed");
        assert_eq!(work.float_tokens, 0, "binary floats are integer work");
    }

    #[test]
    fn big_endian_round_trips_with_swap_cost() {
        let p = sample();
        let bytes = encode_binary(&p, Endianness::Big);
        let (back, work) = parse_binary(&bytes, &mixed_schema(), Endianness::Big).unwrap();
        assert_eq!(back, p);
        assert_eq!(work.int_digits, bytes.len() as u64, "one swap op per byte");
    }

    #[test]
    fn endianness_actually_matters() {
        let p = sample();
        let be = encode_binary(&p, Endianness::Big);
        let le = encode_binary(&p, Endianness::Little);
        assert_ne!(be, le);
        // Misinterpreting the byte order yields different objects.
        let (wrong, _) = parse_binary(&be, &mixed_schema(), Endianness::Little).unwrap();
        assert_ne!(wrong, p);
    }

    #[test]
    fn ragged_input_rejected() {
        let err = parse_binary(&[0u8; 21], &mixed_schema(), Endianness::Little).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_input_is_zero_records() {
        let (p, w) = parse_binary(&[], &mixed_schema(), Endianness::Big).unwrap();
        assert_eq!(p.records, 0);
        assert_eq!(w.bytes_scanned, 0);
    }
}

/// Incremental counterpart of [`parse_binary`] for chunked delivery
/// (MREAD chunks can split a record anywhere).
#[derive(Debug, Clone)]
pub struct BinaryStreamParser {
    schema: Schema,
    endian: Endianness,
    carry: Vec<u8>,
    out: ParsedColumns,
    work: ParseWork,
}

impl BinaryStreamParser {
    /// Creates a parser for a schema at a byte order.
    pub fn new(schema: Schema, endian: Endianness) -> Self {
        BinaryStreamParser {
            out: ParsedColumns::empty(schema.clone()),
            schema,
            endian,
            carry: Vec::new(),
            work: ParseWork::default(),
        }
    }

    /// Records completed so far.
    pub fn records(&self) -> u64 {
        self.out.records
    }

    /// The columns accumulated so far.
    pub fn peek(&self) -> &ParsedColumns {
        &self.out
    }

    /// Work performed so far.
    pub fn work(&self) -> ParseWork {
        self.work
    }

    /// Feeds the next chunk.
    ///
    /// # Errors
    ///
    /// Never fails mid-stream (all byte sequences are valid prefixes);
    /// the `Result` mirrors the text parser's interface.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), ParseError> {
        let rec = self.schema.record_bytes() as usize;
        let owned;
        let view: &[u8] = if self.carry.is_empty() {
            chunk
        } else {
            let mut joined = std::mem::take(&mut self.carry);
            joined.extend_from_slice(chunk);
            owned = joined;
            &owned
        };
        let complete = view.len() - view.len() % rec;
        let (parsed, work) = parse_binary(&view[..complete], &self.schema, self.endian)
            .expect("whole records by construction");
        self.work.merge(&work);
        for (dst, src) in self.out.columns.iter_mut().zip(&parsed.columns) {
            match (dst, src) {
                (Column::Ints(d), Column::Ints(s)) => d.extend_from_slice(s),
                (Column::Floats(d), Column::Floats(s)) => d.extend_from_slice(s),
                _ => unreachable!("same schema"),
            }
        }
        self.out.records += parsed.records;
        self.carry = view[complete..].to_vec();
        Ok(())
    }

    /// Finishes the stream.
    ///
    /// # Errors
    ///
    /// Fails with [`ParseErrorKind::UnexpectedEof`] if bytes of an
    /// incomplete record remain.
    pub fn finish(self) -> Result<ParsedColumns, ParseError> {
        if !self.carry.is_empty() {
            return Err(ParseError::new(
                self.work.bytes_scanned as usize + self.carry.len(),
                ParseErrorKind::UnexpectedEof,
            ));
        }
        Ok(self.out)
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::parse_buffer;

    fn schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::F64])
    }

    fn reference() -> (ParsedColumns, Vec<u8>) {
        let (mut p, _) = parse_buffer(b"1 0.5\n2 1.5\n3 -2.0\n4 9.25\n", &schema()).unwrap();
        p.canonicalize();
        let bytes = encode_binary(&p, Endianness::Big);
        (p, bytes)
    }

    #[test]
    fn chunked_matches_whole_for_every_split() {
        let (want, bytes) = reference();
        for chunk in 1..bytes.len() {
            let mut sp = BinaryStreamParser::new(schema(), Endianness::Big);
            for c in bytes.chunks(chunk) {
                sp.feed(c).unwrap();
            }
            let got = sp.finish().unwrap();
            assert_eq!(got, want, "chunk size {chunk}");
        }
    }

    #[test]
    fn incomplete_record_detected_at_finish() {
        let (_, bytes) = reference();
        let mut sp = BinaryStreamParser::new(schema(), Endianness::Big);
        sp.feed(&bytes[..bytes.len() - 3]).unwrap();
        assert!(sp.finish().is_err());
    }

    #[test]
    fn work_accumulates_across_feeds() {
        let (_, bytes) = reference();
        let mut sp = BinaryStreamParser::new(schema(), Endianness::Big);
        for c in bytes.chunks(5) {
            sp.feed(c).unwrap();
        }
        let w = sp.work();
        assert_eq!(w.bytes_scanned, bytes.len() as u64);
        assert_eq!(w.int_tokens, 8);
    }
}
