//! Additional StorageApps beyond text deserialization — the generalizations
//! §I sketches: binary input formats and the serialization direction.

use crate::{AppError, DeviceCtx, StorageApp};
use morpheus_format::{
    BinaryStreamParser, Endianness, ParseWork, ParsedColumns, Schema, TextWriter,
};

/// Deserializes *packed binary* records (possibly foreign-endian) into
/// canonical application objects — the "binary inputs" extension of §I.
///
/// All conversion work is integer-path byte shuffling, so unlike text
/// floats this never touches the missing FPU: binary float inputs are a
/// best case for in-storage deserialization.
#[derive(Debug)]
pub struct BinaryDeserializeApp {
    name: String,
    parser: Option<BinaryStreamParser>,
    emitted_records: u64,
    last_work: ParseWork,
}

impl BinaryDeserializeApp {
    /// Creates the app for a schema stored at the given byte order.
    pub fn new(name: impl Into<String>, schema: Schema, endian: Endianness) -> Self {
        BinaryDeserializeApp {
            name: name.into(),
            parser: Some(BinaryStreamParser::new(schema, endian)),
            emitted_records: 0,
            last_work: ParseWork::default(),
        }
    }

    fn emit_and_charge(&mut self, ctx: &mut DeviceCtx) {
        let parser = self.parser.as_ref().expect("instance still live");
        let total = parser.records();
        if total > self.emitted_records {
            let mut buf = Vec::new();
            let mut cols = parser.peek().clone();
            cols.canonicalize();
            cols.encode_rows(self.emitted_records, total, &mut buf);
            ctx.charge_instructions(buf.len() as f64);
            ctx.ms_memcpy(&buf);
            self.emitted_records = total;
        }
        let w = parser.work();
        let delta = ParseWork {
            bytes_scanned: w.bytes_scanned - self.last_work.bytes_scanned,
            int_tokens: w.int_tokens - self.last_work.int_tokens,
            int_digits: w.int_digits - self.last_work.int_digits,
            float_tokens: w.float_tokens - self.last_work.float_tokens,
            float_digits: w.float_digits - self.last_work.float_digits,
        };
        ctx.charge_work(&delta);
        self.last_work = w;
    }
}

impl StorageApp for BinaryDeserializeApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_chunk(&mut self, ctx: &mut DeviceCtx, data: &[u8]) -> Result<(), AppError> {
        let parser = self.parser.as_mut().expect("on_chunk after finish");
        parser.feed(data)?;
        self.emit_and_charge(ctx);
        Ok(())
    }

    fn on_finish(&mut self, ctx: &mut DeviceCtx) -> Result<i32, AppError> {
        self.emit_and_charge(ctx);
        let parser = self.parser.take().expect("on_finish called twice");
        let cols = parser.finish()?;
        Ok(cols.records as i32)
    }
}

/// Device-side serialization instruction costs (the lean `ms_printf`
/// loop): per emitted byte and per formatted token.
const SERIALIZE_INSTR_PER_BYTE: f64 = 3.0;
const SERIALIZE_INSTR_PER_TOKEN: f64 = 12.0;

/// The serialization direction (§I): consumes canonical binary object
/// records pushed by the host (via MWRITE) and emits ASCII text with
/// `ms_printf`, so the interchange file is produced inside the drive.
#[derive(Debug)]
pub struct SerializeApp {
    name: String,
    schema: Schema,
    carry: Vec<u8>,
    records: u64,
}

impl SerializeApp {
    /// Creates the app for a record schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        SerializeApp {
            name: name.into(),
            schema,
            carry: Vec::new(),
            records: 0,
        }
    }

    fn serialize_complete(&mut self, ctx: &mut DeviceCtx, data: &[u8]) -> Result<(), AppError> {
        let rec = self.schema.record_bytes() as usize;
        let mut buf = std::mem::take(&mut self.carry);
        buf.extend_from_slice(data);
        let complete = buf.len() - buf.len() % rec;
        let cols = ParsedColumns::decode(self.schema.clone(), &buf[..complete])
            .expect("whole records by construction");
        let mut w = TextWriter::new();
        for r in 0..cols.records as usize {
            for (i, col) in cols.columns.iter().enumerate() {
                if i > 0 {
                    w.sep();
                }
                match col {
                    morpheus_format::Column::Ints(v) => w.write_i64(v[r]),
                    morpheus_format::Column::Floats(v) => w.write_f64(v[r], 6),
                }
            }
            w.newline();
        }
        self.records += cols.records;
        let work = w.work();
        ctx.charge_instructions(
            work.bytes_emitted as f64 * SERIALIZE_INSTR_PER_BYTE
                + work.tokens as f64 * SERIALIZE_INSTR_PER_TOKEN,
        );
        ctx.ms_memcpy(w.as_bytes());
        self.carry = buf[complete..].to_vec();
        Ok(())
    }
}

impl StorageApp for SerializeApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_chunk(&mut self, ctx: &mut DeviceCtx, data: &[u8]) -> Result<(), AppError> {
        self.serialize_complete(ctx, data)
    }

    fn on_finish(&mut self, _ctx: &mut DeviceCtx) -> Result<i32, AppError> {
        if !self.carry.is_empty() {
            return Err(AppError::App(format!(
                "{} trailing bytes do not form a whole record",
                self.carry.len()
            )));
        }
        Ok(self.records as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{encode_binary, parse_buffer, FieldKind, TextScanner};

    fn schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::F64])
    }

    fn objects() -> ParsedColumns {
        let (mut p, _) = parse_buffer(b"1 0.5\n2 -1.25\n3 9.0\n", &schema()).unwrap();
        p.canonicalize();
        p
    }

    #[test]
    fn binary_app_round_trips_foreign_endian_input() {
        let want = objects();
        let input = encode_binary(&want, Endianness::Big);
        let mut app = BinaryDeserializeApp::new("bin", schema(), Endianness::Big);
        let mut ctx = DeviceCtx::new(256 * 1024);
        // Feed with an awkward split mid-record.
        app.on_chunk(&mut ctx, &input[..7]).unwrap();
        app.on_chunk(&mut ctx, &input[7..]).unwrap();
        let ret = app.on_finish(&mut ctx).unwrap();
        assert_eq!(ret, 3);
        let got = ParsedColumns::decode(schema(), &ctx.take_output()).unwrap();
        assert_eq!(got, want);
        // All charged work is integer-path (no soft-float exposure).
        let w = ctx.take_work();
        assert_eq!(w.float_tokens, 0);
        assert!(w.int_tokens > 0);
    }

    #[test]
    fn binary_app_rejects_ragged_stream() {
        let input = encode_binary(&objects(), Endianness::Little);
        let mut app = BinaryDeserializeApp::new("bin", schema(), Endianness::Little);
        let mut ctx = DeviceCtx::new(256 * 1024);
        app.on_chunk(&mut ctx, &input[..input.len() - 1]).unwrap();
        assert!(app.on_finish(&mut ctx).is_err());
    }

    #[test]
    fn serialize_app_emits_parseable_text() {
        let objs = objects();
        let mut bin = Vec::new();
        objs.encode_rows(0, objs.records, &mut bin);
        let mut app = SerializeApp::new("ser", schema());
        let mut ctx = DeviceCtx::new(256 * 1024);
        // Split mid-record to exercise the carry.
        app.on_chunk(&mut ctx, &bin[..5]).unwrap();
        app.on_chunk(&mut ctx, &bin[5..]).unwrap();
        assert_eq!(app.on_finish(&mut ctx).unwrap(), 3);
        let text = ctx.take_output();
        let mut s = TextScanner::new(&text);
        assert_eq!(s.parse_u64().unwrap(), 1);
        assert!((s.parse_f64().unwrap() - 0.5).abs() < 1e-9);
        // And the whole output reparses to the original objects.
        let (mut back, _) = parse_buffer(&text, &schema()).unwrap();
        back.canonicalize();
        assert_eq!(back, objs);
    }

    #[test]
    fn serialize_app_rejects_trailing_garbage() {
        let mut app = SerializeApp::new("ser", schema());
        let mut ctx = DeviceCtx::new(256 * 1024);
        app.on_chunk(&mut ctx, &[1, 2, 3]).unwrap();
        assert!(app.on_finish(&mut ctx).is_err());
    }
}
