//! Submission and completion queue rings with doorbells and phase bits.
//!
//! NVMe uses a doorbell model (§IV-C): the host writes commands into a
//! submission ring and rings a tail doorbell; the device consumes entries
//! and posts 16-byte completions into a completion ring, toggling a phase
//! bit each wrap so the host can detect new entries without a doorbell.

use crate::{NvmeCommand, StatusCode};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Queue-level errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The ring is full; the producer must wait for the consumer.
    Full,
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Full => write!(f, "queue is full"),
        }
    }
}

impl Error for QueueError {}

/// A submission queue ring.
///
/// The host is the producer ([`submit`](SubmissionQueue::submit) writes the
/// entry and advances the tail doorbell); the device is the consumer
/// ([`pop`](SubmissionQueue::pop)).
#[derive(Debug, Clone)]
pub struct SubmissionQueue {
    entries: VecDeque<NvmeCommand>,
    depth: usize,
    doorbell_writes: u64,
}

impl SubmissionQueue {
    /// Creates a ring with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        SubmissionQueue {
            entries: VecDeque::with_capacity(depth),
            depth,
            doorbell_writes: 0,
        }
    }

    /// Host side: enqueue a command and ring the tail doorbell.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Full`] when the ring has no free slot.
    pub fn submit(&mut self, cmd: NvmeCommand) -> Result<(), QueueError> {
        if self.entries.len() == self.depth {
            return Err(QueueError::Full);
        }
        self.entries.push_back(cmd);
        self.doorbell_writes += 1;
        Ok(())
    }

    /// Host side: enqueue a burst of commands with a single tail-doorbell
    /// write, as coalescing drivers do — the tail moves once past the whole
    /// burst, so the MMIO cost is paid per burst rather than per command.
    ///
    /// The burst is all-or-nothing: either every command fits in the ring
    /// and is enqueued, or the ring is left untouched. An empty burst is a
    /// no-op and does not ring the doorbell.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Full`] when the ring cannot hold the entire
    /// burst; no command is enqueued in that case.
    pub fn submit_batch(&mut self, cmds: &[NvmeCommand]) -> Result<(), QueueError> {
        if cmds.is_empty() {
            return Ok(());
        }
        if self.entries.len() + cmds.len() > self.depth {
            return Err(QueueError::Full);
        }
        self.entries.extend(cmds.iter().copied());
        self.doorbell_writes += 1;
        Ok(())
    }

    /// Device side: consume the oldest command, if any.
    pub fn pop(&mut self) -> Option<NvmeCommand> {
        self.entries.pop_front()
    }

    /// Commands currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no commands are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total tail-doorbell writes (each one is an MMIO the host paid for).
    pub fn doorbell_writes(&self) -> u64 {
        self.doorbell_writes
    }
}

/// A posted completion entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionEntry {
    /// Command identifier of the completed command.
    pub cid: u16,
    /// Completion status.
    pub status: StatusCode,
    /// Command-specific result dword (Morpheus return values travel here).
    pub result: u32,
    /// Phase tag; alternates every ring wrap.
    pub phase: bool,
}

/// A completion queue ring with phase-bit semantics.
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    ring: Vec<Option<CompletionEntry>>,
    head: usize,
    tail: usize,
    phase: bool,
    outstanding: usize,
}

impl CompletionQueue {
    /// Creates a ring with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        CompletionQueue {
            ring: vec![None; depth],
            head: 0,
            tail: 0,
            phase: true,
            outstanding: 0,
        }
    }

    /// Device side: post a completion.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Full`] when the host has not consumed enough
    /// entries.
    pub fn post(&mut self, cid: u16, status: StatusCode, result: u32) -> Result<(), QueueError> {
        if self.outstanding == self.ring.len() {
            return Err(QueueError::Full);
        }
        self.ring[self.tail] = Some(CompletionEntry {
            cid,
            status,
            result,
            phase: self.phase,
        });
        self.tail += 1;
        if self.tail == self.ring.len() {
            self.tail = 0;
            self.phase = !self.phase;
        }
        self.outstanding += 1;
        Ok(())
    }

    /// Host side: consume the next completion, using the phase bit to
    /// detect a new entry exactly as an NVMe driver polls.
    pub fn reap(&mut self) -> Option<CompletionEntry> {
        let expected_phase = self.host_expected_phase();
        let e = self.ring[self.head]?;
        if e.phase != expected_phase {
            return None;
        }
        self.ring[self.head] = None;
        self.head += 1;
        if self.head == self.ring.len() {
            self.head = 0;
        }
        self.outstanding -= 1;
        Some(e)
    }

    /// Completions posted but not yet reaped.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    fn host_expected_phase(&self) -> bool {
        // The host's expected phase flips each time its head wraps; we can
        // derive it from the device state because the model is lock-step.
        if self.head <= self.tail && self.outstanding < self.ring.len() {
            self.phase
        } else {
            !self.phase
        }
    }
}

/// A paired submission/completion queue as created per host thread.
#[derive(Debug, Clone)]
pub struct QueuePair {
    /// Commands from host to device.
    pub sq: SubmissionQueue,
    /// Completions from device to host.
    pub cq: CompletionQueue,
}

impl QueuePair {
    /// Creates a pair with equal depths.
    pub fn new(depth: usize) -> Self {
        QueuePair {
            sq: SubmissionQueue::new(depth),
            cq: CompletionQueue::new(depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoOpcode;

    fn cmd(cid: u16) -> NvmeCommand {
        NvmeCommand::new(IoOpcode::Flush, cid, 1)
    }

    #[test]
    fn sq_fifo_order() {
        let mut sq = SubmissionQueue::new(4);
        sq.submit(cmd(1)).unwrap();
        sq.submit(cmd(2)).unwrap();
        assert_eq!(sq.pop().unwrap().cid, 1);
        assert_eq!(sq.pop().unwrap().cid, 2);
        assert!(sq.pop().is_none());
        assert_eq!(sq.doorbell_writes(), 2);
    }

    #[test]
    fn batch_submit_rings_doorbell_once_per_burst() {
        // A burst of 8 costs one MMIO; the same 8 commands submitted
        // singly cost 8.
        let burst: Vec<NvmeCommand> = (0..8).map(cmd).collect();
        let mut batched = SubmissionQueue::new(16);
        batched.submit_batch(&burst).unwrap();
        assert_eq!(batched.doorbell_writes(), 1);
        let mut single = SubmissionQueue::new(16);
        for c in &burst {
            single.submit(*c).unwrap();
        }
        assert_eq!(single.doorbell_writes(), 8);
        // FIFO order is identical either way.
        for want in 0..8u16 {
            assert_eq!(batched.pop().unwrap().cid, want);
            assert_eq!(single.pop().unwrap().cid, want);
        }
    }

    #[test]
    fn batch_submit_is_all_or_nothing() {
        let mut sq = SubmissionQueue::new(4);
        sq.submit(cmd(0)).unwrap();
        let burst: Vec<NvmeCommand> = (1..=4).map(cmd).collect();
        assert_eq!(sq.submit_batch(&burst).unwrap_err(), QueueError::Full);
        // The failed burst left the ring untouched and rang no doorbell.
        assert_eq!(sq.len(), 1);
        assert_eq!(sq.doorbell_writes(), 1);
        sq.submit_batch(&burst[..3]).unwrap();
        assert_eq!(sq.len(), 4);
        assert_eq!(sq.doorbell_writes(), 2);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut sq = SubmissionQueue::new(2);
        sq.submit_batch(&[]).unwrap();
        assert!(sq.is_empty());
        assert_eq!(sq.doorbell_writes(), 0);
    }

    #[test]
    fn sq_full_rejects() {
        let mut sq = SubmissionQueue::new(1);
        sq.submit(cmd(1)).unwrap();
        assert_eq!(sq.submit(cmd(2)).unwrap_err(), QueueError::Full);
        sq.pop();
        sq.submit(cmd(2)).unwrap();
    }

    #[test]
    fn cq_round_trips_entries_in_order() {
        let mut cq = CompletionQueue::new(3);
        cq.post(1, StatusCode::Success, 10).unwrap();
        cq.post(2, StatusCode::AppFault, 0).unwrap();
        let a = cq.reap().unwrap();
        assert_eq!((a.cid, a.result), (1, 10));
        let b = cq.reap().unwrap();
        assert_eq!(b.status, StatusCode::AppFault);
        assert!(cq.reap().is_none());
    }

    #[test]
    fn cq_phase_bit_flips_on_wrap() {
        let mut cq = CompletionQueue::new(2);
        cq.post(1, StatusCode::Success, 0).unwrap();
        cq.post(2, StatusCode::Success, 0).unwrap();
        let e1 = cq.reap().unwrap();
        let e2 = cq.reap().unwrap();
        assert_eq!(e1.phase, e2.phase);
        // Third and fourth completions wrap the ring: phase flips.
        cq.post(3, StatusCode::Success, 0).unwrap();
        cq.post(4, StatusCode::Success, 0).unwrap();
        let e3 = cq.reap().unwrap();
        assert_ne!(e1.phase, e3.phase);
        assert_eq!(e3.cid, 3);
        assert_eq!(cq.reap().unwrap().cid, 4);
    }

    #[test]
    fn cq_full_rejects() {
        let mut cq = CompletionQueue::new(1);
        cq.post(1, StatusCode::Success, 0).unwrap();
        assert_eq!(
            cq.post(2, StatusCode::Success, 0).unwrap_err(),
            QueueError::Full
        );
        cq.reap().unwrap();
        cq.post(2, StatusCode::Success, 0).unwrap();
    }

    #[test]
    fn long_interleaved_traffic_preserves_order() {
        let mut qp = QueuePair::new(8);
        let mut next_cid: u16 = 0;
        let mut expect_reap: u16 = 0;
        for step in 0..1000u32 {
            if step % 3 != 0 && qp.sq.submit(cmd(next_cid)).is_ok() {
                next_cid += 1;
            }
            if qp.cq.outstanding() < 8 {
                if let Some(c) = qp.sq.pop() {
                    qp.cq.post(c.cid, StatusCode::Success, 0).unwrap();
                }
            }
            if step % 2 == 0 {
                if let Some(e) = qp.cq.reap() {
                    assert_eq!(e.cid, expect_reap);
                    expect_reap += 1;
                }
            }
        }
    }
}
