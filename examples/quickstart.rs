//! Quickstart: deserialize a text file on the host vs inside the SSD.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use morpheus::{AppSpec, Mode, System, SystemParams};
use morpheus_format::{FieldKind, Schema, TextWriter};

fn main() {
    // A platform modelled after the paper's testbed: quad-core Xeon,
    // DDR3, PCIe 3.0 fabric, Morpheus-SSD with four embedded cores, K20.
    let mut sys = System::new(SystemParams::paper_testbed());

    // Write a CSV-ish integer file onto the (simulated, FTL-backed) drive.
    let mut w = TextWriter::new();
    for i in 0..200_000u64 {
        w.write_u64(i * 37 % 100_000);
        w.sep();
        w.write_u64(i * 91 % 100_000);
        w.newline();
    }
    let text = w.into_bytes();
    sys.create_input_file("pairs.txt", &text).unwrap();
    println!(
        "staged pairs.txt: {:.1} MB of ASCII",
        text.len() as f64 / 1e6
    );

    // Describe the application: two u32 columns, a small CPU kernel.
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let spec = AppSpec::cpu_app("quickstart", "pairs.txt", schema, 4, 500.0);

    // Run the same deserialization both ways.
    let conv = sys.run(&spec, Mode::Conventional).unwrap();
    let morp = sys.run(&spec, Mode::Morpheus).unwrap();

    assert_eq!(conv.report.checksum, morp.report.checksum);
    println!(
        "\nboth modes produced identical objects ({} records)\n",
        conv.report.records
    );

    let rows = [
        ("conventional", &conv.report),
        ("morpheus-ssd", &morp.report),
    ];
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "mode", "deser", "eff. MB/s", "switches", "power", "energy"
    );
    for (name, r) in rows {
        println!(
            "{:<14} {:>9.3}s {:>12.1} {:>10} {:>11.1}W {:>9.1}J",
            name,
            r.phases.deserialization_s,
            r.effective_bandwidth_mbs,
            r.context_switches,
            r.deser_power_watts,
            r.deser_energy_j,
        );
    }
    println!(
        "\nmorpheus-ssd deserializes {:.2}x faster using {:.0}% of the energy",
        morp.report.deser_speedup_over(&conv.report),
        100.0 * morp.report.deser_energy_j / conv.report.deser_energy_j
    );
}
