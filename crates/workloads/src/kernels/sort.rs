//! Sorting kernels (BigDataBench Sort on the CPU, Rodinia Hybrid Sort on
//! the GPU share this reference implementation).

use crate::kernels::KernelResult;
use crate::Digest;
use morpheus_format::ParsedColumns;

/// Sorts the single integer column and digests order statistics plus a
/// strided sample.
pub fn sort(objects: &ParsedColumns, label: &str) -> KernelResult {
    let mut vals: Vec<i64> = objects.columns[0]
        .as_ints()
        .expect("sort input is an integer column")
        .to_vec();
    vals.sort_unstable();
    let mut d = Digest::new();
    d.mix(vals.len() as u64);
    let stride = (vals.len() / 1000).max(1);
    for v in vals.iter().step_by(stride) {
        d.mix_i64(*v);
    }
    if let (Some(min), Some(max)) = (vals.first(), vals.last()) {
        d.mix_i64(*min);
        d.mix_i64(*max);
        KernelResult {
            digest: d.value(),
            summary: format!("{label}: {} keys, min {min}, max {max}", vals.len()),
        }
    } else {
        KernelResult {
            digest: d.value(),
            summary: format!("{label}: empty input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_format::{parse_buffer, FieldKind, Schema};

    fn ints(text: &[u8]) -> ParsedColumns {
        let schema = Schema::new(vec![FieldKind::U32]);
        parse_buffer(text, &schema).unwrap().0
    }

    #[test]
    fn reports_order_statistics() {
        let p = ints(b"5\n1\n9\n3\n");
        let r = sort(&p, "sort");
        assert!(r.summary.contains("min 1"));
        assert!(r.summary.contains("max 9"));
    }

    #[test]
    fn digest_depends_on_content_not_input_order() {
        let a = sort(&ints(b"3\n1\n2\n"), "sort");
        let b = sort(&ints(b"1\n2\n3\n"), "sort");
        assert_eq!(a.digest, b.digest);
        let c = sort(&ints(b"1\n2\n4\n"), "sort");
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn empty_input_handled() {
        let p = ints(b"");
        assert!(sort(&p, "sort").summary.contains("empty"));
    }
}
