//! Open-loop serving: §III's multiprogramming argument at datacenter shape.
//!
//! The closed N-tenant run ([`System::run_deserialize_many`]) shows the
//! drive's cores beating host cores when everyone is always busy. Real
//! deployments are *open-loop*: requests arrive on their own schedule (a
//! seeded [`ArrivalProcess`]), queue behind an admission limit, coalesce
//! into same-app batches, and dispatch onto embedded cores (Morpheus) or
//! host cores (conventional). Queueing is where the latency-vs-RPS knee
//! lives — the sustainable-throughput gap between the two engines is the
//! serving-shaped version of the paper's Fig. 3.
//!
//! Everything is deterministic: the arrival schedule, app picks, fault
//! rolls, and dispatch order derive from seeds, so a serve run is
//! byte-identical across repeats and across bench `--jobs` values.

use crate::cache::{self, CacheEvent, CacheHit, CacheStats, CacheTier};
use crate::concurrent::TenantState;
use crate::exec::{AppSpec, RunError};
use crate::report::{mb_per_sec, Mode};
use crate::{DeserializeApp, StorageApp, StorageKind, System};
use morpheus_format::ParsedColumns;
use morpheus_host::CodeClass;
use morpheus_nvme::{AdminController, MorpheusCommand, NvmeCommand, StatusCode};
use morpheus_pcie::{BarWindow, DmaDir};
use morpheus_simcore::{
    ArrivalProcess, FaultCounters, Histogram, Metrics, SimDuration, SimTime, SplitMix64,
    TelemetryConfig, TelemetryReport, TelemetrySampler, TraceLayer, Zipfian,
};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Trace track for serving-layer events (admission, waits, requests).
const SERVE_TRACK: &str = "serve";
/// Trace track for object-cache events (hits, misses, admission churn).
const CACHE_TRACK: &str = "cache";
/// Trace track for telemetry window-boundary instants.
const TELEMETRY_TRACK: &str = "telemetry";
/// Queue id of the first per-tenant I/O queue pair. Qid 0 is the admin
/// queue and qid 1 is the legacy shared queue the solo drivers use.
const FIRST_TENANT_QID: u16 = 2;
/// Decorrelates the app-picking stream from the arrival-time stream so
/// both can share one user-facing seed.
const APP_PICK_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// What the admission queue does with a request that finds it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Drop the request (counted as shed; it never runs).
    Shed,
    /// Serve it immediately on the host path, bypassing the queue — the
    /// drive is saturated but the host may have idle cores.
    HostFallback,
}

impl ServePolicy {
    /// Parses the CLI spelling (`shed` / `fallback`).
    pub fn parse(s: &str) -> Option<ServePolicy> {
        match s {
            "shed" => Some(ServePolicy::Shed),
            "fallback" => Some(ServePolicy::HostFallback),
            _ => None,
        }
    }
}

impl fmt::Display for ServePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServePolicy::Shed => "shed",
            ServePolicy::HostFallback => "fallback",
        })
    }
}

/// Configuration of one serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target arrival rate, requests per simulated second.
    pub rps: f64,
    /// Length of the arrival window, simulated seconds (requests already
    /// admitted when the window closes are still served).
    pub duration_s: f64,
    /// Admission-queue depth: requests beyond this many waiting are shed
    /// or host-served per [`ServePolicy`].
    pub depth: usize,
    /// Most same-app requests one dispatch coalesces.
    pub batch_max: usize,
    /// Depth of each tenant's NVMe submission queue (bounds how many
    /// commands one doorbell write can cover).
    pub sq_depth: usize,
    /// Engine serving the requests.
    pub mode: Mode,
    /// Overflow policy.
    pub policy: ServePolicy,
    /// Seed for the arrival schedule and app picks.
    pub seed: u64,
    /// Zipfian exponent of the app-popularity distribution. `0.0` (the
    /// default) keeps the historical uniform pick stream byte-for-byte;
    /// any positive value draws app indices from a seeded [`Zipfian`]
    /// (rank 0 = most popular), which is what makes the object cache
    /// earn hits.
    pub skew: f64,
    /// Windowed telemetry sampling plus SLO objectives. `None` (the
    /// default) is the zero-cost path: no sampler is allocated, every
    /// hook is a single `Option` branch, and the report renders exactly
    /// as before.
    pub telemetry: Option<TelemetryConfig>,
    /// Skip the dispatch scan entirely while the system is quiescent
    /// (admission queue empty): the clock jumps straight from one arrival
    /// to the next. Dispatch order, telemetry, and SLO accounting are
    /// unchanged — with nothing queued the scan is a no-op — so reports
    /// and traces stay byte-identical with the flag on or off (pinned by
    /// the serve determinism suite).
    pub fast_forward: bool,
}

impl ServeConfig {
    /// A config at the given load with the defaults the bench binary uses.
    pub fn new(rps: f64, duration_s: f64) -> Self {
        ServeConfig {
            rps,
            duration_s,
            depth: 64,
            batch_max: 8,
            sq_depth: 64,
            mode: Mode::Morpheus,
            policy: ServePolicy::Shed,
            seed: 42,
            skew: 0.0,
            telemetry: None,
            fast_forward: false,
        }
    }
}

/// Everything measured during one serve run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Engine that served the requests.
    pub mode: Mode,
    /// Overflow policy in force.
    pub policy: ServePolicy,
    /// Target arrival rate, requests/s.
    pub target_rps: f64,
    /// Arrival-window length, seconds.
    pub duration_s: f64,
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Requests that entered the admission queue.
    pub admitted: u64,
    /// Requests fully served (admitted + overflow host-fallbacks).
    pub completed: u64,
    /// Requests dropped by [`ServePolicy::Shed`].
    pub shed: u64,
    /// Requests served on the host because the queue was full
    /// ([`ServePolicy::HostFallback`]).
    pub overflow_fallbacks: u64,
    /// Admitted Morpheus requests re-dispatched to the host path after a
    /// fault (core crash, reissue budget, uncorrectable media).
    pub fault_redispatches: u64,
    /// Requests that failed outright (reissue budget spent on the host
    /// path, which has no further fallback).
    pub failed: u64,
    /// Dispatched batches.
    pub batches: u64,
    /// NVMe commands driven through the per-tenant queues.
    pub commands: u64,
    /// Tail-doorbell MMIOs across all tenant queues (batching makes this
    /// far smaller than `commands`).
    pub doorbell_writes: u64,
    /// Time until the last served request finished, seconds.
    pub makespan_s: f64,
    /// Completed requests per second of makespan.
    pub sustained_rps: f64,
    /// Object throughput over the makespan, MB/s.
    pub aggregate_mbs: f64,
    /// Records deserialized across all completed requests.
    pub records: u64,
    /// Order-sensitive fold of per-request object checksums.
    pub checksum: u64,
    /// Order-insensitive (commutative) fold of the same per-request
    /// checksums. Dispatch order legitimately shifts when service times
    /// change (a cache turns misses into fast hits), so this is the field
    /// correctness tests compare across cache-on/cache-off runs. Not
    /// printed by `Display` — pre-cache report text stays byte-identical.
    pub checksum_unordered: u64,
    /// Arrival → service-start latency, nanoseconds.
    pub queue_wait_ns: Histogram,
    /// Service-start → completion latency, nanoseconds.
    pub service_ns: Histogram,
    /// Arrival → completion latency, nanoseconds.
    pub e2e_ns: Histogram,
    /// Injected faults and recoveries (all zero without a fault plan).
    pub faults: FaultCounters,
    /// Object-cache counters for this run (`None` when no cache is
    /// installed, so cache-off reports render exactly as before).
    pub cache: Option<CacheStats>,
    /// Windowed telemetry and SLO outcomes (`None` when sampling was not
    /// requested, so telemetry-off reports render exactly as before).
    pub telemetry: Option<TelemetryReport>,
    /// Extra measurements (latency quantiles, core utilization; sorted).
    pub metrics: Metrics,
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mode={} policy={} target_rps={:.1} duration={:.4}s",
            self.mode, self.policy, self.target_rps, self.duration_s
        )?;
        writeln!(
            f,
            "offered={} admitted={} completed={} shed={} overflow_fallbacks={} \
             fault_redispatches={} failed={}",
            self.offered,
            self.admitted,
            self.completed,
            self.shed,
            self.overflow_fallbacks,
            self.fault_redispatches,
            self.failed
        )?;
        writeln!(
            f,
            "batches={} commands={} doorbells={}",
            self.batches, self.commands, self.doorbell_writes
        )?;
        writeln!(
            f,
            "makespan={:.6}s sustained_rps={:.1} aggregate_mbs={:.3} records={} checksum={:016x}",
            self.makespan_s, self.sustained_rps, self.aggregate_mbs, self.records, self.checksum
        )?;
        writeln!(f, "queue_wait_ns {:?}", self.queue_wait_ns)?;
        writeln!(f, "service_ns    {:?}", self.service_ns)?;
        write!(f, "e2e_ns        {:?}", self.e2e_ns)?;
        if let Some(c) = &self.cache {
            write!(f, "\ncache         {c}")?;
        }
        if let Some(t) = &self.telemetry {
            write!(f, "\n{t}")?;
        }
        Ok(())
    }
}

/// One offered request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Request {
    pub(crate) arrival: SimTime,
    pub(crate) app: usize,
}

/// Builds the offered load of one serve run: seeded Poisson arrivals over
/// `[0, cfg.duration_s)`, each picking one of `napps` tenants. Skew 0
/// keeps the historical uniform `next_below` stream so pre-skew runs stay
/// byte-identical; positive skew draws Zipfian ranks from the same pick
/// stream (one uniform draw per request). The fleet layer calls this too:
/// a fleet run routes exactly this stream across devices, so placement is
/// a partition of the single-SSD load, never a different one.
pub(crate) fn offered_requests(cfg: &ServeConfig, napps: usize) -> Vec<Request> {
    let horizon = SimTime::ZERO + SimDuration::from_secs_f64(cfg.duration_s);
    let zipf = (cfg.skew > 0.0).then(|| Zipfian::new(napps, cfg.skew));
    let mut pick = SplitMix64::new(cfg.seed ^ APP_PICK_SALT);
    let mut reqs: Vec<Request> = Vec::new();
    for t in ArrivalProcess::new(cfg.seed, cfg.rps) {
        if t >= horizon {
            break;
        }
        let app = match &zipf {
            Some(z) => z.sample(&mut pick),
            None => pick.next_below(napps as u64) as usize,
        };
        reqs.push(Request { arrival: t, app });
    }
    reqs
}

/// Panics on config-bug serve parameters (shared by the solo and fleet
/// entry points so both reject the same inputs the same way).
pub(crate) fn validate_serve_cfg(cfg: &ServeConfig) {
    assert!(cfg.rps.is_finite() && cfg.rps > 0.0, "rps must be positive");
    assert!(
        cfg.duration_s.is_finite() && cfg.duration_s > 0.0,
        "duration must be positive"
    );
    assert!(cfg.depth >= 1, "admission depth must be at least 1");
    assert!(cfg.batch_max >= 1, "batch size must be at least 1");
    assert!(
        cfg.skew.is_finite() && cfg.skew >= 0.0,
        "skew must be finite and non-negative"
    );
}

/// A command plus the completion the device will post for it, staged per
/// batch and then pumped through the tenant's queue pair.
type WireCmd = (NvmeCommand, StatusCode, u32);

/// Mutable run state threaded through the dispatcher.
struct ServeState {
    /// Per-app FIFO of admitted, not-yet-dispatched requests.
    pending: Vec<VecDeque<Request>>,
    /// When each app's serving lane frees up (per-app FIFO service).
    next_free: Vec<SimTime>,
    /// Requests currently waiting across all apps.
    queued: usize,
    rep: ServeReport,
    obj_bytes: u64,
    makespan: SimTime,
    /// Windowed sampler (`None` keeps every hook a single branch).
    sampler: Option<TelemetrySampler>,
    /// Pooled scratch for one batch's wire commands: taken at the top of
    /// each dispatch, cleared, and put back, so steady-state serving does
    /// no per-batch `Vec` growth.
    wire_scratch: Vec<WireCmd>,
    /// Pooled scratch for the requests coalesced into one batch.
    batch_scratch: Vec<Request>,
    /// Pooled scratch for one doorbell wave's decoded commands.
    cmds_scratch: Vec<NvmeCommand>,
}

/// Which engine completed a request — the occupancy series a completed
/// request's service span is attributed to.
#[derive(Debug, Clone, Copy)]
enum ServePath {
    /// Parsed on the drive's embedded cores.
    Embedded,
    /// Parsed on host cores (conventional mode, overflow, re-dispatch).
    Host,
    /// Delivered straight from the object cache.
    CacheHit,
}

impl ServePath {
    /// The `*_busy_ns` telemetry series this path's service time feeds.
    fn busy_series(self) -> &'static str {
        match self {
            ServePath::Embedded => "ssd_busy_ns",
            ServePath::Host => "host_busy_ns",
            ServePath::CacheHit => "cache_busy_ns",
        }
    }
}

/// Immutable-ish dispatch context (the admin controller owns the queues).
struct ServeCtx<'a> {
    cfg: &'a ServeConfig,
    apps: &'a [AppSpec],
    bar: Option<BarWindow>,
    admin: AdminController,
    /// Per-app format digests (part of the cache key), computed once.
    digests: Vec<u64>,
    /// Per-app deserializer code sizes for MINIT, computed once — the
    /// dispatch loop must not rebuild a `DeserializeApp` (name string +
    /// schema clone) per request just to read this.
    code_lens: Vec<u32>,
}

/// One tenant's spec plus its precomputed format digest (the cache key
/// half that doesn't depend on the request) and MINIT code size.
struct Tenant<'a> {
    spec: &'a AppSpec,
    digest: u64,
    code_len: u32,
}

/// Why a Morpheus-path request was abandoned mid-service.
enum ServeAbort {
    /// Unrecoverable: surface to the caller.
    Fatal(RunError),
    /// Recoverable by re-dispatching the request to the host path.
    Redispatch {
        at: SimTime,
        iid: u32,
        status: StatusCode,
        cause: String,
    },
}

impl From<RunError> for ServeAbort {
    fn from(e: RunError) -> Self {
        ServeAbort::Fatal(e)
    }
}

impl System {
    /// Runs an open-loop serving experiment: Poisson arrivals at `cfg.rps`
    /// for `cfg.duration_s` simulated seconds each pick one of `apps`
    /// uniformly and are deserialized under `cfg.mode`, with admission,
    /// same-app batching, and per-app FIFO dispatch. Unlike
    /// [`run_deserialize_many`](System::run_deserialize_many), P2P mode is
    /// accepted here: serving measures deserialization and delivery only,
    /// so objects simply land in GPU memory instead of host DRAM.
    ///
    /// # Errors
    ///
    /// Fails on an empty app list ([`RunError::NoTenants`]), unknown
    /// files, parse failures, or fatal firmware errors. Injected faults do
    /// not fail the run: Morpheus requests re-dispatch to the host path,
    /// and host-path timeouts count the request as failed.
    ///
    /// # Panics
    ///
    /// Panics on a non-NVMe storage configuration or a non-positive rate,
    /// duration, depth, or batch size (config bugs, not run outcomes).
    pub fn serve(&mut self, apps: &[AppSpec], cfg: &ServeConfig) -> Result<ServeReport, RunError> {
        if apps.is_empty() {
            return Err(RunError::NoTenants);
        }
        validate_serve_cfg(cfg);
        let reqs = offered_requests(cfg, apps.len());
        self.serve_requests(apps, cfg, reqs)
    }

    /// Serves a pre-built request stream (the dispatch half of
    /// [`serve`](System::serve), which builds the stream itself). The
    /// fleet layer routes one global stream across devices and hands each
    /// device its slice through this entry point, so a `--devices 1`
    /// fleet run executes byte-for-byte the single-SSD path.
    pub(crate) fn serve_requests(
        &mut self,
        apps: &[AppSpec],
        cfg: &ServeConfig,
        reqs: Vec<Request>,
    ) -> Result<ServeReport, RunError> {
        assert!(
            self.params.storage == StorageKind::NvmeSsd,
            "serving models the NVMe path"
        );
        self.reset_timing();
        let bar = match cfg.mode {
            Mode::MorpheusP2P => Some(self.map_gpu_bar()),
            _ => None,
        };

        // One NVMe queue pair per tenant app, created through the admin
        // queue exactly as a driver would.
        let mut admin = AdminController::new(self.mssd.identify(), apps.len() as u16 + 1);
        for a in 0..apps.len() {
            let sc = admin.create_io_queue(FIRST_TENANT_QID + a as u16, cfg.sq_depth);
            assert_eq!(sc, StatusCode::Success, "tenant queue creation failed");
        }

        let mut st = ServeState {
            pending: vec![VecDeque::new(); apps.len()],
            next_free: vec![SimTime::ZERO; apps.len()],
            queued: 0,
            rep: ServeReport {
                mode: cfg.mode,
                policy: cfg.policy,
                target_rps: cfg.rps,
                duration_s: cfg.duration_s,
                offered: reqs.len() as u64,
                admitted: 0,
                completed: 0,
                shed: 0,
                overflow_fallbacks: 0,
                fault_redispatches: 0,
                failed: 0,
                batches: 0,
                commands: 0,
                doorbell_writes: 0,
                makespan_s: 0.0,
                sustained_rps: 0.0,
                aggregate_mbs: 0.0,
                records: 0,
                checksum: 0,
                checksum_unordered: 0,
                queue_wait_ns: Histogram::new(),
                service_ns: Histogram::new(),
                e2e_ns: Histogram::new(),
                faults: FaultCounters::default(),
                cache: None,
                telemetry: None,
                metrics: Metrics::new(),
            },
            obj_bytes: 0,
            makespan: SimTime::ZERO,
            sampler: cfg.telemetry.as_ref().map(TelemetrySampler::new),
            wire_scratch: Vec::new(),
            batch_scratch: Vec::new(),
            cmds_scratch: Vec::new(),
        };
        // Per-run cache view: counters are lifetime totals (the cache
        // survives across runs so warmed state carries over), so the
        // report subtracts this snapshot.
        let cache_base = self.object_cache.as_ref().map(|c| c.stats());
        let digests: Vec<u64> = apps.iter().map(cache::format_digest).collect();
        let code_lens: Vec<u32> = apps
            .iter()
            .map(|a| DeserializeApp::new(&a.name, a.schema.clone()).code_bytes())
            .collect();
        let mut ctx = ServeCtx {
            cfg,
            apps,
            bar,
            admin,
            digests,
            code_lens,
        };

        for r in reqs {
            // Serve everything whose dispatch time has passed, so the
            // queue length this arrival sees is current. With nothing
            // queued the scan is a no-op; fast-forward skips it and jumps
            // the clock straight to this arrival.
            if !cfg.fast_forward || st.queued > 0 {
                self.drain_due(&mut st, &mut ctx, r.arrival)?;
            }
            if let Some(s) = st.sampler.as_mut() {
                s.count("offered", r.arrival);
                s.gauge("queue_depth", r.arrival, st.queued as f64);
            }
            if st.queued >= cfg.depth {
                match cfg.policy {
                    ServePolicy::Shed => {
                        st.rep.shed += 1;
                        if let Some(s) = st.sampler.as_mut() {
                            s.count("shed", r.arrival);
                            s.lost(r.arrival);
                        }
                        self.tracer
                            .instant(TraceLayer::Host, SERVE_TRACK, "shed", r.arrival);
                    }
                    ServePolicy::HostFallback => {
                        st.rep.overflow_fallbacks += 1;
                        if let Some(s) = st.sampler.as_mut() {
                            s.count("overflow_fallbacks", r.arrival);
                        }
                        self.tracer.instant(
                            TraceLayer::Host,
                            SERVE_TRACK,
                            "admit-overflow",
                            r.arrival,
                        );
                        let mut wire = std::mem::take(&mut st.wire_scratch);
                        wire.clear();
                        self.host_service(&mut st, &ctx.apps[r.app], r, r.arrival, &mut wire)?;
                        self.pump_wire(&mut st, &mut ctx, r.app, &wire, r.arrival);
                        st.wire_scratch = wire;
                    }
                }
            } else {
                st.pending[r.app].push_back(r);
                st.queued += 1;
                st.rep.admitted += 1;
                if let Some(s) = st.sampler.as_mut() {
                    s.count("admitted", r.arrival);
                }
            }
        }
        // The arrival window closed; serve out the queue.
        self.drain_due(&mut st, &mut ctx, SimTime::from_nanos(u64::MAX))?;
        debug_assert_eq!(st.queued, 0);

        // Totals and derived rates.
        st.rep.doorbell_writes = (0..apps.len())
            .map(|a| {
                ctx.admin
                    .io_queue(FIRST_TENANT_QID + a as u16)
                    .expect("queue created above")
                    .sq
                    .doorbell_writes()
            })
            .sum();
        st.rep.makespan_s = st.makespan.as_secs_f64();
        st.rep.sustained_rps = if st.rep.makespan_s > 0.0 {
            st.rep.completed as f64 / st.rep.makespan_s
        } else {
            0.0
        };
        st.rep.aggregate_mbs = mb_per_sec(st.obj_bytes, st.rep.makespan_s);
        st.rep.faults = self.collect_fault_counters();
        let mut metrics = Metrics::new();
        metrics.set(
            "ssd_core_utilization",
            self.mssd.dev.cores().utilization(st.makespan),
        );
        metrics.set(
            "ssd_parse_core_busy_s",
            self.mssd.parse_core_busy().as_secs_f64(),
        );
        metrics.set("host_cpu_busy_s", self.cpu_cores.busy().as_secs_f64());
        st.rep.queue_wait_ns.export("queue_wait_ns", &mut metrics);
        st.rep.service_ns.export("service_ns", &mut metrics);
        st.rep.e2e_ns.export("e2e_ns", &mut metrics);
        if let (Some(c), Some(base)) = (self.object_cache.as_ref(), cache_base) {
            let run = c.stats().since(&base);
            metrics.set("cache_hits", run.hits as f64);
            metrics.set("cache_misses", run.misses as f64);
            metrics.set("cache_hit_rate", run.hit_rate());
            metrics.set("cache_evictions", run.evictions as f64);
            metrics.set("cache_invalidations", run.invalidations as f64);
            metrics.set("cache_dram_kb", (run.dram_bytes / 1024) as f64);
            metrics.set("cache_host_kb", (run.host_bytes / 1024) as f64);
            st.rep.cache = Some(run);
        }
        st.rep.metrics = metrics;
        if let Some(s) = st.sampler.take() {
            let telemetry = s.finalize(st.makespan);
            for w in &telemetry.windows {
                self.tracer.instant(
                    TraceLayer::Host,
                    TELEMETRY_TRACK,
                    "window",
                    SimTime::from_nanos(w.start_ns),
                );
            }
            st.rep.telemetry = Some(telemetry);
        }
        Ok(st.rep)
    }

    /// Dispatches every batch whose dispatch time is at or before `up_to`,
    /// earliest first (ties break on the lowest app index). A batch's
    /// dispatch time is when its app's lane frees up or its head request
    /// arrives, whichever is later; dispatch coalesces up to
    /// `batch_max` same-app requests that have arrived by then.
    fn drain_due(
        &mut self,
        st: &mut ServeState,
        ctx: &mut ServeCtx<'_>,
        up_to: SimTime,
    ) -> Result<(), RunError> {
        loop {
            let mut best: Option<(SimTime, usize)> = None;
            for a in 0..ctx.apps.len() {
                if let Some(front) = st.pending[a].front() {
                    let d = st.next_free[a].max(front.arrival);
                    let better = match best {
                        Some((bd, _)) => d < bd,
                        None => true,
                    };
                    if better {
                        best = Some((d, a));
                    }
                }
            }
            let Some((d, a)) = best else {
                return Ok(());
            };
            if d > up_to {
                return Ok(());
            }
            let mut batch = std::mem::take(&mut st.batch_scratch);
            batch.clear();
            while batch.len() < ctx.cfg.batch_max {
                match st.pending[a].front() {
                    Some(r) if r.arrival <= d => {
                        batch.push(*r);
                        st.pending[a].pop_front();
                        st.queued -= 1;
                    }
                    _ => break,
                }
            }
            let served = self.serve_batch(st, ctx, a, &batch, d);
            st.batch_scratch = batch;
            served?;
        }
    }

    /// Serves one same-app batch dispatched at `at`: requests run FIFO on
    /// the app's lane, their commands accumulate into one wire burst, and
    /// the burst is pumped through the app's submission queue with
    /// coalesced doorbells.
    fn serve_batch(
        &mut self,
        st: &mut ServeState,
        ctx: &mut ServeCtx<'_>,
        app: usize,
        batch: &[Request],
        at: SimTime,
    ) -> Result<(), RunError> {
        st.rep.batches += 1;
        if let Some(s) = st.sampler.as_mut() {
            s.count("batches", at);
        }
        let spec = &ctx.apps[app];
        let mut wire = std::mem::take(&mut st.wire_scratch);
        wire.clear();
        let mut start = at;
        let mut outcome = Ok(());
        for r in batch {
            let end = match ctx.cfg.mode {
                Mode::Conventional => self.host_service(st, spec, *r, start, &mut wire),
                Mode::Morpheus | Mode::MorpheusP2P => {
                    let tenant = Tenant {
                        spec,
                        digest: ctx.digests[app],
                        code_len: ctx.code_lens[app],
                    };
                    self.morpheus_service(st, &tenant, *r, start, ctx.bar, &mut wire)
                }
            };
            match end {
                Ok(end) => start = start.max(end),
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        if outcome.is_ok() {
            st.next_free[app] = start;
            self.pump_wire(st, ctx, app, &wire, at);
        }
        st.wire_scratch = wire;
        outcome
    }

    /// Serves one request on the host path (conventional mode, overflow
    /// fallback, and fault re-dispatch all land here). Returns when the
    /// request finished; a spent reissue budget fails just this request.
    fn host_service(
        &mut self,
        st: &mut ServeState,
        spec: &AppSpec,
        r: Request,
        start: SimTime,
        wire: &mut Vec<WireCmd>,
    ) -> Result<SimTime, RunError> {
        // One command-loss roll per request; this path has nothing deeper
        // to fall back to, so an exhausted budget is a clean per-request
        // failure rather than a run failure.
        let floor = match self.issue_with_timeouts(start, start) {
            Ok(f) => f,
            Err((at, _attempts)) => {
                st.rep.failed += 1;
                if let Some(s) = st.sampler.as_mut() {
                    s.count("failed", at);
                    s.lost(at);
                }
                self.tracer
                    .instant(TraceLayer::Host, SERVE_TRACK, "request-failed", at);
                st.makespan = st.makespan.max(at);
                return Ok(at);
            }
        };
        let dram_before = self.dram.allocated();
        let mut t = self.conventional_tenant(spec, floor)?;
        while !t.finished_chunks() {
            if let TenantState::Conventional {
                chunks,
                next,
                buf_addr,
                ..
            } = &t
            {
                let c = chunks[*next];
                let cid = self.alloc_cid();
                wire.push((
                    NvmeCommand::read(cid, 1, c.slba, c.blocks, *buf_addr),
                    StatusCode::Success,
                    0,
                ));
            }
            self.step_tenant(&mut t)?;
        }
        let (_name, _mode, end, objects) = self.finish_tenant(&mut t)?;
        // Serving is steady-state: the request's buffers are returned once
        // its objects are handed to the application.
        let freed = self.dram.allocated().saturating_sub(dram_before);
        self.dram.free(freed);
        self.record_done(st, r, start, end, &objects, ServePath::Host);
        Ok(end)
    }

    /// Serves one request on the drive. Faults re-dispatch to the host
    /// path via the same degradation contract as the solo driver: reap the
    /// failed stream with its error status, count the fallback, rerun on
    /// the host from the detection time.
    ///
    /// With an object cache installed the request probes it first: a hit
    /// skips the admission wire, flash I/O, parsing, and the embedded
    /// core entirely, paying only delivery
    /// ([`cache_delivery`](System::cache_delivery)); a drive-parsed miss
    /// offers its objects for admission. Host-path services (conventional
    /// mode, overflow, fault re-dispatch) never touch the cache — it is a
    /// drive-owned structure fed by drive-parsed completions.
    fn morpheus_service(
        &mut self,
        st: &mut ServeState,
        tenant: &Tenant<'_>,
        r: Request,
        start: SimTime,
        bar: Option<BarWindow>,
        wire: &mut Vec<WireCmd>,
    ) -> Result<SimTime, RunError> {
        let (spec, digest) = (tenant.spec, tenant.digest);
        if let Some(c) = self.object_cache.as_mut() {
            let probed = c.lookup(&spec.name, &spec.input, digest);
            match probed {
                Some(hit) => {
                    let what = match hit.tier {
                        CacheTier::Dram => "hit-dram",
                        CacheTier::Host => "hit-host",
                    };
                    self.tracer
                        .instant(TraceLayer::Ssd, CACHE_TRACK, what, start);
                    if let Some(s) = st.sampler.as_mut() {
                        s.count("cache_hits", start);
                    }
                    self.emit_cache_events(start);
                    let dram_before = self.dram.allocated();
                    let end = self.cache_delivery(&hit, start, bar)?;
                    let freed = self.dram.allocated().saturating_sub(dram_before);
                    self.dram.free(freed);
                    self.record_done(st, r, start, end, &hit.objects, ServePath::CacheHit);
                    return Ok(end);
                }
                None => {
                    self.tracer
                        .instant(TraceLayer::Ssd, CACHE_TRACK, "miss", start);
                    if let Some(s) = st.sampler.as_mut() {
                        s.count("cache_misses", start);
                    }
                }
            }
        }
        let dram_before = self.dram.allocated();
        match self.try_morpheus_service(spec, r.app, tenant.code_len, start, bar, wire) {
            Ok((end, objects)) => {
                let freed = self.dram.allocated().saturating_sub(dram_before);
                self.dram.free(freed);
                self.record_done(st, r, start, end, &objects, ServePath::Embedded);
                if let Some(c) = self.object_cache.as_mut() {
                    c.admit(&spec.name, &spec.input, digest, objects);
                    self.emit_cache_events(end);
                }
                Ok(end)
            }
            Err(ServeAbort::Fatal(e)) => Err(e),
            Err(ServeAbort::Redispatch {
                at,
                iid,
                status,
                cause,
            }) => {
                st.rep.fault_redispatches += 1;
                if let Some(s) = st.sampler.as_mut() {
                    s.count("fault_redispatches", at);
                }
                self.mssd.abort_instance(iid);
                let cid = self.alloc_cid();
                wire.push((
                    MorpheusCommand::Deinit { instance_id: iid }.into_command(cid, 1),
                    status,
                    0,
                ));
                self.tracer
                    .instant(TraceLayer::Host, SERVE_TRACK, "host-fallback", at);
                if let Some(fi) = self.faults.as_mut() {
                    fi.counters.host_fallbacks += 1;
                    fi.fallback_cause = Some(cause);
                }
                // Return any partial output the aborted stream delivered.
                let freed = self.dram.allocated().saturating_sub(dram_before);
                self.dram.free(freed);
                // Latency accounting keeps the original service start: the
                // time lost to the fault is part of this request's story.
                let end = self.host_service(st, spec, r, at, wire)?;
                Ok(end.max(start))
            }
        }
    }

    /// The drive-side service of one request: MINIT → MREAD per chunk →
    /// MDEINIT, with the same three fault-injection points as the solo
    /// driver around every command.
    fn try_morpheus_service(
        &mut self,
        spec: &AppSpec,
        app: usize,
        code_len: u32,
        start: SimTime,
        bar: Option<BarWindow>,
        wire: &mut Vec<WireCmd>,
    ) -> Result<(SimTime, Arc<ParsedColumns>), ServeAbort> {
        let ncores = self.mssd.dev.cores().cores();
        // Stable affinity: app k's instances always pin to core k % n, so
        // a tenant's requests queue behind each other, not behind
        // strangers.
        let iid = self.alloc_instance_pinned(app % ncores, ncores);
        let file_len = self
            .fs
            .open(&spec.input)
            .map_err(|_| ServeAbort::Fatal(RunError::UnknownFile(spec.input.clone())))?
            .len;

        // MINIT may be lost on the wire or find its core stalled/crashed.
        let floor = self
            .issue_with_timeouts(start, start)
            .map_err(|(at, attempts)| ServeAbort::Redispatch {
                at,
                iid,
                status: StatusCode::CommandTimeout,
                cause: format!("MINIT lost {attempts} times; reissue budget spent"),
            })?;
        let floor = self.inject_core_stall(floor);
        if let Some(at) = self.inject_core_crash(floor) {
            return Err(ServeAbort::Redispatch {
                at,
                iid,
                status: StatusCode::CoreFault,
                cause: "embedded core crashed during MINIT".into(),
            });
        }
        let cid = self.alloc_cid();
        wire.push((
            MorpheusCommand::Init {
                instance_id: iid,
                code_ptr: 0x4000,
                code_len,
                arg: file_len as u32,
            }
            .into_command(cid, 1),
            StatusCode::Success,
            0,
        ));
        let mut t = self
            .morpheus_tenant(spec, iid, floor, bar)
            .map_err(ServeAbort::Fatal)?;

        while !t.finished_chunks() {
            let (ready0, c) = match &t {
                TenantState::Morpheus {
                    ready,
                    chunks,
                    next,
                    ..
                } => (*ready, chunks[*next]),
                TenantState::Conventional { .. } => unreachable!("constructed as morpheus"),
            };
            let floor = self
                .issue_with_timeouts(ready0, ready0)
                .map_err(|(at, attempts)| ServeAbort::Redispatch {
                    at,
                    iid,
                    status: StatusCode::CommandTimeout,
                    cause: format!("MREAD lost {attempts} times; reissue budget spent"),
                })?;
            let floor = self.inject_core_stall(floor);
            if let Some(at) = self.inject_core_crash(floor) {
                return Err(ServeAbort::Redispatch {
                    at,
                    iid,
                    status: StatusCode::CoreFault,
                    cause: "embedded core crashed during MREAD".into(),
                });
            }
            if let TenantState::Morpheus { ready, .. } = &mut t {
                *ready = floor;
            }
            let cid = self.alloc_cid();
            wire.push((
                MorpheusCommand::Read {
                    instance_id: iid,
                    slba: c.slba,
                    blocks: c.blocks,
                    dma_addr: 0x2000,
                }
                .into_command(cid, 1),
                StatusCode::Success,
                0,
            ));
            match self.step_tenant(&mut t) {
                Ok(()) => {}
                Err(RunError::Morpheus(e)) if e.status() == StatusCode::MediaUncorrectable => {
                    return Err(ServeAbort::Redispatch {
                        at: floor,
                        iid,
                        status: StatusCode::MediaUncorrectable,
                        cause: morpheus_simcore::render_error_chain(&e),
                    });
                }
                Err(e) => return Err(ServeAbort::Fatal(e)),
            }
        }

        let last0 = match &t {
            TenantState::Morpheus { last_end, .. } => *last_end,
            TenantState::Conventional { .. } => unreachable!("constructed as morpheus"),
        };
        let floor = self
            .issue_with_timeouts(last0, last0)
            .map_err(|(at, attempts)| ServeAbort::Redispatch {
                at,
                iid,
                status: StatusCode::CommandTimeout,
                cause: format!("MDEINIT lost {attempts} times; reissue budget spent"),
            })?;
        let floor = self.inject_core_stall(floor);
        if let Some(at) = self.inject_core_crash(floor) {
            return Err(ServeAbort::Redispatch {
                at,
                iid,
                status: StatusCode::CoreFault,
                cause: "embedded core crashed during MDEINIT".into(),
            });
        }
        if let TenantState::Morpheus { last_end, .. } = &mut t {
            *last_end = floor;
        }
        let (_name, _mode, end, objects) = match self.finish_tenant(&mut t) {
            Ok(v) => v,
            Err(RunError::Morpheus(e)) if e.status() == StatusCode::MediaUncorrectable => {
                return Err(ServeAbort::Redispatch {
                    at: floor,
                    iid,
                    status: StatusCode::MediaUncorrectable,
                    cause: morpheus_simcore::render_error_chain(&e),
                });
            }
            Err(e) => return Err(ServeAbort::Fatal(e)),
        };
        let cid = self.alloc_cid();
        wire.push((
            MorpheusCommand::Deinit { instance_id: iid }.into_command(cid, 1),
            StatusCode::Success,
            objects.records as u32,
        ));
        Ok((end, objects))
    }

    /// Books one completed request: counters, latency histograms, trace,
    /// and — when sampling — the telemetry window holding its completion
    /// (exact SLO good/bad classification plus path-attributed occupancy).
    fn record_done(
        &mut self,
        st: &mut ServeState,
        r: Request,
        service_start: SimTime,
        end: SimTime,
        objects: &ParsedColumns,
        path: ServePath,
    ) {
        st.rep.completed += 1;
        st.rep.records += objects.records;
        let ck = objects.checksum();
        st.rep.checksum = st.rep.checksum.rotate_left(1) ^ ck;
        st.rep.checksum_unordered = st.rep.checksum_unordered.wrapping_add(ck);
        st.obj_bytes += objects.binary_bytes();
        let wait = service_start.saturating_duration_since(r.arrival);
        let service = end.saturating_duration_since(service_start);
        let e2e = end.saturating_duration_since(r.arrival);
        st.rep.queue_wait_ns.record(wait.as_nanos());
        st.rep.service_ns.record(service.as_nanos());
        st.rep.e2e_ns.record(e2e.as_nanos());
        st.makespan = st.makespan.max(end);
        if let Some(s) = st.sampler.as_mut() {
            s.count("completed", end);
            s.latency("e2e_ns", end, e2e.as_nanos());
            s.latency("queue_wait_ns", end, wait.as_nanos());
            s.served(end, e2e.as_nanos());
            s.span(path.busy_series(), service_start, end);
        }
        self.tracer.span(
            TraceLayer::Host,
            SERVE_TRACK,
            "queue-wait",
            r.arrival,
            service_start,
        );
        self.tracer.span_bytes(
            TraceLayer::Host,
            SERVE_TRACK,
            "request",
            service_start,
            end,
            objects.binary_bytes(),
        );
    }

    /// Times the delivery of a cache hit — the only cost a hit pays. A
    /// DRAM-tier hit is pushed by the controller over PCIe into host DRAM
    /// (or straight into the GPU BAR in P2P mode), exactly like the parse
    /// path's output leg. A host-tier hit is a host-memory copy, or in
    /// P2P mode a DMA the GPU pulls from host memory. Either way the OS
    /// books one command-completion wakeup on a host core. No flash read,
    /// no parse, no embedded-core occupancy.
    fn cache_delivery(
        &mut self,
        hit: &CacheHit,
        start: SimTime,
        bar: Option<BarWindow>,
    ) -> Result<SimTime, RunError> {
        let n = hit.bytes;
        let addr = match bar {
            Some(w) => {
                let buf = self.gpu.alloc(n).ok_or(RunError::OutOfGpuMemory)?;
                w.base + buf.offset
            }
            None => self.dram.alloc(n).ok_or(RunError::OutOfHostMemory)?,
        };
        let done = match hit.tier {
            CacheTier::Dram => {
                let dma = self
                    .fabric
                    .dma(self.ssd_dev, DmaDir::Write, addr, n, start)?;
                if bar.is_none() {
                    self.membus.transfer(dma.start, n);
                }
                dma.end
            }
            CacheTier::Host => match bar {
                // The GPU pulls the object out of host memory (address 0
                // routes to host DRAM, where the spill tier lives).
                Some(_) => {
                    self.fabric
                        .dma(self.gpu_dev, DmaDir::Read, 0, n, start)?
                        .end
                }
                None => self.membus.transfer(start, n).end,
            },
        };
        let c = self.os.command_completion();
        let iv = self
            .cpu_cores
            .acquire(done, self.cpu.duration(c.instructions, CodeClass::OsKernel));
        Ok(iv.end)
    }

    /// Drains the cache's state-change log into `cache`-track trace
    /// instants anchored at `at` (zero-cost when tracing is disabled).
    fn emit_cache_events(&mut self, at: SimTime) {
        let Some(c) = self.object_cache.as_mut() else {
            return;
        };
        let events = c.take_events();
        if events.is_empty() {
            return;
        }
        for ev in events {
            let what = match ev {
                CacheEvent::Admitted {
                    tier: CacheTier::Dram,
                    ..
                } => "admit-dram",
                CacheEvent::Admitted {
                    tier: CacheTier::Host,
                    ..
                } => "admit-host",
                CacheEvent::Rejected { .. } => "reject",
                CacheEvent::Spilled { .. } => "spill",
                CacheEvent::Evicted { .. } => "evict",
                CacheEvent::Promoted { .. } => "promote",
                CacheEvent::Invalidated { .. } => "invalidate",
            };
            self.tracer.instant(TraceLayer::Ssd, CACHE_TRACK, what, at);
        }
    }

    /// Pushes one batch's commands through the tenant's own submission
    /// queue in doorbell-coalesced waves: each wave fills the free ring
    /// slots with a single tail-doorbell MMIO
    /// ([`SubmissionQueue::submit_batch`](morpheus_nvme::SubmissionQueue::submit_batch)),
    /// then the device drains the ring, the codec is verified byte-exact,
    /// and completions are posted and reaped — releasing each CID.
    fn pump_wire(
        &mut self,
        st: &mut ServeState,
        ctx: &mut ServeCtx<'_>,
        app: usize,
        wire: &[WireCmd],
        at: SimTime,
    ) {
        if let Some(s) = st.sampler.as_mut() {
            if !wire.is_empty() {
                s.add("nvme_commands", at, wire.len() as f64);
                s.gauge("nvme_wire", at, wire.len() as f64);
            }
        }
        let qp = ctx
            .admin
            .io_queue(FIRST_TENANT_QID + app as u16)
            .expect("queue created at serve start");
        let mut cmds = std::mem::take(&mut st.cmds_scratch);
        let mut i = 0;
        while i < wire.len() {
            let wave = ctx.cfg.sq_depth.min(wire.len() - i);
            cmds.clear();
            cmds.extend(wire[i..i + wave].iter().map(|(c, _, _)| *c));
            qp.sq
                .submit_batch(&cmds)
                .expect("wave sized to the ring depth");
            for (cmd, status, result) in &wire[i..i + wave] {
                let popped = qp.sq.pop().expect("just submitted");
                let bytes = popped.encode();
                let decoded = NvmeCommand::decode(&bytes).expect("codec round-trips");
                assert_eq!(decoded, *cmd, "wire corruption");
                if decoded.opcode.is_morpheus() {
                    MorpheusCommand::parse(&decoded).expect("morpheus command parses");
                }
                qp.cq
                    .post(decoded.cid, *status, *result)
                    .expect("host reaps promptly");
                let e = qp.cq.reap().expect("completion just posted");
                self.release_cid(e.cid);
            }
            st.rep.commands += wave as u64;
            i += wave;
        }
        st.cmds_scratch = cmds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemParams;
    use morpheus_format::{FieldKind, Schema, TextWriter};
    use morpheus_simcore::FaultPlan;

    fn edge_schema() -> Schema {
        Schema::new(vec![FieldKind::U32, FieldKind::U32])
    }

    fn edge_text(n: u32, salt: u64) -> Vec<u8> {
        let mut w = TextWriter::new();
        for i in 0..n as u64 {
            w.write_u64((i * 7 + salt) % 100_000);
            w.sep();
            w.write_u64((i * 13 + salt) % 100_000);
            w.newline();
        }
        w.into_bytes()
    }

    fn serving_system(napps: usize, records: u32) -> (System, Vec<AppSpec>) {
        let mut sys = System::new(SystemParams::paper_testbed());
        let mut specs = Vec::new();
        for i in 0..napps {
            let name = format!("svc{i}");
            let file = format!("{name}.txt");
            sys.create_input_file(&file, &edge_text(records, i as u64))
                .unwrap();
            specs.push(AppSpec::cpu_app(&name, &file, edge_schema(), 1, 50.0));
        }
        (sys, specs)
    }

    fn quick_cfg(mode: Mode) -> ServeConfig {
        let mut cfg = ServeConfig::new(2000.0, 0.02);
        cfg.mode = mode;
        cfg
    }

    #[test]
    fn serve_requires_apps() {
        let (mut sys, _) = serving_system(0, 10);
        assert!(matches!(
            sys.serve(&[], &ServeConfig::new(100.0, 0.01)),
            Err(RunError::NoTenants)
        ));
    }

    #[test]
    fn serve_accounts_every_offered_request() {
        let (mut sys, specs) = serving_system(3, 2_000);
        for policy in [ServePolicy::Shed, ServePolicy::HostFallback] {
            let mut cfg = quick_cfg(Mode::Morpheus);
            cfg.policy = policy;
            cfg.depth = 2; // force overflow
            let rep = sys.serve(&specs, &cfg).unwrap();
            assert!(rep.offered > 0);
            assert_eq!(
                rep.offered,
                rep.admitted + rep.shed + rep.overflow_fallbacks,
                "admission must partition offered load ({policy})"
            );
            assert_eq!(
                rep.completed + rep.shed + rep.failed,
                rep.offered,
                "every request ends served, shed, or failed ({policy})"
            );
            assert_eq!(rep.e2e_ns.count(), rep.completed);
        }
    }

    #[test]
    fn serve_is_deterministic_across_repeats() {
        let (mut sys, specs) = serving_system(2, 1_000);
        let cfg = quick_cfg(Mode::Morpheus);
        let a = format!("{}", sys.serve(&specs, &cfg).unwrap());
        let b = format!("{}", sys.serve(&specs, &cfg).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn batching_coalesces_doorbells() {
        let (mut sys, specs) = serving_system(2, 1_000);
        // Saturating load so batches actually form.
        let mut cfg = quick_cfg(Mode::Morpheus);
        cfg.rps = 50_000.0;
        let rep = sys.serve(&specs, &cfg).unwrap();
        assert!(rep.batches > 0);
        assert!(
            rep.doorbell_writes < rep.commands,
            "batched submission must save MMIOs: {} doorbells for {} commands",
            rep.doorbell_writes,
            rep.commands
        );
    }

    #[test]
    fn faulty_serve_degrades_instead_of_failing() {
        let (mut sys, specs) = serving_system(2, 1_000);
        sys.set_fault_plan(FaultPlan::parse("seed=9,crash=0.2,stall=0.1").unwrap());
        let cfg = quick_cfg(Mode::Morpheus);
        let rep = sys.serve(&specs, &cfg).unwrap();
        assert!(
            rep.fault_redispatches > 0,
            "a 20% crash rate must hit some request"
        );
        assert_eq!(rep.completed + rep.shed + rep.failed, rep.offered);
        assert!(rep.faults.core_crashes > 0);
        sys.set_fault_plan(FaultPlan::none());
    }

    #[test]
    fn p2p_serving_lands_objects_in_gpu_memory() {
        let (mut sys, specs) = serving_system(2, 1_000);
        let host = sys.serve(&specs, &quick_cfg(Mode::Morpheus)).unwrap();
        let p2p = sys.serve(&specs, &quick_cfg(Mode::MorpheusP2P)).unwrap();
        assert_eq!(host.checksum, p2p.checksum, "same objects either way");
        assert!(p2p.completed > 0);
    }

    #[test]
    fn cache_hits_preserve_objects_and_skip_parse_work() {
        let (mut sys, specs) = serving_system(3, 1_000);
        let mut cfg = quick_cfg(Mode::Morpheus);
        cfg.policy = ServePolicy::HostFallback; // every offered request completes
        let off = sys.serve(&specs, &cfg).unwrap();
        assert!(off.cache.is_none(), "no cache installed yet");
        sys.set_object_cache(crate::CacheConfig::new(256 << 20));
        let warm = sys.serve(&specs, &cfg).unwrap();
        let hot = sys.serve(&specs, &cfg).unwrap();
        let wc = warm.cache.expect("cache report present");
        let hc = hot.cache.expect("cache report present");
        assert!(
            wc.misses > 0 && wc.admitted > 0,
            "first run populates: {wc}"
        );
        assert!(hc.hit_rate() > 0.9, "steady state is nearly all hits: {hc}");
        assert_eq!(hot.completed, off.completed);
        assert_eq!(hot.records, off.records);
        assert_eq!(
            hot.checksum_unordered, off.checksum_unordered,
            "cached objects are bit-identical to freshly parsed ones"
        );
        assert!(
            hot.commands < off.commands,
            "hits must skip the NVMe wire: {} vs {}",
            hot.commands,
            off.commands
        );
        let off_parse = off.metrics.get("ssd_parse_core_busy_s");
        let hot_parse = hot.metrics.get("ssd_parse_core_busy_s");
        assert!(
            hot_parse < off_parse,
            "hits must skip embedded-core parsing: {hot_parse} vs {off_parse}"
        );
        sys.clear_object_cache();
    }

    #[test]
    fn zero_capacity_cache_is_byte_identical_to_cache_off() {
        let (mut sys, specs) = serving_system(2, 500);
        let cfg = quick_cfg(Mode::Morpheus);
        let off = format!("{}", sys.serve(&specs, &cfg).unwrap());
        sys.set_object_cache(crate::CacheConfig::new(0));
        assert!(sys.object_cache_stats().is_none(), "zero capacity is inert");
        let on = format!("{}", sys.serve(&specs, &cfg).unwrap());
        assert_eq!(off, on, "capacity-0 install must not change the report");
    }

    #[test]
    fn skewed_picks_are_deterministic_and_feed_the_cache() {
        let run = || {
            let (mut sys, specs) = serving_system(4, 500);
            sys.set_object_cache(crate::CacheConfig::new(256 << 20));
            let mut cfg = quick_cfg(Mode::Morpheus);
            cfg.skew = 2.0;
            let rep = sys.serve(&specs, &cfg).unwrap();
            (format!("{rep}"), rep.cache.expect("cache installed"))
        };
        let (a, ac) = run();
        let (b, _) = run();
        assert_eq!(a, b, "skewed runs are deterministic");
        assert!(
            ac.hits > 0,
            "skew concentrates picks, so the hot file hits within one run: {ac}"
        );
    }

    #[test]
    fn file_mutation_invalidates_cached_objects() {
        let (mut sys, specs) = serving_system(1, 400);
        sys.set_object_cache(crate::CacheConfig {
            dram_bytes: 64 << 20,
            host_bytes: 0,
            policy: crate::CachePolicy::Lru,
            seed: 42,
        });
        let mut cfg = quick_cfg(Mode::Morpheus);
        cfg.policy = ServePolicy::HostFallback;
        let _warm = sys.serve(&specs, &cfg).unwrap();
        let hot = sys.serve(&specs, &cfg).unwrap();
        assert!(hot.cache.expect("installed").hits > 0);
        // Mutate the file; a stale hit would reproduce the old objects.
        sys.overwrite_input_file("svc0.txt", &edge_text(400, 999))
            .unwrap();
        let fresh = sys.serve(&specs, &cfg).unwrap();
        let fc = fresh.cache.expect("installed");
        assert!(fc.invalidations > 0, "mutation dropped the entry: {fc}");
        assert_ne!(
            fresh.checksum_unordered, hot.checksum_unordered,
            "new bytes must produce new objects"
        );
        sys.clear_object_cache();
        let off = sys.serve(&specs, &cfg).unwrap();
        assert_eq!(
            off.checksum_unordered, fresh.checksum_unordered,
            "post-mutation cached serving agrees with cache-off"
        );
    }

    #[test]
    fn host_tier_serves_spilled_objects() {
        let (mut sys, specs) = serving_system(3, 1_000);
        // A DRAM tier too small for the working set, with a host tier
        // behind it: victims spill and later hit from host memory.
        sys.set_object_cache(crate::CacheConfig {
            dram_bytes: 20 << 10,
            host_bytes: 1 << 20,
            policy: crate::CachePolicy::Lru,
            seed: 42,
        });
        let mut cfg = quick_cfg(Mode::Morpheus);
        cfg.policy = ServePolicy::HostFallback;
        let _warm = sys.serve(&specs, &cfg).unwrap();
        let hot = sys.serve(&specs, &cfg).unwrap();
        let hc = hot.cache.expect("installed");
        assert!(hc.hits > 0, "tiered cache still serves hits: {hc}");
        assert!(hc.host_hits > 0, "some hits come from the spill tier: {hc}");
    }

    #[test]
    fn p2p_cache_hits_deliver_to_gpu() {
        let (mut sys, specs) = serving_system(2, 500);
        sys.set_object_cache(crate::CacheConfig::new(256 << 20));
        let mut cfg = quick_cfg(Mode::MorpheusP2P);
        cfg.policy = ServePolicy::HostFallback;
        let warm = sys.serve(&specs, &cfg).unwrap();
        let hot = sys.serve(&specs, &cfg).unwrap();
        assert!(hot.cache.expect("installed").hits > 0);
        assert_eq!(hot.checksum_unordered, warm.checksum_unordered);
    }

    fn telemetry_cfg(mode: Mode, slo: &str) -> ServeConfig {
        let mut cfg = quick_cfg(mode);
        let mut t = TelemetryConfig::new(SimDuration::from_millis(1));
        if !slo.is_empty() {
            t.slo = morpheus_simcore::SloSpec::parse(slo).unwrap();
        }
        cfg.telemetry = Some(t);
        cfg
    }

    #[test]
    fn telemetry_off_leaves_the_report_untouched() {
        let (mut sys, specs) = serving_system(2, 500);
        let cfg = quick_cfg(Mode::Morpheus);
        let rep = sys.serve(&specs, &cfg).unwrap();
        assert!(rep.telemetry.is_none(), "off by default");
        assert!(
            !format!("{rep}").contains("telemetry"),
            "no telemetry section when disabled"
        );
    }

    #[test]
    fn telemetry_windows_balance_the_request_ledger() {
        let (mut sys, specs) = serving_system(3, 2_000);
        let mut cfg = telemetry_cfg(Mode::Morpheus, "");
        cfg.depth = 2; // force shed so every counter class is exercised
        let rep = sys.serve(&specs, &cfg).unwrap();
        let t = rep.telemetry.as_ref().expect("telemetry installed");
        assert!(!t.windows.is_empty());
        let sum = |name: &str| t.series(name).iter().sum::<f64>() as u64;
        assert_eq!(sum("offered"), rep.offered, "offered ledger per window");
        assert_eq!(sum("completed"), rep.completed);
        assert_eq!(sum("shed"), rep.shed);
        assert_eq!(sum("admitted"), rep.admitted);
        assert_eq!(
            t.totals.get("offered") as u64,
            rep.offered,
            "totals row agrees with the serve report"
        );
        // The e2e histogram folded into telemetry matches the report's.
        let (_, h) = t
            .hists
            .iter()
            .find(|(n, _)| n == "e2e_ns")
            .expect("e2e histogram present");
        assert_eq!(h.count(), rep.e2e_ns.count());
        assert_eq!(h.p99(), rep.e2e_ns.p99());
    }

    #[test]
    fn telemetry_slo_verdicts_count_exactly() {
        let (mut sys, specs) = serving_system(2, 1_000);
        let mut cfg = telemetry_cfg(Mode::Morpheus, "p99<500us,avail>99.9");
        cfg.depth = 2; // shed some load so availability has bad events
        let rep = sys.serve(&specs, &cfg).unwrap();
        let t = rep.telemetry.as_ref().expect("telemetry installed");
        assert_eq!(t.slo.len(), 2);
        let avail = t.slo.iter().find(|o| o.spec.starts_with("avail")).unwrap();
        assert_eq!(avail.good, rep.completed, "avail good = completed");
        assert_eq!(avail.bad, rep.shed + rep.failed, "avail bad = shed+failed");
        let lat = t.slo.iter().find(|o| o.spec.starts_with("p99")).unwrap();
        assert_eq!(
            lat.good + lat.bad,
            rep.completed,
            "latency objective sees only completed requests"
        );
        for o in &t.slo {
            assert_eq!(o.points.len(), t.windows.len());
        }
    }

    #[test]
    fn telemetry_is_deterministic_across_repeats() {
        let (mut sys, specs) = serving_system(2, 1_000);
        let cfg = telemetry_cfg(Mode::Morpheus, "p99<500us,avail>99.9");
        let a = sys.serve(&specs, &cfg).unwrap();
        let b = sys.serve(&specs, &cfg).unwrap();
        assert_eq!(
            a.telemetry.as_ref().unwrap().to_csv(&[]),
            b.telemetry.as_ref().unwrap().to_csv(&[])
        );
        assert_eq!(
            a.telemetry.as_ref().unwrap().to_prometheus("morpheus", &[]),
            b.telemetry.as_ref().unwrap().to_prometheus("morpheus", &[])
        );
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn telemetry_sees_the_cache_warm_up() {
        let (mut sys, specs) = serving_system(3, 1_000);
        sys.set_object_cache(crate::CacheConfig::new(256 << 20));
        let mut cfg = telemetry_cfg(Mode::Morpheus, "");
        cfg.policy = ServePolicy::HostFallback;
        cfg.skew = 1.1;
        cfg.duration_s = 0.05;
        let rep = sys.serve(&specs, &cfg).unwrap();
        let t = rep.telemetry.as_ref().expect("telemetry installed");
        let hit_rate = t.series("cache_hit_rate");
        assert!(!hit_rate.is_empty(), "cache column derived");
        let (first, last) = (hit_rate[0], hit_rate[hit_rate.len() - 1]);
        assert!(
            last > first,
            "hit rate must ramp as the cache warms: first={first} last={last}"
        );
        let sum = |name: &str| t.series(name).iter().sum::<f64>() as u64;
        let c = rep.cache.expect("cache installed");
        assert_eq!(sum("cache_hits"), c.hits, "windowed hits match the stats");
        sys.clear_object_cache();
    }

    #[test]
    fn telemetry_counts_faults_and_fallbacks() {
        let (mut sys, specs) = serving_system(2, 1_000);
        sys.set_fault_plan(FaultPlan::parse("seed=9,crash=0.2,stall=0.1").unwrap());
        let cfg = telemetry_cfg(Mode::Morpheus, "avail>99");
        let rep = sys.serve(&specs, &cfg).unwrap();
        let t = rep.telemetry.as_ref().expect("telemetry installed");
        let sum = |name: &str| t.series(name).iter().sum::<f64>() as u64;
        assert_eq!(
            sum("fault_redispatches"),
            rep.fault_redispatches,
            "per-window fault counts sum to the report"
        );
        sys.set_fault_plan(FaultPlan::none());
    }
}
