//! GPU model: device memory, BAR exposure, roofline kernel cost model.
//!
//! Models the NVIDIA K20-class accelerator of the paper's testbed (2496
//! CUDA cores, 5 GB GDDR5): a device-memory allocator whose buffers can be
//! exposed through a PCIe BAR (the GPUDirect/DirectGMA mechanism NVMe-P2P
//! programs, §IV-C), and a roofline kernel cost model — kernel time is the
//! maximum of its compute time (FLOPs over peak throughput) and its memory
//! time (bytes over device bandwidth). Kernel executions occupy the GPU
//! [`Timeline`](https://docs.rs/morpheus-simcore) so power integration sees real
//! busy intervals.
//!
//! # Example
//!
//! ```
//! use morpheus_gpu::{Gpu, GpuSpec, KernelCost};
//! use morpheus_simcore::SimTime;
//!
//! let mut gpu = Gpu::new(GpuSpec::k20());
//! let buf = gpu.alloc(1 << 20).unwrap();
//! let run = gpu.launch(KernelCost::new(1e9, 1 << 20), SimTime::ZERO);
//! assert!(run.end > run.start);
//! assert!(buf.offset < gpu.spec().memory_bytes);
//! ```

#![warn(missing_docs)]

use morpheus_simcore::{Bandwidth, Interval, SimDuration, SimTime, Timeline};

/// Static description of the GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Number of CUDA cores.
    pub cuda_cores: u32,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Device memory capacity, bytes.
    pub memory_bytes: u64,
    /// Device memory bandwidth.
    pub memory_bandwidth: Bandwidth,
}

impl GpuSpec {
    /// The paper's NVIDIA K20: 2496 cores, 706 MHz, 5 GB GDDR5 at 208 GB/s.
    pub fn k20() -> Self {
        GpuSpec {
            cuda_cores: 2496,
            clock_hz: 706e6,
            memory_bytes: 5 * (1 << 30),
            memory_bandwidth: Bandwidth::from_gb_per_s(208.0),
        }
    }

    /// Peak single-precision FLOPs per second (2 per core-cycle, FMA).
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.cuda_cores as f64 * self.clock_hz
    }
}

/// A device-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceBuffer {
    /// Offset within device memory (add a BAR base for a bus address).
    pub offset: u64,
    /// Buffer length in bytes.
    pub len: u64,
}

/// Resource demands of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Floating-point (or integer ALU) operations.
    pub flops: f64,
    /// Device-memory bytes read + written.
    pub bytes: u64,
}

impl KernelCost {
    /// Creates a kernel cost.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is negative or not finite.
    pub fn new(flops: f64, bytes: u64) -> Self {
        assert!(
            flops.is_finite() && flops >= 0.0,
            "flops must be finite and non-negative"
        );
        KernelCost { flops, bytes }
    }
}

/// The GPU device.
#[derive(Debug)]
pub struct Gpu {
    spec: GpuSpec,
    timeline: Timeline,
    next_offset: u64,
    allocated: u64,
    kernel_launches: u64,
    /// Launch overhead charged per kernel (driver + dispatch).
    launch_overhead: SimDuration,
}

impl Gpu {
    /// Creates an idle GPU.
    pub fn new(spec: GpuSpec) -> Self {
        Gpu {
            spec,
            timeline: Timeline::new("gpu", 1),
            next_offset: 0,
            allocated: 0,
            kernel_launches: 0,
            launch_overhead: SimDuration::from_micros(10),
        }
    }

    /// The GPU's specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Allocates device memory; `None` when capacity is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> Option<DeviceBuffer> {
        if bytes > self.spec.memory_bytes - self.allocated {
            return None;
        }
        let buf = DeviceBuffer {
            offset: self.next_offset,
            len: bytes,
        };
        self.next_offset += bytes.div_ceil(256) * 256; // GDDR burst alignment
        self.allocated += bytes;
        Some(buf)
    }

    /// Releases `bytes` of device memory occupancy.
    pub fn free(&mut self, bytes: u64) {
        self.allocated = self.allocated.saturating_sub(bytes);
    }

    /// Device memory currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Roofline execution time of a kernel, excluding launch overhead.
    pub fn kernel_time(&self, cost: &KernelCost) -> SimDuration {
        let compute = SimDuration::from_secs_f64(cost.flops / self.spec.peak_flops());
        let memory = self.spec.memory_bandwidth.duration_for(cost.bytes);
        compute.max(memory)
    }

    /// Launches a kernel at `ready`, queueing behind earlier launches.
    pub fn launch(&mut self, cost: KernelCost, ready: SimTime) -> Interval {
        self.kernel_launches += 1;
        let t = self.kernel_time(&cost) + self.launch_overhead;
        self.timeline.acquire(ready, t)
    }

    /// Total time the GPU has been executing kernels.
    pub fn busy(&self) -> SimDuration {
        self.timeline.busy()
    }

    /// Number of kernels launched.
    pub fn kernel_launches(&self) -> u64 {
        self.kernel_launches
    }

    /// Overrides the per-launch overhead.
    pub fn set_launch_overhead(&mut self, overhead: SimDuration) {
        self.launch_overhead = overhead;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20_peak_flops_is_about_3_5_tflops() {
        let tf = GpuSpec::k20().peak_flops() / 1e12;
        assert!((3.0..4.0).contains(&tf), "got {tf} TFLOPs");
    }

    #[test]
    fn compute_bound_kernel_ignores_memory() {
        let gpu = Gpu::new(GpuSpec::k20());
        let t = gpu.kernel_time(&KernelCost::new(3.5e12, 1024));
        assert!((t.as_secs_f64() - 1.0).abs() < 0.05);
    }

    #[test]
    fn memory_bound_kernel_ignores_compute() {
        let gpu = Gpu::new(GpuSpec::k20());
        let t = gpu.kernel_time(&KernelCost::new(1.0, 208_000_000_000));
        assert!((t.as_secs_f64() - 1.0).abs() < 0.05);
    }

    #[test]
    fn launches_queue_fifo() {
        let mut gpu = Gpu::new(GpuSpec::k20());
        gpu.set_launch_overhead(SimDuration::ZERO);
        let a = gpu.launch(KernelCost::new(3.5e12, 0), SimTime::ZERO);
        let b = gpu.launch(KernelCost::new(3.5e12, 0), SimTime::ZERO);
        assert_eq!(b.start, a.end);
        assert_eq!(gpu.kernel_launches(), 2);
    }

    #[test]
    fn alloc_respects_capacity_and_alignment() {
        let mut gpu = Gpu::new(GpuSpec::k20());
        let a = gpu.alloc(100).unwrap();
        let b = gpu.alloc(100).unwrap();
        assert_eq!(a.offset % 256, 0);
        assert!(b.offset >= a.offset + 256);
        assert!(gpu.alloc(u64::MAX).is_none());
        gpu.free(200);
        assert_eq!(gpu.allocated(), 0);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut gpu = Gpu::new(GpuSpec::k20());
        gpu.set_launch_overhead(SimDuration::ZERO);
        gpu.launch(KernelCost::new(3.5e12, 0), SimTime::ZERO);
        assert!((gpu.busy().as_secs_f64() - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "flops")]
    fn negative_flops_rejected() {
        let _ = KernelCost::new(-1.0, 0);
    }
}
