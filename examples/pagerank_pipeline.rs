//! The paper's motivating scenario: a data-analytics pipeline (PageRank
//! over a text edge list) whose deserialization dominates end-to-end time.
//!
//! ```sh
//! cargo run --release --example pagerank_pipeline
//! ```

use morpheus::{Mode, System, SystemParams};
use morpheus_workloads::{run_benchmark, stage_input, suite};

fn main() {
    let bench = suite()
        .into_iter()
        .find(|b| b.name == "pagerank")
        .expect("pagerank is in the suite");

    let mut sys = System::new(SystemParams::paper_testbed());
    stage_input(&mut sys, &bench, 8 << 20, 7).unwrap();
    println!(
        "pagerank over an 8 MiB edge list (paper runs {:.1} GB)\n",
        bench.nominal_bytes as f64 / 1e9
    );

    let conv = run_benchmark(&mut sys, &bench, Mode::Conventional).unwrap();
    let morp = run_benchmark(&mut sys, &bench, Mode::Morpheus).unwrap();
    assert_eq!(conv.kernel, morp.kernel, "kernels must agree across modes");

    println!("kernel result: {}\n", conv.kernel.summary);

    for (name, r) in [
        ("conventional", &conv.report),
        ("morpheus-ssd", &morp.report),
    ] {
        let p = r.phases;
        println!(
            "{name:<14} total {:.3}s = deserialize {:.3}s ({:.0}%) + other {:.3}s + kernel {:.3}s",
            p.total_s(),
            p.deserialization_s,
            100.0 * p.deserialization_fraction(),
            p.other_cpu_s,
            p.kernel_s,
        );
    }
    println!(
        "\nend-to-end speedup: {:.2}x (deserialization alone: {:.2}x)",
        morp.report.total_speedup_over(&conv.report),
        morp.report.deser_speedup_over(&conv.report),
    );
    println!(
        "memory-bus traffic: {:.1} MB -> {:.1} MB",
        conv.report.membus_bytes as f64 / 1e6,
        morp.report.membus_bytes as f64 / 1e6
    );
}
