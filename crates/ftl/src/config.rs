//! FTL configuration.

/// Tunables of the page-mapping FTL.
#[derive(Debug, Clone, Copy)]
pub struct FtlConfig {
    /// Fraction of physical blocks reserved as over-provisioning (hidden
    /// from the logical capacity, used by GC). Must be in `(0, 0.9]`.
    pub overprovision: f64,
    /// Garbage collection starts on a channel when its free-block count
    /// drops to this value. Must be at least 2 so a relocation always has a
    /// destination block.
    pub gc_watermark: u32,
    /// Maximum read retries after an uncorrectable flash read error.
    pub read_retries: u32,
    /// Wear-levelling: when the erase-count spread within a channel exceeds
    /// this, GC prefers the least-worn victim among the least-valid ones.
    pub wear_spread: u64,
}

impl FtlConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values; configurations are build-time inputs,
    /// so this is a programming error.
    pub fn validate(&self) {
        assert!(
            self.overprovision > 0.0 && self.overprovision <= 0.9,
            "overprovision must be in (0, 0.9], got {}",
            self.overprovision
        );
        assert!(self.gc_watermark >= 2, "gc watermark must be at least 2");
    }
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            overprovision: 0.125,
            gc_watermark: 2,
            read_retries: 3,
            wear_spread: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        FtlConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "overprovision")]
    fn zero_overprovision_rejected() {
        FtlConfig {
            overprovision: 0.0,
            ..FtlConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn low_watermark_rejected() {
        FtlConfig {
            gc_watermark: 1,
            ..FtlConfig::default()
        }
        .validate();
    }
}
