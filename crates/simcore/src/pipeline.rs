//! Chunk-pipeline execution over a chain of timelines.
//!
//! The Morpheus data path moves a file through the system in chunks, and each
//! chunk passes through the same sequence of resources (flash read → channel
//! bus → parse → DMA → memory bus). Chunk *i+1* may occupy an earlier stage
//! while chunk *i* occupies a later one; the end-to-end time of the whole
//! transfer is therefore governed by the slowest stage plus pipeline fill.
//!
//! [`pipeline`] computes exact completion times for that pattern using the
//! FIFO [`Timeline`]s of the stages, so contention with *other* traffic on
//! the same resources (e.g. a co-running process on the CPU timeline) is
//! captured automatically.

use crate::{Interval, SimDuration, SimTime, Timeline};

/// Service demand of one item at one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageDemand {
    /// Time the stage's resource is occupied by the item. Zero means the
    /// item skips the stage entirely.
    pub service: SimDuration,
    /// Extra latency after service completes before the next stage may
    /// begin (e.g. interrupt delivery) that occupies no resource.
    pub latency: SimDuration,
}

impl StageDemand {
    /// Demand with service time only.
    pub fn service(service: SimDuration) -> Self {
        StageDemand {
            service,
            latency: SimDuration::ZERO,
        }
    }

    /// An empty demand (the item skips the stage).
    pub const NONE: StageDemand = StageDemand {
        service: SimDuration::ZERO,
        latency: SimDuration::ZERO,
    };
}

/// Result of a [`pipeline`] run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Completion time of every item (after its final stage + latency).
    pub item_done: Vec<SimTime>,
    /// When the first stage of the first item began.
    pub start: SimTime,
    /// When the last item completed.
    pub end: SimTime,
    /// Per-stage total busy time added by this run.
    pub stage_busy: Vec<SimDuration>,
}

impl PipelineResult {
    /// Total elapsed time of the pipelined transfer.
    pub fn makespan(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }
}

/// Runs `items` through `stages` in FIFO order with chunk-level pipelining.
///
/// `demand(i, s)` returns the [`StageDemand`] of item `i` at stage `s`.
/// Item `i` enters stage `s` once it has left stage `s-1`; stages are the
/// provided [`Timeline`]s and may be shared with other traffic before or
/// after this call.
///
/// Returns per-item completion times plus aggregate statistics.
///
/// # Panics
///
/// Panics if `stages` is empty.
///
/// # Example
///
/// ```
/// use morpheus_simcore::{pipeline, SimDuration, SimTime, StageDemand, Timeline};
///
/// let mut read = Timeline::new("read", 1);
/// let mut parse = Timeline::new("parse", 1);
/// let mut stages = [&mut read, &mut parse];
/// // Four chunks, 10ns read + 20ns parse each: parse is the bottleneck.
/// let r = pipeline(&mut stages, SimTime::ZERO, 4, |_, s| {
///     StageDemand::service(SimDuration::from_nanos(if s == 0 { 10 } else { 20 }))
/// });
/// // fill (10ns) + 4 * 20ns on the bottleneck stage
/// assert_eq!(r.makespan().as_nanos(), 10 + 4 * 20);
/// ```
pub fn pipeline(
    stages: &mut [&mut Timeline],
    start: SimTime,
    items: usize,
    mut demand: impl FnMut(usize, usize) -> StageDemand,
) -> PipelineResult {
    assert!(!stages.is_empty(), "pipeline needs at least one stage");
    let mut item_done = Vec::with_capacity(items);
    let mut stage_busy = vec![SimDuration::ZERO; stages.len()];
    let mut first_start: Option<SimTime> = None;
    let mut end = start;

    // FIFO order: issue item-major, stage-minor. Within one item the stage
    // order enforces the data dependency; across items the timeline queues
    // enforce resource order.
    let mut ready = vec![start; items];
    for (i, item_ready) in ready.iter_mut().enumerate() {
        for (s, stage) in stages.iter_mut().enumerate() {
            let d = demand(i, s);
            if d.service.is_zero() && d.latency.is_zero() {
                continue;
            }
            let iv: Interval = stage.acquire(*item_ready, d.service);
            stage_busy[s] += d.service;
            if first_start.is_none() && !d.service.is_zero() {
                first_start = Some(iv.start);
            }
            *item_ready = iv.end + d.latency;
        }
        item_done.push(*item_ready);
        end = end.max(*item_ready);
    }

    PipelineResult {
        item_done,
        start: first_start.unwrap_or(start),
        end,
        stage_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn single_stage_is_sequential() {
        let mut a = Timeline::new("a", 1);
        let mut stages = [&mut a];
        let r = pipeline(&mut stages, SimTime::ZERO, 3, |_, _| {
            StageDemand::service(ns(10))
        });
        assert_eq!(r.makespan(), ns(30));
        assert_eq!(r.item_done[2], SimTime::from_nanos(30));
    }

    #[test]
    fn bottleneck_stage_dominates() {
        let mut a = Timeline::new("a", 1);
        let mut b = Timeline::new("b", 1);
        let mut stages = [&mut a, &mut b];
        let r = pipeline(&mut stages, SimTime::ZERO, 10, |_, s| {
            StageDemand::service(ns(if s == 0 { 5 } else { 50 }))
        });
        // 5ns fill + 10 * 50ns
        assert_eq!(r.makespan(), ns(5 + 500));
    }

    #[test]
    fn multi_unit_stage_divides_work() {
        let mut a = Timeline::new("a", 1);
        let mut b = Timeline::new("b", 2);
        let mut stages = [&mut a, &mut b];
        let r = pipeline(&mut stages, SimTime::ZERO, 4, |_, s| {
            StageDemand::service(ns(if s == 0 { 10 } else { 40 }))
        });
        // reads complete at 10,20,30,40; two parse units.
        // unit0: 10..50, 50..90 ; unit1: 20..60, 60..100
        assert_eq!(r.end, SimTime::from_nanos(100));
    }

    #[test]
    fn skipped_stages_cost_nothing() {
        let mut a = Timeline::new("a", 1);
        let mut b = Timeline::new("b", 1);
        let mut stages = [&mut a, &mut b];
        let r = pipeline(&mut stages, SimTime::ZERO, 2, |_, s| {
            if s == 0 {
                StageDemand::NONE
            } else {
                StageDemand::service(ns(7))
            }
        });
        assert_eq!(r.stage_busy[0], SimDuration::ZERO);
        assert_eq!(r.makespan(), ns(14));
    }

    #[test]
    fn latency_defers_next_stage_without_occupancy() {
        let mut a = Timeline::new("a", 1);
        let mut b = Timeline::new("b", 1);
        let mut stages = [&mut a, &mut b];
        let r = pipeline(&mut stages, SimTime::ZERO, 2, |_, s| {
            if s == 0 {
                StageDemand {
                    service: ns(10),
                    latency: ns(100),
                }
            } else {
                StageDemand::service(ns(10))
            }
        });
        // item0: a 0..10, +100 lat, b 110..120
        // item1: a 10..20, +100 lat, b 120..130  (a was free at 10!)
        assert_eq!(r.end, SimTime::from_nanos(130));
        // Stage a busy only 20ns despite the 100ns latencies.
        assert_eq!(r.stage_busy[0], ns(20));
    }

    #[test]
    fn pipeline_respects_prior_traffic() {
        let mut a = Timeline::new("a", 1);
        a.acquire(SimTime::ZERO, ns(100)); // somebody else owns it first
        let mut stages = [&mut a];
        let r = pipeline(&mut stages, SimTime::ZERO, 1, |_, _| {
            StageDemand::service(ns(10))
        });
        assert_eq!(r.start, SimTime::from_nanos(100));
        assert_eq!(r.end, SimTime::from_nanos(110));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stage_list_rejected() {
        let r = pipeline(&mut [], SimTime::ZERO, 1, |_, _| StageDemand::NONE);
        let _ = r;
    }
}
