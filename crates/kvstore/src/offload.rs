//! Timed scan drivers: host-side filtering vs in-storage filtering.

use crate::store::decode_bucket;
use crate::{decode_pairs, KvError, KvScanApp, KvStore};
use morpheus::{RunError, System};
use morpheus_host::CodeClass;
use morpheus_nvme::LBA_BYTES;
use morpheus_pcie::DmaDir;
use morpheus_simcore::{SimDuration, SimTime};

/// Host binary-scan costs: a tight compare loop over resident buckets
/// (nothing like the `scanf` text path — this is memcmp-class code).
const HOST_SCAN_INSTR_PER_BYTE: f64 = 0.5;
const HOST_SCAN_INSTR_PER_RECORD: f64 = 4.0;

/// Matched pairs plus the scan's measurements.
pub type ScanOutcome<E> = Result<(Vec<(u64, Vec<u8>)>, ScanReport), E>;

/// Measurements of one scan.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Wall time of the scan.
    pub elapsed_s: f64,
    /// Host CPU busy time.
    pub host_cpu_busy_s: f64,
    /// Bytes that crossed the PCIe fabric.
    pub pcie_bytes: u64,
    /// Pairs matched.
    pub matches: u64,
    /// Bytes of matches delivered to the host.
    pub result_bytes: u64,
}

/// Conventional scan: the whole region streams to the host, which filters
/// it on the CPU.
///
/// # Errors
///
/// Propagates drive/fabric failures.
pub fn scan_conventional(sys: &mut System, kv: &KvStore, lo: u64, hi: u64) -> ScanOutcome<KvError> {
    sys.reset_timing();
    let (slba, blocks) = kv.region();
    let bucket_bytes = kv.config().bucket_bytes as u64;
    let chunk_blocks = ((1 << 20) / LBA_BYTES).min(blocks);
    let buf_addr = sys
        .dram
        .alloc(chunk_blocks * LBA_BYTES)
        .expect("host buffer");

    let mut matches = Vec::new();
    let mut cpu_ready = SimTime::ZERO;
    let mut cpu_busy = SimDuration::ZERO;
    let mut done = SimTime::ZERO;
    let mut at = 0u64;
    while at < blocks {
        let take = chunk_blocks.min(blocks - at);
        let (raw, t) = sys.mssd.dev.read_range(slba + at, take, SimTime::ZERO)?;
        let dma = sys
            .fabric
            .dma(
                sys.ssd_device(),
                DmaDir::Write,
                buf_addr,
                take * LBA_BYTES,
                t,
            )
            .expect("host buffer address is always mapped");
        let mb = sys.membus.transfer(dma.start, take * LBA_BYTES);
        let io_done = dma.end.max(mb.end);

        // Host CPU filters the resident buckets.
        let mut records = 0u64;
        for b in raw.chunks_exact(bucket_bytes as usize) {
            for (k, v) in decode_bucket(b) {
                records += 1;
                if (lo..=hi).contains(&k) {
                    matches.push((k, v));
                }
            }
        }
        let instr = (take * LBA_BYTES) as f64 * HOST_SCAN_INSTR_PER_BYTE
            + records as f64 * HOST_SCAN_INSTR_PER_RECORD;
        let iv = sys.cpu_cores.acquire(
            io_done.max(cpu_ready),
            sys.cpu.duration(instr, CodeClass::AppKernel),
        );
        cpu_ready = iv.end;
        cpu_busy += iv.duration();
        sys.membus.account(take * LBA_BYTES);
        done = done.max(iv.end);
        at += take;
    }
    let result_bytes: u64 = matches.iter().map(|(_, v)| 10 + v.len() as u64).sum();
    let report = ScanReport {
        elapsed_s: done.as_secs_f64(),
        host_cpu_busy_s: cpu_busy.as_secs_f64(),
        pcie_bytes: sys.fabric.traffic().total_bytes,
        matches: matches.len() as u64,
        result_bytes,
    };
    Ok((matches, report))
}

/// Morpheus scan: a [`KvScanApp`] filters inside the drive; only matches
/// cross the interconnect.
///
/// # Errors
///
/// Propagates firmware/drive failures.
pub fn scan_morpheus(sys: &mut System, kv: &KvStore, lo: u64, hi: u64) -> ScanOutcome<RunError> {
    sys.reset_timing();
    let (slba, blocks) = kv.region();
    let iid = sys.allocate_instance_id();
    let init = sys.os.command_completion();
    let init_iv = sys.cpu_cores.acquire(
        SimTime::ZERO,
        sys.cpu.duration(init.instructions, CodeClass::OsKernel),
    );
    let mut cpu_busy = init_iv.duration();
    let app = KvScanApp::new(kv.config().bucket_bytes, lo, hi);
    let ready = sys.mssd.minit(iid, Box::new(app), init_iv.end)?;

    let chunk_blocks = ((8 << 20) / LBA_BYTES).min(blocks);
    let mut out_bytes = Vec::new();
    let mut last = ready;
    let mut at = 0u64;
    while at < blocks {
        let take = chunk_blocks.min(blocks - at);
        let out = sys
            .mssd
            .mread(iid, slba + at, take, take * LBA_BYTES, ready)?;
        if !out.output.is_empty() {
            let addr = sys
                .dram
                .alloc(out.output.len() as u64)
                .ok_or(RunError::OutOfHostMemory)?;
            let dma = sys.fabric.dma(
                sys.ssd_device(),
                DmaDir::Write,
                addr,
                out.output.len() as u64,
                out.done,
            )?;
            sys.membus.transfer(dma.start, out.output.len() as u64);
            let c = sys.os.command_completion();
            let iv = sys.cpu_cores.acquire(
                dma.end,
                sys.cpu.duration(c.instructions, CodeClass::OsKernel),
            );
            cpu_busy += iv.duration();
            last = last.max(iv.end);
        } else {
            last = last.max(out.done);
        }
        out_bytes.extend_from_slice(&out.output);
        at += take;
    }
    let dein = sys.mssd.mdeinit(iid, last)?;
    out_bytes.extend_from_slice(&dein.host_output);
    let c = sys.os.command_completion();
    let iv = sys.cpu_cores.acquire(
        dein.done.max(last),
        sys.cpu.duration(c.instructions, CodeClass::OsKernel),
    );
    cpu_busy += iv.duration();

    let matches = decode_pairs(&out_bytes);
    let report = ScanReport {
        elapsed_s: iv.end.as_secs_f64(),
        host_cpu_busy_s: cpu_busy.as_secs_f64(),
        pcie_bytes: sys.fabric.traffic().total_bytes,
        matches: matches.len() as u64,
        result_bytes: out_bytes.len() as u64,
    };
    Ok((matches, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synth_pairs, KvConfig};
    use morpheus::SystemParams;

    fn populated_system() -> (System, KvStore) {
        let mut sys = System::new(SystemParams::paper_testbed());
        let kv = KvStore::format(
            &mut sys.mssd.dev,
            0,
            KvConfig {
                buckets: 256,
                bucket_bytes: 4096,
                probe_limit: 4,
            },
        )
        .unwrap();
        for (k, v) in synth_pairs(4_000, 1_000_000, 3) {
            kv.put(&mut sys.mssd.dev, k, &v).unwrap();
        }
        (sys, kv)
    }

    #[test]
    fn both_scans_agree_and_offload_saves_traffic() {
        let (mut sys, kv) = populated_system();
        let (lo, hi) = (0u64, 100_000u64); // ~10% selectivity
        let (conv, conv_rep) = scan_conventional(&mut sys, &kv, lo, hi).unwrap();
        let (morp, morp_rep) = scan_morpheus(&mut sys, &kv, lo, hi).unwrap();
        assert_eq!(conv, morp);
        assert_eq!(conv_rep.matches, morp_rep.matches);
        assert!(
            morp_rep.pcie_bytes < conv_rep.pcie_bytes / 5,
            "selective scan should slash transfers: {} vs {}",
            morp_rep.pcie_bytes,
            conv_rep.pcie_bytes
        );
        assert!(morp_rep.host_cpu_busy_s < conv_rep.host_cpu_busy_s);
    }

    #[test]
    fn full_range_scan_still_correct() {
        let (mut sys, kv) = populated_system();
        let (conv, _) = scan_conventional(&mut sys, &kv, 0, u64::MAX).unwrap();
        let (morp, morp_rep) = scan_morpheus(&mut sys, &kv, 0, u64::MAX).unwrap();
        assert_eq!(conv.len(), 4_000);
        assert_eq!(conv, morp);
        assert_eq!(morp_rep.matches, 4_000);
    }
}
