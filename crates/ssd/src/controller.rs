//! The SSD controller: timed logical-block I/O over the FTL.

use crate::{EmbeddedCorePool, SsdConfig, SsdError};
use morpheus_flash::{FlashArray, FlashGeometry, FlashOp, FlashOpKind, FlashTiming, PageData};
use morpheus_ftl::{Ftl, Lpn};
use morpheus_nvme::LBA_BYTES;
use morpheus_simcore::{Histogram, SimDuration, SimTime, Timeline, TraceLayer, Tracer};
use std::borrow::Cow;

/// A zero-copy view of one logical page served by the controller.
///
/// Wraps the FTL's [`PageData`] handle (sharing the flash array's stored
/// allocation) or represents an unmapped page, which reads as zeros
/// without any backing allocation. Stored payloads may be shorter than
/// the flash page; accessors zero-extend to page size.
#[derive(Debug, Clone)]
pub struct PageRead {
    data: Option<PageData>,
    page_bytes: usize,
}

impl PageRead {
    /// Logical size of the page in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// The shared payload handle, or `None` for an unmapped page.
    pub fn data(&self) -> Option<&PageData> {
        self.data.as_ref()
    }

    /// Appends bytes `lo..hi` of the page onto `out`, zero-extending past
    /// the stored payload. This is the read path's single payload copy —
    /// straight from the flash array's allocation into the caller's
    /// destination buffer.
    pub fn copy_into(&self, lo: usize, hi: usize, out: &mut Vec<u8>) {
        debug_assert!(lo <= hi && hi <= self.page_bytes);
        let stored_end = match &self.data {
            Some(d) => d.len().clamp(lo, hi),
            None => lo,
        };
        if let Some(d) = &self.data {
            out.extend_from_slice(&d[lo..stored_end]);
        }
        out.resize(out.len() + (hi - stored_end), 0);
    }

    /// Bytes `lo..hi` of the page: borrowed straight from the stored
    /// allocation when the range is fully backed (the hot case — the
    /// controller writes whole pages), owned and zero-extended otherwise.
    pub fn slice(&self, lo: usize, hi: usize) -> Cow<'_, [u8]> {
        debug_assert!(lo <= hi && hi <= self.page_bytes);
        match &self.data {
            Some(d) if d.len() >= hi => Cow::Borrowed(&d[lo..hi]),
            _ => {
                let mut v = Vec::with_capacity(hi - lo);
                self.copy_into(lo, hi, &mut v);
                Cow::Owned(v)
            }
        }
    }
}

/// Controller-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdStats {
    /// Read commands served.
    pub read_commands: u64,
    /// Write commands served.
    pub write_commands: u64,
    /// Bytes returned to the front end.
    pub bytes_read: u64,
    /// Bytes accepted from the front end.
    pub bytes_written: u64,
}

/// The SSD controller.
///
/// Integrates the flash array + FTL (functional storage), per-channel
/// timelines (cell access and channel bus), the embedded core pool
/// (firmware dispatch and, in Morpheus mode, StorageApp execution), and
/// controller DRAM occupancy.
#[derive(Debug)]
pub struct Ssd {
    cfg: SsdConfig,
    ftl: Ftl,
    cores: EmbeddedCorePool,
    channel_cell: Vec<Timeline>,
    channel_bus: Vec<Timeline>,
    dram_used: u64,
    stats: SsdStats,
    tracer: Tracer,
    read_lat: Histogram,
}

impl Ssd {
    /// Creates a controller over an erased flash array.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: SsdConfig, geometry: FlashGeometry, timing: FlashTiming) -> Self {
        Self::with_ecc(
            cfg,
            geometry,
            timing,
            morpheus_flash::EccModel::perfect(),
            0,
        )
    }

    /// Creates a controller over an erased flash array with an error
    /// injection model (see [`EccModel`](morpheus_flash::EccModel)).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_ecc(
        cfg: SsdConfig,
        geometry: FlashGeometry,
        timing: FlashTiming,
        ecc: morpheus_flash::EccModel,
        seed: u64,
    ) -> Self {
        cfg.validate();
        let flash = FlashArray::with_ecc(geometry, timing, ecc, seed);
        let ftl = Ftl::new(flash, cfg.ftl);
        let channels = geometry.channels as usize;
        Ssd {
            cores: EmbeddedCorePool::new(cfg.embedded_cores, cfg.core_clock_hz),
            channel_cell: (0..channels)
                .map(|c| Timeline::new(format!("ch{c}-cell"), 1))
                .collect(),
            channel_bus: (0..channels)
                .map(|c| Timeline::new(format!("ch{c}-bus"), 1))
                .collect(),
            cfg,
            ftl,
            dram_used: 0,
            stats: SsdStats::default(),
            tracer: Tracer::disabled(),
            read_lat: Histogram::new(),
        }
    }

    /// Installs a trace handle; flash channel activity and FTL map/GC
    /// events record through it (disabled by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Distribution of timed flash page-read latencies (ready → buffered),
    /// in nanoseconds, since the last [`reset_timing`](Ssd::reset_timing).
    pub fn read_latency(&self) -> &Histogram {
        &self.read_lat
    }

    /// The controller configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// The underlying FTL (for inspection).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Replaces the flash bit-error model and re-seeds its PRNG stream
    /// (see [`FlashArray::set_error_model`]). Stored data and counters are
    /// untouched; the fault plane re-arms this at the start of every run so
    /// repeated runs see identical media-fault streams.
    pub fn set_error_model(&mut self, ecc: morpheus_flash::EccModel, seed: u64) {
        self.ftl.set_error_model(ecc, seed);
    }

    /// The embedded core pool.
    pub fn cores(&self) -> &EmbeddedCorePool {
        &self.cores
    }

    /// Mutable access to the embedded core pool (the Morpheus firmware
    /// extension schedules StorageApp work on it).
    pub fn cores_mut(&mut self) -> &mut EmbeddedCorePool {
        &mut self.cores
    }

    /// Controller statistics.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Logical bytes per flash page.
    pub fn page_bytes(&self) -> u64 {
        self.ftl.page_bytes() as u64
    }

    /// LBAs per flash page.
    pub fn lbas_per_page(&self) -> u64 {
        self.page_bytes() / LBA_BYTES
    }

    /// Namespace capacity in LBAs.
    pub fn capacity_lbas(&self) -> u64 {
        self.ftl.capacity_pages() * self.lbas_per_page()
    }

    /// Reserves controller DRAM (e.g. for StorageApp buffers); `None` when
    /// exhausted.
    pub fn alloc_dram(&mut self, bytes: u64) -> Option<u64> {
        if bytes > self.cfg.dram_bytes - self.dram_used {
            return None;
        }
        self.dram_used += bytes;
        Some(self.dram_used - bytes)
    }

    /// Releases controller DRAM occupancy.
    pub fn free_dram(&mut self, bytes: u64) {
        self.dram_used = self.dram_used.saturating_sub(bytes);
    }

    /// Controller DRAM in use.
    pub fn dram_used(&self) -> u64 {
        self.dram_used
    }

    /// Loads data at an LBA without charging simulated time — used to stage
    /// workload input files before a timed run (the paper's inputs are
    /// likewise on the drive before measurement starts).
    ///
    /// # Errors
    ///
    /// Propagates FTL failures and range errors.
    pub fn load_at(&mut self, slba: u64, data: &[u8]) -> Result<(), SsdError> {
        self.write_bytes(slba, data, None).map(|_| ())
    }

    /// Serves a timed read of `blocks` LBAs starting at `slba`.
    ///
    /// Returns the data and the time it is fully buffered in controller
    /// DRAM (ready for DMA). Page reads stripe across channels and pipeline
    /// on the per-channel cell/bus timelines. Unwritten blocks read as
    /// zeros without touching flash (deallocated-block semantics).
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::LbaOutOfRange`] beyond the namespace and
    /// propagates media failures.
    pub fn read_range(
        &mut self,
        slba: u64,
        blocks: u64,
        ready: SimTime,
    ) -> Result<(Vec<u8>, SimTime), SsdError> {
        self.check_range(slba, blocks)?;
        let dispatch = self
            .cores
            .exec(ready, self.cfg.command_dispatch_instructions);
        let start = dispatch.end;

        let byte_start = slba * LBA_BYTES;
        let byte_len = blocks * LBA_BYTES;
        let page_bytes = self.page_bytes();
        let first_page = byte_start / page_bytes;
        let last_page = (byte_start + byte_len - 1) / page_bytes;

        let mut out = Vec::with_capacity(byte_len as usize);
        let mut done = start;
        for lpn in first_page..=last_page {
            let page_base = lpn * page_bytes;
            let lo = byte_start.max(page_base) - page_base;
            let hi = (byte_start + byte_len).min(page_base + page_bytes) - page_base;
            let (page, avail) = self.read_page_timed(Lpn(lpn), start)?;
            page.copy_into(lo as usize, hi as usize, &mut out);
            done = done.max(avail);
        }
        self.stats.read_commands += 1;
        self.stats.bytes_read += byte_len;
        Ok((out, done))
    }

    /// Serves a timed write of `data` starting at `slba` (read-modify-write
    /// for partial pages).
    ///
    /// Returns the time the write is durable on flash.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::LbaOutOfRange`] beyond the namespace and
    /// propagates FTL failures.
    pub fn write_range(
        &mut self,
        slba: u64,
        data: &[u8],
        ready: SimTime,
    ) -> Result<SimTime, SsdError> {
        let dispatch = self
            .cores
            .exec(ready, self.cfg.command_dispatch_instructions);
        let done = self.write_bytes(slba, data, Some(dispatch.end))?;
        self.stats.write_commands += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(done)
    }

    /// Reads one full logical page with timing, returning a zero-copy
    /// [`PageRead`] handle; unmapped pages read as zeros instantly without
    /// allocating (used by the Morpheus firmware extension, which
    /// pipelines parsing at page granularity).
    pub fn read_page_timed(
        &mut self,
        lpn: Lpn,
        ready: SimTime,
    ) -> Result<(PageRead, SimTime), SsdError> {
        let page_bytes = self.page_bytes() as usize;
        if self.ftl.translate(lpn).is_none() {
            return Ok((
                PageRead {
                    data: None,
                    page_bytes,
                },
                ready,
            ));
        }
        let corrected_before = self.ftl.flash().stats().corrected_reads;
        let outcome = match self.ftl.read(lpn) {
            Ok(o) => o,
            Err(e) => {
                // Retry budget exhausted: the page is lost to the host. The
                // instant marks where recovery (host fallback) begins.
                self.tracer
                    .instant(TraceLayer::Flash, "media", "uncorrectable", ready);
                return Err(e.into());
            }
        };
        self.tracer.instant(TraceLayer::Ftl, "map", "lookup", ready);
        if self.ftl.flash().stats().corrected_reads > corrected_before {
            self.tracer
                .instant(TraceLayer::Flash, "media", "ecc-correction", ready);
        }
        if outcome.retries > 0 {
            self.tracer
                .instant(TraceLayer::Ftl, "map", "read-retry", ready);
        }
        let mut avail = ready;
        for op in &outcome.ops {
            avail = self.apply_op(op, ready);
        }
        self.read_lat.record(avail.duration_since(ready).as_nanos());
        Ok((
            PageRead {
                data: Some(outcome.data),
                page_bytes,
            },
            avail,
        ))
    }

    fn write_bytes(
        &mut self,
        slba: u64,
        data: &[u8],
        timed_from: Option<SimTime>,
    ) -> Result<SimTime, SsdError> {
        let blocks = (data.len() as u64).div_ceil(LBA_BYTES);
        self.check_range(slba, blocks.max(1))?;
        let page_bytes = self.page_bytes();
        let byte_start = slba * LBA_BYTES;
        let byte_len = data.len() as u64;
        if byte_len == 0 {
            return Ok(timed_from.unwrap_or(SimTime::ZERO));
        }
        let first_page = byte_start / page_bytes;
        let last_page = (byte_start + byte_len - 1) / page_bytes;
        let mut done = timed_from.unwrap_or(SimTime::ZERO);
        for lpn in first_page..=last_page {
            let page_base = lpn * page_bytes;
            let lo = byte_start.max(page_base) - page_base;
            let hi = (byte_start + byte_len).min(page_base + page_bytes) - page_base;
            let src = &data
                [(page_base + lo - byte_start) as usize..(page_base + hi - byte_start) as usize];
            let full_page = lo == 0 && hi == page_bytes;
            let mut page;
            if full_page {
                page = src.to_vec();
            } else {
                // Read-modify-write: merge with the existing contents,
                // copying straight out of the read handle's shared
                // allocation into the new page image.
                page = vec![0u8; page_bytes as usize];
                if self.ftl.translate(Lpn(lpn)).is_some() {
                    let outcome = self.ftl.read(Lpn(lpn))?;
                    if let Some(t0) = timed_from {
                        for op in &outcome.ops {
                            done = done.max(self.apply_op(op, t0));
                        }
                    }
                    page[..outcome.data.len()].copy_from_slice(&outcome.data);
                }
                page[lo as usize..hi as usize].copy_from_slice(src);
            }
            let outcome = self.ftl.write(Lpn(lpn), &page)?;
            if let Some(t0) = timed_from {
                for op in &outcome.ops {
                    done = done.max(self.apply_op(op, t0));
                }
                self.tracer.instant(TraceLayer::Ftl, "map", "update", t0);
                if outcome.gc_relocations > 0 {
                    self.tracer.instant_bytes(
                        TraceLayer::Ftl,
                        "map",
                        "gc",
                        t0,
                        u64::from(outcome.gc_relocations) * page_bytes,
                    );
                }
            }
        }
        Ok(done)
    }

    /// Charges one flash operation to its channel timelines and returns the
    /// time it completes.
    fn apply_op(&mut self, op: &FlashOp, ready: SimTime) -> SimTime {
        let ch = op.channel as usize;
        match op.kind {
            FlashOpKind::Read => {
                let cell = self.channel_cell[ch].acquire(ready, op.cell_time);
                let bus = self.channel_bus[ch].acquire(cell.end, op.bus_time);
                self.tracer.span(
                    TraceLayer::Flash,
                    self.channel_cell[ch].name(),
                    "read-cell",
                    cell.start,
                    cell.end,
                );
                self.tracer.span(
                    TraceLayer::Flash,
                    self.channel_bus[ch].name(),
                    "read-bus",
                    bus.start,
                    bus.end,
                );
                bus.end
            }
            FlashOpKind::Program => {
                let bus = self.channel_bus[ch].acquire(ready, op.bus_time);
                let cell = self.channel_cell[ch].acquire(bus.end, op.cell_time);
                self.tracer.span(
                    TraceLayer::Flash,
                    self.channel_bus[ch].name(),
                    "program-bus",
                    bus.start,
                    bus.end,
                );
                self.tracer.span(
                    TraceLayer::Flash,
                    self.channel_cell[ch].name(),
                    "program-cell",
                    cell.start,
                    cell.end,
                );
                cell.end
            }
            FlashOpKind::Erase => {
                let cell = self.channel_cell[ch].acquire(ready, op.cell_time);
                self.tracer.span(
                    TraceLayer::Flash,
                    self.channel_cell[ch].name(),
                    "erase",
                    cell.start,
                    cell.end,
                );
                cell.end
            }
        }
    }

    /// Total busy time across channel cell timelines (flash activity).
    pub fn flash_busy(&self) -> SimDuration {
        self.channel_cell.iter().map(Timeline::busy).sum()
    }

    /// Reads a range without charging simulated time (used when another
    /// storage device is being modelled over the same stored bytes, or for
    /// functional verification).
    ///
    /// # Errors
    ///
    /// Same as [`read_range`](Ssd::read_range).
    pub fn read_range_untimed(&mut self, slba: u64, blocks: u64) -> Result<Vec<u8>, SsdError> {
        self.check_range(slba, blocks)?;
        let page_bytes = self.page_bytes();
        let byte_start = slba * LBA_BYTES;
        let byte_len = blocks * LBA_BYTES;
        let first_page = byte_start / page_bytes;
        let last_page = (byte_start + byte_len - 1) / page_bytes;
        let mut out = Vec::with_capacity(byte_len as usize);
        for lpn in first_page..=last_page {
            let page_base = lpn * page_bytes;
            let lo = byte_start.max(page_base) - page_base;
            let hi = (byte_start + byte_len).min(page_base + page_bytes) - page_base;
            let page = PageRead {
                data: match self.ftl.translate(Lpn(lpn)) {
                    Some(_) => Some(self.ftl.read(Lpn(lpn))?.data),
                    None => None,
                },
                page_bytes: page_bytes as usize,
            };
            page.copy_into(lo as usize, hi as usize, &mut out);
        }
        Ok(out)
    }

    /// Resets every timeline and counter to time zero while keeping the
    /// stored data (used between runs over the same staged input).
    pub fn reset_timing(&mut self) {
        self.cores.reset();
        for t in &mut self.channel_cell {
            t.reset();
        }
        for t in &mut self.channel_bus {
            t.reset();
        }
        self.stats = SsdStats::default();
        self.read_lat = Histogram::new();
    }

    fn check_range(&self, slba: u64, blocks: u64) -> Result<(), SsdError> {
        if blocks == 0 || slba + blocks > self.capacity_lbas() {
            return Err(SsdError::LbaOutOfRange { slba, blocks });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ssd() -> Ssd {
        Ssd::new(
            SsdConfig::default(),
            FlashGeometry::small(),
            FlashTiming::default(),
        )
    }

    #[test]
    fn load_then_read_round_trips() {
        let mut ssd = small_ssd();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        ssd.load_at(3, &data).unwrap();
        let blocks = (data.len() as u64).div_ceil(LBA_BYTES);
        let (read, done) = ssd.read_range(3, blocks, SimTime::ZERO).unwrap();
        assert_eq!(&read[..data.len()], &data[..]);
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn unwritten_blocks_read_zero_instantly() {
        let mut ssd = small_ssd();
        let (data, done) = ssd.read_range(100, 2, SimTime::ZERO).unwrap();
        assert!(data.iter().all(|b| *b == 0));
        // Only the dispatch cost, no flash time.
        let dispatch = ssd
            .cores()
            .duration(ssd.config().command_dispatch_instructions);
        assert_eq!(done, SimTime::ZERO + dispatch);
    }

    #[test]
    fn timed_write_then_read() {
        let mut ssd = small_ssd();
        let done = ssd.write_range(0, b"abcdef", SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
        let (data, _) = ssd.read_range(0, 1, SimTime::ZERO).unwrap();
        assert_eq!(&data[..6], b"abcdef");
    }

    #[test]
    fn partial_page_write_preserves_neighbours() {
        let mut ssd = small_ssd();
        let page = vec![7u8; ssd.page_bytes() as usize];
        ssd.load_at(0, &page).unwrap();
        // Overwrite LBA 1 only (512 bytes inside the first page).
        ssd.write_range(1, &[9u8; 512], SimTime::ZERO).unwrap();
        let (data, _) = ssd
            .read_range(0, ssd.lbas_per_page(), SimTime::ZERO)
            .unwrap();
        assert!(data[..512].iter().all(|b| *b == 7));
        assert!(data[512..1024].iter().all(|b| *b == 9));
        assert!(data[1024..].iter().all(|b| *b == 7));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ssd = small_ssd();
        let cap = ssd.capacity_lbas();
        assert!(matches!(
            ssd.read_range(cap, 1, SimTime::ZERO),
            Err(SsdError::LbaOutOfRange { .. })
        ));
        assert!(matches!(
            ssd.read_range(0, 0, SimTime::ZERO),
            Err(SsdError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn multi_page_reads_pipeline_across_channels() {
        let mut ssd = small_ssd();
        let page = ssd.page_bytes() as usize;
        let data = vec![1u8; page * 4];
        ssd.load_at(0, &data).unwrap();
        let blocks = (page as u64 * 4) / LBA_BYTES;
        let (_, done) = ssd.read_range(0, blocks, SimTime::ZERO).unwrap();
        // Four pages striped over two channels: roughly two serialized page
        // reads per channel, far below four fully serial reads.
        let t = ssd.ftl().flash().timing();
        let serial = (t.read_latency + t.bus_transfer(page as u64)) * 4;
        assert!(done.as_nanos() < serial.as_nanos());
    }

    #[test]
    fn dram_accounting() {
        let mut ssd = small_ssd();
        assert!(ssd.alloc_dram(1 << 20).is_some());
        assert_eq!(ssd.dram_used(), 1 << 20);
        ssd.free_dram(1 << 20);
        assert_eq!(ssd.dram_used(), 0);
        assert!(ssd.alloc_dram(u64::MAX).is_none());
    }

    #[test]
    fn stats_count_commands_and_bytes() {
        let mut ssd = small_ssd();
        ssd.write_range(0, &[1u8; 512], SimTime::ZERO).unwrap();
        ssd.read_range(0, 1, SimTime::ZERO).unwrap();
        let s = ssd.stats();
        assert_eq!(s.read_commands, 1);
        assert_eq!(s.write_commands, 1);
        assert_eq!(s.bytes_read, 512);
        assert_eq!(s.bytes_written, 512);
    }

    #[test]
    fn flash_busy_grows_with_reads() {
        let mut ssd = small_ssd();
        ssd.load_at(0, &[5u8; 4096]).unwrap();
        assert!(ssd.flash_busy().is_zero());
        ssd.read_range(0, 8, SimTime::ZERO).unwrap();
        assert!(!ssd.flash_busy().is_zero());
    }
}
