//! Flash translation layer for the Morpheus-SSD model.
//!
//! The paper's Morpheus-SSD "leverages the existing read/write process and
//! the FTL of the baseline SSD" (§IV-B) — StorageApps sit *above* a fully
//! functional FTL, and in-SSD parsing pipelines with FTL page reads. This
//! crate provides that substrate: a page-level mapping FTL with
//! channel-striped allocation, greedy garbage collection, wear levelling,
//! TRIM, bad-block handling, read retries, and write-amplification
//! statistics.
//!
//! The FTL is functional (real bytes round-trip through the
//! [`FlashArray`](morpheus_flash::FlashArray)) and timing-descriptive: every
//! operation reports the [`FlashOp`](morpheus_flash::FlashOp)s it performed
//! so the SSD controller can charge them to its channel timelines.
//!
//! # Example
//!
//! ```
//! use morpheus_flash::{FlashArray, FlashGeometry, FlashTiming};
//! use morpheus_ftl::{Ftl, FtlConfig, Lpn};
//!
//! let array = FlashArray::new(FlashGeometry::small(), FlashTiming::default());
//! let mut ftl = Ftl::new(array, FtlConfig::default());
//! ftl.write(Lpn(3), b"object data").unwrap();
//! let read = ftl.read(Lpn(3)).unwrap();
//! assert_eq!(&read.data[..], b"object data");
//! ```

#![warn(missing_docs)]

mod config;
mod error;
mod mapping;

pub use config::FtlConfig;
pub use error::FtlError;
pub use mapping::{Ftl, FtlStats, Lpn, ReadOutcome, WriteOutcome};
pub use morpheus_flash::PageData;
