//! Open-loop serving experiment: latency vs offered RPS per engine.
//!
//! Sweeps a ladder of arrival rates over one or all modes and prints one
//! row per (mode, rps) cell: admission counts, end-to-end latency
//! quantiles, sustained throughput, and NVMe doorbell economy. The knee —
//! where queue-wait blows up the tail — arrives at a lower RPS on the
//! conventional path than on the Morpheus paths, which is the serving
//! version of the paper's multiprogramming result.
//!
//! Deterministic by construction: the cell grid is fanned out with the
//! shared order-preserving worker pool, and every cell builds its own
//! seeded system, so output is byte-identical across repeats and `--jobs`.

use morpheus::{
    AppSpec, CacheConfig, CachePolicy, ControlReport, DeviceKill, Fleet, FleetConfig, HealPolicy,
    Mode, PlacementPolicy, RollingUpdate, RunError, ServeConfig, ServePolicy, ServeReport, SloSpec,
    System, SystemParams, TelemetryConfig,
};
use morpheus_bench::{print_table, run_parallel, Harness};
use morpheus_format::{FieldKind, Schema, TextWriter};
use morpheus_simcore::{parse_duration, render_error_chain, SimDuration, SplitMix64, Tracer};

const USAGE: &str =
    "usage: serve [--rps LIST] [--duration S] [--depth N] [--batch N] [--sq-depth N]
             [--policy shed|fallback] [--mode all|conventional|morpheus|morpheus+p2p]
             [--apps N] [--bytes N] [--trace-out <path>]
             [--skew F] [--cache-mb N] [--cache-host-mb N] [--cache-policy tinylfu|lru]
             [--telemetry-window DUR] [--slo SPEC] [--telemetry-out <path>]
             [--prom-out <path>]
             [--devices N] [--placement rr|hash|capacity] [--kill-device DEV@SECS]
             [--rolling-update SECS] [--heal]
             [--fast-forward] [--csv] [--seed N] [--jobs N] [--faults SPEC]";

/// One parsed invocation.
#[derive(Debug)]
struct Cli {
    rps: Vec<f64>,
    duration_s: f64,
    depth: usize,
    batch: usize,
    sq_depth: usize,
    policy: ServePolicy,
    modes: Vec<Mode>,
    apps: usize,
    bytes: u64,
    trace_out: Option<String>,
    skew: f64,
    cache_mb: u64,
    cache_host_mb: u64,
    cache_policy: CachePolicy,
    telemetry_window: Option<SimDuration>,
    slo: SloSpec,
    telemetry_out: Option<String>,
    prom_out: Option<String>,
    devices: usize,
    placement: PlacementPolicy,
    kills: Vec<DeviceKill>,
    rolling_update: Option<f64>,
    heal: bool,
    csv: bool,
    fast_forward: bool,
    harness: Harness,
}

impl Cli {
    /// The object-cache configuration this invocation asked for (inert
    /// when both capacities are zero — exactly cache-off).
    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            dram_bytes: self.cache_mb << 20,
            host_bytes: self.cache_host_mb << 20,
            policy: self.cache_policy,
            seed: self.harness.seed,
        }
    }

    /// The serve-plane telemetry configuration, `None` when sampling is
    /// off (the default — disabled runs stay byte-identical to pre-
    /// telemetry builds).
    fn telemetry_config(&self) -> Option<TelemetryConfig> {
        self.telemetry_window.map(|w| {
            let mut t = TelemetryConfig::new(w);
            t.slo = self.slo.clone();
            t
        })
    }

    /// True when the invocation engages the fleet path: more than one
    /// device, a kill schedule, or control-plane intent. A plain
    /// `--devices 1` run stays on the legacy single-[`System`] path,
    /// byte for byte.
    fn fleet_mode(&self) -> bool {
        self.devices > 1 || !self.kills.is_empty() || self.rolling_update.is_some() || self.heal
    }

    /// The fleet shape this invocation asked for.
    fn fleet_config(&self) -> FleetConfig {
        let mut cfg = FleetConfig::new(self.devices);
        cfg.placement = self.placement;
        cfg.seed = self.harness.seed;
        cfg.kills = self.kills.clone();
        cfg.control.rolling = self.rolling_update.map(RollingUpdate::starting_at);
        if self.heal {
            cfg.control.heal = Some(HealPolicy::default());
        }
        cfg
    }
}

/// The flag grammar, separated from process state so tests can drive it.
fn parse(args: &[String]) -> Result<Cli, String> {
    fn value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} requires a value"))
    }
    fn positive<T: std::str::FromStr + PartialOrd + From<u8>>(
        flag: &str,
        v: &str,
    ) -> Result<T, String> {
        let n: T = v
            .parse()
            .map_err(|_| format!("{flag} expects a positive number, got {v:?}"))?;
        if n < T::from(1u8) {
            return Err(format!("{flag} must be >= 1"));
        }
        Ok(n)
    }
    let mut cli = Cli {
        rps: vec![250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0],
        duration_s: 0.05,
        depth: 64,
        batch: 8,
        sq_depth: 64,
        policy: ServePolicy::Shed,
        modes: vec![Mode::Conventional, Mode::Morpheus, Mode::MorpheusP2P],
        apps: 3,
        bytes: 64 * 1024,
        trace_out: None,
        skew: 0.0,
        cache_mb: 0,
        cache_host_mb: 0,
        cache_policy: CachePolicy::TinyLfu,
        telemetry_window: None,
        slo: SloSpec::none(),
        telemetry_out: None,
        prom_out: None,
        devices: 1,
        placement: PlacementPolicy::HashByFile,
        kills: Vec::new(),
        rolling_update: None,
        heal: false,
        csv: false,
        fast_forward: false,
        harness: Harness::default(),
    };
    let mut harness_args: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rps" => {
                let v = value("--rps", &mut it)?;
                let mut ladder = Vec::new();
                for part in v.split(',') {
                    let r: f64 = part
                        .parse()
                        .map_err(|_| format!("--rps expects numbers, got {part:?}"))?;
                    if !r.is_finite() || r <= 0.0 {
                        return Err(format!("--rps entries must be positive, got {part:?}"));
                    }
                    ladder.push(r);
                }
                if ladder.is_empty() {
                    return Err("--rps needs at least one rate".into());
                }
                cli.rps = ladder;
            }
            "--duration" => {
                let v = value("--duration", &mut it)?;
                let d: f64 = v
                    .parse()
                    .map_err(|_| format!("--duration expects seconds, got {v:?}"))?;
                if !d.is_finite() || d <= 0.0 {
                    return Err("--duration must be positive".into());
                }
                cli.duration_s = d;
            }
            "--depth" => cli.depth = positive::<usize>("--depth", value("--depth", &mut it)?)?,
            "--batch" => cli.batch = positive::<usize>("--batch", value("--batch", &mut it)?)?,
            "--sq-depth" => {
                cli.sq_depth = positive::<usize>("--sq-depth", value("--sq-depth", &mut it)?)?
            }
            "--apps" => cli.apps = positive::<usize>("--apps", value("--apps", &mut it)?)?,
            "--bytes" => cli.bytes = positive::<u64>("--bytes", value("--bytes", &mut it)?)?,
            "--policy" => {
                let v = value("--policy", &mut it)?;
                cli.policy = ServePolicy::parse(v)
                    .ok_or_else(|| format!("--policy expects shed|fallback, got {v:?}"))?;
            }
            "--mode" => {
                let v = value("--mode", &mut it)?;
                cli.modes = match v.as_str() {
                    "all" => vec![Mode::Conventional, Mode::Morpheus, Mode::MorpheusP2P],
                    "conventional" => vec![Mode::Conventional],
                    "morpheus" => vec![Mode::Morpheus],
                    "morpheus+p2p" => vec![Mode::MorpheusP2P],
                    other => {
                        return Err(format!(
                            "--mode expects all|conventional|morpheus|morpheus+p2p, got {other:?}"
                        ))
                    }
                };
            }
            "--trace-out" => cli.trace_out = Some(value("--trace-out", &mut it)?.clone()),
            "--skew" => {
                let v = value("--skew", &mut it)?;
                let s: f64 = v
                    .parse()
                    .map_err(|_| format!("--skew expects a number, got {v:?}"))?;
                if !s.is_finite() || s < 0.0 {
                    return Err("--skew must be finite and non-negative".into());
                }
                cli.skew = s;
            }
            "--cache-mb" => {
                let v = value("--cache-mb", &mut it)?;
                cli.cache_mb = v
                    .parse()
                    .map_err(|_| format!("--cache-mb expects a byte count in MB, got {v:?}"))?;
            }
            "--cache-host-mb" => {
                let v = value("--cache-host-mb", &mut it)?;
                cli.cache_host_mb = v.parse().map_err(|_| {
                    format!("--cache-host-mb expects a byte count in MB, got {v:?}")
                })?;
            }
            "--cache-policy" => {
                let v = value("--cache-policy", &mut it)?;
                cli.cache_policy = CachePolicy::parse(v)
                    .ok_or_else(|| format!("--cache-policy expects tinylfu|lru, got {v:?}"))?;
            }
            "--telemetry-window" => {
                let v = value("--telemetry-window", &mut it)?;
                cli.telemetry_window =
                    Some(parse_duration(v).map_err(|e| format!("--telemetry-window: {e}"))?);
            }
            "--slo" => {
                let v = value("--slo", &mut it)?;
                cli.slo = SloSpec::parse(v).map_err(|e| format!("--slo: {e}"))?;
            }
            "--telemetry-out" => {
                cli.telemetry_out = Some(value("--telemetry-out", &mut it)?.clone())
            }
            "--prom-out" => cli.prom_out = Some(value("--prom-out", &mut it)?.clone()),
            "--devices" => {
                cli.devices = positive::<usize>("--devices", value("--devices", &mut it)?)?
            }
            "--placement" => {
                let v = value("--placement", &mut it)?;
                cli.placement = PlacementPolicy::parse(v)
                    .ok_or_else(|| format!("--placement expects rr|hash|capacity, got {v:?}"))?;
            }
            "--kill-device" => {
                let v = value("--kill-device", &mut it)?;
                cli.kills
                    .push(DeviceKill::parse(v).map_err(|e| format!("--kill-device: {e}"))?);
            }
            "--rolling-update" => {
                let v = value("--rolling-update", &mut it)?;
                let s: f64 = v
                    .parse()
                    .map_err(|_| format!("--rolling-update expects seconds, got {v:?}"))?;
                if !s.is_finite() || s < 0.0 {
                    return Err("--rolling-update must be finite and >= 0".into());
                }
                cli.rolling_update = Some(s);
            }
            "--heal" => cli.heal = true,
            "--csv" => cli.csv = true,
            "--fast-forward" => cli.fast_forward = true,
            // Harness flags: re-validated by the shared grammar so
            // `--faults bogus` fails exactly as in every figure binary.
            "--seed" | "--jobs" | "--faults" => {
                let v = value(arg, &mut it)?;
                harness_args.push(arg.clone());
                harness_args.push(v.clone());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    cli.harness = Harness::parse(&harness_args, &[]).map_err(|e| e.0)?;
    if cli.trace_out.is_some() && (cli.modes.len() > 1 || cli.rps.len() > 1) {
        return Err("--trace-out needs a single cell: one --mode and one --rps".into());
    }
    if cli.csv && cli.trace_out.is_some() {
        return Err("--csv and --trace-out are mutually exclusive (CSV owns stdout)".into());
    }
    if cli.telemetry_window.is_none() {
        if !cli.slo.is_empty() {
            return Err("--slo requires --telemetry-window".into());
        }
        if cli.telemetry_out.is_some() {
            return Err("--telemetry-out requires --telemetry-window".into());
        }
        if cli.prom_out.is_some() {
            return Err("--prom-out requires --telemetry-window".into());
        }
    }
    if cli.prom_out.is_some() && (cli.modes.len() > 1 || cli.rps.len() > 1) {
        return Err(
            "--prom-out needs a single cell (one --mode, one --rps): a Prometheus \
             exposition declares each metric once"
                .into(),
        );
    }
    for k in &cli.kills {
        if k.device >= cli.devices {
            return Err(format!(
                "--kill-device names device {} but --devices is {}",
                k.device, cli.devices
            ));
        }
    }
    if cli.prom_out.is_some() && cli.devices > 1 {
        return Err(
            "--prom-out requires --devices 1: a Prometheus exposition declares each \
             metric once (use --telemetry-out for per-device windows)"
                .into(),
        );
    }
    Ok(cli)
}

/// Stages `apps` tenant inputs (~`bytes` each of two-column text edges)
/// into a fresh paper-testbed system, then arms any fault plan.
fn build_system(cli: &Cli) -> (System, Vec<AppSpec>) {
    let mut sys = System::new(SystemParams::paper_testbed());
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let mut specs = Vec::new();
    for i in 0..cli.apps {
        let name = format!("svc{i}");
        let file = format!("{name}.txt");
        let mut rng = SplitMix64::new(cli.harness.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let mut w = TextWriter::new();
        // ~12 bytes per "xxxxx xxxxx\n" row.
        for _ in 0..(cli.bytes / 12).max(1) {
            w.write_u64(rng.next_below(100_000));
            w.sep();
            w.write_u64(rng.next_below(100_000));
            w.newline();
        }
        sys.create_input_file(&file, &w.into_bytes())
            .expect("staging tenant input");
        specs.push(AppSpec::cpu_app(&name, &file, schema.clone(), 1, 50.0));
    }
    if let Some(plan) = cli.harness.faults {
        sys.set_fault_plan(plan);
    }
    (sys, specs)
}

/// Stages the same tenant inputs on every device of a fresh fleet (full
/// replication — see `docs/FLEET.md`), then arms any fault plan fleet-wide.
fn build_fleet(cli: &Cli) -> (Fleet, Vec<AppSpec>) {
    let mut fleet = Fleet::new(SystemParams::paper_testbed(), cli.fleet_config());
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let mut specs = Vec::new();
    for i in 0..cli.apps {
        let name = format!("svc{i}");
        let file = format!("{name}.txt");
        let mut rng = SplitMix64::new(cli.harness.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let mut w = TextWriter::new();
        for _ in 0..(cli.bytes / 12).max(1) {
            w.write_u64(rng.next_below(100_000));
            w.sep();
            w.write_u64(rng.next_below(100_000));
            w.newline();
        }
        fleet
            .create_input_file(&file, &w.into_bytes())
            .expect("staging tenant input");
        specs.push(AppSpec::cpu_app(&name, &file, schema.clone(), 1, 50.0));
    }
    if let Some(plan) = cli.harness.faults {
        fleet.set_fault_plan(plan);
    }
    (fleet, specs)
}

/// One cell's results: the (aggregate) report, per-device reports when the
/// fleet path ran, and the rendered trace if this is the traced cell.
struct CellOut {
    rep: ServeReport,
    per_device: Vec<ServeReport>,
    rebalanced: u64,
    control: Option<ControlReport>,
    trace: Option<String>,
}

/// Runs one (mode, rps) cell on its own fresh system or fleet. The cell
/// builds its cache fresh too, so the grid stays byte-identical across
/// `--jobs` fan-outs; cache-on cells therefore measure the within-run
/// (cold-start plus steady-state) hit economy.
fn run_cell(cli: &Cli, mode: Mode, rps: f64) -> Result<CellOut, RunError> {
    let cfg = ServeConfig {
        rps,
        duration_s: cli.duration_s,
        depth: cli.depth,
        batch_max: cli.batch,
        sq_depth: cli.sq_depth,
        mode,
        policy: cli.policy,
        seed: cli.harness.seed,
        skew: cli.skew,
        telemetry: cli.telemetry_config(),
        fast_forward: cli.fast_forward,
    };
    if cli.fleet_mode() {
        let (mut fleet, specs) = build_fleet(cli);
        if cli.trace_out.is_some() {
            fleet.enable_tracing();
        }
        fleet.set_object_cache(cli.cache_config());
        let rep = fleet.serve(&specs, &cfg)?;
        let trace = cli
            .trace_out
            .as_ref()
            .map(|_| fleet.take_merged_trace().to_chrome_json());
        return Ok(CellOut {
            rep: rep.aggregate,
            per_device: rep.per_device,
            rebalanced: rep.rebalanced,
            control: rep.control,
            trace,
        });
    }
    let (mut sys, specs) = build_system(cli);
    if cli.trace_out.is_some() {
        sys.set_tracer(Tracer::enabled());
    }
    sys.set_object_cache(cli.cache_config());
    let rep = sys.serve(&specs, &cfg)?;
    let trace = cli
        .trace_out
        .as_ref()
        .map(|_| sys.tracer().take().to_chrome_json());
    Ok(CellOut {
        rep,
        per_device: Vec::new(),
        rebalanced: 0,
        control: None,
        trace,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    let grid: Vec<(Mode, f64)> = cli
        .modes
        .iter()
        .flat_map(|m| cli.rps.iter().map(move |r| (*m, *r)))
        .collect();
    let cells = run_parallel(cli.harness.jobs, &grid, |(mode, rps)| {
        run_cell(&cli, *mode, *rps)
    });

    let cache_on = cli.cache_config().is_enabled();
    if !cli.csv {
        // The historical banner is extended only when the new knobs are in
        // play, so pre-cache invocations stay byte-identical.
        let mut banner = format!(
            "serve: {} apps x ~{} bytes, duration {}s, depth {}, batch <= {}, policy {}, seed {}",
            cli.apps, cli.bytes, cli.duration_s, cli.depth, cli.batch, cli.policy, cli.harness.seed
        );
        if cli.skew > 0.0 || cache_on {
            banner.push_str(&format!(
                ", skew {}, cache {}+{}MB {}",
                cli.skew, cli.cache_mb, cli.cache_host_mb, cli.cache_policy
            ));
        }
        if let Some(w) = cli.telemetry_window {
            banner.push_str(&format!(", telemetry {w}"));
            if !cli.slo.is_empty() {
                banner.push_str(&format!(", slo {}", cli.slo));
            }
        }
        if cli.fleet_mode() {
            banner.push_str(&format!(
                ", devices {} placement {}",
                cli.devices, cli.placement
            ));
            for k in &cli.kills {
                banner.push_str(&format!(
                    ", kill dev{}@{:.3}s",
                    k.device,
                    (k.at - morpheus_simcore::SimTime::ZERO).as_secs_f64()
                ));
            }
            if let Some(s) = cli.rolling_update {
                banner.push_str(&format!(", rolling-update @{s:.3}s"));
            }
            if cli.heal {
                banner.push_str(", heal");
            }
        }
        println!("{banner}");
    }
    let mut rows = Vec::new();
    let mut fault_lines = Vec::new();
    let mut cache_lines = Vec::new();
    let mut fleet_lines = Vec::new();
    let mut telemetry_blocks = Vec::new();
    let mut telemetry_csv = String::new();
    let mut prom_text = None;
    let mut trace_json = None;
    for ((mode, rps), cell) in grid.iter().zip(cells) {
        let CellOut {
            rep,
            per_device,
            rebalanced,
            control,
            trace,
        } = match cell {
            Ok(v) => v,
            Err(e) => {
                eprintln!(
                    "error: serve {mode} @ {rps} rps failed: {}",
                    render_error_chain(&e)
                );
                std::process::exit(1);
            }
        };
        if trace.is_some() {
            trace_json = trace;
        }
        if cli.fleet_mode() {
            fleet_lines.push(format!(
                "fleet ({mode} @ {rps:.0} rps): devices={} placement={} rebalanced={rebalanced}",
                per_device.len(),
                cli.placement
            ));
            for (i, d) in per_device.iter().enumerate() {
                fleet_lines.push(format!(
                    "  dev{i}: offered={} done={} shed={} fail={} sust_rps={:.1} p99_us={:.1}",
                    d.offered,
                    d.completed,
                    d.shed,
                    d.failed,
                    d.sustained_rps,
                    d.e2e_ns.p99() as f64 / 1e3
                ));
            }
            // Control-plane outcome: the transition counters then one
            // lifecycle/health line per device, labelled like the fleet
            // rows above.
            if let Some(c) = &control {
                for line in format!("{c}").lines() {
                    fleet_lines.push(format!("  {line}"));
                }
            }
            // Telemetry lives per device on the fleet path (the aggregate
            // report carries none): emit each device's windows, labelled.
            for (i, d) in per_device.iter().enumerate() {
                if let Some(t) = &d.telemetry {
                    telemetry_blocks
                        .push(format!("telemetry ({mode} @ {rps:.0} rps, dev{i}):\n{t}"));
                    if cli.telemetry_out.is_some() {
                        telemetry_csv.push_str(&t.to_csv(&[
                            ("mode", mode.to_string()),
                            ("target_rps", format!("{rps:.0}")),
                            ("device", i.to_string()),
                        ]));
                    }
                    if cli.prom_out.is_some() {
                        // --devices 1 enforced at parse time, so this is
                        // the lone device of a kill-schedule run.
                        prom_text = Some(t.to_prometheus(
                            "morpheus",
                            &[("mode", &mode.to_string()), ("rps", &format!("{rps:.0}"))],
                        ));
                    }
                }
            }
        }
        let mut row = vec![
            mode.to_string(),
            format!("{rps:.0}"),
            rep.offered.to_string(),
            rep.completed.to_string(),
            rep.shed.to_string(),
            rep.overflow_fallbacks.to_string(),
            rep.fault_redispatches.to_string(),
            rep.failed.to_string(),
            format!("{:.1}", rep.e2e_ns.p50() as f64 / 1e3),
            format!("{:.1}", rep.e2e_ns.p95() as f64 / 1e3),
            format!("{:.1}", rep.e2e_ns.p99() as f64 / 1e3),
            format!("{:.1}", rep.sustained_rps),
            format!("{:.1}", rep.aggregate_mbs),
            rep.commands.to_string(),
            rep.doorbell_writes.to_string(),
            format!("{:.3}", rep.metrics.get("ssd_core_utilization")),
        ];
        if cache_on {
            let c = rep.cache.unwrap_or_default();
            row.push(format!("{:.3}", c.hit_rate()));
        }
        rows.push(row);
        if cli.harness.faults.is_some() {
            fault_lines.push(format!("faults ({mode} @ {rps:.0} rps): {}", rep.faults));
        }
        if let Some(c) = rep.cache {
            cache_lines.push(format!("cache ({mode} @ {rps:.0} rps): {c}"));
        }
        if let Some(t) = &rep.telemetry {
            telemetry_blocks.push(format!("telemetry ({mode} @ {rps:.0} rps):\n{t}"));
            if cli.telemetry_out.is_some() {
                // One header+rows block per cell: window columns are
                // data-dependent, so cells keep their own headers.
                // "target_rps": the offered rate, distinct from the
                // derived per-window "rps" (completed) column.
                telemetry_csv.push_str(&t.to_csv(&[
                    ("mode", mode.to_string()),
                    ("target_rps", format!("{rps:.0}")),
                ]));
            }
            if cli.prom_out.is_some() {
                // Single cell by construction (validated at parse time).
                prom_text = Some(t.to_prometheus(
                    "morpheus",
                    &[("mode", &mode.to_string()), ("rps", &format!("{rps:.0}"))],
                ));
            }
        }
    }
    let mut header = vec![
        "mode", "rps", "offered", "done", "shed", "fb", "redisp", "fail", "p50us", "p95us",
        "p99us", "sust_rps", "mb_s", "cmds", "dbell", "ssd_util",
    ];
    if cache_on {
        header.push("hit_rate");
    }
    let write_file = |path: &String, content: &str| {
        std::fs::write(path, content).unwrap_or_else(|e| {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        });
    };
    if let Some(path) = &cli.telemetry_out {
        write_file(path, &telemetry_csv);
    }
    if let (Some(path), Some(prom)) = (&cli.prom_out, &prom_text) {
        write_file(path, prom);
    }
    if cli.csv {
        // CSV owns stdout: exactly one header line plus one line per cell.
        println!("{}", header.join(","));
        for row in &rows {
            println!("{}", row.join(","));
        }
        return;
    }
    print_table(&header, &rows);
    for line in fleet_lines {
        println!("{line}");
    }
    for line in fault_lines {
        println!("{line}");
    }
    for line in cache_lines {
        println!("{line}");
    }
    for block in telemetry_blocks {
        println!("{block}");
    }
    if let Some(path) = &cli.telemetry_out {
        println!("wrote windowed telemetry CSV to {path}");
    }
    if let Some(path) = &cli.prom_out {
        println!("wrote Prometheus text exposition to {path}");
    }
    if let (Some(path), Some(json)) = (&cli.trace_out, trace_json) {
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote Chrome trace-event JSON to {path} (load in Perfetto)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let cli = parse(&argv(&[])).expect("valid");
        assert_eq!(cli.modes.len(), 3);
        assert_eq!(cli.rps.len(), 6);
        assert_eq!(cli.policy, ServePolicy::Shed);
        assert_eq!((cli.depth, cli.batch, cli.sq_depth), (64, 8, 64));
        assert_eq!(cli.skew, 0.0);
        assert_eq!((cli.cache_mb, cli.cache_host_mb), (0, 0));
        assert_eq!(cli.cache_policy, CachePolicy::TinyLfu);
        assert!(!cli.csv);
        assert!(!cli.cache_config().is_enabled(), "defaults are cache-off");
    }

    #[test]
    fn parse_full_grammar() {
        let cli = parse(&argv(&[
            "--rps",
            "100,200.5",
            "--duration",
            "0.1",
            "--depth",
            "16",
            "--batch",
            "4",
            "--sq-depth",
            "32",
            "--policy",
            "fallback",
            "--mode",
            "morpheus",
            "--apps",
            "2",
            "--bytes",
            "4096",
            "--skew",
            "1.1",
            "--cache-mb",
            "256",
            "--cache-host-mb",
            "512",
            "--cache-policy",
            "lru",
            "--csv",
            "--seed",
            "7",
            "--jobs",
            "4",
            "--faults",
            "seed=9,crash=0.5",
        ]))
        .expect("valid");
        assert_eq!(cli.rps, vec![100.0, 200.5]);
        assert_eq!(cli.duration_s, 0.1);
        assert_eq!(cli.policy, ServePolicy::HostFallback);
        assert_eq!(cli.modes, vec![Mode::Morpheus]);
        assert_eq!((cli.apps, cli.bytes), (2, 4096));
        assert_eq!(cli.skew, 1.1);
        assert_eq!((cli.cache_mb, cli.cache_host_mb), (256, 512));
        assert_eq!(cli.cache_policy, CachePolicy::Lru);
        assert!(cli.csv);
        assert_eq!((cli.harness.seed, cli.harness.jobs), (7, 4));
        assert_eq!(cli.harness.faults.expect("plan").core_crash, 0.5);
        let cc = cli.cache_config();
        assert_eq!(cc.dram_bytes, 256 << 20);
        assert_eq!(cc.host_bytes, 512 << 20);
        assert_eq!(cc.seed, 7);
    }

    #[test]
    fn trace_out_needs_single_cell() {
        assert!(parse(&argv(&["--trace-out", "t.json"])).is_err());
        assert!(parse(&argv(&[
            "--trace-out",
            "t.json",
            "--mode",
            "morpheus",
            "--rps",
            "100"
        ]))
        .is_ok());
    }

    #[test]
    fn parse_rejects_bad_input() {
        for bad in [
            vec!["--rps"],                 // missing value
            vec!["--rps", "0"],            // non-positive rate
            vec!["--rps", "100,abc"],      // malformed entry
            vec!["--duration", "-1"],      // negative
            vec!["--depth", "0"],          // zero depth
            vec!["--batch", "x"],          // malformed
            vec!["--policy", "drop"],      // unknown policy
            vec!["--mode", "turbo"],       // unknown mode
            vec!["--apps", "0"],           // zero tenants
            vec!["--sacle", "64"],         // typo flag
            vec!["--faults", "bogus"],     // bad fault spec
            vec!["--jobs", "0"],           // harness re-check
            vec!["--skew"],                // missing value
            vec!["--skew", "-0.5"],        // negative skew
            vec!["--skew", "inf"],         // non-finite skew
            vec!["--skew", "hot"],         // malformed skew
            vec!["--cache-mb", "many"],    // malformed capacity
            vec!["--cache-mb", "-1"],      // negative capacity
            vec!["--cache-host-mb", "x"],  // malformed spill capacity
            vec!["--cache-policy", "arc"], // unknown cache policy
            vec!["--cache-policy"],        // missing value
            vec!["--csv", "x"],            // --csv takes no value
        ] {
            assert!(parse(&argv(&bad)).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_telemetry_grammar() {
        let cli = parse(&argv(&[
            "--telemetry-window",
            "10ms",
            "--slo",
            "p99<500us,avail>99.9",
            "--telemetry-out",
            "t.csv",
        ]))
        .expect("valid");
        assert_eq!(
            cli.telemetry_window.unwrap(),
            morpheus_simcore::SimDuration::from_millis(10)
        );
        assert_eq!(cli.slo.objectives.len(), 2);
        let t = cli.telemetry_config().expect("window set");
        assert_eq!(t.slo.objectives.len(), 2);
        assert!(
            parse(&argv(&[])).unwrap().telemetry_config().is_none(),
            "telemetry is off by default"
        );
    }

    #[test]
    fn telemetry_flags_require_a_window() {
        for bad in [
            vec!["--slo", "avail>99.9"],
            vec!["--telemetry-out", "t.csv"],
            vec!["--prom-out", "t.prom"],
        ] {
            assert!(parse(&argv(&bad)).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn prom_out_needs_single_cell() {
        assert!(parse(&argv(&[
            "--telemetry-window",
            "10ms",
            "--prom-out",
            "t.prom"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "--telemetry-window",
            "10ms",
            "--prom-out",
            "t.prom",
            "--mode",
            "morpheus",
            "--rps",
            "100"
        ]))
        .is_ok());
    }

    #[test]
    fn parse_rejects_bad_telemetry_values() {
        for bad in [
            vec!["--telemetry-window"],                             // missing value
            vec!["--telemetry-window", "0ms"],                      // zero window
            vec!["--telemetry-window", "soon"],                     // malformed
            vec!["--telemetry-window", "10ms", "--slo"],            // missing value
            vec!["--telemetry-window", "10ms", "--slo", "x"],       // bad term
            vec!["--telemetry-window", "10ms", "--slo", "p99<0ns"], // bad threshold
        ] {
            assert!(parse(&argv(&bad)).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_fleet_grammar() {
        let cli = parse(&argv(&[])).expect("valid");
        assert_eq!(cli.devices, 1);
        assert_eq!(cli.placement, PlacementPolicy::HashByFile);
        assert!(cli.kills.is_empty());
        assert!(!cli.fleet_mode(), "defaults stay on the legacy path");

        let cli = parse(&argv(&[
            "--devices",
            "4",
            "--placement",
            "capacity",
            "--kill-device",
            "2@0.01",
            "--kill-device",
            "3@0.02",
        ]))
        .expect("valid");
        assert_eq!(cli.devices, 4);
        assert_eq!(cli.placement, PlacementPolicy::CapacityAware);
        assert_eq!(cli.kills.len(), 2);
        assert_eq!(cli.kills[0].device, 2);
        assert!(cli.fleet_mode());
        let fc = cli.fleet_config();
        assert_eq!((fc.devices, fc.kills.len()), (4, 2));

        // A kill schedule alone engages the fleet path even on one device.
        assert!(parse(&argv(&["--kill-device", "0@0.01"]))
            .expect("valid")
            .fleet_mode());
    }

    #[test]
    fn parse_control_grammar() {
        let cli = parse(&argv(&[])).expect("valid");
        assert!(cli.rolling_update.is_none());
        assert!(!cli.heal);
        assert!(!cli.fleet_config().control.is_active());

        let cli = parse(&argv(&[
            "--devices",
            "4",
            "--rolling-update",
            "0.002",
            "--heal",
        ]))
        .expect("valid");
        assert_eq!(cli.rolling_update, Some(0.002));
        assert!(cli.heal);
        assert!(cli.fleet_mode());
        let fc = cli.fleet_config();
        assert!(fc.control.rolling.is_some());
        assert!(fc.control.heal.is_some());

        // Control intent alone engages the fleet path, even solo.
        assert!(parse(&argv(&["--rolling-update", "0.01"]))
            .expect("valid")
            .fleet_mode());
        assert!(parse(&argv(&["--heal"])).expect("valid").fleet_mode());
    }

    #[test]
    fn parse_rejects_bad_control_input() {
        for bad in [
            vec!["--rolling-update"],          // missing value
            vec!["--rolling-update", "-1"],    // negative start
            vec!["--rolling-update", "inf"],   // non-finite
            vec!["--rolling-update", "later"], // malformed
            vec!["--heal", "now"],             // --heal takes no value
        ] {
            assert!(parse(&argv(&bad)).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_bad_fleet_input() {
        for bad in [
            vec!["--devices", "0"],                            // zero devices
            vec!["--devices", "x"],                            // malformed
            vec!["--placement", "random"],                     // unknown policy
            vec!["--placement"],                               // missing value
            vec!["--kill-device", "2"],                        // missing @SECS
            vec!["--kill-device", "2@-1"],                     // negative time
            vec!["--kill-device", "1@0.01"],                   // device outside fleet (devices=1)
            vec!["--devices", "2", "--kill-device", "2@0.01"], // out of range
        ] {
            assert!(parse(&argv(&bad)).is_err(), "should reject {bad:?}");
        }
        // Prometheus exposition is single-device only.
        assert!(parse(&argv(&[
            "--telemetry-window",
            "10ms",
            "--prom-out",
            "t.prom",
            "--mode",
            "morpheus",
            "--rps",
            "100",
            "--devices",
            "4"
        ]))
        .is_err());
    }

    #[test]
    fn csv_and_trace_out_are_mutually_exclusive() {
        assert!(parse(&argv(&[
            "--csv",
            "--trace-out",
            "t.json",
            "--mode",
            "morpheus",
            "--rps",
            "100"
        ]))
        .is_err());
        assert!(parse(&argv(&["--csv"])).is_ok());
    }
}
