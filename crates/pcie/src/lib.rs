//! PCIe interconnect model: links, switch, BARs, DMA, peer-to-peer routing.
//!
//! Models the part of the platform that NVMe-P2P (§IV-C) re-engineers: a
//! PCIe switch with per-device links and a root-complex link toward the host
//! memory system. Peripherals expose device memory by programming **base
//! address registers** (BARs) into the switch's address map; the switch
//! examines the destination address of each DMA and either forwards it to a
//! peer device directly (peer-to-peer, never touching the root complex) or
//! up through the root complex into host DRAM.
//!
//! The fabric is timing-aware (every transfer occupies the crossed links'
//! [`Timeline`](morpheus_simcore::Timeline)s, so concurrent transfers
//! contend) and accounts traffic per link — the paper's "22 % less PCIe
//! traffic" claim is measured from these counters.
//!
//! # Example
//!
//! ```
//! use morpheus_pcie::{DmaDir, Fabric, LinkConfig, PcieGen};
//! use morpheus_simcore::SimTime;
//!
//! let mut fabric = Fabric::new(LinkConfig::new(PcieGen::Gen3, 8));
//! let ssd = fabric.add_device("ssd", LinkConfig::new(PcieGen::Gen3, 4));
//! let gpu = fabric.add_device("gpu", LinkConfig::new(PcieGen::Gen3, 16));
//! let bar = fabric.map_bar(gpu, 1 << 30).unwrap();
//!
//! // SSD pushes 1 MiB straight into GPU memory: pure peer-to-peer.
//! let out = fabric
//!     .dma(ssd, DmaDir::Write, bar.base, 1 << 20, SimTime::ZERO)
//!     .unwrap();
//! assert!(out.peer_to_peer);
//! assert_eq!(fabric.traffic().root_bytes, 0);
//! ```

#![warn(missing_docs)]

mod fabric;
mod link;

pub use fabric::{
    BarWindow, DeviceId, DmaDir, DmaOutcome, Fabric, PcieError, Target, TrafficStats,
    HOST_MEMORY_TOP,
};
pub use link::{LinkConfig, PcieGen};
