//! The baseline NVMe SSD controller (hardware substrate of Morpheus-SSD).
//!
//! Models the commercial drive the paper modified (§IV-B, Fig. 6): an
//! NVMe/PCIe front end, several GB of controller DRAM, a DMA engine,
//! general-purpose **embedded cores** (Tensilica LX-class: in-order,
//! hundreds of MHz, I-SRAM + D-SRAM, *no FPU*) running the firmware and the
//! FTL, and a NAND flash array behind per-channel buses.
//!
//! This crate is the *baseline* device: functional logical-block reads and
//! writes (including read-modify-write for partial pages), with every flash
//! operation charged to per-channel timelines so multi-page transfers
//! stripe and pipeline exactly as the hardware would. The Morpheus firmware
//! extension — StorageApp execution behind the MINIT/MREAD/MWRITE/MDEINIT
//! commands — is layered on top by the `morpheus` core crate, mirroring how
//! the paper extends stock firmware without touching the FTL.
//!
//! # Example
//!
//! ```
//! use morpheus_flash::{FlashGeometry, FlashTiming};
//! use morpheus_simcore::SimTime;
//! use morpheus_ssd::{Ssd, SsdConfig};
//!
//! let mut ssd = Ssd::new(SsdConfig::default(), FlashGeometry::small(), FlashTiming::default());
//! ssd.load_at(0, b"hello world").unwrap();
//! let (data, done) = ssd.read_range(0, 1, SimTime::ZERO).unwrap();
//! assert_eq!(&data[..11], b"hello world");
//! assert!(done > SimTime::ZERO);
//! ```

#![warn(missing_docs)]

mod config;
mod controller;
mod cores;
mod error;

pub use config::SsdConfig;
pub use controller::{PageRead, Ssd, SsdStats};
pub use cores::EmbeddedCorePool;
pub use error::SsdError;
pub use morpheus_flash::{copy_audit, PageData};
