//! Extensions beyond the paper's evaluation (§I sketches both):
//!
//! * **Binary inputs** — packed foreign-endian records still need per-field
//!   transformation; the conversion is pure integer work, so even
//!   float-heavy data gains (no soft-float exposure).
//! * **Serialization** — MWRITE pushes compact binary objects to the drive,
//!   which formats the text file itself.

use morpheus::{AppSpec, InputFormat, Mode, System, SystemParams};
use morpheus_bench::{print_table, Harness};
use morpheus_format::{encode_binary, parse_buffer, Endianness, FieldKind, Schema};
use morpheus_workloads::sparse_coo_text;

fn main() {
    let h = Harness::from_args();
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32, FieldKind::F64]);
    let bytes = 8_000_000u64.max(2_000_000 * 256 / h.scale.max(1));

    // Build the same logical dataset in three encodings.
    let text = sparse_coo_text(bytes, h.seed);
    let (mut objects, _) = parse_buffer(&text, &schema).expect("generated input parses");
    objects.canonicalize();
    let bin_be = encode_binary(&objects, Endianness::Big);

    println!(
        "Extension study over a float-valued COO dataset ({} records)\n",
        objects.records
    );

    // --- deserialization: text vs foreign-endian binary ---
    let mut rows = Vec::new();
    let mut run_case = |label: &str, file: &str, data: &[u8], format: InputFormat| {
        let mut sys = System::new(SystemParams::paper_testbed());
        sys.create_input_file(file, data).unwrap();
        let spec =
            AppSpec::cpu_app(label, file, schema.clone(), 1, 1300.0).with_input_format(format);
        let conv = sys.run(&spec, Mode::Conventional).unwrap();
        let morp = sys.run(&spec, Mode::Morpheus).unwrap();
        assert_eq!(conv.report.checksum, morp.report.checksum);
        assert_eq!(conv.report.checksum, objects.checksum());
        rows.push(vec![
            label.to_string(),
            format!("{:.1}MB", data.len() as f64 / 1e6),
            format!("{:.3}s", conv.report.phases.deserialization_s),
            format!("{:.3}s", morp.report.phases.deserialization_s),
            format!("{:.2}x", morp.report.deser_speedup_over(&conv.report)),
        ]);
    };
    run_case("spmv-text", "coo.txt", &text, InputFormat::Text);
    run_case(
        "spmv-binary-be",
        "coo.bin",
        &bin_be,
        InputFormat::Binary(Endianness::Big),
    );
    print_table(
        &["input", "size", "baseline", "morpheus", "deser speedup"],
        &rows,
    );
    println!("(text floats hit the missing FPU; binary byte-swaps do not)\n");

    // --- serialization: objects -> text file on the drive ---
    let mut sys = System::new(SystemParams::paper_testbed());
    let conv = sys
        .run_serialize(&objects, "ser_conv.txt", Mode::Conventional)
        .unwrap();
    let morp = sys
        .run_serialize(&objects, "ser_morph.txt", Mode::Morpheus)
        .unwrap();
    assert_eq!(
        sys.read_file_bytes("ser_conv.txt").unwrap(),
        sys.read_file_bytes("ser_morph.txt").unwrap()
    );
    println!("serialization of the same objects into a text file:");
    print_table(
        &["mode", "time", "cpu busy", "pcie bytes"],
        &[
            vec![
                "conventional".into(),
                format!("{:.3}s", conv.serialize_s),
                format!("{:.3}s", conv.cpu_busy_s),
                format!("{:.1}MB", conv.pcie_bytes as f64 / 1e6),
            ],
            vec![
                "morpheus".into(),
                format!("{:.3}s", morp.serialize_s),
                format!("{:.3}s", morp.cpu_busy_s),
                format!("{:.1}MB", morp.pcie_bytes as f64 / 1e6),
            ],
        ],
    );
    println!(
        "\nserialization speedup: {:.2}x with {:.0}% less PCIe traffic (files byte-identical)",
        conv.serialize_s / morp.serialize_s,
        100.0 * (1.0 - morp.pcie_bytes as f64 / conv.pcie_bytes as f64)
    );
}
