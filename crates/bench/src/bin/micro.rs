//! §II microbenchmarks: where the conventional path's time actually goes.
//!
//! Reproduces the three profiling observations the Morpheus design rests
//! on:
//!
//! 1. the string-to-integer *conversion* itself is only a small share
//!    (~15 %) of the parse-loop's instructions;
//! 2. bypassing the stdio/locking machinery (keeping the same interface)
//!    speeds parsing by ~1.6×;
//! 3. the remaining code runs at IPC ≈ 1.2 — poor use of an out-of-order
//!    core.

use morpheus_bench::Harness;
use morpheus_format::{parse_buffer, CostModel, FieldKind, Schema};
use morpheus_host::{CodeClass, Cpu, CpuSpec};
use morpheus_workloads::int_list_text;

fn main() {
    // Fixed-size microbenchmarks, but validate flags so `run_all` can
    // forward its argument list here unchanged.
    let _ = Harness::from_args();
    let text = int_list_text(8_000_000, 7, 1_000_000_000);
    let schema = Schema::new(vec![FieldKind::U32]);
    let (parsed, work) = parse_buffer(&text, &schema).expect("generated input parses");
    let host = CostModel::host_cpu();
    let cpu = Cpu::new(CpuSpec::xeon_quad());

    println!(
        "§II microbenchmarks over an {}-byte ASCII integer file\n",
        text.len()
    );

    // (1) Convert fraction.
    let convert = work.int_tokens as f64 * host.int_instr_per_token
        + work.int_digits as f64 * host.int_instr_per_digit;
    let total = host.total_instructions(&work);
    println!(
        "convert instructions: {:.1}% of the parse loop (paper: ~15%)",
        100.0 * convert / total
    );

    // (2) Bypassing the stdio overhead: same interface, lean byte scanner.
    let mut lean = host;
    lean.scan_instr_per_byte = host.scan_instr_per_byte * 0.5;
    let t_full = cpu.duration(host.total_instructions(&work), CodeClass::Deserialize);
    let t_lean = cpu.duration(lean.total_instructions(&work), CodeClass::Deserialize);
    println!(
        "bypassing stdio/locking overheads speeds parsing by {:.2}x (paper: ~1.6x)",
        t_full.as_secs_f64() / t_lean.as_secs_f64()
    );

    // (3) IPC of the remaining code.
    println!(
        "IPC of the deserialization loop: {} (paper: ~1.2)",
        cpu.spec().ipc(CodeClass::Deserialize)
    );

    println!(
        "\nparsed {} records, {:.1} MB of objects from {:.1} MB of text",
        parsed.records,
        parsed.binary_bytes() as f64 / 1e6,
        text.len() as f64 / 1e6
    );
}
