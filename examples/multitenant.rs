//! Multiprogrammed deserialization: four tenants share one platform.
//!
//! Conventional tenants fight for the host's four cores; Morpheus tenants
//! each get their own embedded core inside the drive and leave the host
//! idle for real work (§III).
//!
//! ```sh
//! cargo run --release --example multitenant
//! ```

use morpheus::{AppSpec, Mode, System, SystemParams};
use morpheus_format::{FieldKind, Schema, TextWriter};

fn main() {
    let mut sys = System::new(SystemParams::paper_testbed());
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);

    // Four tenants, each with its own 3 MB edge list on the drive.
    let mut specs = Vec::new();
    for i in 0..4u64 {
        let file = format!("tenant{i}.txt");
        let mut w = TextWriter::new();
        for j in 0..180_000u64 {
            w.write_u64((j * 7 + i) % 100_000);
            w.sep();
            w.write_u64((j * 13 + i) % 100_000);
            w.newline();
        }
        sys.create_input_file(&file, w.as_bytes()).unwrap();
        specs.push(AppSpec::cpu_app(
            &format!("tenant{i}"),
            &file,
            schema.clone(),
            1,
            50.0,
        ));
    }

    for mode in [Mode::Conventional, Mode::Morpheus] {
        let tenants: Vec<(AppSpec, Mode)> = specs.iter().map(|s| (s.clone(), mode)).collect();
        let rep = sys.run_deserialize_many(&tenants).unwrap();
        println!("== {mode}: 4 tenants deserializing concurrently ==");
        for t in &rep.tenants {
            println!(
                "  {:<9} {:>7} records in {:.3}s",
                t.app, t.records, t.deser_s
            );
        }
        println!(
            "  makespan {:.3}s, aggregate {:.1} MB/s of objects, {} context switches\n",
            rep.makespan_s, rep.aggregate_mbs, rep.context_switches
        );
    }
    println!("(same objects either way; with Morpheus the host's four cores stay idle)");
}
