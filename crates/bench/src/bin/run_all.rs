//! Runs every figure/table regenerator in sequence (the full evaluation).
//!
//! Usage: `cargo run --release -p morpheus-bench --bin run_all -- --scale 256 --jobs 4`
//!
//! Flags are validated here and forwarded verbatim to every child binary,
//! so `--jobs N` fans each figure's suite loop out over N threads while
//! keeping all printed output byte-identical to a sequential run.

use morpheus_bench::Harness;
use std::process::Command;

fn main() {
    // Validate the flags up front (exit 2 on a typo) before launching
    // thirteen child processes that would each fail half-way through.
    let _ = Harness::from_args();
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1", "fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12", "traffic", "micro",
        "ablate", "ext", "kv",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    for bin in bins {
        println!("\n==================== {bin} ====================\n");
        let status = Command::new(dir.join(bin))
            .args(&passthrough)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
