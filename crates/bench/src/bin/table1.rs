//! Table I: the benchmark applications and their input sizes.

use morpheus_bench::{print_table, Harness};
use morpheus_workloads::{suite, Suite};

fn main() {
    let h = Harness::from_args();
    println!(
        "Table I: applications and input data (staged at 1/{} scale)\n",
        h.scale
    );
    let benches = suite();
    let rows: Vec<Vec<String>> = h.run_suite_parallel(&benches, |b| {
        let suite_name = match b.suite {
            Suite::BigDataBench => "BigDataBench",
            Suite::Rodinia => "Rodinia",
            Suite::Standalone => "-",
        };
        vec![
            b.name.to_string(),
            suite_name.to_string(),
            b.parallel_label.to_string(),
            format!("{:.2} GB", b.nominal_bytes as f64 / 1e9),
            format!("{:.1} MB", h.input_bytes(b) as f64 / 1e6),
            format!("{:?}", b.schema().fields()),
        ]
    });
    print_table(
        &[
            "app",
            "suite",
            "parallel",
            "paper input",
            "staged input",
            "record schema",
        ],
        &rows,
    );
}
