//! The Table-I benchmark suite.
//!
//! Ten applications mirroring the paper's selection: two BigDataBench-style
//! MPI applications, six Rodinia-style CUDA applications, and SpMV — all
//! with text-based integer-dominated inputs (SpMV's values are floats,
//! which is exactly why it is the paper's outlier in Fig. 8).
//!
//! Every benchmark is *functionally real*: a seeded generator produces the
//! text input, the platform under test deserializes it (conventionally or
//! through a StorageApp), and a real Rust kernel (PageRank, BFS, Gaussian
//! elimination, k-means, LU decomposition, k-NN, SpMV, sorting, word count,
//! grep-style filtering) consumes the resulting objects and produces a
//! digest that must agree across all execution modes.
//!
//! The OCR of Table I lost the two BigDataBench application names; we chose
//! PageRank and Sort, the suite's canonical integer-text MPI members
//! (documented in DESIGN.md).
//!
//! # Example
//!
//! ```
//! use morpheus::{Mode, System, SystemParams};
//! use morpheus_workloads::{stage_input, suite, run_benchmark};
//!
//! let mut sys = System::new(SystemParams::paper_testbed());
//! let bench = &suite()[0]; // PageRank
//! stage_input(&mut sys, bench, 64 * 1024, 42).unwrap();
//! let conv = run_benchmark(&mut sys, bench, Mode::Conventional).unwrap();
//! let morp = run_benchmark(&mut sys, bench, Mode::Morpheus).unwrap();
//! assert_eq!(conv.kernel.digest, morp.kernel.digest);
//! ```

#![warn(missing_docs)]

mod digest;
mod gen;
mod kernels;
mod suite;

pub use digest::Digest;
pub use gen::{edge_list_text, int_list_text, matrix_text, points_text, sparse_coo_text};
pub use kernels::{graph, kmeans, matrix, nn, scan, sort, spmv, KernelResult};
pub use suite::{run_benchmark, stage_input, suite, BenchOutcome, Benchmark, Suite};
