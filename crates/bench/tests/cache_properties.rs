//! The object-cache correctness contract (see `docs/CACHE.md`):
//!
//! 1. **Transparency** — over random app counts, file contents, skews,
//!    cache geometries, and fault plans, a cache-on run serves exactly the
//!    same objects as a cache-off run: same completions, same records,
//!    same (order-insensitive) checksum. The cache may only change *when*
//!    things happen, never *what* is produced.
//! 2. **Inertness at zero capacity** — installing a capacity-0 cache is
//!    byte-identical to never installing one, report and trace.
//! 3. **Determinism** — a cache-on Zipfian sweep is byte-identical across
//!    `--jobs 1` and `--jobs 4` and across repeats.
//! 4. **Invalidation on MWRITE** — rewriting a file through the
//!    serialization path drops its cached objects, so a subsequent cached
//!    serve parses the new bytes (verified against a cache-off run).
//!
//! Fault plans here use crash/stall/flash-uncorr only: with the
//! host-fallback policy every offered request still completes, so the
//! object-level comparison stays exact. (Timeout faults can fail requests
//! outright, and hits legitimately skip fault rolls, so loss-roll streams
//! diverge between the two worlds.)

use morpheus::{
    AppSpec, CacheConfig, CachePolicy, Mode, ServeConfig, ServePolicy, ServeReport, System,
    SystemParams,
};
use morpheus_bench::run_parallel;
use morpheus_format::{FieldKind, Schema, TextWriter};
use morpheus_simcore::{FaultPlan, Tracer};
use proptest::prelude::*;

/// Stages `napps` tenants with seeded ~200-row inputs.
fn build(seed: u64, napps: usize, faults: Option<&FaultPlan>) -> (System, Vec<AppSpec>) {
    let mut sys = System::new(SystemParams::paper_testbed());
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let mut specs = Vec::new();
    for i in 0..napps as u64 {
        let name = format!("svc{i}");
        let file = format!("{name}.txt");
        let mut w = TextWriter::new();
        for j in 0..200u64 {
            w.write_u64((j * 7 + i * 31 + seed) % 100_000);
            w.sep();
            w.write_u64((j * 13 + i * 17 + seed) % 100_000);
            w.newline();
        }
        sys.create_input_file(&file, &w.into_bytes()).unwrap();
        specs.push(AppSpec::cpu_app(&name, &file, schema.clone(), 1, 50.0));
    }
    if let Some(plan) = faults {
        sys.set_fault_plan(*plan);
    }
    (sys, specs)
}

fn serve_cfg(seed: u64, rps: f64, skew: f64, mode: Mode) -> ServeConfig {
    ServeConfig {
        rps,
        duration_s: 0.01,
        depth: 16,
        batch_max: 4,
        sq_depth: 16,
        mode,
        policy: ServePolicy::HostFallback, // every offered request completes
        seed,
        skew,
        telemetry: None,
        fast_forward: false,
    }
}

/// One serve run on a fresh system, optionally with a cache installed.
fn run_once(
    seed: u64,
    rps: f64,
    skew: f64,
    napps: usize,
    cache: Option<CacheConfig>,
    faults: Option<&FaultPlan>,
) -> ServeReport {
    let (mut sys, specs) = build(seed, napps, faults);
    if let Some(cfg) = cache {
        sys.set_object_cache(cfg);
    }
    sys.serve(&specs, &serve_cfg(seed, rps, skew, Mode::Morpheus))
        .expect("serve")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cache-on serves bit-identical objects to cache-off under random
    /// workloads, cache geometries, and (completion-preserving) faults.
    #[test]
    fn cache_on_serves_identical_objects(
        seed in 0u64..10_000,
        rps in 500.0f64..4000.0,
        skew in 0.0f64..2.0,
        napps in 1usize..5,
        tiny_dram in any::<bool>(),
        spill in any::<bool>(),
        lru in any::<bool>(),
        faulty in any::<bool>(),
    ) {
        let plan = FaultPlan::parse("seed=3,crash=0.1,stall=0.1,flash-uncorr=0.02").unwrap();
        let faults = faulty.then_some(&plan);
        let cache = CacheConfig {
            // A tiny DRAM tier forces eviction/spill churn mid-run.
            dram_bytes: if tiny_dram { 4 << 10 } else { 256 << 20 },
            host_bytes: if spill { 1 << 20 } else { 0 },
            policy: if lru { CachePolicy::Lru } else { CachePolicy::TinyLfu },
            seed,
        };
        let off = run_once(seed, rps, skew, napps, None, faults);
        let on = run_once(seed, rps, skew, napps, Some(cache), faults);
        prop_assert_eq!(off.offered, on.offered, "same arrival schedule");
        prop_assert_eq!(off.completed, off.offered, "fallback completes everything");
        prop_assert_eq!(on.completed, off.completed, "cache must not lose requests");
        prop_assert_eq!(on.records, off.records, "cache must not change record counts");
        prop_assert_eq!(
            on.checksum_unordered, off.checksum_unordered,
            "cached objects must be bit-identical to freshly parsed ones"
        );
    }
}

#[test]
fn zero_capacity_cache_is_byte_identical_to_no_cache() {
    let run = |install: bool| {
        let (mut sys, specs) = build(11, 2, None);
        sys.set_tracer(Tracer::enabled());
        if install {
            sys.set_object_cache(CacheConfig::new(0));
        }
        let rep = sys
            .serve(&specs, &serve_cfg(11, 1500.0, 0.0, Mode::Morpheus))
            .expect("serve");
        (format!("{rep:?}"), sys.tracer().take().to_chrome_json())
    };
    assert_eq!(run(false), run(true), "capacity-0 install must be inert");
}

#[test]
fn cached_zipfian_sweep_is_identical_across_jobs_and_repeats() {
    let cell = |rps: f64| {
        let (mut sys, specs) = build(5, 3, None);
        sys.set_tracer(Tracer::enabled());
        sys.set_object_cache(CacheConfig {
            dram_bytes: 256 << 20,
            host_bytes: 16 << 20,
            policy: CachePolicy::TinyLfu,
            seed: 5,
        });
        let rep = sys
            .serve(&specs, &serve_cfg(5, rps, 1.1, Mode::Morpheus))
            .expect("serve");
        (format!("{rep:?}"), sys.tracer().take().to_chrome_json())
    };
    let grid: Vec<f64> = vec![900.0, 2700.0, 8000.0];
    let seq = run_parallel(1, &grid, |r| cell(*r));
    let par = run_parallel(4, &grid, |r| cell(*r));
    assert_eq!(seq, par, "cache-on fan-out must not change a single byte");
    let again = run_parallel(1, &grid, |r| cell(*r));
    assert_eq!(seq, again, "cache-on runs must replay byte-identically");
}

#[test]
fn mwrite_invalidates_cached_objects() {
    // Source objects come from a staged input; the serving tenant reads
    // the *serialized* copy, so rewriting it through the MWRITE path must
    // invalidate the cache.
    let (mut sys, specs) = build(3, 1, None);
    let schema = Schema::new(vec![FieldKind::U32, FieldKind::U32]);
    let src_a = sys.run(&specs[0], Mode::Morpheus).expect("parse input a");

    // A second, different input provides the replacement objects.
    let mut w = TextWriter::new();
    for j in 0..150u64 {
        w.write_u64((j * 11 + 5) % 100_000);
        w.sep();
        w.write_u64((j * 19 + 7) % 100_000);
        w.newline();
    }
    sys.create_input_file("alt.txt", &w.into_bytes()).unwrap();
    let alt_spec = AppSpec::cpu_app("alt", "alt.txt", schema.clone(), 1, 50.0);
    let src_b = sys.run(&alt_spec, Mode::Morpheus).expect("parse input b");
    assert_ne!(src_a.objects.checksum(), src_b.objects.checksum());

    // MWRITE #1 stages out.txt with A's objects; cached serving warms on it.
    sys.run_serialize(&src_a.objects, "out.txt", Mode::Morpheus)
        .expect("serialize a");
    sys.set_object_cache(CacheConfig {
        dram_bytes: 64 << 20,
        host_bytes: 0,
        policy: CachePolicy::Lru,
        seed: 3,
    });
    let out_spec = AppSpec::cpu_app("reader", "out.txt", schema, 1, 50.0);
    let cfg = serve_cfg(3, 1500.0, 0.0, Mode::Morpheus);
    let warm = sys
        .serve(std::slice::from_ref(&out_spec), &cfg)
        .expect("warm serve");
    let hot = sys
        .serve(std::slice::from_ref(&out_spec), &cfg)
        .expect("hot serve");
    assert!(hot.cache.expect("installed").hits > 0, "cache warmed");
    assert_eq!(warm.checksum_unordered, hot.checksum_unordered);

    // MWRITE #2 rewrites out.txt with B's objects (the filesystem slot is
    // recycled first; removal alone performs no invalidation — the MWRITE
    // path itself must).
    sys.fs.remove("out.txt").expect("recycle name");
    sys.run_serialize(&src_b.objects, "out.txt", Mode::Morpheus)
        .expect("serialize b");
    let fresh = sys
        .serve(std::slice::from_ref(&out_spec), &cfg)
        .expect("fresh serve");
    let fc = fresh.cache.expect("installed");
    assert!(fc.invalidations > 0, "MWRITE must invalidate: {fc}");
    assert_ne!(
        fresh.checksum_unordered, hot.checksum_unordered,
        "stale objects must not survive the rewrite"
    );

    // The cached post-rewrite serve agrees with a cache-off serve.
    sys.clear_object_cache();
    let off = sys.serve(&[out_spec], &cfg).expect("cache-off serve");
    assert_eq!(off.checksum_unordered, fresh.checksum_unordered);
}
