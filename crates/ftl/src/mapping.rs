//! Page-level mapping, allocation, garbage collection.

use crate::{FtlConfig, FtlError};
use morpheus_flash::{BlockId, FlashArray, FlashError, FlashOp, FlashOpKind, PageData, Ppa};
use std::collections::{HashMap, VecDeque};

/// Logical page number: index into the FTL's exported capacity, in units of
/// one flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lpn(pub u64);

/// Result of a logical write: the flash operations performed, including any
/// garbage-collection work it triggered.
#[derive(Debug, Clone)]
pub struct WriteOutcome {
    /// Flash operations, in issue order (GC reads/programs/erases first,
    /// then the host program).
    pub ops: Vec<FlashOp>,
    /// Valid pages relocated by GC during this write.
    pub gc_relocations: u32,
}

/// Result of a logical read.
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    /// The page contents as last written — a zero-copy handle sharing the
    /// flash array's stored allocation (see [`PageData`]).
    pub data: PageData,
    /// Flash operations, including failed attempts that were retried.
    pub ops: Vec<FlashOp>,
    /// Number of retries that were needed (0 = clean read).
    pub retries: u32,
}

/// FTL-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FtlStats {
    /// Host-initiated page writes.
    pub host_writes: u64,
    /// Pages rewritten by garbage collection.
    pub gc_writes: u64,
    /// Garbage collection invocations.
    pub gc_runs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Reads retried due to injected media errors.
    pub read_retries: u64,
}

impl FtlStats {
    /// Write amplification factor: `(host + gc writes) / host writes`.
    /// Returns 1.0 before any host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_writes) as f64 / self.host_writes as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ChannelState {
    free: VecDeque<BlockId>,
    open: Option<(BlockId, u32)>,
    closed: Vec<BlockId>,
}

/// Page-mapping flash translation layer over a [`FlashArray`].
///
/// Writes stripe round-robin across channels; each channel keeps one open
/// block and garbage-collects greedily (fewest valid pages, ties broken by
/// erase count for wear levelling) when its free pool reaches the
/// watermark. Logical capacity is the physical capacity minus the
/// over-provisioning reserve.
#[derive(Debug, Clone)]
pub struct Ftl {
    flash: FlashArray,
    cfg: FtlConfig,
    map: Vec<Option<Ppa>>,
    rmap: HashMap<Ppa, Lpn>,
    channels: Vec<ChannelState>,
    next_channel: usize,
    stats: FtlStats,
}

impl Ftl {
    /// Creates an FTL over an erased array.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`FtlConfig::validate`]).
    pub fn new(flash: FlashArray, cfg: FtlConfig) -> Self {
        cfg.validate();
        let geo = *flash.geometry();
        let total_pages = geo.total_pages();
        let logical_pages = ((total_pages as f64) * (1.0 - cfg.overprovision)).floor() as u64;
        let mut channels: Vec<ChannelState> =
            (0..geo.channels).map(|_| ChannelState::default()).collect();
        for b in 0..geo.total_blocks() {
            let block = BlockId(b);
            channels[geo.channel_of_block(block) as usize]
                .free
                .push_back(block);
        }
        Ftl {
            flash,
            cfg,
            map: vec![None; logical_pages as usize],
            rmap: HashMap::new(),
            channels,
            next_channel: 0,
            stats: FtlStats::default(),
        }
    }

    /// Exported logical capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.map.len() as u64
    }

    /// Bytes per logical page (same as the flash page size).
    pub fn page_bytes(&self) -> u32 {
        self.flash.geometry().page_bytes
    }

    /// FTL statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// The underlying flash array (for inspection).
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Replaces the flash bit-error model and re-seeds its PRNG stream
    /// (see [`FlashArray::set_error_model`]). The fault plane re-arms this
    /// at the start of every run so repeated runs over the same array see
    /// identical fault streams.
    pub fn set_error_model(&mut self, ecc: morpheus_flash::EccModel, seed: u64) {
        self.flash.set_error_model(ecc, seed);
    }

    /// Current physical location of a logical page, if mapped.
    pub fn translate(&self, lpn: Lpn) -> Option<Ppa> {
        *self.map.get(lpn.0 as usize)?
    }

    /// Writes a logical page.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::OutOfCapacity`] beyond the exported range,
    /// [`FtlError::NoFreeBlocks`] when the drive cannot make space, and
    /// propagates flash failures.
    pub fn write(&mut self, lpn: Lpn, data: &[u8]) -> Result<WriteOutcome, FtlError> {
        if lpn.0 >= self.capacity_pages() {
            return Err(FtlError::OutOfCapacity(lpn));
        }
        if data.len() > self.page_bytes() as usize {
            return Err(FtlError::Flash(FlashError::DataTooLarge {
                ppa: Ppa(0),
                len: data.len(),
                page_bytes: self.page_bytes(),
            }));
        }
        let mut ops = Vec::new();
        let mut gc_relocations = 0;

        // Invalidate the previous version, if any.
        if let Some(old) = self.map[lpn.0 as usize].take() {
            self.flash.invalidate_page(old);
            self.rmap.remove(&old);
        }

        let channel = self.next_channel;
        self.next_channel = (self.next_channel + 1) % self.channels.len();
        let ppa = self.allocate(channel, true, &mut ops, &mut gc_relocations)?;
        let op = self.flash.program_page(ppa, data)?;
        ops.push(op);
        self.map[lpn.0 as usize] = Some(ppa);
        self.rmap.insert(ppa, lpn);
        self.stats.host_writes += 1;
        Ok(WriteOutcome {
            ops,
            gc_relocations,
        })
    }

    /// Reads a logical page, retrying injected media errors.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::Unmapped`] for never-written pages and
    /// [`FtlError::MediaFailure`] when retries are exhausted.
    pub fn read(&mut self, lpn: Lpn) -> Result<ReadOutcome, FtlError> {
        if lpn.0 >= self.capacity_pages() {
            return Err(FtlError::OutOfCapacity(lpn));
        }
        let ppa = self.map[lpn.0 as usize].ok_or(FtlError::Unmapped(lpn))?;
        let mut ops = Vec::new();
        let mut retries = 0;
        loop {
            match self.flash.read_page(ppa) {
                Ok((data, op)) => {
                    ops.push(op);
                    self.stats.read_retries += retries as u64;
                    return Ok(ReadOutcome { data, ops, retries });
                }
                Err(FlashError::Uncorrectable(_)) if retries < self.cfg.read_retries => {
                    retries += 1;
                    // A failed attempt still occupied the die for a read.
                    ops.push(FlashOp {
                        kind: FlashOpKind::Read,
                        channel: self.flash.geometry().channel_of(ppa),
                        cell_time: self.flash.timing().read_latency,
                        bus_time: morpheus_simcore::SimDuration::ZERO,
                    });
                }
                Err(e @ FlashError::Uncorrectable(_)) => {
                    self.stats.read_retries += retries as u64;
                    return Err(FtlError::MediaFailure(lpn, e));
                }
                Err(e) => return Err(FtlError::Flash(e)),
            }
        }
    }

    /// Discards a logical page (NVMe Dataset Management / TRIM).
    ///
    /// Trimming an unmapped page is a no-op, matching NVMe semantics.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::OutOfCapacity`] beyond the exported range.
    pub fn trim(&mut self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn.0 >= self.capacity_pages() {
            return Err(FtlError::OutOfCapacity(lpn));
        }
        if let Some(old) = self.map[lpn.0 as usize].take() {
            self.flash.invalidate_page(old);
            self.rmap.remove(&old);
        }
        Ok(())
    }

    /// Total free pages remaining across all channels (free blocks plus the
    /// unwritten tail of open blocks).
    pub fn free_pages(&self) -> u64 {
        let ppb = self.flash.geometry().pages_per_block as u64;
        self.channels
            .iter()
            .map(|c| {
                c.free.len() as u64 * ppb + c.open.map(|(_, next)| ppb - next as u64).unwrap_or(0)
            })
            .sum()
    }

    fn allocate(
        &mut self,
        channel: usize,
        allow_gc: bool,
        ops: &mut Vec<FlashOp>,
        gc_relocations: &mut u32,
    ) -> Result<Ppa, FtlError> {
        let ppb = self.flash.geometry().pages_per_block;
        if allow_gc
            && self.channels[channel].free.len() as u32 <= self.cfg.gc_watermark
            && !self.channels[channel].closed.is_empty()
        {
            self.collect_channel(channel, ops, gc_relocations)?;
        }
        loop {
            if let Some((block, next)) = self.channels[channel].open {
                if next < ppb {
                    self.channels[channel].open = Some((block, next + 1));
                    let ppa = Ppa(self.flash.geometry().first_page_of(block).0 + next as u64);
                    return Ok(ppa);
                }
                self.channels[channel].closed.push(block);
                self.channels[channel].open = None;
            }
            let block = self.channels[channel]
                .free
                .pop_front()
                .ok_or(FtlError::NoFreeBlocks)?;
            self.channels[channel].open = Some((block, 0));
        }
    }

    /// Greedy GC on one channel: relocate the valid pages of the block with
    /// the fewest valid pages (wear-aware tie-break), then erase it.
    fn collect_channel(
        &mut self,
        channel: usize,
        ops: &mut Vec<FlashOp>,
        gc_relocations: &mut u32,
    ) -> Result<(), FtlError> {
        let victim_idx = {
            let ch = &self.channels[channel];
            let mut best: Option<(usize, u32, u64)> = None;
            for (i, &b) in ch.closed.iter().enumerate() {
                let valid = self.flash.valid_pages_in(b);
                let wear = self.flash.erase_count(b);
                let better = match best {
                    None => true,
                    Some((_, bv, bw)) => {
                        valid < bv
                            || (valid == bv && wear + self.cfg.wear_spread < bw)
                            || (valid == bv && wear < bw)
                    }
                };
                if better {
                    best = Some((i, valid, wear));
                }
            }
            match best {
                Some((i, _, _)) => i,
                None => return Ok(()),
            }
        };
        let victim = self.channels[channel].closed.swap_remove(victim_idx);
        self.stats.gc_runs += 1;

        // Relocate live pages.
        let geo = *self.flash.geometry();
        let first = geo.first_page_of(victim).0;
        for i in 0..geo.pages_per_block as u64 {
            let ppa = Ppa(first + i);
            let Some(&lpn) = self.rmap.get(&ppa) else {
                continue;
            };
            debug_assert_eq!(self.map[lpn.0 as usize], Some(ppa));
            // Relocation reads retry injected media errors just like host
            // reads do; only persistent failures surface.
            let (data, read_op) = {
                let mut attempt = 0;
                loop {
                    match self.flash.read_page(ppa) {
                        Ok(r) => break r,
                        Err(FlashError::Uncorrectable(_)) if attempt < self.cfg.read_retries => {
                            attempt += 1;
                            self.stats.read_retries += 1;
                        }
                        Err(e @ FlashError::Uncorrectable(_)) => {
                            return Err(FtlError::MediaFailure(lpn, e))
                        }
                        Err(e) => return Err(FtlError::Flash(e)),
                    }
                }
            };
            ops.push(read_op);
            // Relocation stays on the same channel; GC must not recurse.
            let dest = self.allocate(channel, false, ops, gc_relocations)?;
            // Re-home the handle: relocation moves the page without
            // copying its payload.
            let prog_op = self.flash.program_page_data(dest, data)?;
            ops.push(prog_op);
            self.flash.invalidate_page(ppa);
            self.rmap.remove(&ppa);
            self.map[lpn.0 as usize] = Some(dest);
            self.rmap.insert(dest, lpn);
            self.stats.gc_writes += 1;
            *gc_relocations += 1;
        }

        match self.flash.erase_block(victim) {
            Ok(op) => {
                ops.push(op);
                self.stats.erases += 1;
                if !self.flash.is_bad(victim) {
                    self.channels[channel].free.push_back(victim);
                }
                Ok(())
            }
            Err(FlashError::BadBlock(_)) => Ok(()), // retired; just lose the block
            Err(e) => Err(FtlError::Flash(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_flash::{EccModel, FlashGeometry, FlashTiming};

    fn small_ftl() -> Ftl {
        Ftl::new(
            FlashArray::new(FlashGeometry::small(), FlashTiming::default()),
            FtlConfig::default(),
        )
    }

    #[test]
    fn read_after_write_round_trips() {
        let mut f = small_ftl();
        f.write(Lpn(0), b"alpha").unwrap();
        f.write(Lpn(7), b"beta").unwrap();
        assert_eq!(&f.read(Lpn(0)).unwrap().data[..], b"alpha");
        assert_eq!(&f.read(Lpn(7)).unwrap().data[..], b"beta");
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut f = small_ftl();
        f.write(Lpn(3), b"v1").unwrap();
        f.write(Lpn(3), b"v2").unwrap();
        assert_eq!(&f.read(Lpn(3)).unwrap().data[..], b"v2");
    }

    #[test]
    fn unmapped_read_fails() {
        let mut f = small_ftl();
        assert_eq!(f.read(Lpn(5)).unwrap_err(), FtlError::Unmapped(Lpn(5)));
    }

    #[test]
    fn trim_unmaps() {
        let mut f = small_ftl();
        f.write(Lpn(1), b"x").unwrap();
        f.trim(Lpn(1)).unwrap();
        assert_eq!(f.read(Lpn(1)).unwrap_err(), FtlError::Unmapped(Lpn(1)));
        // Trim of unmapped page is a no-op.
        f.trim(Lpn(1)).unwrap();
    }

    #[test]
    fn out_of_capacity_rejected() {
        let mut f = small_ftl();
        let cap = f.capacity_pages();
        assert!(matches!(
            f.write(Lpn(cap), b"x").unwrap_err(),
            FtlError::OutOfCapacity(_)
        ));
        assert!(matches!(
            f.read(Lpn(cap)).unwrap_err(),
            FtlError::OutOfCapacity(_)
        ));
    }

    #[test]
    fn capacity_respects_overprovision() {
        let f = small_ftl();
        let total = f.flash().geometry().total_pages();
        assert!(f.capacity_pages() < total);
        assert_eq!(f.capacity_pages(), (total as f64 * 0.875).floor() as u64);
    }

    #[test]
    fn writes_stripe_across_channels() {
        let mut f = small_ftl();
        f.write(Lpn(0), b"a").unwrap();
        f.write(Lpn(1), b"b").unwrap();
        let c0 = f
            .flash()
            .geometry()
            .channel_of(f.translate(Lpn(0)).unwrap());
        let c1 = f
            .flash()
            .geometry()
            .channel_of(f.translate(Lpn(1)).unwrap());
        assert_ne!(c0, c1);
    }

    #[test]
    fn gc_sustains_overwrite_storm_and_preserves_data() {
        let mut f = small_ftl();
        let cap = f.capacity_pages();
        // Fill the device, then overwrite everything several times: far more
        // page writes than physical pages, forcing repeated GC.
        for round in 0u8..6 {
            for l in 0..cap {
                let payload = [round, l as u8, (l >> 8) as u8];
                f.write(Lpn(l), &payload).unwrap();
            }
        }
        for l in 0..cap {
            let d = f.read(Lpn(l)).unwrap().data;
            assert_eq!(&d[..], &[5u8, l as u8, (l >> 8) as u8]);
        }
        assert!(f.stats().gc_runs > 0, "GC should have run");
        assert!(f.stats().write_amplification() > 1.0);
    }

    #[test]
    fn mapping_stays_injective_under_load() {
        let mut f = small_ftl();
        let cap = f.capacity_pages();
        for round in 0..4 {
            for l in 0..cap {
                f.write(Lpn((l * 7 + round) % cap), &[l as u8]).unwrap();
            }
        }
        let mut seen = std::collections::HashSet::new();
        for l in 0..cap {
            if let Some(ppa) = f.translate(Lpn(l)) {
                assert!(seen.insert(ppa), "two lpns map to ppa {}", ppa.0);
            }
        }
    }

    #[test]
    fn write_outcome_reports_gc_work() {
        let mut f = small_ftl();
        let cap = f.capacity_pages();
        let mut any_gc = false;
        for round in 0u8..6 {
            for l in 0..cap {
                let out = f.write(Lpn(l), &[round]).unwrap();
                if out.gc_relocations > 0 {
                    any_gc = true;
                    assert!(out.ops.len() > 1);
                }
            }
        }
        assert!(any_gc);
    }

    #[test]
    fn logical_reads_share_the_stored_allocation() {
        let mut f = small_ftl();
        f.write(Lpn(0), b"zero copy").unwrap();
        let a = f.read(Lpn(0)).unwrap().data;
        let b = f.read(Lpn(0)).unwrap().data;
        assert!(PageData::ptr_eq(&a, &b), "FTL reads must not copy payloads");
    }

    #[test]
    fn gc_relocation_moves_handles_not_bytes() {
        let mut f = small_ftl();
        let cap = f.capacity_pages();
        // Take handles on a few pages, then force GC with an overwrite
        // storm on the rest: survivors must relocate without copying.
        for l in 0..cap {
            f.write(Lpn(l), &[l as u8, 0xAB]).unwrap();
        }
        let before: Vec<_> = (0..4).map(|l| f.read(Lpn(l)).unwrap().data).collect();
        for round in 0u8..6 {
            for l in 4..cap {
                f.write(Lpn(l), &[round, l as u8]).unwrap();
            }
        }
        assert!(f.stats().gc_runs > 0, "storm must trigger GC");
        for (l, old) in before.iter().enumerate() {
            let now = f.read(Lpn(l as u64)).unwrap().data;
            assert_eq!(&now[..], &[l as u8, 0xAB]);
            assert!(
                PageData::ptr_eq(old, &now),
                "page {l} was relocated by copying instead of re-homing its handle"
            );
        }
    }

    #[test]
    fn read_retries_recover_from_transient_errors() {
        // ~40% uncorrectable probability: with 3 retries most reads succeed.
        let ecc = EccModel {
            uncorrectable_prob: 0.4,
            ..EccModel::perfect()
        };
        let flash = FlashArray::with_ecc(FlashGeometry::small(), FlashTiming::default(), ecc, 99);
        let mut f = Ftl::new(flash, FtlConfig::default());
        f.write(Lpn(0), b"fragile").unwrap();
        let mut successes = 0;
        let mut retried = 0;
        for _ in 0..50 {
            match f.read(Lpn(0)) {
                Ok(out) => {
                    successes += 1;
                    if out.retries > 0 {
                        retried += 1;
                        assert!(out.ops.len() as u32 == out.retries + 1);
                    }
                    assert_eq!(&out.data[..], b"fragile");
                }
                Err(FtlError::MediaFailure(..)) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(successes > 30, "retries should recover most reads");
        assert!(retried > 0, "some reads should have retried");
    }

    #[test]
    fn free_pages_decreases_with_writes() {
        let mut f = small_ftl();
        let before = f.free_pages();
        f.write(Lpn(0), b"x").unwrap();
        assert!(f.free_pages() < before);
    }

    #[test]
    fn oversized_write_rejected() {
        let mut f = small_ftl();
        let big = vec![0u8; f.page_bytes() as usize + 1];
        assert!(matches!(
            f.write(Lpn(0), &big).unwrap_err(),
            FtlError::Flash(FlashError::DataTooLarge { .. })
        ));
    }
}
