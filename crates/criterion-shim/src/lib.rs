//! A small, dependency-free re-implementation of the subset of the
//! [Criterion](https://crates.io/crates/criterion) API this workspace's
//! benches use.
//!
//! The build environment has no access to crates.io, so the real Criterion
//! cannot be fetched. This shim keeps the bench sources unchanged: it
//! provides `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Throughput`, and `Bencher::{iter, iter_batched}`. Each benchmark is
//! calibrated to a target measurement time, sampled several times, and the
//! median per-iteration time (plus throughput, when declared) is printed.
//!
//! Filtering works like Criterion's: positional command-line arguments are
//! substring filters over `group/name` ids; `--bench`, `--exact`, and other
//! harness flags are accepted and ignored where behaviourally safe.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Per-iteration workload declaration used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// parity; the shim always measures one batch element at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real Criterion.
    SmallInput,
    /// Large inputs: few per batch in real Criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measurement settings shared by every benchmark in a run.
#[derive(Debug, Clone)]
struct Settings {
    /// Target wall-clock time per sample.
    sample_time: Duration,
    /// Number of samples; the median is reported.
    samples: usize,
    /// Substring filters from the command line (empty = run everything).
    filters: Vec<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_time: Duration::from_millis(120),
            samples: 5,
            filters: Vec::new(),
        }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Applies command-line arguments (substring filters; harness flags
    /// such as `--bench` are ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue; // harness flags: --bench, --exact, --nocapture, ...
            }
            filters.push(arg);
        }
        self.settings.filters = filters;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&self.settings, &id, None, f);
        self
    }
}

/// A named collection of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the number of samples taken for subsequent benchmarks (real
    /// Criterion uses this to bound slow benchmarks; here samples are
    /// already few, so only reductions take effect).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let samples = self.criterion.settings.samples.min(n.max(1));
        self.criterion.settings.samples = samples;
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&self.criterion.settings, &id, self.throughput, f);
        self
    }

    /// Finishes the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine`, each on a fresh input from
    /// `setup`; setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F>(settings: &Settings, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !settings.filters.is_empty() && !settings.filters.iter().any(|p| id.contains(p.as_str())) {
        return;
    }

    // Calibrate: grow the iteration count until one sample costs at least
    // the target sample time (or the per-iter cost is already huge).
    let mut iters: u64 = 1;
    let mut calib = run_once(&mut f, iters);
    while calib < settings.sample_time && iters < (1 << 40) {
        let per_iter = calib.as_nanos().max(1) as u64 / iters.max(1);
        let want = (settings.sample_time.as_nanos() as u64 / per_iter.max(1)).max(iters * 2);
        iters = want.min(iters.saturating_mul(16)).max(iters + 1);
        calib = run_once(&mut f, iters);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(settings.samples);
    per_iter_ns.push(calib.as_nanos() as f64 / iters as f64);
    for _ in 1..settings.samples {
        let d = run_once(&mut f, iters);
        per_iter_ns.push(d.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let best = per_iter_ns[0];
    let worst = per_iter_ns[per_iter_ns.len() - 1];

    let thrpt = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibs = n as f64 / (median * 1e-9) / (1024.0 * 1024.0);
            format!("  thrpt: {mibs:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (median * 1e-9);
            format!("  thrpt: {eps:10.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "{id:<48} time: [{} {} {}]{thrpt}",
        fmt_ns(best),
        fmt_ns(median),
        fmt_ns(worst)
    );
    emit_json(id, median, best, worst, throughput);
}

/// Appends one JSON line per benchmark to the file named by
/// `MORPHEUS_BENCH_JSON` (CI collects these into its bench artifact).
/// Unset or unwritable paths are silently ignored — machine output must
/// never fail a measurement run.
fn emit_json(id: &str, median: f64, best: f64, worst: f64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("MORPHEUS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        return;
    };
    let thrpt = match throughput {
        Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
        Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
        None => String::new(),
    };
    use std::io::Write as _;
    let _ = writeln!(
        f,
        "{{\"id\":\"{}\",\"median_ns\":{median},\"min_ns\":{best},\"max_ns\":{worst}{thrpt}}}",
        id.escape_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reaches_sample_time() {
        let settings = Settings {
            sample_time: Duration::from_millis(5),
            samples: 2,
            filters: Vec::new(),
        };
        let mut count = 0u64;
        run_benchmark(&settings, "t/spin", Some(Throughput::Bytes(1024)), |b| {
            b.iter(|| {
                count += 1;
                std::hint::black_box(count)
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn filters_skip_non_matching() {
        let settings = Settings {
            sample_time: Duration::from_millis(1),
            samples: 1,
            filters: vec!["other".to_string()],
        };
        let mut ran = false;
        run_benchmark(&settings, "group/name", None, |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }

    #[test]
    fn json_lines_emit_when_env_set() {
        let path = std::env::temp_dir().join(format!("shim-bench-{}.jsonl", std::process::id()));
        std::env::set_var("MORPHEUS_BENCH_JSON", &path);
        emit_json("g/a", 1234.5, 1000.0, 2000.0, Some(Throughput::Bytes(4096)));
        emit_json("g/b", 10.0, 9.0, 11.0, None);
        std::env::remove_var("MORPHEUS_BENCH_JSON");
        let got = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = got.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":\"g/a\"") && lines[0].contains("\"bytes\":4096"));
        assert!(lines[1].contains("\"median_ns\":10") && !lines[1].contains("bytes"));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let settings = Settings {
            sample_time: Duration::from_millis(2),
            samples: 1,
            filters: Vec::new(),
        };
        run_benchmark(&settings, "t/batched", None, |b| {
            b.iter_batched(
                || vec![1u8; 512],
                |v| v.iter().map(|x| *x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
