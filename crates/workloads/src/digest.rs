//! Order-sensitive result digests for cross-mode verification.

/// An FNV-1a style accumulator for kernel results.
///
/// Floats are digested by their rounded fixed-point value so that digests
/// are stable across algebraically identical evaluation orders within one
/// kernel implementation (kernels themselves are deterministic; rounding
/// just guards against printing noise in summaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Digest {
    /// A fresh digest.
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes a word.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    /// Mixes a signed value.
    pub fn mix_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }

    /// Mixes a float at 6 fractional digits of precision.
    pub fn mix_f64(&mut self, v: f64) {
        self.mix(((v * 1e6).round() as i64) as u64);
    }

    /// The digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_sensitive() {
        let mut a = Digest::new();
        a.mix(1);
        a.mix(2);
        let mut b = Digest::new();
        b.mix(2);
        b.mix(1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn floats_rounded() {
        let mut a = Digest::new();
        a.mix_f64(1.0000000001);
        let mut b = Digest::new();
        b.mix_f64(1.0);
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn deterministic() {
        let mut a = Digest::new();
        let mut b = Digest::new();
        for i in 0..100 {
            a.mix(i);
            b.mix(i);
        }
        assert_eq!(a.value(), b.value());
    }
}
